"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestAnalyze:
    def test_tree_schema(self, capsys):
        assert main(["analyze", "ab,bc,cd"]) == 0
        output = capsys.readouterr().out
        assert "tree schema (alpha-acyclic): True" in output
        assert "qual tree" in output

    def test_cyclic_schema_suggests_treefication(self, capsys):
        assert main(["analyze", "ab,bc,ac"]) == 0
        output = capsys.readouterr().out
        assert "tree schema (alpha-acyclic): False" in output
        assert "smallest treefying relation" in output
        assert "abc" in output

    def test_multi_character_attributes(self, capsys):
        assert main(
            ["--attribute-separator", " ", "analyze", "emp dept, dept mgr"]
        ) == 0
        output = capsys.readouterr().out
        assert "tree schema (alpha-acyclic): True" in output


class TestCanonicalConnection:
    def test_section6_example(self, capsys):
        assert main(["cc", "abg,bcg,acf,ad,de,ea", "abc"]) == 0
        output = capsys.readouterr().out
        assert "CC(D, X) = (abg, bcg, ac)" in output
        assert "'ad'" in output and "'de'" in output


class TestLossless:
    def test_implied_case_exits_zero(self, capsys):
        assert main(["lossless", "ab,bc,cd", "ab,bc"]) == 0
        assert "True" in capsys.readouterr().out

    def test_not_implied_case_exits_one(self, capsys):
        assert main(["lossless", "abc,ab,bc", "ab,bc"]) == 1
        assert "False" in capsys.readouterr().out


class TestTreefy:
    def test_cyclic_schema(self, capsys):
        assert main(["treefy", "ab,bc,cd,da"]) == 0
        output = capsys.readouterr().out
        assert "add U(GR(D)) = abcd" in output

    def test_tree_schema(self, capsys):
        assert main(["treefy", "ab,bc"]) == 0
        assert "already a tree schema" in capsys.readouterr().out


class TestTableau:
    def test_section6_example_folds_three_rows(self, capsys):
        assert main(["tableau", "abg,bcg,acf,ad,de,ea", "abc"]) == 0
        output = capsys.readouterr().out
        assert "standard tableau Tab(D, X) (6 rows):" in output
        assert "minimization removed 3 rows (r3, r4, r5):" in output
        assert "CC(D, X) = (abg, bcg, ac)" in output

    def test_already_minimal(self, capsys):
        assert main(["tableau", "ab,bc,cd", "ad"]) == 0
        output = capsys.readouterr().out
        assert "already minimal; no rows removed" in output
        assert "CC(D, X) =" in output

    def test_renders_summary_row(self, capsys):
        assert main(["tableau", "ab,bc", "ac"]) == 0
        output = capsys.readouterr().out
        assert "summary" in output


class TestJsonOutput:
    def test_analyze_tree_schema(self, capsys):
        assert main(["analyze", "--json", "ab,bc,cd"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["alpha_acyclic"] is True
        assert payload["gamma_acyclic"] is True
        assert payload["relations"] == 3
        assert payload["attributes"] == 4
        assert payload["qual_tree"] is not None
        assert "treefying_relation" not in payload

    def test_analyze_cyclic_schema(self, capsys):
        assert main(["analyze", "--json", "ab,bc,ac"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["alpha_acyclic"] is False
        assert payload["qual_tree"] is None
        assert payload["gyo_residue"] == "ab,bc,ac"
        assert payload["treefying_relation"] == "abc"

    def test_cc_section6_example(self, capsys):
        assert main(["cc", "--json", "abg,bcg,acf,ad,de,ea", "abc"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["canonical_connection"] == "abg,bcg,ac"
        assert payload["irrelevant_relations"] == ["ad", "de", "ae"]
        assert payload["relevant_relations"] == ["abg", "bcg", "acf"]

    def test_lossless_implied(self, capsys):
        assert main(["lossless", "--json", "ab,bc,cd", "ab,bc"]) == 0
        assert json.loads(capsys.readouterr().out)["lossless"] is True

    def test_lossless_not_implied_exits_one(self, capsys):
        assert main(["lossless", "--json", "abc,ab,bc", "ab,bc"]) == 1
        assert json.loads(capsys.readouterr().out)["lossless"] is False

    def test_treefy_cyclic(self, capsys):
        assert main(["treefy", "--json", "ab,bc,cd,da"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["already_tree"] is False
        assert payload["added_relation"] == "abcd"
        assert payload["treefied"].endswith("abcd")

    def test_treefy_tree_schema(self, capsys):
        assert main(["treefy", "--json", "ab,bc"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["already_tree"] is True
        assert payload["added_relation"] is None

    def test_tableau_section6_example(self, capsys):
        assert main(["tableau", "--json", "abg,bcg,acf,ad,de,ea", "abc"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"] == 6
        assert payload["minimal_rows"] == 3
        assert payload["kept_rows"] == [0, 1, 2]
        assert sorted(payload["removed_rows"]) == [3, 4, 5]
        assert payload["canonical_connection"] == "abg,bcg,ac"

    def test_json_with_attribute_separator(self, capsys):
        assert main(
            ["--attribute-separator", " ", "analyze", "--json", "emp dept, dept mgr"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["alpha_acyclic"] is True


class TestParser:
    def test_parser_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_missing_positional_exits_nonzero(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["cc", "ab,bc"])  # target missing

    @pytest.mark.parametrize(
        "command", ["analyze", "cc", "lossless", "treefy", "tableau"]
    )
    def test_every_subcommand_has_json_flag(self, command):
        parser = build_parser()
        argv = {
            "analyze": ["analyze", "--json", "ab"],
            "cc": ["cc", "--json", "ab", "a"],
            "lossless": ["lossless", "--json", "ab", "a"],
            "treefy": ["treefy", "--json", "ab"],
            "tableau": ["tableau", "--json", "ab", "a"],
        }[command]
        arguments = parser.parse_args(argv)
        assert arguments.json is True
        assert arguments.command == command

    def test_json_defaults_to_false(self):
        arguments = build_parser().parse_args(["analyze", "ab,bc"])
        assert arguments.json is False

    def test_prog_name(self):
        assert build_parser().prog == "repro"


class TestQuery:
    def test_random_state_text_output(self, capsys):
        assert main(["query", "ab,bc,cd", "ad", "--random", "15"]) == 0
        output = capsys.readouterr().out
        assert "backend: compiled" in output
        assert "semijoins" in output and "answer" in output

    def test_backend_flag_routes_classic(self, capsys):
        assert main(
            ["query", "ab,bc,cd", "ad", "--random", "10", "--backend", "classic"]
        ) == 0
        assert "backend: classic" in capsys.readouterr().out

    def test_json_reports_backend_and_stats(self, capsys):
        assert main(
            ["query", "ab,bc,cd", "ad", "--random", "10", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "compiled"
        assert payload["semijoin_count"] == 4
        assert payload["join_count"] == 2
        assert payload["compiled_stats"]["slots_encoded"] >= 3
        assert isinstance(payload["result"], list)

    def test_classic_json_has_no_compiled_stats(self, capsys):
        assert main(
            [
                "query", "ab,bc,cd", "ad",
                "--random", "10", "--backend", "classic", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "classic"
        assert "compiled_stats" not in payload

    def test_data_file_state(self, tmp_path, capsys):
        data = tmp_path / "state.json"
        data.write_text(json.dumps([
            [{"a": 1, "b": 2}],
            [{"b": 2, "c": 3}],
            [{"c": 3, "d": 4}],
        ]))
        assert main(["query", "ab,bc,cd", "ad", "--data", str(data), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["result"] == [{"a": 1, "d": 4}]

    def test_batch_of_states(self, capsys):
        assert main(
            ["query", "ab,bc,cd", "ad", "--random", "8", "--states", "4"]
        ) == 0
        output = capsys.readouterr().out
        assert "4 state(s)" in output
        assert "answer sizes" in output

    def test_data_and_random_are_exclusive(self, tmp_path):
        data = tmp_path / "state.json"
        data.write_text("[]")
        with pytest.raises(SystemExit):
            main(["query", "ab,bc", "a", "--data", str(data), "--random", "5"])

    def test_wrong_relation_count_rejected(self, tmp_path):
        data = tmp_path / "state.json"
        data.write_text(json.dumps([[{"a": 1, "b": 2}]]))
        with pytest.raises(SystemExit):
            main(["query", "ab,bc,cd", "ad", "--data", str(data)])

    def test_missing_data_source_rejected(self):
        with pytest.raises(SystemExit):
            main(["query", "ab,bc", "a"])

    def test_states_requires_random(self, tmp_path):
        data = tmp_path / "state.json"
        data.write_text(json.dumps([
            [{"a": 1, "b": 2}],
            [{"b": 2, "c": 3}],
        ]))
        with pytest.raises(SystemExit):
            main(["query", "ab,bc", "a", "--data", str(data), "--states", "3"])


class TestQueryRobustnessFlags:
    def test_robustness_flags_require_parallel_backend(self):
        for flags in (
            ["--shard-timeout", "5"],
            ["--retries", "3"],
            ["--failure-policy", "degrade"],
        ):
            with pytest.raises(SystemExit):
                main(["query", "ab,bc", "a", "--random", "5"] + flags)

    def test_failure_policy_choices_validated_by_parser(self):
        parser = build_parser()
        arguments = parser.parse_args(
            [
                "query", "ab,bc", "a", "--random", "5",
                "--backend", "parallel",
                "--shard-timeout", "5", "--retries", "3",
                "--failure-policy", "degrade",
            ]
        )
        assert arguments.shard_timeout == 5.0
        assert arguments.retries == 3
        assert arguments.failure_policy == "degrade"
        with pytest.raises(SystemExit):
            parser.parse_args(
                [
                    "query", "ab,bc", "a", "--random", "5",
                    "--backend", "parallel", "--failure-policy", "ignore",
                ]
            )

    def test_parallel_json_includes_failure_stats(self, capsys):
        assert main(
            [
                "query", "ab,bc,cd", "ad",
                "--random", "8", "--states", "4",
                "--backend", "parallel", "--workers", "2",
                "--retries", "2", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "parallel"
        failure = payload["parallel_stats"]["failure_stats"]
        assert failure["failure_policy"] == "raise"
        # A healthy run exercises none of the recovery machinery.
        assert failure["respawns"] == 0
        assert failure["quarantined"] == []
        assert set(failure) == {
            "failure_policy", "retries", "respawns", "timeouts",
            "bisections", "fallback_runs", "quarantined", "worker_crashes",
        }
        assert payload["answer_rows"] and all(
            rows is not None for rows in payload["answer_rows"]
        )


class TestCatalogCommand:
    @pytest.fixture(autouse=True)
    def _no_env_catalog(self, monkeypatch):
        monkeypatch.delenv("REPRO_CATALOG_DIR", raising=False)

    def _seed(self, directory, capsys):
        from repro.engine import clear_analysis_cache

        clear_analysis_cache()
        assert main(
            [
                "query", "ab,bc,cd", "ad",
                "--random", "10", "--catalog", str(directory), "--json",
            ]
        ) == 0
        return json.loads(capsys.readouterr().out)

    def test_query_catalog_miss_then_hit(self, tmp_path, capsys):
        from repro.engine import clear_analysis_cache

        first = self._seed(tmp_path / "cat", capsys)
        assert first["catalog_stats"]["misses"] == 1
        assert first["catalog_stats"]["stores"] == 1
        clear_analysis_cache()
        second = self._seed(tmp_path / "cat", capsys)
        assert second["catalog_stats"]["hits"] == 1
        assert second["catalog_stats"]["quarantined"] == 0
        assert second["answer_rows"] == first["answer_rows"]
        assert second["result"] == first["result"]

    def test_query_text_mode_prints_catalog_line(self, tmp_path, capsys):
        from repro.engine import clear_analysis_cache

        clear_analysis_cache()
        assert main(
            [
                "query", "ab,bc,cd", "ad",
                "--random", "10", "--catalog", str(tmp_path / "cat"),
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "catalog:" in output
        assert "1 store(s)" in output

    def test_env_default_catalog_surfaces_stats(self, tmp_path, capsys, monkeypatch):
        from repro.engine import clear_analysis_cache

        monkeypatch.setenv("REPRO_CATALOG_DIR", str(tmp_path / "envcat"))
        clear_analysis_cache()
        assert main(
            ["query", "ab,bc,cd", "ad", "--random", "10", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "catalog_stats" in payload
        assert payload["catalog_stats"]["stores"] >= 1

    def test_catalog_ls_verify_gc_cycle(self, tmp_path, capsys):
        directory = tmp_path / "cat"
        self._seed(directory, capsys)

        assert main(["catalog", "ls", str(directory), "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert len(listing["records"]) == 1
        assert listing["records"][0]["ok"] is True
        assert listing["records"][0]["schema"] == "ab,bc,cd"

        assert main(["catalog", "verify", str(directory)]) == 0
        assert "1 ok" in capsys.readouterr().out

        # Corrupt the record: verify flags (exit 1) and quarantines it.
        import os as _os

        record = next(
            name
            for name in _os.listdir(str(directory))
            if name.endswith(".plan")
        )
        path = str(directory / record)
        with open(path, "r+b") as handle:
            handle.truncate(12)
        assert main(["catalog", "verify", str(directory), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["quarantined"] == [record]

        assert main(["catalog", "gc", str(directory), "--json"]) == 0
        cleaned = json.loads(capsys.readouterr().out)
        assert cleaned["removed_corrupt"] == 1

    def test_catalog_requires_existing_directory(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["catalog", "ls", str(tmp_path / "absent")])

    def test_catalog_parser_accepts_actions(self):
        parser = build_parser()
        for argv in (
            ["catalog", "ls", "d"],
            ["catalog", "verify", "d", "--json"],
            ["catalog", "gc", "d", "--keep", "3"],
        ):
            arguments = parser.parse_args(argv)
            assert arguments.command == "catalog"
