"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestAnalyze:
    def test_tree_schema(self, capsys):
        assert main(["analyze", "ab,bc,cd"]) == 0
        output = capsys.readouterr().out
        assert "tree schema (alpha-acyclic): True" in output
        assert "qual tree" in output

    def test_cyclic_schema_suggests_treefication(self, capsys):
        assert main(["analyze", "ab,bc,ac"]) == 0
        output = capsys.readouterr().out
        assert "tree schema (alpha-acyclic): False" in output
        assert "smallest treefying relation" in output
        assert "abc" in output

    def test_multi_character_attributes(self, capsys):
        assert main(
            ["--attribute-separator", " ", "analyze", "emp dept, dept mgr"]
        ) == 0
        output = capsys.readouterr().out
        assert "tree schema (alpha-acyclic): True" in output


class TestCanonicalConnection:
    def test_section6_example(self, capsys):
        assert main(["cc", "abg,bcg,acf,ad,de,ea", "abc"]) == 0
        output = capsys.readouterr().out
        assert "CC(D, X) = (abg, bcg, ac)" in output
        assert "'ad'" in output and "'de'" in output


class TestLossless:
    def test_implied_case_exits_zero(self, capsys):
        assert main(["lossless", "ab,bc,cd", "ab,bc"]) == 0
        assert "True" in capsys.readouterr().out

    def test_not_implied_case_exits_one(self, capsys):
        assert main(["lossless", "abc,ab,bc", "ab,bc"]) == 1
        assert "False" in capsys.readouterr().out


class TestTreefy:
    def test_cyclic_schema(self, capsys):
        assert main(["treefy", "ab,bc,cd,da"]) == 0
        output = capsys.readouterr().out
        assert "add U(GR(D)) = abcd" in output

    def test_tree_schema(self, capsys):
        assert main(["treefy", "ab,bc"]) == 0
        assert "already a tree schema" in capsys.readouterr().out


def test_parser_requires_a_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])
