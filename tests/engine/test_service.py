"""The streaming query service: routing, admission, affinity, degrade items."""

from __future__ import annotations

import contextlib
import os
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import QueryService, analyze
from repro.engine import faults
from repro.engine.service import StreamItem, estimate_state_bytes
from repro.exceptions import AdmissionError, ShardExecutionError
from repro.hypergraph import (
    DatabaseSchema,
    RelationSchema,
    chain_schema,
    random_tree_schema,
    star_schema,
)
from repro.relational import DatabaseState, Relation

#: Mirrors the strategy of tests/engine/test_parallel.py (the test tree has
#: no packages, so the strategy is restated rather than imported).
VALUES = st.one_of(
    st.integers(-3, 6),
    st.sampled_from([1.0, 2.5, -1.0, True, False, "a", "b", "v1", None]),
)


def _build_schema(family: str, size: int, seed: int) -> DatabaseSchema:
    if family == "chain":
        return chain_schema(size)
    if family == "star":
        return star_schema(max(size, 2))
    return random_tree_schema(size, rng=seed)


@st.composite
def tree_instances(draw, max_states: int = 1):
    family = draw(st.sampled_from(["chain", "star", "random-tree"]))
    size = draw(st.integers(1, 4))
    schema = _build_schema(family, size, draw(st.integers(0, 10**6)))
    attrs = schema.attributes.sorted_attributes()
    target = RelationSchema(
        draw(st.sets(st.sampled_from(list(attrs)), max_size=min(3, len(attrs))))
    )

    def draw_state() -> DatabaseState:
        relations = []
        for relation_schema in schema.relations:
            width = len(relation_schema.sorted_attributes())
            rows = draw(
                st.lists(st.tuples(*([VALUES] * width)), min_size=0, max_size=5)
            )
            relations.append(Relation(relation_schema, rows))
        return DatabaseState(schema, relations)

    states = [draw_state()]
    while len(states) < max_states:
        if draw(st.booleans()):
            states.append(states[draw(st.integers(0, len(states) - 1))])
        else:
            states.append(draw_state())
    return schema, target, states


def _states(schema, count, *, rows=3, salt=0):
    return [
        DatabaseState(
            schema,
            [
                Relation(
                    relation,
                    [(i + salt + index, i + salt + index + 1) for i in range(rows)],
                )
                for relation in schema.relations
            ],
        )
        for index in range(count)
    ]


@pytest.fixture()
def prepared():
    schema = chain_schema(3)
    return analyze(schema).prepare(RelationSchema({"x0", "x3"}))


@pytest.fixture(scope="module")
def service():
    with QueryService(workers=2) as shared:
        yield shared


@contextlib.contextmanager
def _poison_armed(mode="always"):
    saved = os.environ.pop(faults.ENV_POISON, None)
    os.environ[faults.ENV_POISON] = mode
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop(faults.ENV_POISON, None)
        else:
            os.environ[faults.ENV_POISON] = saved


class TestEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(tree_instances(max_states=5))
    def test_submit_auto_matches_classic(self, service, instance):
        schema, target, states = instance
        prepared = analyze(schema).prepare(target)
        classic = prepared.execute_many(states, backend="classic")
        handle = service.submit(prepared, states)
        runs = handle.result(timeout=120)
        assert [run.result for run in runs] == [run.result for run in classic]
        assert handle.decision.backend in ("compiled", "parallel")
        assert handle.done()

    @settings(max_examples=8, deadline=None)
    @given(tree_instances(max_states=4))
    def test_submit_parallel_override_matches_classic(self, service, instance):
        schema, target, states = instance
        prepared = analyze(schema).prepare(target)
        classic = prepared.execute_many(states, backend="classic")
        handle = service.submit(prepared, states, backend="parallel")
        runs = handle.result(timeout=120)
        assert [run.result for run in runs] == [run.result for run in classic]
        assert handle.decision.backend == "parallel"
        assert handle.decision.rule in ("override", "override-degenerate")
        assert all(run.backend == "parallel" for run in runs)

    @settings(max_examples=15, deadline=None)
    @given(tree_instances(max_states=6))
    def test_stream_indices_reassemble_to_classic(self, service, instance):
        schema, target, states = instance
        prepared = analyze(schema).prepare(target)
        classic = prepared.execute_many(states, backend="classic")
        streamed = service.stream(prepared, states)
        items = list(streamed)
        assert sorted(item.index for item in items) == list(range(len(states)))
        assert all(item.ok for item in items)
        by_index = {item.index: item.run for item in items}
        assert [by_index[i].result for i in range(len(states))] == [
            run.result for run in classic
        ]

    def test_execute_many_is_submit_plus_result(self, service, prepared):
        states = _states(prepared.schema, 3)
        runs = service.execute_many(prepared, states)
        classic = prepared.execute_many(states, backend="classic")
        assert [run.result for run in runs] == [run.result for run in classic]


class TestRouting:
    def test_classic_override_honored(self, service, prepared):
        states = _states(prepared.schema, 3)
        handle = service.submit(prepared, states, backend="classic")
        runs = handle.result(timeout=60)
        assert handle.decision.backend == "classic"
        assert handle.decision.rule == "override"
        assert handle.transport == "none"
        assert all(run.backend == "classic" for run in runs)

    def test_auto_routes_thin_batch_in_process(self, service, prepared):
        # 3 tiny states sit far under min_parallel_states: the small-batch
        # gate keeps them on the compiled backend without probing timing
        # (tiny states never upgrade to the vectorized kernel).
        states = _states(prepared.schema, 3)
        handle = service.submit(prepared, states)
        handle.result(timeout=60)
        assert handle.decision.backend == "compiled"
        assert handle.decision.rule == "small-batch"
        assert service.stats.backends.get("compiled", 0) >= 1

    def test_degenerate_parallel_override_stays_in_process(self, service, prepared):
        state = _states(prepared.schema, 1)[0]
        handle = service.submit(prepared, [state, state], backend="parallel")
        runs = handle.result(timeout=60)
        assert handle.decision.rule == "override-degenerate"
        assert runs[0].stats.workers == 0
        assert runs[0].stats.routed_in_process == 1

    def test_decisions_recorded_in_stats(self, prepared):
        with QueryService(workers=2) as fresh:
            fresh.execute_many(prepared, _states(prepared.schema, 2))
            fresh.execute_many(
                prepared, _states(prepared.schema, 2), backend="classic"
            )
            stats = fresh.stats.as_dict()
        assert stats["submitted_batches"] == 2
        assert stats["submitted_states"] == 4
        assert stats["rules"].get("override") == 1


class TestStreamingOverlap:
    def test_stream_yields_before_final_shard_completes(self, prepared):
        """The acceptance property: at least one item arrives while another
        shard is still executing (i.e. streaming is not a batch barrier)."""
        schema = prepared.schema
        fast = _states(schema, 6)
        blocker = _states(schema, 1, salt=1000)[0]
        entered = threading.Event()
        release = threading.Event()

        with QueryService(workers=2) as svc:
            original = svc._execute_batch

            def gated(prepared_arg, states_arg, *args, **kwargs):
                if blocker in states_arg:
                    entered.set()
                    # Block *before* any lock is taken so other shards keep
                    # flowing through the in-process path.
                    assert release.wait(timeout=60)
                return original(prepared_arg, states_arg, *args, **kwargs)

            svc._execute_batch = gated
            streamed = svc.stream(prepared, fast + [blocker], backend="classic")
            assert streamed.shard_count >= 2
            iterator = iter(streamed)
            # Consume items while the blocker shard is held at its gate (or
            # not yet dispatched — lazy dispatch is itself backpressure).
            # Stop before the only outstanding shard is the gated one, so
            # the iterator never blocks on a shard we have to release.
            early = []
            for item in iterator:
                early.append(item)
                if entered.is_set() or len(early) >= len(fast):
                    break
            # Items arrived while the final shard had provably not
            # completed: its gate never released.
            assert not release.is_set()
            assert len(early) >= 1
            assert all(item.index != 6 for item in early)
            release.set()
            rest = list(iterator)
            assert entered.is_set()
        indices = sorted(item.index for item in early + rest)
        assert indices == list(range(7))

    def test_stream_items_carry_input_positions_for_duplicates(
        self, service, prepared
    ):
        state_a, state_b = _states(prepared.schema, 2)
        batch = [state_a, state_b, state_a, state_a]
        items = list(service.stream(prepared, batch))
        assert sorted(item.index for item in items) == [0, 1, 2, 3]
        expected = prepared.execute_many(batch, backend="classic")
        by_index = {item.index: item.run for item in items}
        for position, run in enumerate(expected):
            assert by_index[position].result == run.result


class TestAdmission:
    def test_oversized_submission_rejected_immediately(self, prepared):
        states = _states(prepared.schema, 3)
        with QueryService(workers=2, max_inflight_states=2) as svc:
            with pytest.raises(AdmissionError) as excinfo:
                svc.submit(prepared, states)
            error = excinfo.value
            assert error.requested_states == 3
            assert error.inflight_states == 0
            assert error.requested_bytes > 0
            assert svc.stats.admission_rejections == 1

    def test_oversized_bytes_rejected_immediately(self, prepared):
        states = _states(prepared.schema, 2, rows=6)
        nbytes = sum(estimate_state_bytes(state) for state in states)
        with QueryService(workers=2, max_inflight_bytes=nbytes - 1) as svc:
            with pytest.raises(AdmissionError) as excinfo:
                svc.submit(prepared, states)
            assert excinfo.value.requested_bytes == nbytes

    def test_wait_false_rejects_when_full(self, prepared):
        states = _states(prepared.schema, 2)
        with QueryService(workers=2, max_inflight_states=2) as svc:
            svc._admit(2, 64, wait=True, timeout=None)
            try:
                with pytest.raises(AdmissionError) as excinfo:
                    svc.submit(prepared, states[:1], wait=False)
                assert excinfo.value.inflight_states == 2
            finally:
                svc._release(2, 64)
            # Capacity restored: the same submission now sails through.
            svc.execute_many(prepared, states[:1])

    def test_wait_timeout_raises(self, prepared):
        states = _states(prepared.schema, 1)
        with QueryService(workers=2, max_inflight_states=1) as svc:
            svc._admit(1, 64, wait=True, timeout=None)
            try:
                with pytest.raises(AdmissionError, match="timed out"):
                    svc.submit(prepared, states, timeout=0.05)
                assert svc.stats.admission_waits >= 1
            finally:
                svc._release(1, 64)

    def test_admission_released_after_completion(self, service, prepared):
        states = _states(prepared.schema, 2)
        handle = service.submit(prepared, states)
        handle.result(timeout=60)
        # The done-callback releases asynchronously; give it a beat.
        for _ in range(100):
            if service.inflight == (0, 0):
                break
            threading.Event().wait(0.01)
        assert service.inflight == (0, 0)

    def test_stream_shards_respect_max_inflight_states(self, prepared):
        states = _states(prepared.schema, 7)
        with QueryService(workers=2, max_inflight_states=2) as svc:
            streamed = svc.stream(prepared, states, backend="classic")
            # Every shard must individually fit the admission window.
            assert streamed.shard_count >= 4
            items = list(streamed)
        assert sorted(item.index for item in items) == list(range(7))


class TestDegrade:
    def test_degrade_streams_typed_error_items(self, prepared):
        schema = prepared.schema
        good = _states(schema, 3)
        poison = DatabaseState(
            schema,
            [
                Relation(relation, [(faults.POISON_VALUE, 1), (2, 3)])
                for relation in schema.relations
            ],
        )
        batch = good + [poison]
        with _poison_armed("always"):
            with QueryService(workers=2, failure_policy="degrade") as svc:
                items = list(
                    svc.stream(prepared, batch, backend="parallel")
                )
        assert sorted(item.index for item in items) == [0, 1, 2, 3]
        by_index = {item.index: item for item in items}
        bad = by_index[3]
        assert not bad.ok
        assert bad.run is None
        assert isinstance(bad.error, faults.InjectedFault)
        for position in range(3):
            assert by_index[position].ok
            assert by_index[position].run is not None

    def test_raise_policy_propagates_through_stream(self, prepared):
        schema = prepared.schema
        good = _states(schema, 2)
        poison = DatabaseState(
            schema,
            [
                Relation(relation, [(faults.POISON_VALUE, 1), (2, 3)])
                for relation in schema.relations
            ],
        )
        with _poison_armed("always"):
            with QueryService(workers=2) as svc:
                with pytest.raises(ShardExecutionError):
                    list(svc.stream(prepared, good + [poison], backend="parallel"))


class TestAffinity:
    def test_repeat_submissions_share_one_pinned_pool(self, prepared):
        states = _states(prepared.schema, 3)
        with QueryService(workers=2) as svc:
            for _ in range(3):
                svc.execute_many(prepared, states, backend="parallel")
            assert svc.pinned_pool_count() == 1
            assert svc.stats.pool_evictions == 0

    def test_pool_eviction_is_bounded_and_counted(self):
        schema_a = chain_schema(3)
        schema_b = chain_schema(4)
        prepared_a = analyze(schema_a).prepare(RelationSchema({"x0", "x3"}))
        prepared_b = analyze(schema_b).prepare(RelationSchema({"x0", "x4"}))
        with QueryService(workers=2, max_pinned_pools=1) as svc:
            svc.execute_many(
                prepared_a, _states(schema_a, 2), backend="parallel"
            )
            svc.execute_many(
                prepared_b, _states(schema_b, 2), backend="parallel"
            )
            assert svc.pinned_pool_count() == 1
            assert svc.stats.pool_evictions == 1
            # The evicted spec comes straight back on demand.
            svc.execute_many(
                prepared_a, _states(schema_a, 2), backend="parallel"
            )
            assert svc.stats.pool_evictions == 2


class TestLifecycle:
    def test_closed_service_refuses_submissions(self, prepared):
        svc = QueryService(workers=2)
        svc.close()
        with pytest.raises(RuntimeError, match="closed"):
            svc.submit(prepared, _states(prepared.schema, 2))
        assert not svc.healthy
        svc.close()  # idempotent

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="max_inflight_states"):
            QueryService(max_inflight_states=0)
        with pytest.raises(ValueError, match="max_inflight_bytes"):
            QueryService(max_inflight_bytes=0)
        with pytest.raises(ValueError, match="max_pinned_pools"):
            QueryService(max_pinned_pools=0)
        with pytest.raises(ValueError, match="stream_shards_per_worker"):
            QueryService(stream_shards_per_worker=0)

    def test_stream_metadata_surface(self, service, prepared):
        streamed = service.stream(prepared, _states(prepared.schema, 4))
        assert streamed.decision.backend in ("compiled", "parallel")
        assert streamed.transport in ("none", "pickle", "shm")
        assert streamed.shard_count >= 1
        list(streamed)

    def test_stream_item_repr_fields(self):
        item = StreamItem(index=2)
        assert item.ok
        failed = StreamItem(index=1, error=RuntimeError("x"))
        assert not failed.ok


class TestDrainingClose:
    def test_close_drain_finishes_inflight_handles(self, prepared):
        svc = QueryService(workers=2)
        states = _states(prepared.schema, 6)
        handles = [
            svc.submit(prepared, states, backend="classic") for _ in range(4)
        ]
        svc.close(drain=True)
        expected = prepared.execute_many(states, backend="classic")
        for handle in handles:
            runs = handle.result(timeout=30)
            assert [run.result for run in runs] == [
                run.result for run in expected
            ]
        with pytest.raises(RuntimeError, match="closed"):
            svc.submit(prepared, states)

    def test_close_drain_finishes_inflight_parallel_batch(self, prepared):
        svc = QueryService(workers=2)
        states = _states(prepared.schema, 4)
        handle = svc.submit(prepared, states, backend="parallel")
        svc.close(drain=True)
        runs = handle.result(timeout=60)
        expected = prepared.execute_many(states, backend="classic")
        assert [run.result for run in runs] == [run.result for run in expected]

    def test_close_without_drain_cancels_pending(self, prepared):
        svc = QueryService(workers=2)
        states = _states(prepared.schema, 2)
        handles = [
            svc.submit(prepared, states, backend="classic") for _ in range(16)
        ]
        svc.close(drain=False)
        from concurrent.futures import CancelledError

        finished = cancelled = 0
        for handle in handles:
            try:
                error = handle.exception(timeout=30)
            except CancelledError:
                cancelled += 1
                continue
            if error is None:
                finished += 1
            else:
                cancelled += 1
        # Every handle resolves one way or the other; nothing hangs.
        assert finished + cancelled == len(handles)
        with pytest.raises(RuntimeError, match="closed"):
            svc.submit(prepared, states)

    def test_close_default_is_drain(self, prepared):
        svc = QueryService(workers=2)
        handle = svc.submit(
            prepared, _states(prepared.schema, 3), backend="classic"
        )
        svc.close()
        assert handle.result(timeout=30) is not None


class TestCatalogIntegration:
    def test_catalog_stats_threaded_through_service_stats(self, tmp_path, prepared):
        from repro.engine.catalog import PlanCatalog

        catalog = PlanCatalog(str(tmp_path))
        with QueryService(workers=2, catalog=catalog) as svc:
            assert svc.catalog is catalog
            assert svc.stats.catalog is catalog.stats
            snapshot = svc.stats.as_dict()["catalog"]
            assert snapshot == catalog.stats.as_dict()
            assert set(snapshot) >= {"hits", "misses", "quarantined", "degraded"}

    def test_no_catalog_reports_none(self, prepared):
        with QueryService(workers=2) as svc:
            assert svc.catalog is None
            assert svc.stats.as_dict()["catalog"] is None

    def test_catalog_accepts_directory_path(self, tmp_path):
        with QueryService(workers=2, catalog=str(tmp_path / "cat")) as svc:
            assert svc.catalog is not None
            assert svc.catalog.directory == str(tmp_path / "cat")
