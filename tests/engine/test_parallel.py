"""The sharded multi-process executor: parallel ≡ classic, order, lifecycle.

The pool is expensive relative to the tiny hypothesis states, so the whole
module shares one two-worker :class:`~repro.engine.ParallelExecutor`; that is
also the realistic serving shape (one long-lived pool, many batches) and what
makes the at-most-once-compile-per-worker property observable across calls.
"""

from __future__ import annotations

import pickle
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import (
    ParallelExecutor,
    ParallelStats,
    PlanSpec,
    analyze,
    prepared_from_spec,
)
from repro.engine.parallel import (
    plan_shards,
    resolve_failure_policy,
    resolve_max_retries,
    resolve_shard_timeout,
    resolve_worker_count,
)
from repro.hypergraph import (
    DatabaseSchema,
    RelationSchema,
    chain_schema,
    random_tree_schema,
    star_schema,
)
from repro.relational import DatabaseState, Relation

#: Mirrors the strategy of tests/relational/test_compiled_equivalence.py (the
#: test tree has no packages, so the strategy is restated rather than
#: imported): values span the numeric tower plus strings and None, states may
#: be empty, dangling, or repeated verbatim.
VALUES = st.one_of(
    st.integers(-3, 6),
    st.sampled_from([1.0, 2.5, -1.0, True, False, "a", "b", "v1", None]),
)


def _build_schema(family: str, size: int, seed: int) -> DatabaseSchema:
    if family == "chain":
        return chain_schema(size)
    if family == "star":
        return star_schema(max(size, 2))
    return random_tree_schema(size, rng=seed)


@st.composite
def tree_instances(draw, max_states: int = 1):
    """A tree schema, a target, and up to ``max_states`` random states."""
    family = draw(st.sampled_from(["chain", "star", "random-tree"]))
    size = draw(st.integers(1, 5))
    schema = _build_schema(family, size, draw(st.integers(0, 10**6)))
    attrs = schema.attributes.sorted_attributes()
    target = RelationSchema(
        draw(st.sets(st.sampled_from(list(attrs)), max_size=min(3, len(attrs))))
    )

    def draw_state() -> DatabaseState:
        relations = []
        for relation_schema in schema.relations:
            width = len(relation_schema.sorted_attributes())
            rows = draw(
                st.lists(st.tuples(*([VALUES] * width)), min_size=0, max_size=6)
            )
            relations.append(Relation(relation_schema, rows))
        return DatabaseState(schema, relations)

    states = [draw_state()]
    while len(states) < max_states:
        if draw(st.booleans()):
            states.append(states[draw(st.integers(0, len(states) - 1))])
        else:
            states.append(draw_state())
    return schema, target, states


@pytest.fixture(scope="module")
def pool():
    with ParallelExecutor(workers=2) as executor:
        yield executor


def _assert_parallel_matches_classic(classic_runs, parallel_runs) -> None:
    assert len(classic_runs) == len(parallel_runs)
    for classic, parallel in zip(classic_runs, parallel_runs):
        assert parallel.result == classic.result
        assert parallel.semijoin_count == classic.semijoin_count
        assert parallel.join_count == classic.join_count
        assert parallel.max_intermediate_size == classic.max_intermediate_size
        assert classic.backend == "classic"
        assert parallel.backend == "parallel"


class TestParallelEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(tree_instances(max_states=6))
    def test_parallel_matches_classic_in_input_order(self, pool, instance):
        """Random tree schemas/states (empty relations, dangling tuples,
        mixed value types, repeated states): parallel ≡ classic, and the
        ``i``-th run answers the ``i``-th input state."""
        schema, target, states = instance
        prepared = analyze(schema).prepare(target)
        classic_runs = prepared.execute_many(states, backend="classic")
        parallel_runs = pool.execute_many(prepared, states)
        _assert_parallel_matches_classic(classic_runs, parallel_runs)

    @settings(max_examples=10, deadline=None)
    @given(tree_instances(max_states=3))
    def test_one_shot_backend_kwarg(self, instance):
        """``execute_many(backend="parallel", workers=N)`` without a reusable
        executor: same answers, one-shot pool per call."""
        schema, target, states = instance
        prepared = analyze(schema).prepare(target)
        classic_runs = prepared.execute_many(states, backend="classic")
        parallel_runs = prepared.execute_many(
            states, backend="parallel", workers=2
        )
        _assert_parallel_matches_classic(classic_runs, parallel_runs)

    def test_duplicate_states_deduped_and_aligned(self, pool):
        schema = chain_schema(3)
        target = RelationSchema({"x0", "x3"})
        prepared = analyze(schema).prepare(target)
        base = [
            DatabaseState(
                schema,
                [
                    Relation(relation, [(i, i + offset) for i in range(4)])
                    for relation in schema.relations
                ],
            )
            for offset in (1, 2)
        ]
        states = [base[0], base[1], base[0], base[0], base[1]]
        runs = pool.execute_many(prepared, states)
        classic = prepared.execute_many(states, backend="classic")
        _assert_parallel_matches_classic(classic, runs)
        stats = runs[0].stats
        assert stats.deduped_states == 3
        assert stats.states == 2
        # Duplicate inputs share the duplicate's run object outright.
        assert runs[2] is runs[0] and runs[3] is runs[0] and runs[4] is runs[1]

    def test_empty_batch_and_empty_schema(self, pool):
        schema = chain_schema(2)
        prepared = analyze(schema).prepare(RelationSchema({"x0"}))
        assert pool.execute_many(prepared, []) == []

        from repro.engine import PreparedQuery
        from repro.hypergraph import parse_schema

        empty = PreparedQuery(parse_schema(""), RelationSchema(()))
        empty_state = DatabaseState(parse_schema(""), [])
        runs = pool.execute_many(empty, [empty_state, empty_state])
        assert len(runs) == 2
        assert runs[0].backend == "parallel"
        assert len(runs[0].result) == 1  # nullary true
        # Stats accounting must hold on the empty schema too.
        stats = runs[0].stats
        assert stats.states + stats.deduped_states == 2
        assert stats.states == 1 and stats.deduped_states == 1

    def test_execute_rejects_parallel(self):
        schema = chain_schema(2)
        prepared = analyze(schema).prepare(RelationSchema({"x0"}))
        state = DatabaseState(
            schema, [Relation(relation, []) for relation in schema.relations]
        )
        with pytest.raises(ValueError, match="execute_many"):
            prepared.execute(state, backend="parallel")
        with pytest.raises(ValueError, match="workers"):
            prepared.execute_many([state], backend="classic", workers=2)


class TestStatsAndCompileCounts:
    def _states(self, schema, count, *, salt=0):
        return [
            DatabaseState(
                schema,
                [
                    Relation(
                        relation,
                        [
                            (i + salt + index, i + salt + index + 1)
                            for i in range(3 + index % 3)
                        ],
                    )
                    for relation in schema.relations
                ],
            )
            for index in range(count)
        ]

    def test_shared_merged_stats_with_per_worker_attribution(self, pool):
        schema = chain_schema(4)
        prepared = analyze(schema).prepare(RelationSchema({"x0", "x4"}))
        states = self._states(schema, 10)
        runs = pool.execute_many(prepared, states)
        stats = runs[0].stats
        assert isinstance(stats, ParallelStats)
        assert all(run.stats is stats for run in runs)
        assert stats.workers == 2
        assert stats.states + stats.deduped_states == len(states)
        assert sum(stats.shard_sizes) == stats.states
        assert stats.shard_count == len(stats.shard_sizes)
        # Per-worker attribution is a partition of the batch totals.
        assert sum(info["states"] for info in stats.per_worker.values()) == stats.states
        assert (
            sum(info["shards"] for info in stats.per_worker.values())
            == stats.shard_count
        )
        assert (
            sum(info["encoded_slots"] for info in stats.per_worker.values())
            == stats.encoded_slots
        )

    def test_plan_compiled_at_most_once_per_worker(self):
        """The call-count property: across repeated batches on one pool, a
        given PlanSpec is compiled at most once per worker process."""
        schema = chain_schema(5)
        prepared = analyze(schema).prepare(RelationSchema({"x0", "x5"}))
        compiles_by_pid: Counter = Counter()
        respawns = 0
        with ParallelExecutor(workers=2) as executor:
            for round_index in range(4):
                states = self._states(schema, 8, salt=100 * round_index)
                runs = executor.execute_many(prepared, states)
                for pid, info in runs[0].stats.per_worker.items():
                    compiles_by_pid[pid] += info["plan_compiles"]
                respawns += runs[0].stats.respawns
        assert compiles_by_pid, "no workers reported"
        assert all(count <= 1 for count in compiles_by_pid.values()), compiles_by_pid
        # Pool width, plus a fresh set of workers per supervised respawn
        # (respawns only happen under the chaos CI job's injected faults).
        assert sum(compiles_by_pid.values()) <= 2 * (1 + respawns)


class TestPlanSpec:
    def test_spec_round_trip_hits_analysis_lru(self):
        schema = chain_schema(3)
        prepared = analyze(schema).prepare(RelationSchema({"x0", "x3"}))
        spec = prepared.plan_spec()
        unpickled = pickle.loads(pickle.dumps(spec))
        assert unpickled == spec
        assert hash(unpickled) == hash(spec)
        # Same process, warm LRU: the round-trip returns the *same* object,
        # compiled plan included — no duplicate analysis, no duplicate plan.
        assert prepared_from_spec(unpickled) is prepared

    def test_spec_distinguishes_relation_order(self):
        forward = DatabaseSchema([RelationSchema("ab"), RelationSchema("bc")])
        backward = DatabaseSchema([RelationSchema("bc"), RelationSchema("ab")])
        target = RelationSchema("ac")
        first = analyze(forward).prepare(target).plan_spec()
        second = analyze(backward).prepare(target).plan_spec()
        assert first != second  # positional identity, multiset-equal schemas

    def test_spec_carries_interner_cap(self):
        schema = chain_schema(2)
        prepared = analyze(schema).prepare(RelationSchema({"x0"}))
        prepared.reset_compiled()
        prepared.compiled.max_interned_values = 7
        assert prepared.plan_spec().max_interned_values == 7
        assert PlanSpec.of(prepared).describe()

    def test_spec_cap_seeds_fresh_plans_only(self):
        """The cap configures a plan the worker builds; a resident plan
        (shared via the analysis LRU with a cap-only-different spec) keeps
        the policy it was built with."""
        from dataclasses import replace as dc_replace

        from repro.engine.parallel import (
            _plan_for_spec,
            _serial_plan,
            _worker_plans,
        )

        schema = chain_schema(2)
        prepared = analyze(schema).prepare(RelationSchema({"x0", "x2"}))
        prepared.reset_compiled()
        spec = prepared.plan_spec()
        first = dc_replace(spec, max_interned_values=None)
        second = dc_replace(spec, max_interned_values=11)
        _worker_plans.pop(first, None)
        _worker_plans.pop(second, None)
        try:
            plan_a, compiled_a = _plan_for_spec(first)
            assert compiled_a == 1
            serial_a = _serial_plan(plan_a, spec.serial_backend)
            assert serial_a.max_interned_values is None
            plan_b, _ = _plan_for_spec(second)
            # Same resident plan; the later spec must not overwrite its policy.
            serial_b = _serial_plan(plan_b, spec.serial_backend)
            assert serial_b is serial_a
            assert serial_b.max_interned_values is None
        finally:
            _worker_plans.pop(first, None)
            _worker_plans.pop(second, None)
            prepared.reset_compiled()

    def test_spec_of_unbuilt_plan_uses_default_cap(self):
        from repro.relational.compiled import DEFAULT_MAX_INTERNED_VALUES

        schema = chain_schema(2)
        prepared = analyze(schema).prepare(RelationSchema({"x1"}))
        prepared.reset_compiled()
        assert prepared.plan_spec().max_interned_values == DEFAULT_MAX_INTERNED_VALUES

    def test_non_canonical_tree_has_no_spec(self):
        """A query planned over an explicit non-canonical qual tree cannot be
        shipped to workers: re-planning would change the run accounting."""
        from repro.engine import PreparedQuery
        from repro.hypergraph.qual_graph import QualGraph

        schema = DatabaseSchema(
            [RelationSchema("ab"), RelationSchema("b"), RelationSchema("bc")]
        )
        canonical = analyze(schema).qual_tree
        # A different valid qual tree over the same schema (x_b is shared by
        # all three relations, so any tree over {0,1,2} qualifies).
        all_trees = [
            QualGraph(schema, edges)
            for edges in ([(0, 1), (1, 2)], [(0, 1), (0, 2)], [(0, 2), (1, 2)])
        ]
        other = next(
            tree for tree in all_trees if tree.edges != canonical.edges
        )
        custom = PreparedQuery(schema, RelationSchema("ac"), tree=other)
        with pytest.raises(ValueError, match="non-canonical"):
            custom.plan_spec()
        # An explicit tree that *matches* the canonical one is fine.
        same = PreparedQuery(
            schema, RelationSchema("ac"), tree=QualGraph(schema, canonical.edges)
        )
        assert same.plan_spec() == analyze(schema).prepare(RelationSchema("ac")).plan_spec()


class TestShardPlanner:
    def test_partition_and_order(self):
        costs = [5, 1, 9, 2, 2, 7]
        shards = plan_shards(costs, 3)
        flat = sorted(index for shard in shards for index in shard)
        assert flat == list(range(len(costs)))
        for shard in shards:
            assert shard == sorted(shard)

    def test_largest_first_balances(self):
        # One heavy item must not drag light ones into its shard.
        costs = [100, 1, 1, 1, 1, 1]
        shards = plan_shards(costs, 2)
        heavy = next(shard for shard in shards if 0 in shard)
        assert heavy == [0]

    def test_degenerate_inputs(self):
        assert plan_shards([], 4) == []
        assert plan_shards([3], 4) == [[0]]
        assert plan_shards([1, 2, 3], 1) == [[0, 1, 2]]
        with pytest.raises(ValueError):
            plan_shards([1], 0)

    def test_zero_cost_items_still_spread(self):
        shards = plan_shards([0, 0, 0, 0], 2)
        assert len(shards) == 2
        assert sorted(len(shard) for shard in shards) == [2, 2]


class TestWorkerResolution:
    def test_env_cap_clamps(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_MAX_WORKERS", "2")
        assert resolve_worker_count(8) == 2
        assert resolve_worker_count(1) == 1
        assert resolve_worker_count(None) <= 2

    def test_invalid_requests_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_worker_count(0)
        monkeypatch.setenv("REPRO_PARALLEL_MAX_WORKERS", "zebra")
        with pytest.raises(ValueError):
            resolve_worker_count(4)
        # A cap of 0 is a misconfiguration, not "no cap".
        monkeypatch.setenv("REPRO_PARALLEL_MAX_WORKERS", "0")
        with pytest.raises(ValueError):
            resolve_worker_count(4)

    def test_fork_default_is_linux_only(self, monkeypatch):
        from repro.engine.parallel import resolve_start_method

        monkeypatch.setattr("repro.engine.parallel.sys.platform", "darwin")
        assert resolve_start_method() == "spawn"
        monkeypatch.setattr("repro.engine.parallel.sys.platform", "linux")
        assert resolve_start_method() in ("fork", "spawn")  # fork where available
        with pytest.raises(ValueError):
            resolve_start_method("not-a-method")

    def test_shard_timeout_env_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_SHARD_TIMEOUT", raising=False)
        assert resolve_shard_timeout(None) is None
        assert resolve_shard_timeout(2.5) == 2.5
        monkeypatch.setenv("REPRO_PARALLEL_SHARD_TIMEOUT", "7.5")
        assert resolve_shard_timeout(None) == 7.5
        assert resolve_shard_timeout(1.0) == 1.0  # explicit beats env
        monkeypatch.setenv("REPRO_PARALLEL_SHARD_TIMEOUT", "soon")
        with pytest.raises(ValueError):
            resolve_shard_timeout(None)
        with pytest.raises(ValueError):
            resolve_shard_timeout(0)

    def test_max_retries_env_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_MAX_RETRIES", raising=False)
        assert resolve_max_retries(None) == 2  # documented default
        assert resolve_max_retries(0) == 0
        monkeypatch.setenv("REPRO_PARALLEL_MAX_RETRIES", "5")
        assert resolve_max_retries(None) == 5
        assert resolve_max_retries(1) == 1  # explicit beats env
        monkeypatch.setenv("REPRO_PARALLEL_MAX_RETRIES", "many")
        with pytest.raises(ValueError):
            resolve_max_retries(None)
        with pytest.raises(ValueError):
            resolve_max_retries(-1)

    def test_failure_policy_validation(self):
        assert resolve_failure_policy("raise") == "raise"
        assert resolve_failure_policy("degrade") == "degrade"
        with pytest.raises(ValueError, match="failure_policy"):
            resolve_failure_policy("ignore")
        with pytest.raises(ValueError, match="failure_policy"):
            ParallelExecutor(workers=1, failure_policy="ignore")

    def test_healthy_and_restarts_introspection(self):
        executor = ParallelExecutor(workers=1)
        # Not yet started: healthy (the next batch spawns the pool).
        assert executor.healthy
        assert executor.restarts == 0
        executor.ensure_started()
        assert executor.healthy
        executor.close()
        assert not executor.healthy
        # close() stays idempotent after the pool is gone.
        executor.close()
        assert executor.restarts == 0

    def test_serial_backends_reject_robustness_kwargs(self):
        schema = chain_schema(2)
        prepared = analyze(schema).prepare(RelationSchema({"x0"}))
        state = DatabaseState(
            schema, [Relation(relation, []) for relation in schema.relations]
        )
        for kwargs in (
            {"shard_timeout": 1.0},
            {"max_retries": 1},
            {"failure_policy": "degrade"},
        ):
            with pytest.raises(ValueError, match="parallel"):
                prepared.execute_many([state], backend="compiled", **kwargs)

    def test_closed_executor_rejects_work(self):
        executor = ParallelExecutor(workers=1)
        executor.close()
        schema = chain_schema(2)
        prepared = analyze(schema).prepare(RelationSchema({"x0"}))
        state = DatabaseState(
            schema, [Relation(relation, []) for relation in schema.relations]
        )
        with pytest.raises(RuntimeError):
            executor.execute_many(prepared, [state])

    def test_executor_workers_kwarg_conflict(self, pool):
        schema = chain_schema(2)
        prepared = analyze(schema).prepare(RelationSchema({"x0"}))
        state = DatabaseState(
            schema, [Relation(relation, []) for relation in schema.relations]
        )
        with pytest.raises(ValueError, match="executor"):
            prepared.execute_many([state], executor=pool, workers=3)
        runs = prepared.execute_many([state], executor=pool)
        assert runs[0].backend == "parallel"

    def test_explicit_serial_backend_refuses_executor(self, pool):
        """backend='compiled'/'classic' must not be silently upgraded to the
        pool an executor provides (only 'parallel' and 'auto' opt in)."""
        schema = chain_schema(2)
        prepared = analyze(schema).prepare(RelationSchema({"x0"}))
        state = DatabaseState(
            schema, [Relation(relation, []) for relation in schema.relations]
        )
        for backend in ("compiled", "classic"):
            with pytest.raises(ValueError, match="executor"):
                prepared.execute_many([state], backend=backend, executor=pool)
