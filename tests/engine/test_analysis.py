"""Tests for the engine façade: ``analyze`` and :class:`AnalyzedSchema`."""

from __future__ import annotations

import pytest

from repro import analyze, clear_analysis_cache
from repro.engine import AnalyzedSchema, analysis_cache_size
from repro.engine.analysis import _ANALYSIS_CACHE_MAX
from repro.exceptions import NotATreeSchemaError, SchemaError
from repro.hypergraph import (
    RelationSchema,
    chain_schema,
    find_qual_tree,
    gyo_reduce,
    is_beta_acyclic,
    is_berge_acyclic,
    is_gamma_acyclic,
    is_tree_schema,
    parse_schema,
    star_schema,
)
from repro.tableau.canonical import canonical_connection_result
from repro.treefication import single_relation_treefication


class TestAnalyzeEntryPoint:
    def test_accepts_schema_notation_text(self):
        analysis = analyze("ab,bc,cd")
        assert isinstance(analysis, AnalyzedSchema)
        assert analysis.schema == parse_schema("ab,bc,cd")

    def test_accepts_attribute_separator(self):
        analysis = analyze("emp dept, dept mgr", attribute_separator=" ")
        assert len(analysis.schema.attributes) == 3

    def test_returns_cached_instance_for_equal_schema(self):
        clear_analysis_cache()
        first = analyze(chain_schema(3))
        second = analyze(chain_schema(3))
        assert first is second

    def test_cache_is_order_sensitive(self):
        # DatabaseSchema equality is multiset equality, but every analysis
        # artifact is positional: permuted schemas must not share an analysis.
        clear_analysis_cache()
        first = analyze(parse_schema("a,f,a,ab"))
        second = analyze(parse_schema("f,a,a,ab"))
        assert first is not second
        assert first.qual_tree.is_qual_tree()
        assert second.qual_tree.is_qual_tree()

    def test_cache_is_bounded(self):
        clear_analysis_cache()
        for size in range(_ANALYSIS_CACHE_MAX + 10):
            analyze(chain_schema(size + 1))
        assert analysis_cache_size() <= _ANALYSIS_CACHE_MAX

    def test_clear_cache(self):
        analyze("ab,bc")
        clear_analysis_cache()
        assert analysis_cache_size() == 0

    def test_substrate_functions_reuse_but_never_flood_the_cache(self):
        clear_analysis_cache()
        analysis = analyze(chain_schema(3))
        assert analysis_cache_size() == 1
        # Reuse: the free function returns the analysis's memoized trace.
        assert gyo_reduce(chain_schema(3)) is analysis.gyo_trace()
        # No flooding: a candidate-schema sweep leaves the LRU untouched.
        for size in range(2, 30):
            is_tree_schema(star_schema(size))
            gyo_reduce(star_schema(size))
        assert analysis_cache_size() == 1

    def test_immutable(self):
        analysis = analyze("ab,bc")
        with pytest.raises(AttributeError):
            analysis.schema = None


class TestStructuralFacts:
    @pytest.mark.parametrize("text", ["ab,bc,cd", "ab,bc,ac", "abc,cde,ace,afe", "abc,ab,bc"])
    def test_flags_match_free_functions(self, text):
        schema = parse_schema(text)
        analysis = analyze(schema)
        assert analysis.is_tree_schema == is_tree_schema(schema)
        assert analysis.is_alpha_acyclic == is_tree_schema(schema)
        assert analysis.is_cyclic == (not is_tree_schema(schema))
        assert analysis.is_beta_acyclic == is_beta_acyclic(schema)
        assert analysis.is_gamma_acyclic == is_gamma_acyclic(schema)
        assert analysis.is_berge_acyclic == is_berge_acyclic(schema)

    def test_classification_summary(self):
        flags = analyze("ab,bc,cd").classification()
        assert flags == {
            "alpha_acyclic": True,
            "beta_acyclic": True,
            "gamma_acyclic": True,
            "berge_acyclic": True,
        }

    def test_gyo_trace_matches_and_is_memoized(self):
        schema = parse_schema("abg,bcg,acf,ad,de,ea")
        analysis = analyze(schema)
        trace = analysis.gyo_trace()
        assert trace.result == gyo_reduce(schema).result
        assert analysis.gyo_trace() is trace
        sacred = analysis.gyo_trace("ab")
        assert sacred is analysis.gyo_trace(RelationSchema("ab"))
        assert sacred is not trace

    def test_gyo_residue(self):
        assert analyze("ab,bc,ac").gyo_residue() == parse_schema("ab,bc,ac")
        assert not analyze("ab,bc").gyo_residue().attributes

    def test_qual_tree_cached(self):
        analysis = analyze(chain_schema(4))
        tree = analysis.qual_tree
        assert tree is analysis.qual_tree
        reference = find_qual_tree(chain_schema(4))
        assert sorted(tree.edges) == sorted(reference.edges)

    def test_qual_tree_none_for_cyclic(self):
        assert analyze("ab,bc,ac").qual_tree is None

    def test_treefication_matches_free_function(self):
        schema = parse_schema("ab,bc,cd,da")
        ours = analyze(schema).treefication
        reference = single_relation_treefication(schema)
        assert ours.added_relation == reference.added_relation
        assert ours.treefied == reference.treefied
        assert analyze(schema).treefication is ours

    def test_treefication_of_tree_schema(self):
        result = analyze("ab,bc").treefication
        assert result.was_already_tree
        assert result.treefied == parse_schema("ab,bc")


class TestPerTargetArtifacts:
    def test_canonical_connection_matches_tableau_route(self):
        schema = parse_schema("abg,bcg,acf,ad,de,ea")
        analysis = analyze(schema)
        connection = analysis.canonical_connection("abc")
        assert connection == canonical_connection_result(schema, "abc").connection
        assert connection == parse_schema("abg,bcg,ac")

    def test_canonical_connection_memoized_per_target(self):
        analysis = analyze("abg,bcg,acf,ad,de,ea")
        first = analysis.canonical_connection_result("abc")
        assert analysis.canonical_connection_result(RelationSchema("abc")) is first
        assert analysis.canonical_connection_result("ab") is not first

    def test_canonical_connection_universe_keyed_separately(self):
        analysis = analyze("ab,bc")
        plain = analysis.canonical_connection_result("ac")
        widened = analysis.canonical_connection_result("ac", universe="abcz")
        assert plain is not widened

    def test_standard_tableau_memoized_and_shared_with_connection(self):
        from repro.tableau import standard_tableau

        schema = parse_schema("abg,bcg,acf,ad,de,ea")
        analysis = analyze(schema)
        tableau = analysis.standard_tableau("abc")
        assert analysis.standard_tableau(RelationSchema("abc")) is tableau
        assert tableau == standard_tableau(schema, RelationSchema("abc"))
        # The canonical-connection derivation runs on the memoized tableau
        # (and hence on its cached compiled form), not a rebuilt copy.
        result = analysis.canonical_connection_result("abc")
        assert result.standard is tableau
        assert result.minimization.original is tableau

    def test_tableau_minimization_shared_across_consumers(self):
        analysis = analyze("abg,bcg,acf,ad,de,ea")
        minimization = analysis.tableau_minimization("abc")
        assert analysis.tableau_minimization("abc") is minimization
        assert analysis.canonical_connection_result("abc").minimization is minimization
        assert set(minimization.kept_rows) == {0, 1, 2}

    def test_canonical_connection_free_function_peeks_the_tableau_memos(self):
        from repro.tableau import canonical_connection

        clear_analysis_cache()
        schema = parse_schema("abg,bcg,acf,ad,de,ea")
        # Cold: computes directly, creates no cache entry.
        cold = canonical_connection(schema, RelationSchema("abc"))
        assert analysis_cache_size() == 0
        # Warm: the free function consumes the analysis's memoized
        # minimization (one shared tableau compile + core per target).
        analysis = analyze(schema)
        warm = analysis.tableau_minimization("abc")
        assert canonical_connection(schema, RelationSchema("abc")) == cold
        assert analysis.tableau_minimization("abc") is warm

    def test_join_plan_matches_plan_join_query(self):
        from repro import plan_join_query

        schema = parse_schema("abg,bcg,acf,ad,de,ea")
        analysis = analyze(schema)
        plan = analysis.join_plan("abc")
        assert plan.irrelevant_relations == (3, 4, 5)
        assert plan.sub_schema == parse_schema("abg,bcg,ac")
        # The free function is a wrapper over the same memoized analysis.
        assert plan_join_query(schema, "abc") is plan

    def test_prepare_memoized_per_target_and_root(self):
        analysis = analyze(chain_schema(4))
        target = RelationSchema({"x0", "x4"})
        prepared = analysis.prepare(target)
        assert analysis.prepare(target) is prepared
        assert analysis.prepare(target, root=1) is not prepared

    def test_prepare_rejects_bad_target(self):
        with pytest.raises(SchemaError):
            analyze(chain_schema(3)).prepare(RelationSchema("z"))

    def test_prepare_rejects_cyclic_schema(self):
        with pytest.raises(NotATreeSchemaError):
            analyze("ab,bc,ac").prepare(RelationSchema("ab"))

    def test_per_target_memos_are_bounded(self):
        from repro.engine.analysis import _PER_TARGET_CACHE_MAX

        clear_analysis_cache()
        schema = chain_schema(_PER_TARGET_CACHE_MAX + 20)
        analysis = analyze(schema)
        attributes = schema.attributes.sorted_attributes()
        for attribute in attributes[: _PER_TARGET_CACHE_MAX + 10]:
            analysis.prepare(RelationSchema({attribute}))
            analysis.gyo_trace(RelationSchema({attribute}))
        assert len(analysis._prepared) <= _PER_TARGET_CACHE_MAX
        assert len(analysis._gyo_traces) <= _PER_TARGET_CACHE_MAX
