"""Tests for :class:`PreparedQuery`: plan-once / execute-many semantics."""

from __future__ import annotations

import random

import pytest

import repro.engine.analysis as analysis_module
import repro.engine.prepared as prepared_module
from repro import analyze, clear_analysis_cache, yannakakis
from repro.engine import PreparedQuery
from repro.exceptions import NotATreeSchemaError, SchemaError
from repro.hypergraph import (
    RelationSchema,
    chain_schema,
    find_qual_tree,
    parse_schema,
    random_tree_schema,
    star_schema,
)
from repro.relational import DatabaseState, naive_join_project, numpy_available
from repro.relational.universal import random_database_state, random_ur_database

FAMILIES = [
    pytest.param(lambda size, seed: chain_schema(size), id="chain"),
    pytest.param(lambda size, seed: star_schema(size), id="star"),
    pytest.param(lambda size, seed: random_tree_schema(size, rng=seed), id="random-tree"),
]


def _random_target(schema, rng) -> RelationSchema:
    attributes = schema.attributes.sorted_attributes()
    count = rng.randint(1, min(3, len(attributes)))
    return RelationSchema(rng.sample(attributes, count))


class TestEquivalence:
    """``PreparedQuery.execute`` ≡ ``yannakakis`` ≡ ``naive_join_project``."""

    @pytest.mark.parametrize("build", FAMILIES)
    @pytest.mark.parametrize("seed", range(5))
    def test_ur_states(self, build, seed):
        rng = random.Random(seed)
        schema = build(rng.randint(2, 6), seed)
        target = _random_target(schema, rng)
        state = random_ur_database(schema, tuple_count=25, domain_size=4, rng=seed)
        run = analyze(schema).prepare(target).execute(state)
        wrapper = yannakakis(schema, target, state)
        baseline, naive_max = naive_join_project(schema, target, state)
        assert run.result == wrapper.result == baseline
        assert run.semijoin_count == wrapper.semijoin_count
        assert run.join_count == wrapper.join_count
        assert run.max_intermediate_size == wrapper.max_intermediate_size
        assert run.max_intermediate_size <= max(naive_max, state.total_rows(), 1)

    @pytest.mark.parametrize("build", FAMILIES)
    @pytest.mark.parametrize("seed", range(5))
    def test_non_ur_states(self, build, seed):
        rng = random.Random(100 + seed)
        schema = build(rng.randint(2, 6), seed)
        target = _random_target(schema, rng)
        state = random_database_state(schema, tuple_count=12, domain_size=3, rng=seed)
        run = analyze(schema).prepare(target).execute(state)
        baseline, _ = naive_join_project(schema, target, state)
        assert run.result == baseline

    @pytest.mark.parametrize("build", FAMILIES)
    def test_full_universe_target(self, build):
        schema = build(4, 7)
        target = RelationSchema(schema.attributes)
        state = random_ur_database(schema, tuple_count=15, domain_size=3, rng=7)
        run = analyze(schema).prepare(target).execute(state)
        baseline, _ = naive_join_project(schema, target, state)
        assert run.result == baseline

    def test_execute_many_matches_execute(self):
        schema = chain_schema(4)
        target = RelationSchema({"x0", "x4"})
        states = [
            random_ur_database(schema, tuple_count=15, domain_size=4, rng=seed)
            for seed in range(8)
        ]
        prepared = analyze(schema).prepare(target)
        many = prepared.execute_many(states)
        assert [run.result for run in many] == [
            prepared.execute(state).result for state in states
        ]


class TestPlanOnceExecuteMany:
    def test_no_replanning_across_100_states(self, monkeypatch):
        """One plan, ≥100 distinct states, zero qual-tree searches or
        reducer-planning passes after the plan is built."""
        clear_analysis_cache()
        calls = {"qual_tree": 0, "orientation": 0}
        real_find = analysis_module.find_qual_tree
        real_orient = prepared_module.rooted_orientation

        def counting_find(schema):
            calls["qual_tree"] += 1
            return real_find(schema)

        def counting_orient(tree, root=0):
            calls["orientation"] += 1
            return real_orient(tree, root=root)

        monkeypatch.setattr(analysis_module, "find_qual_tree", counting_find)
        monkeypatch.setattr(prepared_module, "rooted_orientation", counting_orient)

        schema = chain_schema(5)
        target = RelationSchema({"x0", "x5"})
        prepared = analyze(schema).prepare(target)
        assert calls == {"qual_tree": 1, "orientation": 1}

        states = [
            random_ur_database(schema, tuple_count=8, domain_size=4, rng=seed)
            for seed in range(120)
        ]
        assert len(set(states)) >= 100  # genuinely distinct states
        runs = prepared.execute_many(states)
        assert len(runs) == 120
        assert calls == {"qual_tree": 1, "orientation": 1}

        # The yannakakis() wrapper reuses the same cached plan: still no
        # additional planning work.
        for state in states[:20]:
            yannakakis(schema, target, state)
        assert calls == {"qual_tree": 1, "orientation": 1}

    def test_explicit_tree_bypasses_cache(self):
        schema = chain_schema(3)
        target = RelationSchema({"x0", "x3"})
        tree = find_qual_tree(schema)
        prepared = PreparedQuery(schema, target, tree=tree)
        state = random_ur_database(schema, tuple_count=10, domain_size=3, rng=0)
        direct = prepared.execute(state)
        via_wrapper = yannakakis(schema, target, state, tree=tree)
        assert direct.result == via_wrapper.result


class TestValidation:
    def test_rejects_state_for_other_schema(self):
        prepared = analyze(chain_schema(3)).prepare(RelationSchema({"x0"}))
        other = random_ur_database(chain_schema(4), tuple_count=5, rng=0)
        with pytest.raises(SchemaError):
            prepared.execute(other)

    def test_rejects_target_outside_universe(self):
        with pytest.raises(SchemaError):
            PreparedQuery(chain_schema(3), RelationSchema("z"))

    def test_rejects_cyclic_schema(self):
        with pytest.raises(NotATreeSchemaError):
            PreparedQuery(parse_schema("ab,bc,ac"), RelationSchema("ab"))

    def test_empty_schema(self):
        schema = parse_schema("")
        prepared = PreparedQuery(schema, RelationSchema(()))
        run = prepared.execute(DatabaseState(schema, []))
        assert len(run.result) == 1
        assert run.semijoin_count == 0 and run.join_count == 0

    def test_immutable(self):
        prepared = analyze(chain_schema(3)).prepare(RelationSchema({"x0"}))
        with pytest.raises(AttributeError):
            prepared.target = None

    def test_describe_lists_program(self):
        prepared = analyze(chain_schema(3)).prepare(RelationSchema({"x0", "x3"}))
        text = prepared.describe()
        assert "⋉" in text and "⋈" in text and "answer" in text

    def test_plan_accessors(self):
        schema = chain_schema(4)
        prepared = analyze(schema).prepare(RelationSchema({"x0", "x4"}))
        assert prepared.schema == schema
        assert prepared.root == 0
        assert len(prepared.semijoin_steps) == 2 * (len(schema) - 1)
        assert len(prepared.join_steps) == len(schema) - 1


class TestSemijoinIndexSharing:
    """The full-reducer program builds each relation's semijoin hash index
    once per (relation, key) pair per state (ROADMAP PR-2 follow-up)."""

    @staticmethod
    def _filtering_chain_state(schema, length):
        """A chain state where every relation has dangling rows, so every
        semijoin of the leaf-to-root pass drops rows (no identity shortcut —
        every intermediate is a fresh ``Relation`` instance)."""
        from repro.relational import Relation

        relations = []
        for index in range(length):
            rows = [{f"x{index}": value, f"x{index + 1}": value} for value in (1, 2)]
            # Dangling on both sides: joins with neither neighbour.
            rows.append({f"x{index}": 100 + index, f"x{index + 1}": 200 + index})
            relations.append(Relation.from_dicts({f"x{index}", f"x{index + 1}"}, rows))
        return DatabaseState(schema, relations)

    @staticmethod
    def _install_build_tracking(monkeypatch):
        """Attribute every ``key_index`` build to its original relation.

        Patches ``key_index`` to record cache-miss builds as
        ``(lineage root id, key columns)`` and ``semijoin`` to remember which
        relation each filtered result descends from, so a rebuild of an index
        a semijoin should have inherited shows up as a duplicate pair.
        Returns ``(builds, lineage)``; every touched relation is pinned so
        ``id()`` keys stay unique for the test's lifetime.
        """
        from repro.relational.relation import Relation

        pinned = []
        lineage = {}
        builds = []
        real_key_index = Relation.key_index
        real_semijoin = Relation.semijoin

        def root_of(relation):
            ident = id(relation)
            while ident in lineage:
                ident = lineage[ident]
            return ident

        def counting_key_index(self, attributes):
            if isinstance(attributes, RelationSchema):
                key_columns = attributes.sorted_attributes()
            else:
                key_columns = tuple(sorted(attributes))
            fresh_build = key_columns not in self._indexes
            index = real_key_index(self, attributes)
            if fresh_build:
                pinned.append(self)
                builds.append((root_of(self), key_columns))
            return index

        def tracking_semijoin(self, other):
            result = real_semijoin(self, other)
            pinned.extend((self, other, result))
            if result is not self:
                lineage[id(result)] = id(self)
            return result

        monkeypatch.setattr(Relation, "key_index", counting_key_index)
        monkeypatch.setattr(Relation, "semijoin", tracking_semijoin)
        return builds, lineage

    def test_no_duplicate_key_index_builds_per_state(self, monkeypatch):
        length = 4
        schema = chain_schema(length)
        target = RelationSchema({"x0", f"x{length}"})
        prepared = analyze(schema).prepare(target)
        state = self._filtering_chain_state(schema, length)

        builds, lineage = self._install_build_tracking(monkeypatch)
        # This test pins the *classic* kernel's index inheritance; the
        # compiled backend has its own build-count tests.
        runs = prepared.execute_many([state], backend="classic")
        assert runs[0].semijoin_count == 2 * (length - 1)
        assert lineage, "expected the semijoins to actually filter rows"

        # No (relation lineage, key) pair is ever built twice...
        assert len(builds) == len(set(builds))

        # ...and the semijoin program costs exactly one build per distinct
        # (state slot, edge key) pair, despite 2·(length-1) semijoin calls
        # touching each slot up to twice per key across the two passes.
        slot_of = {id(relation): index for index, relation in enumerate(state.relations)}
        expected = set()
        for step in prepared.semijoin_steps:
            key = tuple(
                sorted(
                    schema[step.target].attributes & schema[step.source].attributes
                )
            )
            expected.add((step.target, key))
            expected.add((step.source, key))
        observed = {
            (slot_of[root], key) for root, key in builds if root in slot_of
        }
        assert observed == expected

    def test_execute_many_shares_indexes_on_every_state(self, monkeypatch):
        """Across many states, duplicate builds never appear (per-state
        sharing; states do not share indexes with each other)."""
        length = 3
        schema = chain_schema(length)
        target = RelationSchema(schema.attributes)
        prepared = analyze(schema).prepare(target)
        states = [self._filtering_chain_state(schema, length) for _ in range(5)]

        builds, _ = self._install_build_tracking(monkeypatch)
        runs = prepared.execute_many(states, backend="classic")
        assert len(runs) == len(states)
        assert len(builds) == len(set(builds))


class TestCompiledBackendRouting:
    """Backend selection, run flags, and the compiled-plan lifecycle."""

    def _state(self, schema, seed=0, tuple_count=20):
        return random_ur_database(schema, tuple_count=tuple_count, domain_size=5, rng=seed)

    def test_auto_resolves_to_serial_backend(self):
        schema = chain_schema(3)
        prepared = analyze(schema).prepare(RelationSchema({"x0", "x3"}))
        # 20 tuples x 3 relations sits under VECTORIZED_MIN_STATE_ROWS, so
        # auto stays on the compiled backend whether or not numpy imports.
        state = self._state(schema)
        assert prepared.execute(state).backend == "compiled"
        assert prepared.execute(state, backend="auto").backend == "compiled"
        assert prepared.execute(state, backend="classic").backend == "classic"
        assert prepared.execute(state, backend="compiled").backend == "compiled"
        assert prepared.execute(state, backend="vectorized").backend == "vectorized"
        # A state big enough to amortize the array toll upgrades auto to the
        # vectorized kernel exactly when numpy is importable.  (A wide
        # domain, because random_ur_database dedups verbatim rows.)
        big = random_ur_database(schema, tuple_count=200, domain_size=60, rng=1)
        serial = "vectorized" if numpy_available() else "compiled"
        assert prepared.execute(big).backend == serial
        assert prepared.execute_many([big, big])[0].backend == serial

    def test_unknown_backend_rejected(self):
        schema = chain_schema(3)
        prepared = analyze(schema).prepare(RelationSchema({"x0"}))
        with pytest.raises(ValueError):
            prepared.execute(self._state(schema), backend="gpu")
        with pytest.raises(ValueError):
            prepared.execute_many([self._state(schema)], backend="")

    def test_classic_runs_carry_no_stats(self):
        schema = chain_schema(3)
        prepared = analyze(schema).prepare(RelationSchema({"x0"}))
        run = prepared.execute(self._state(schema), backend="classic")
        assert run.stats is None

    def test_empty_schema_reports_resolved_backend(self):
        prepared = PreparedQuery(parse_schema(""), RelationSchema(()))
        state = DatabaseState(parse_schema(""), [])
        # A zero-relation state has zero rows, so auto's profitability gate
        # keeps it on the compiled backend everywhere.
        assert prepared.execute(state).backend == "compiled"
        assert prepared.execute(state, backend="classic").backend == "classic"

    def test_compiled_plan_cached_and_resettable(self):
        schema = chain_schema(3)
        prepared = analyze(schema).prepare(RelationSchema({"x0", "x3"}))
        plan = prepared.compiled
        assert prepared.compiled is plan
        prepared.execute(self._state(schema))
        prepared.reset_compiled()
        assert prepared.compiled is not plan

    def test_runs_compare_equal_across_backends(self):
        schema = chain_schema(4)
        prepared = analyze(schema).prepare(RelationSchema({"x0", "x4"}))
        state = self._state(schema, seed=3)
        assert prepared.execute(state, backend="classic") == prepared.execute(state)


class TestCompiledIndexAmortization:
    """Lineage-attributed call counts: key indexes are built at most once
    per (slot, key) per batch when slot contents repeat across states."""

    def test_one_build_per_slot_key_across_batch(self):
        length = 4
        schema = chain_schema(length)
        target = RelationSchema({"x0", f"x{length}"})
        prepared = analyze(schema).prepare(target)
        prepared.reset_compiled()
        # One globally consistent state repeated verbatim: the batch
        # executes it once and shares the immutable run.
        state = random_ur_database(schema, tuple_count=30, domain_size=4, rng=1)
        states = [state] * 6
        runs = prepared.execute_many(states)
        stats = runs[0].stats
        assert stats is runs[-1].stats
        assert stats.states == 1
        assert stats.deduped_states == len(states) - 1
        # Slots are encoded exactly once for the whole batch.
        assert stats.encoded_slots == len(schema)
        assert stats.cached_slots == 0
        # Every key index lineage was built exactly once for the whole batch.
        assert stats.keyset_builds, "expected the reducer to build key sets"
        assert set(stats.keyset_builds.values()) == {1}
        assert set(stats.bucket_builds.values()) == {1}
        # Lineages are (slot, key positions) pairs within the schema.
        for slot, positions in list(stats.keyset_builds) + list(stats.bucket_builds):
            assert 0 <= slot < len(schema)
            assert isinstance(positions, tuple)

    def test_shared_dimension_slots_amortize_under_varying_fact(self):
        schema = star_schema(6)
        attrs = schema.attributes.sorted_attributes()
        target = RelationSchema({"x_hub", attrs[0]})
        prepared = analyze(schema).prepare(target)
        prepared.reset_compiled()
        base = random_ur_database(schema, tuple_count=25, domain_size=4, rng=7)
        states = []
        for seed in range(8):
            relations = list(base.relations)
            relations[0] = random_ur_database(
                schema, tuple_count=25, domain_size=4, rng=100 + seed
            ).relations[0]
            states.append(DatabaseState(schema, relations))
        runs = prepared.execute_many(states)
        stats = runs[0].stats
        # The varying fact slot (0) re-encodes per state; every shared
        # dimension slot is encoded exactly once for the batch.
        assert stats.encoded_slots == len(states) + (len(schema) - 1)
        assert stats.cached_slots == (len(states) - 1) * (len(schema) - 1)
        # Dimension-slot indexes were each built at most once for the batch.
        for (slot, _key), count in stats.keyset_builds.items():
            if slot != 0:
                assert count == 1
        for (slot, _key), count in stats.bucket_builds.items():
            if slot != 0:
                assert count == 1

    def test_single_state_builds_each_keyset_once(self):
        length = 5
        schema = chain_schema(length)
        target = RelationSchema({"x0", f"x{length}"})
        prepared = analyze(schema).prepare(target)
        prepared.reset_compiled()
        state = random_ur_database(schema, tuple_count=40, domain_size=5, rng=2)
        runs = prepared.execute_many([state])
        stats = runs[0].stats
        # A consistent state never filters, so both reducer passes share one
        # key-set build per (slot, key) lineage.
        assert set(stats.keyset_builds.values()) == {1}
