"""The persistent plan catalog: round-trips, corruption defense, crash safety.

Three layers of guarantees are proven here:

* **Round-trips** — ``load(save(x)) == x`` for schemas, database states and
  analysis artifacts (acyclic and cyclic), property-tested with hypothesis;
  a catalog-restored analysis must answer queries identically to a fresh
  one (the classic-backend oracle discipline of PR 3/4).
* **Corruption defense** — truncation, bit flips, stale format versions,
  trailing garbage and undeserializable payloads are each detected,
  quarantined (``*.corrupt``), counted, and served as misses; the query
  still answers correctly through fresh analysis.
* **Crash safety** — a writer SIGKILLed mid-write (the ``:kill`` flavor of
  ``REPRO_FAULT_TORN_WRITE``) leaves a catalog that reopens clean: the
  partial record is quarantined and counted, and the same query is
  answer-equal to the oracle.

Catalog fault environment variables are scrubbed by an autouse fixture:
these tests must stay deterministic even when a chaos CI leg arms worker
faults globally, and the dedicated fault tests arm their own fresh
directories explicitly.
"""

from __future__ import annotations

import os
import signal
import struct
import subprocess
import sys
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.engine import analyze, clear_analysis_cache, prepared_from_spec
from repro.engine import faults
from repro.engine.catalog import (
    FORMAT_VERSION,
    MAGIC,
    _HEADER,
    CatalogStats,
    PlanCatalog,
    StateLogWriter,
    iter_states,
    load_schema,
    load_state,
    read_state_log,
    resolve_catalog,
    save_schema,
    save_state,
)
from repro.exceptions import CatalogCorruptionError, CatalogError
from repro.hypergraph import (
    DatabaseSchema,
    RelationSchema,
    chain_schema,
    parse_schema,
    random_tree_schema,
    star_schema,
)
from repro.relational import DatabaseState, Relation
from repro.relational.universal import random_ur_database

_SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

VALUES = st.one_of(
    st.integers(-3, 6),
    st.sampled_from([1.0, 2.5, -1.0, True, False, "a", "b", "v1", None]),
)


@pytest.fixture(autouse=True)
def _scrub_catalog_environment(monkeypatch):
    """Catalog faults and the env-default catalog never leak into tests."""
    for name in (
        "REPRO_CATALOG_DIR",
        faults.ENV_TORN_WRITE,
        faults.ENV_CORRUPT_RECORD,
        faults.ENV_FAULT_DIR,
    ):
        monkeypatch.delenv(name, raising=False)


def _state_for(schema, seed=0, rows=12):
    return random_ur_database(schema, tuple_count=rows, domain_size=6, rng=seed)


def _assert_oracle_equal(analysis, target, states):
    """The analysis must answer like the classic object-tuple oracle."""
    prepared = analysis.prepare(target)
    runs = prepared.execute_many(states, backend="compiled")
    oracle = prepared.execute_many(states, backend="classic")
    for run, expected in zip(runs, oracle):
        assert run.result == expected.result


# -- record framing and interchange files ---------------------------------------


class TestInterchange:
    def test_schema_round_trip(self, tmp_path):
        schema = parse_schema("abg,bcg,acf,ad,de,ea")
        path = str(tmp_path / "schema.rps")
        save_schema(path, schema)
        assert load_schema(path) == schema

    def test_state_round_trip(self, tmp_path, chain4):
        state = _state_for(chain4, seed=3)
        path = str(tmp_path / "one.state")
        save_state(path, state)
        assert load_state(path) == state

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_state_round_trip_property(self, data):
        family = data.draw(st.sampled_from(["chain", "star", "random"]))
        size = data.draw(st.integers(1, 4))
        if family == "chain":
            schema = chain_schema(size)
        elif family == "star":
            schema = star_schema(max(size, 2))
        else:
            schema = random_tree_schema(size, rng=data.draw(st.integers(0, 10**6)))
        relations = []
        for relation_schema in schema.relations:
            width = len(relation_schema.sorted_attributes())
            rows = data.draw(
                st.lists(st.tuples(*([VALUES] * width)), min_size=0, max_size=5)
            )
            relations.append(Relation(relation_schema, rows))
        state = DatabaseState(schema, relations)
        with tempfile.TemporaryDirectory() as directory:
            path = os.path.join(directory, "x.state")
            save_state(path, state)
            assert load_state(path) == state
            spath = os.path.join(directory, "x.schema")
            save_schema(spath, schema)
            assert load_schema(spath) == schema

    def test_load_state_wrong_kind(self, tmp_path, chain4):
        path = str(tmp_path / "mixed")
        save_schema(path, chain4)
        with pytest.raises(CatalogCorruptionError):
            load_state(path)

    def test_load_missing_file_raises_catalog_error(self, tmp_path):
        with pytest.raises(CatalogError):
            load_state(str(tmp_path / "absent.state"))

    def test_trailing_garbage_is_corruption(self, tmp_path, chain4):
        path = str(tmp_path / "s.state")
        save_state(path, _state_for(chain4))
        with open(path, "ab") as handle:
            handle.write(b"extra")
        with pytest.raises(CatalogCorruptionError):
            load_state(path)


class TestStateLog:
    def test_append_log_round_trip(self, tmp_path, chain4):
        states = [_state_for(chain4, seed=seed) for seed in range(4)]
        path = str(tmp_path / "bulk.log")
        with StateLogWriter(path) as writer:
            for state in states:
                writer.append(state)
        assert writer.appended == 4
        assert list(iter_states(path)) == states
        recovered, clean = read_state_log(path)
        assert recovered == states and clean

    def test_torn_tail_recovers_prefix(self, tmp_path, chain4):
        states = [_state_for(chain4, seed=seed) for seed in range(3)]
        path = str(tmp_path / "bulk.log")
        with StateLogWriter(path, sync=False) as writer:
            for state in states:
                writer.append(state)
        size = os.path.getsize(path)
        # Tear the last record in half — the crash-mid-append signature.
        with open(path, "r+b") as handle:
            handle.truncate(size - 40)
        recovered, clean = read_state_log(path)
        assert recovered == states[:2]
        assert not clean
        # Non-strict iteration stops silently; strict raises.
        assert list(iter_states(path)) == states[:2]
        with pytest.raises(CatalogCorruptionError):
            list(iter_states(path, strict=True))

    def test_append_after_close_raises(self, tmp_path, chain4):
        path = str(tmp_path / "bulk.log")
        writer = StateLogWriter(path)
        writer.close()
        with pytest.raises(CatalogError):
            writer.append(_state_for(chain4))


# -- analysis round-trips --------------------------------------------------------


class TestAnalysisRoundTrip:
    def test_acyclic_artifacts_survive(self, tmp_path, chain4):
        clear_analysis_cache()
        analysis = analyze(chain4)
        analysis.prepare(["a", "d"])
        analysis.gyo_trace()
        analysis.canonical_connection_result(["a", "d"])
        analysis.join_plan(["a", "d"])
        flags = analysis.classification()

        catalog = PlanCatalog(str(tmp_path))
        assert catalog.store(analysis)
        assert catalog.stats.stores == 1
        # A second store is fingerprint-skipped: nothing new to persist.
        assert catalog.store(analysis)
        assert catalog.stats.store_skips == 1

        clear_analysis_cache()
        restored = analyze(chain4, catalog=catalog)
        assert catalog.stats.hits == 1
        # The persisted artifacts are pre-populated, not recomputed.
        assert restored.qual_tree is not None
        assert restored.gyo_trace().result == analysis.gyo_trace().result
        assert restored.classification() == flags
        assert (
            restored.canonical_connection(["a", "d"])
            == analysis.canonical_connection(["a", "d"])
        )
        states = [_state_for(chain4, seed=seed) for seed in range(3)]
        _assert_oracle_equal(restored, ["a", "d"], states)

    def test_cyclic_artifacts_survive(self, tmp_path, triangle):
        clear_analysis_cache()
        analysis = analyze(triangle)
        prepared = analysis.prepare_cyclic(["a", "b"])
        choice = analysis.cyclic_projection(["a", "b"])

        catalog = PlanCatalog(str(tmp_path))
        assert catalog.store(analysis)

        clear_analysis_cache()
        restored = analyze(triangle, catalog=catalog)
        assert catalog.stats.hits == 1
        assert restored.is_cyclic
        restored_choice = restored.cyclic_projection(["a", "b"])
        assert restored_choice.projection == choice.projection
        assert restored_choice.method == choice.method

        state = _state_for(triangle, seed=7)
        restored_prepared = restored.prepare_cyclic(["a", "b"])
        expected = prepared.execute(state, backend="classic")
        assert restored_prepared.execute(state).result == expected.result

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_analysis_round_trip_property(self, data):
        size = data.draw(st.integers(1, 5))
        schema = random_tree_schema(size, rng=data.draw(st.integers(0, 10**6)))
        attrs = list(schema.attributes.sorted_attributes())
        target = RelationSchema(
            data.draw(st.sets(st.sampled_from(attrs), max_size=min(3, len(attrs))))
        )
        clear_analysis_cache()
        analysis = analyze(schema)
        analysis.prepare(target)
        trace = analysis.gyo_trace()
        connection = analysis.canonical_connection(target)
        with tempfile.TemporaryDirectory() as directory:
            catalog = PlanCatalog(directory)
            assert catalog.store(analysis)
            clear_analysis_cache()
            restored = analyze(schema, catalog=catalog)
            assert catalog.stats.hits == 1
            assert restored.gyo_trace().result == trace.result
            assert restored.canonical_connection(target) == connection
            state = _state_for(schema, seed=5, rows=8)
            _assert_oracle_equal(restored, target, [state])

    def test_key_is_order_sensitive(self, tmp_path):
        # The catalog inherits the LRU's key discipline: multiset-equal
        # schemas in different orders are distinct entries.
        forward = DatabaseSchema([RelationSchema("ab"), RelationSchema("bc")])
        backward = DatabaseSchema([RelationSchema("bc"), RelationSchema("ab")])
        catalog = PlanCatalog(str(tmp_path))
        clear_analysis_cache()
        catalog.store(analyze(forward))
        clear_analysis_cache()
        assert catalog.load(backward) is None
        assert catalog.stats.misses == 1

    def test_prepared_from_spec_stores_back(self, tmp_path, chain4):
        clear_analysis_cache()
        prepared = analyze(chain4).prepare(["a", "d"])
        spec = prepared.plan_spec()
        catalog = PlanCatalog(str(tmp_path))

        clear_analysis_cache()
        rebuilt = prepared_from_spec(spec, catalog=catalog)
        # Cold rebuild: catalog miss, then the analysis is stored back.
        assert catalog.stats.misses == 1
        assert catalog.stats.stores == 1

        clear_analysis_cache()
        prepared_from_spec(spec, catalog=catalog)
        # Simulated respawned worker: the analysis now comes from disk.
        assert catalog.stats.hits == 1

        state = _state_for(chain4, seed=11)
        assert (
            rebuilt.execute(state).result
            == prepared.execute(state, backend="classic").result
        )

    def test_environment_default_catalog(self, tmp_path, chain4, monkeypatch):
        monkeypatch.setenv("REPRO_CATALOG_DIR", str(tmp_path))
        catalog = resolve_catalog(None)
        assert catalog is not None and catalog.directory == str(tmp_path)
        # Memoized: the same directory resolves to the same instance (one
        # stats object, one degraded latch per process).
        assert resolve_catalog(None) is catalog
        clear_analysis_cache()
        analysis = analyze(chain4)
        analysis.prepare(["a", "d"])
        catalog.store(analysis)
        clear_analysis_cache()
        analyze(chain4)  # no explicit catalog argument: env default consulted
        assert catalog.stats.hits == 1


# -- corruption defense ----------------------------------------------------------


def _store_chain(tmp_path, schema, target=("a", "d")):
    clear_analysis_cache()
    analysis = analyze(schema)
    analysis.prepare(list(target))
    catalog = PlanCatalog(str(tmp_path))
    assert catalog.store(analysis)
    return catalog


class TestCorruptionDefense:
    def _assert_quarantined_then_answers(self, catalog, schema, tmp_path):
        clear_analysis_cache()
        assert catalog.load(schema) is None
        assert catalog.stats.quarantined == 1
        assert catalog.stats.misses == 1
        corrupt = [
            name
            for name in os.listdir(str(tmp_path))
            if name.endswith(".corrupt")
        ]
        assert len(corrupt) == 1
        # After quarantine the record is gone: the next load is a plain miss
        # and fresh analysis still answers oracle-equal.
        assert catalog.load(schema) is None
        assert catalog.stats.quarantined == 1
        clear_analysis_cache()
        fresh = analyze(schema, catalog=catalog)
        _assert_oracle_equal(fresh, ["a", "d"], [_state_for(schema, seed=2)])

    def test_truncated_record_quarantined(self, tmp_path, chain4):
        catalog = _store_chain(tmp_path, chain4)
        path = catalog.record_path(chain4)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
        self._assert_quarantined_then_answers(catalog, chain4, tmp_path)

    def test_bit_flip_quarantined(self, tmp_path, chain4):
        catalog = _store_chain(tmp_path, chain4)
        path = catalog.record_path(chain4)
        with open(path, "r+b") as handle:
            handle.seek(_HEADER.size + 5)
            byte = handle.read(1)
            handle.seek(_HEADER.size + 5)
            handle.write(bytes([byte[0] ^ 0xFF]))
        self._assert_quarantined_then_answers(catalog, chain4, tmp_path)

    def test_stale_format_version_quarantined(self, tmp_path, chain4):
        catalog = _store_chain(tmp_path, chain4)
        path = catalog.record_path(chain4)
        with open(path, "rb") as handle:
            data = handle.read()
        magic, version, kind, checksum, length = _HEADER.unpack_from(data, 0)
        assert version == FORMAT_VERSION
        stale = _HEADER.pack(magic, version + 1, kind, checksum, length)
        with open(path, "wb") as handle:
            handle.write(stale + data[_HEADER.size :])
        self._assert_quarantined_then_answers(catalog, chain4, tmp_path)

    def test_bad_magic_quarantined(self, tmp_path, chain4):
        catalog = _store_chain(tmp_path, chain4)
        path = catalog.record_path(chain4)
        with open(path, "r+b") as handle:
            handle.write(b"NOTMAGIC")
        self._assert_quarantined_then_answers(catalog, chain4, tmp_path)

    def test_undeserializable_payload_quarantined(self, tmp_path, chain4):
        catalog = _store_chain(tmp_path, chain4)
        path = catalog.record_path(chain4)
        # A checksum-valid record whose payload is not a pickle at all.
        import zlib

        payload = b"\x00garbage that is not a pickle"
        record = _HEADER.pack(
            MAGIC, FORMAT_VERSION, 1, zlib.crc32(payload) & 0xFFFFFFFF, len(payload)
        ) + payload
        with open(path, "wb") as handle:
            handle.write(record)
        self._assert_quarantined_then_answers(catalog, chain4, tmp_path)

    def test_verify_sweeps_corruption(self, tmp_path, chain4):
        catalog = _store_chain(tmp_path, chain4)
        path = catalog.record_path(chain4)
        with open(path, "r+b") as handle:
            handle.truncate(10)
        report = catalog.verify()
        assert report["checked"] == 1
        assert report["ok"] == 0
        assert len(report["quarantined"]) == 1
        assert catalog.stats.quarantined == 1
        # The swept catalog is clean.
        assert catalog.verify() == {"checked": 0, "ok": 0, "quarantined": []}

    def test_records_reports_without_quarantining(self, tmp_path, chain4):
        catalog = _store_chain(tmp_path, chain4)
        infos = catalog.records()
        assert len(infos) == 1 and infos[0].ok
        assert infos[0].schema == chain4.to_notation()
        path = catalog.record_path(chain4)
        with open(path, "r+b") as handle:
            handle.truncate(10)
        infos = catalog.records()
        assert len(infos) == 1 and not infos[0].ok
        assert infos[0].error
        # Read-only: the corrupt record is still in place.
        assert os.path.exists(path)
        assert catalog.stats.quarantined == 0

    def test_gc_removes_quarantine_and_temp(self, tmp_path, chain4):
        catalog = _store_chain(tmp_path, chain4)
        path = catalog.record_path(chain4)
        with open(path, "r+b") as handle:
            handle.truncate(10)
        catalog.verify()
        # Orphaned temp file, as a crashed writer would leave behind.
        orphan = str(tmp_path / ".tmp.dead123.part")
        with open(orphan, "wb") as handle:
            handle.write(b"partial")
        report = catalog.gc()
        assert report["removed_corrupt"] == 1
        assert report["removed_temp"] == 1
        assert not os.path.exists(orphan)
        assert not any(
            name.endswith(".corrupt") for name in os.listdir(str(tmp_path))
        )

    def test_gc_keep_prunes_oldest(self, tmp_path):
        catalog = PlanCatalog(str(tmp_path))
        for size in (2, 3, 4):
            clear_analysis_cache()
            analysis = analyze(chain_schema(size))
            analysis.gyo_trace()
            catalog.store(analysis)
            path = catalog.record_path(chain_schema(size))
            os.utime(path, (size, size))  # deterministic mtime ordering
        report = catalog.gc(keep=1)
        assert report["removed_records"] == 2
        infos = catalog.records()
        assert len(infos) == 1
        assert infos[0].schema == chain_schema(4).to_notation()


# -- degraded mode ---------------------------------------------------------------


class TestDegradedMode:
    def test_store_degrades_on_missing_directory(self, tmp_path, chain4):
        import shutil

        directory = str(tmp_path / "cat")
        catalog = PlanCatalog(directory)
        clear_analysis_cache()
        analysis = analyze(chain4)
        analysis.gyo_trace()
        shutil.rmtree(directory)
        assert not catalog.store(analysis)
        assert catalog.stats.degraded == 1
        assert not catalog.stats.disabled

    def test_repeated_io_failures_latch_disabled(self, tmp_path, chain4):
        import shutil

        from repro.engine.catalog import MAX_CONSECUTIVE_IO_ERRORS

        directory = str(tmp_path / "cat")
        catalog = PlanCatalog(directory)
        clear_analysis_cache()
        analysis = analyze(chain4)
        analysis.gyo_trace()
        shutil.rmtree(directory)
        for _ in range(MAX_CONSECUTIVE_IO_ERRORS):
            assert not catalog.store(analysis)
        assert catalog.stats.disabled
        assert catalog.disabled
        # Disabled: loads are pure in-memory misses, stores are no-ops, and
        # neither raises.
        assert catalog.load(chain4) is None
        assert not catalog.store(analysis)
        assert catalog.stats.degraded == MAX_CONSECUTIVE_IO_ERRORS

    def test_create_false_requires_directory(self, tmp_path):
        with pytest.raises(CatalogError):
            PlanCatalog(str(tmp_path / "absent"), create=False)

    def test_serving_path_never_raises(self, tmp_path, chain4):
        # Point the catalog at a *file*: every I/O fails, nothing raises.
        blocker = str(tmp_path / "blocker")
        with open(blocker, "w") as handle:
            handle.write("x")
        catalog = PlanCatalog.__new__(PlanCatalog)
        catalog.directory = blocker
        catalog.stats = CatalogStats()
        import threading

        catalog._lock = threading.Lock()
        catalog._consecutive_errors = 0
        catalog._fingerprints = {}
        clear_analysis_cache()
        analysis = analyze(chain4)
        analysis.gyo_trace()
        assert catalog.load(chain4) is None
        assert not catalog.store(analysis)
        assert catalog.records() == []
        assert catalog.gc()["removed_corrupt"] == 0


# -- injected faults and crash safety --------------------------------------------


class TestInjectedFaults:
    def test_corrupt_record_fault(self, tmp_path, chain4, monkeypatch):
        fault_dir = tmp_path / "faults"
        fault_dir.mkdir()
        monkeypatch.setenv(faults.ENV_FAULT_DIR, str(fault_dir))
        monkeypatch.setenv(faults.ENV_CORRUPT_RECORD, "1")
        catalog = _store_chain(tmp_path / "cat", chain4)
        # The write "succeeded" but one payload byte was flipped after the
        # checksum: the read path must detect and quarantine it.
        assert catalog.stats.stores == 1
        catalog._fingerprints.clear()  # force a re-read, not a skip
        clear_analysis_cache()
        assert catalog.load(chain4) is None
        assert catalog.stats.quarantined == 1
        # The fault fired exactly once: the next store is healthy.
        clear_analysis_cache()
        analysis = analyze(chain4)
        analysis.prepare(["a", "d"])
        assert catalog.store(analysis)
        clear_analysis_cache()
        assert analyze(chain4, catalog=catalog) is not None
        assert catalog.stats.hits == 1
        _assert_oracle_equal(
            analyze(chain4), ["a", "d"], [_state_for(chain4, seed=4)]
        )

    def test_torn_write_fault(self, tmp_path, chain4, monkeypatch):
        fault_dir = tmp_path / "faults"
        fault_dir.mkdir()
        monkeypatch.setenv(faults.ENV_FAULT_DIR, str(fault_dir))
        monkeypatch.setenv(faults.ENV_TORN_WRITE, "1")
        catalog = _store_chain(tmp_path / "cat", chain4)
        path = catalog.record_path(chain4)
        # The torn write renamed a prefix into place.
        full_size = os.path.getsize(path)
        catalog._fingerprints.clear()
        clear_analysis_cache()
        assert catalog.load(chain4) is None
        assert catalog.stats.quarantined == 1
        corrupt_path = path + ".corrupt"
        assert os.path.exists(corrupt_path)
        assert os.path.getsize(corrupt_path) == full_size

    def test_kill_mid_write_reopens_clean(self, tmp_path, chain4):
        """The acceptance-criteria crash test: SIGKILL mid-catalog-write.

        A child process arms ``REPRO_FAULT_TORN_WRITE=1:kill`` and stores an
        analysis; the fault tears the write and SIGKILLs the child after the
        rename.  The parent then reopens the catalog: verify() quarantines
        exactly the partial record, and the same query answers oracle-equal
        through fresh analysis.
        """
        catalog_dir = tmp_path / "cat"
        fault_dir = tmp_path / "faults"
        fault_dir.mkdir()
        child = (
            "import os\n"
            "from repro.engine import analyze\n"
            "from repro.engine.catalog import PlanCatalog\n"
            "analysis = analyze('ab,bc,cd')\n"
            "analysis.prepare(['a', 'd'])\n"
            f"PlanCatalog({str(catalog_dir)!r}).store(analysis)\n"
            "print('UNREACHABLE')\n"
        )
        environment = dict(os.environ)
        environment.update(
            {
                "PYTHONPATH": _SRC,
                faults.ENV_FAULT_DIR: str(fault_dir),
                faults.ENV_TORN_WRITE: "1:kill",
            }
        )
        completed = subprocess.run(
            [sys.executable, "-c", child],
            env=environment,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == -signal.SIGKILL
        assert "UNREACHABLE" not in completed.stdout

        # Reopen: the torn record is on disk, verification quarantines it.
        catalog = PlanCatalog(str(catalog_dir))
        report = catalog.verify()
        assert report["checked"] == 1
        assert report["ok"] == 0
        assert len(report["quarantined"]) == 1
        assert catalog.stats.quarantined == 1

        # The serving path recovers: miss, fresh analysis, oracle-equal.
        clear_analysis_cache()
        analysis = analyze(chain4, catalog=catalog)
        assert catalog.stats.hits == 0
        _assert_oracle_equal(analysis, ["a", "d"], [_state_for(chain4, seed=9)])

        # And the healed catalog serves hits again.
        analysis.prepare(["a", "d"])
        assert catalog.store(analysis)
        clear_analysis_cache()
        analyze(chain4, catalog=catalog)
        assert catalog.stats.hits == 1

    def test_counted_catalog_fault_requires_fault_dir(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_TORN_WRITE, "1")
        with pytest.raises(ValueError):
            faults.torn_write_mode()
        monkeypatch.setenv(faults.ENV_TORN_WRITE, "1:bogus")
        with pytest.raises(ValueError):
            faults.torn_write_mode()


# -- concurrency -----------------------------------------------------------------


class TestSharedDirectory:
    def test_two_catalogs_share_one_directory(self, tmp_path, chain4):
        first = PlanCatalog(str(tmp_path))
        second = PlanCatalog(str(tmp_path))
        clear_analysis_cache()
        analysis = analyze(chain4)
        analysis.prepare(["a", "d"])
        assert first.store(analysis)
        clear_analysis_cache()
        restored = second.load(chain4)
        assert restored is not None
        assert second.stats.hits == 1

    def test_writer_lock_file_created(self, tmp_path, chain4):
        fcntl = pytest.importorskip("fcntl")
        catalog = PlanCatalog(str(tmp_path))
        clear_analysis_cache()
        analysis = analyze(chain4)
        analysis.gyo_trace()
        assert catalog.store(analysis)
        assert os.path.exists(str(tmp_path / ".lock"))
