"""The shared-memory state transport: codec round-trips, equivalence, leaks."""

from __future__ import annotations

import os
import shutil
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import ParallelExecutor, analyze
from repro.engine import faults
from repro.engine.parallel import (
    ENV_TRANSPORT,
    SHM_NAME_PREFIX,
    TRANSPORTS,
    resolve_transport,
)
from repro.hypergraph import RelationSchema, chain_schema, random_tree_schema
from repro.relational import DatabaseState, Relation
from repro.relational.compiled import shm_decode_state, shm_encode_state

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"),
    reason="shared-memory transport tests need a POSIX /dev/shm",
)

#: Values spanning both codec paths: small ints (int64 packing), ints past
#: the int64 range (pickled fallback), floats/strings/bools/None (pickled).
VALUES = st.one_of(
    st.integers(-3, 6),
    st.sampled_from([1 << 70, -(1 << 70), 1.0, 2.5, True, False, "a", "v1", None]),
)

#: Pure-int values, for pinning the int64 fast path specifically.
INT_VALUES = st.integers(-5, 10)


def _shm_strays():
    return [name for name in os.listdir("/dev/shm") if name.startswith(SHM_NAME_PREFIX)]


def _assert_no_strays():
    strays = _shm_strays()
    assert not strays, f"leaked shm segments: {strays}"


@st.composite
def random_states(draw, values=VALUES, max_states: int = 1):
    schema = random_tree_schema(draw(st.integers(1, 4)), rng=draw(st.integers(0, 10**6)))
    states = []
    for _ in range(draw(st.integers(1, max_states))):
        relations = []
        for relation_schema in schema.relations:
            width = len(relation_schema.sorted_attributes())
            rows = draw(
                st.lists(st.tuples(*([values] * width)), min_size=0, max_size=5)
            )
            relations.append(Relation(relation_schema, rows))
        states.append(DatabaseState(schema, relations))
    return schema, states


class TestCodec:
    @settings(max_examples=60, deadline=None)
    @given(random_states())
    def test_round_trip_mixed_values(self, instance):
        schema, states = instance
        for state in states:
            assert shm_decode_state(schema, shm_encode_state(state)) == state

    @settings(max_examples=30, deadline=None)
    @given(random_states(values=INT_VALUES))
    def test_round_trip_pure_int(self, instance):
        schema, states = instance
        for state in states:
            assert shm_decode_state(schema, shm_encode_state(state)) == state

    def test_bools_survive_the_int_check(self):
        # ``True``/``False`` are ints by isinstance but must NOT ride the
        # int64 path: decoding would resurrect them as 1/0 and change row
        # identity.  The codec keys on ``type(v) is int`` for exactly this.
        schema = chain_schema(1)
        state = DatabaseState(
            schema,
            [Relation(schema.relations[0], [(True, 2), (False, 3), (1, 4), (0, 5)])],
        )
        decoded = shm_decode_state(schema, shm_encode_state(state))
        assert decoded == state
        # A set would collapse True/1 and False/0; inspect identities row-wise.
        values = [value for row in decoded.relations[0].rows for value in row]
        assert any(value is True for value in values)
        assert any(value is False for value in values)

    def test_empty_schema_round_trips(self):
        from repro.hypergraph import DatabaseSchema

        schema = DatabaseSchema([])
        state = DatabaseState(schema, [])
        assert shm_decode_state(schema, shm_encode_state(state)) == state

    def test_relation_count_mismatch_rejected(self):
        schema = chain_schema(2)
        state = DatabaseState(
            schema, [Relation(relation, []) for relation in schema.relations]
        )
        blob = shm_encode_state(state)
        with pytest.raises(ValueError):
            shm_decode_state(chain_schema(3), blob)


class TestResolveTransport:
    def test_default_and_env(self, monkeypatch):
        monkeypatch.delenv(ENV_TRANSPORT, raising=False)
        assert resolve_transport(None) == "pickle"
        monkeypatch.setenv(ENV_TRANSPORT, "shm")
        assert resolve_transport(None) == "shm"
        assert resolve_transport("pickle") == "pickle"

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="transport"):
            resolve_transport("carrier-pigeon")
        assert TRANSPORTS == ("pickle", "shm")


@pytest.fixture(scope="module")
def shm_pool():
    with ParallelExecutor(workers=2, transport="shm") as executor:
        yield executor


def _prepared_chain():
    schema = chain_schema(3)
    return analyze(schema).prepare(RelationSchema({"x0", "x3"}))


def _chain_states(schema, count, *, salt=0):
    return [
        DatabaseState(
            schema,
            [
                Relation(
                    relation,
                    [(i + salt + index, i + salt + index + 1) for i in range(3)],
                )
                for relation in schema.relations
            ],
        )
        for index in range(count)
    ]


class TestShmExecution:
    @settings(max_examples=15, deadline=None)
    @given(random_states(max_states=4))
    def test_shm_matches_classic(self, shm_pool, instance):
        schema, states = instance
        attrs = sorted(schema.attributes.sorted_attributes())
        prepared = analyze(schema).prepare(RelationSchema(set(attrs[:2])))
        classic = prepared.execute_many(states, backend="classic")
        parallel = shm_pool.execute_many(prepared, states)
        assert [run.result for run in parallel] == [run.result for run in classic]
        assert all(run.backend == "parallel" for run in parallel)
        assert parallel[0].stats.transport == "shm"

    def test_stats_account_segments_and_bytes(self, shm_pool):
        prepared = _prepared_chain()
        states = _chain_states(prepared.schema, 6)
        runs = shm_pool.execute_many(prepared, states)
        stats = runs[0].stats
        assert stats.transport == "shm"
        assert stats.shm_segments >= 1
        assert stats.shm_bytes > 0
        _assert_no_strays()

    def test_pickle_transport_reports_no_segments(self, shm_pool):
        prepared = _prepared_chain()
        states = _chain_states(prepared.schema, 4)
        runs = shm_pool.execute_many(prepared, states, transport="pickle")
        assert runs[0].stats.transport == "pickle"
        assert runs[0].stats.shm_segments == 0
        _assert_no_strays()

    def test_mixed_value_states_cross_shm(self, shm_pool):
        # Strings/None/floats take the pickled-block path inside the segment.
        prepared = _prepared_chain()
        schema = prepared.schema
        states = [
            DatabaseState(
                schema,
                [
                    Relation(relation, [("a", 1), (None, 2.5), (1 << 70, index)])
                    for relation in schema.relations
                ],
            )
            for index in range(3)
        ]
        classic = prepared.execute_many(states, backend="classic")
        runs = shm_pool.execute_many(prepared, states)
        assert [run.result for run in runs] == [run.result for run in classic]
        _assert_no_strays()


class TestLeakFreedom:
    def test_no_leak_after_crash_recovery(self):
        """Worker death mid-batch must not orphan segments: the respawn path
        releases every tracked segment before resubmitting."""
        prepared = _prepared_chain()
        states = _chain_states(prepared.schema, 8)
        directory = tempfile.mkdtemp(prefix="repro-faults-")
        saved = os.environ.pop(faults.ENV_CRASH, None)
        saved_dir = os.environ.pop(faults.ENV_FAULT_DIR, None)
        os.environ[faults.ENV_FAULT_DIR] = directory
        os.environ[faults.ENV_CRASH] = "2"
        try:
            with ParallelExecutor(workers=2, transport="shm") as executor:
                runs = executor.execute_many(prepared, states)
                assert runs[0].stats.respawns >= 1
        finally:
            for name, value in ((faults.ENV_CRASH, saved), (faults.ENV_FAULT_DIR, saved_dir)):
                if value is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = value
            shutil.rmtree(directory, ignore_errors=True)
        classic = prepared.execute_many(states, backend="classic")
        assert [run.result for run in runs] == [run.result for run in classic]
        _assert_no_strays()

    def test_close_releases_segments(self):
        # Simulate an aborted batch: create a tracked segment by hand and
        # verify close() (the backstop) unlinks it.
        executor = ParallelExecutor(workers=1, transport="shm")
        segment = executor._create_segment(64)
        executor._segments[object()] = segment
        assert _shm_strays()
        executor.close()
        _assert_no_strays()

    def test_unpicklable_state_fails_synchronously_and_recovers(self):
        # shm encoding happens in the parent, so an unpicklable state fails
        # at submit; the supervision ladder must still recover it in-process
        # without leaking the shard's neighbours' segments.
        prepared = _prepared_chain()
        schema = prepared.schema
        good = _chain_states(schema, 2)
        bad = DatabaseState(
            schema,
            [
                Relation(relation, [(lambda: None, 1)])
                for relation in schema.relations
            ],
        )
        with ParallelExecutor(workers=2, transport="shm") as executor:
            runs = executor.execute_many(prepared, [good[0], bad, good[1]])
        assert [run.backend for run in runs] == ["parallel"] * 3
        assert runs[0].stats.fallback_runs >= 1
        _assert_no_strays()
