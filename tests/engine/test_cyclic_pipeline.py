"""Equivalence suite for the compiled cyclic pipeline (PR 9 tentpole).

``CyclicPreparedQuery`` freezes the Theorem 6.1 construction — tree-projection
node projections, guard semijoins, full reducer — into a reusable plan.  These
tests pin the whole backend matrix against two independent oracles:

* :func:`repro.treeproj.solver.solve_with_tree_projection` over a sequential
  join program (the paper's per-call construction, kept verbatim), and
* :func:`repro.relational.naive_join_project` (join everything, project).

Shapes covered: Arings, Acliques, randomly chorded trees (which may come out
acyclic — ``prepare_cyclic`` must serve those too), and the generator's random
cyclic schemas.  States cover UR databases, non-UR states with dangling
tuples, empty relations, and duplicate states in a batch.
"""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import analyze, clear_analysis_cache
from repro.engine import CyclicPreparedQuery, choose_tree_projection
from repro.engine.analysis import prepared_from_spec
from repro.engine.cyclic import _SHRINK_BUDGET  # noqa: F401  (import sanity)
from repro.engine.prepared import (
    VECTORIZED_MIN_STATE_ROWS,
    VECTORIZED_NARROW_RELATIONS,
    VECTORIZED_RELATION_ROWS_FACTOR,
    resolve_backend_for,
    vectorized_batch_profitable,
)
from repro.exceptions import SchemaError
from repro.hypergraph import (
    DatabaseSchema,
    RelationSchema,
    aclique,
    aring,
    is_tree_schema,
    parse_schema,
    random_cyclic_schema,
    random_tree_schema,
)
from repro.relational import (
    DatabaseState,
    Relation,
    naive_join_project,
    numpy_available,
)
from repro.relational.program import Program, default_base_names
from repro.relational.universal import random_database_state, random_ur_database
from repro.treeproj import is_tree_projection
from repro.treeproj.solver import solve_with_tree_projection


def _chorded_tree(size: int, seed: int) -> DatabaseSchema:
    """A random tree schema plus one chord relation over sampled attributes.

    Depending on the draw the chord may be covered by an existing relation,
    so the result is *sometimes* still a tree — deliberately: the cyclic
    pipeline must accept tree schemas too (treefication width 0 case).
    """
    rng = random.Random(seed)
    tree = random_tree_schema(size, rng=rng.randint(0, 10**6))
    attributes = tree.attributes.sorted_attributes()
    count = rng.randint(2, min(3, len(attributes)))
    chord = RelationSchema(rng.sample(attributes, count))
    return tree.add_relation(chord)


FAMILIES = [
    pytest.param(lambda seed: aring(3 + seed % 4), id="aring"),
    pytest.param(lambda seed: aclique(3 + seed % 3), id="aclique"),
    pytest.param(lambda seed: _chorded_tree(4 + seed % 3, seed), id="chorded-tree"),
    pytest.param(
        lambda seed: random_cyclic_schema(4 + seed % 3, rng=seed), id="random-cyclic"
    ),
]


def _random_target(schema: DatabaseSchema, rng: random.Random) -> RelationSchema:
    attributes = schema.attributes.sorted_attributes()
    count = rng.randint(1, min(3, len(attributes)))
    return RelationSchema(rng.sample(attributes, count))


def _sequential_join_program(schema: DatabaseSchema) -> Program:
    """``P(D)``: join every base relation in order — the solver oracle's input.

    Its extended schema contains ``U(D)``, so ``TP(P(D), D ∪ (X))`` is never
    empty and the per-call solver always succeeds.
    """
    program = Program(schema)
    names = list(default_base_names(schema))
    current = names[0]
    for index, name in enumerate(names[1:], start=1):
        joined = f"J{index}"
        program.join(joined, current, name)
        current = joined
    return program


def _solver_oracle(
    schema: DatabaseSchema, target: RelationSchema, state: DatabaseState
) -> Relation:
    return solve_with_tree_projection(_sequential_join_program(schema), target, state)


def _has_nested_relations(schema: DatabaseSchema) -> bool:
    """True when some base relation schema is contained in another's.

    The seed-era solver resolves anchor relations by *covering schema*, which
    is exact on UR databases (Theorem 6.2's regime) but can anchor with a
    projection of the wrong relation on arbitrary states when schemas nest.
    The solver oracle is only consulted outside that blind spot; naive
    join-project stays the unconditional ground truth.
    """
    relations = schema.relations
    return any(a != b and a <= b for a in relations for b in relations)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_analysis_cache()
    yield


class TestProjectionChoice:
    """The planner's tree projections are genuine and sensibly ranked."""

    @pytest.mark.parametrize("build", FAMILIES)
    @pytest.mark.parametrize("seed", range(4))
    def test_choice_is_a_tree_projection(self, build, seed):
        schema = build(seed)
        target = _random_target(schema, random.Random(seed))
        choice = choose_tree_projection(schema, target)
        lower = schema.add_relation(target)
        assert is_tree_schema(choice.projection)
        assert choice.projection.covers(lower)
        # Soundness of the reported width: every node is at most that wide.
        assert max(len(node) for node in choice.projection.relations) == choice.width
        # The full construction is a tree projection w.r.t. an upper bound
        # that contains it (the universe always works as the upper layer).
        upper = schema.add_relation(RelationSchema(schema.attributes))
        assert is_tree_projection(choice.projection, upper, lower)

    def test_aring4_beats_universe(self):
        # The 4-ring's triangulation (two triangles) must beat the one-node
        # universe fallback: width 3 < 4.
        choice = choose_tree_projection(aring(4), RelationSchema("ab"))
        assert choice.width == 3
        assert len(choice.projection) >= 2

    def test_tree_schema_passes_through(self):
        schema = parse_schema("ab,bc,cd")
        choice = choose_tree_projection(schema, RelationSchema("ad"))
        assert is_tree_schema(choice.projection)
        assert choice.projection.covers(schema.add_relation(RelationSchema("ad")))

    def test_invalid_target_raises(self):
        with pytest.raises(SchemaError):
            choose_tree_projection(aring(3), RelationSchema("zz9"))


class TestEquivalence:
    """Cyclic execution ≡ per-call solver ≡ naive join-project."""

    @pytest.mark.parametrize("build", FAMILIES)
    @pytest.mark.parametrize("seed", range(5))
    def test_ur_states_all_serial_backends(self, build, seed):
        rng = random.Random(seed)
        schema = build(seed)
        target = _random_target(schema, rng)
        state = random_ur_database(schema, tuple_count=20, domain_size=4, rng=seed)
        prepared = analyze(schema).prepare_cyclic(target)
        assert isinstance(prepared, CyclicPreparedQuery)
        baseline, _ = naive_join_project(schema, target, state)
        oracle = _solver_oracle(schema, target, state)
        assert oracle == baseline
        backends = ["classic", "compiled", "auto"]
        if numpy_available():
            backends.append("vectorized")
        for backend in backends:
            run = prepared.execute(state, backend=backend)
            assert run.result == baseline, backend

    @pytest.mark.parametrize("build", FAMILIES)
    @pytest.mark.parametrize("seed", range(5))
    def test_non_ur_states_with_dangling_tuples(self, build, seed):
        schema = build(seed)
        target = _random_target(schema, random.Random(200 + seed))
        # random_database_state fills relations independently, so most tuples
        # dangle (no join partner) — the guard semijoins must drop them.
        state = random_database_state(schema, tuple_count=10, domain_size=3, rng=seed)
        prepared = analyze(schema).prepare_cyclic(target)
        baseline, _ = naive_join_project(schema, target, state)
        assert prepared.execute(state, backend="classic").result == baseline
        assert prepared.execute(state, backend="compiled").result == baseline
        if not _has_nested_relations(schema):
            assert _solver_oracle(schema, target, state) == baseline

    @pytest.mark.parametrize("build", FAMILIES)
    def test_empty_relation_empties_the_answer(self, build):
        schema = build(1)
        target = _random_target(schema, random.Random(3))
        state = random_ur_database(schema, tuple_count=12, domain_size=3, rng=3)
        relations = list(state.relations)
        relations[0] = Relation.empty(schema.relations[0])
        state = DatabaseState(schema, relations)
        prepared = analyze(schema).prepare_cyclic(target)
        for backend in ("classic", "compiled"):
            assert len(prepared.execute(state, backend=backend).result) == 0

    def test_full_universe_target(self):
        schema = aring(5)
        target = RelationSchema(schema.attributes)
        state = random_ur_database(schema, tuple_count=18, domain_size=3, rng=11)
        prepared = analyze(schema).prepare_cyclic(target)
        baseline, _ = naive_join_project(schema, target, state)
        assert prepared.execute(state, backend="compiled").result == baseline
        assert _solver_oracle(schema, target, state) == baseline


def _states_strategy(draw, schema: DatabaseSchema, max_states: int):
    values = st.integers(0, 3)
    states = []
    for _ in range(draw(st.integers(1, max_states))):
        relations = []
        for relation_schema in schema.relations:
            width = len(relation_schema)
            rows = draw(
                st.lists(st.tuples(*([values] * width)), min_size=0, max_size=5)
            )
            relations.append(Relation(relation_schema, rows))
        states.append(DatabaseState(schema, relations))
    if len(states) > 1 and draw(st.booleans()):
        # Duplicate one state: batch dedup must still answer per position.
        states.append(states[draw(st.integers(0, len(states) - 1))])
    return states


@st.composite
def cyclic_instances(draw, max_states: int = 5):
    family = draw(st.sampled_from(["aring", "aclique", "chorded"]))
    if family == "aring":
        schema = aring(draw(st.integers(3, 6)))
    elif family == "aclique":
        schema = aclique(draw(st.integers(3, 5)))
    else:
        schema = _chorded_tree(draw(st.integers(3, 5)), draw(st.integers(0, 10**6)))
    attributes = schema.attributes.sorted_attributes()
    target_attrs = draw(
        st.sets(st.sampled_from(attributes), min_size=1, max_size=min(3, len(attributes)))
    )
    target = RelationSchema(target_attrs)
    states = _states_strategy(draw, schema, max_states)
    return schema, target, states


class TestHypothesisEquivalence:
    """Property-based: arbitrary states, every backend agrees with naive."""

    @settings(max_examples=25, deadline=None)
    @given(cyclic_instances())
    def test_compiled_batch_matches_naive(self, instance):
        schema, target, states = instance
        prepared = analyze(schema).prepare_cyclic(target)
        runs = prepared.execute_many(states, backend="compiled")
        assert len(runs) == len(states)
        for state, run in zip(states, runs):
            baseline, _ = naive_join_project(schema, target, state)
            assert run.result == baseline
            assert run.backend == "compiled"

    @settings(max_examples=15, deadline=None)
    @given(cyclic_instances(max_states=3))
    def test_serial_backends_match_solver(self, instance):
        schema, target, states = instance
        prepared = analyze(schema).prepare_cyclic(target)
        program = _sequential_join_program(schema)
        consult_solver = not _has_nested_relations(schema)
        for state in states:
            baseline, _ = naive_join_project(schema, target, state)
            if consult_solver:
                assert solve_with_tree_projection(program, target, state) == baseline
            assert prepared.execute(state, backend="classic").result == baseline
            if numpy_available():
                assert prepared.execute(state, backend="vectorized").result == baseline

    @settings(max_examples=10, deadline=None)
    @given(cyclic_instances(max_states=4))
    def test_auto_routing_matches_classic(self, instance):
        schema, target, states = instance
        prepared = analyze(schema).prepare_cyclic(target)
        auto = prepared.execute_many(states, backend="auto")
        for state, run in zip(states, auto):
            assert run.result == prepared.execute(state, backend="classic").result


class TestParallelCyclic:
    """Cyclic plans ship through the parallel executor on both transports."""

    @pytest.mark.parametrize("transport", ["pickle", "shm"])
    def test_parallel_matches_classic(self, transport):
        schema = aring(4)
        target = RelationSchema("ac")
        states = [
            random_ur_database(schema, tuple_count=15, domain_size=4, rng=seed)
            for seed in range(8)
        ]
        prepared = analyze(schema).prepare_cyclic(target)
        expected = [prepared.execute(s, backend="classic").result for s in states]
        runs = prepared.execute_many(
            states, backend="parallel", workers=2, transport=transport
        )
        assert [run.result for run in runs] == expected
        assert all(run.backend == "parallel" for run in runs)

    def test_parallel_rejects_single_state_execute(self):
        prepared = analyze(aring(3)).prepare_cyclic(RelationSchema("ab"))
        state = random_ur_database(aring(3), tuple_count=5, domain_size=3, rng=0)
        with pytest.raises(ValueError, match="execute_many"):
            prepared.execute(state, backend="parallel")


class TestPlanSpecRoundTrip:
    """Cyclic plans serialize and rebuild through the analysis LRU."""

    def test_pickle_round_trip_same_object(self):
        schema = aring(4)
        target = RelationSchema("bd")
        prepared = analyze(schema).prepare_cyclic(target)
        spec = prepared.plan_spec()
        assert spec.cyclic is True
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        rebuilt = prepared_from_spec(clone)
        assert rebuilt is prepared

    def test_tree_spec_still_noncyclic(self):
        schema = parse_schema("ab,bc")
        prepared = analyze(schema).prepare(RelationSchema("ac"))
        assert prepared.plan_spec().cyclic is False

    def test_memoization_per_target_and_root(self):
        analysis = analyze(aring(4))
        first = analysis.prepare_cyclic(RelationSchema("ab"))
        assert analysis.prepare_cyclic(RelationSchema("ab")) is first
        assert analysis.prepare_cyclic(RelationSchema("cd")) is not first
        # The projection choice memo is shared across roots.
        assert analysis.cyclic_projection(RelationSchema("ab")) is first.projection_choice


class TestBackendGate:
    """Satellite 1: shape-aware auto-gate (mean rows per relation)."""

    def test_floor_still_applies(self):
        assert not vectorized_batch_profitable(4, 4 * (VECTORIZED_MIN_STATE_ROWS - 1), 2)

    def test_narrow_shape_clears_gate(self):
        # 3 relations sit under the narrow allowance: the row floor alone
        # decides, and 600 rows/state clears it.
        assert vectorized_batch_profitable(10, 6000, 3)

    def test_mid_chain_clears_gate(self):
        # chain-6 at ~190 rows/relation (the yannakakis benchmark shape,
        # where the array kernel wins ~3x) clears the surplus threshold
        # 32*(6-4) = 64.
        threshold = VECTORIZED_RELATION_ROWS_FACTOR * (6 - VECTORIZED_NARROW_RELATIONS)
        assert 190 >= threshold
        assert vectorized_batch_profitable(5, 5 * 6 * 190, 6)

    def test_wide_star_shape_stays_compiled(self):
        # 12 relations, 2808 rows/state (the flarge-star serving shape):
        # 234 rows/rel < 32*(12-4) — the dense path would thrash per-relation.
        threshold = VECTORIZED_RELATION_ROWS_FACTOR * (12 - VECTORIZED_NARROW_RELATIONS)
        assert 2808 / 12 < threshold
        assert not vectorized_batch_profitable(8, 8 * 2808, 12)

    def test_zero_states_never_profitable(self):
        assert not vectorized_batch_profitable(0, 0, 3)

    def test_resolve_backend_for_uses_shape(self):
        chain = parse_schema("ab,bc,cd")
        states = [
            random_ur_database(chain, tuple_count=600, domain_size=40, rng=seed)
            for seed in range(3)
        ]
        assert resolve_backend_for("auto", states) in (
            ("vectorized",) if numpy_available() else ("compiled",)
        )
        # The flarge-star serving profile: 12 binary relations sharing a hub,
        # ~230 rows per relation per state — under the 32·(n−4) per-relation
        # threshold.
        wide = DatabaseSchema([RelationSchema({"hub", f"x{k}"}) for k in range(12)])
        wide_states = [
            random_ur_database(wide, tuple_count=300, domain_size=24, rng=seed)
            for seed in range(3)
        ]
        assert resolve_backend_for("auto", wide_states) == "compiled"
