"""The supervised executor's recovery matrix, driven by deterministic faults.

Every scenario arms a fault point of :mod:`repro.engine.faults` (fresh fault
directory per scenario — firing slots are claimed by file creation and
persist), builds a pool *after* arming (workers inherit the environment at
spawn/fork time), and holds the recovered batch to the PR 3/4 oracle
standard: hypothesis-equal to ``backend="classic"``, in input order.
"""

from __future__ import annotations

import contextlib
import os
import shutil
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import ParallelExecutor, analyze
from repro.engine import faults
from repro.exceptions import (
    ExecutionError,
    ReproError,
    ShardExecutionError,
    ShardTimeoutError,
    StatePicklingError,
    WorkerCrashError,
)
from repro.hypergraph import (
    RelationSchema,
    chain_schema,
    random_tree_schema,
    star_schema,
)
from repro.relational import DatabaseState, Relation

# The test tree has no packages, so the strategy and the oracle assertion of
# tests/engine/test_parallel.py are restated here rather than imported.
VALUES = st.one_of(
    st.integers(-3, 6),
    st.sampled_from([1.0, 2.5, -1.0, True, False, "a", "b", "v1", None]),
)


def _build_schema(family, size, seed):
    if family == "chain":
        return chain_schema(size)
    if family == "star":
        return star_schema(max(size, 2))
    return random_tree_schema(size, rng=seed)


@st.composite
def tree_instances(draw, max_states: int = 1):
    """A tree schema, a target, and up to ``max_states`` random states."""
    family = draw(st.sampled_from(["chain", "star", "random-tree"]))
    size = draw(st.integers(1, 5))
    schema = _build_schema(family, size, draw(st.integers(0, 10**6)))
    attrs = schema.attributes.sorted_attributes()
    target = RelationSchema(
        draw(st.sets(st.sampled_from(list(attrs)), max_size=min(3, len(attrs))))
    )

    def draw_state() -> DatabaseState:
        relations = []
        for relation_schema in schema.relations:
            width = len(relation_schema.sorted_attributes())
            rows = draw(
                st.lists(st.tuples(*([VALUES] * width)), min_size=0, max_size=6)
            )
            relations.append(Relation(relation_schema, rows))
        return DatabaseState(schema, relations)

    states = [draw_state()]
    while len(states) < max_states:
        if draw(st.booleans()):
            states.append(states[draw(st.integers(0, len(states) - 1))])
        else:
            states.append(draw_state())
    return schema, target, states


def _assert_parallel_matches_classic(classic_runs, parallel_runs) -> None:
    assert len(classic_runs) == len(parallel_runs)
    for classic, parallel in zip(classic_runs, parallel_runs):
        assert parallel.result == classic.result
        assert parallel.semijoin_count == classic.semijoin_count
        assert parallel.join_count == classic.join_count
        assert parallel.max_intermediate_size == classic.max_intermediate_size
        assert classic.backend == "classic"
        assert parallel.backend == "parallel"

_ALL_FAULT_VARS = (
    faults.ENV_FAULT_DIR,
    faults.ENV_CRASH,
    faults.ENV_HANG,
    faults.ENV_TRANSIENT,
    faults.ENV_POISON,
)


@contextlib.contextmanager
def armed(**env):
    """Arm exactly the given fault points against a fresh fault directory.

    Saves and restores every fault variable manually (rather than through the
    ``monkeypatch`` fixture) so the hypothesis-driven tests can re-arm per
    example without mixing function-scoped fixtures into ``@given``.
    """
    directory = tempfile.mkdtemp(prefix="repro-faults-")
    saved = {name: os.environ.pop(name, None) for name in _ALL_FAULT_VARS}
    os.environ[faults.ENV_FAULT_DIR] = directory
    for name, value in env.items():
        os.environ[name] = value
    try:
        yield directory
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        shutil.rmtree(directory, ignore_errors=True)


def _chain_states(schema, count, *, salt=0):
    return [
        DatabaseState(
            schema,
            [
                Relation(
                    relation,
                    [(i + salt + index, i + salt + index + 1) for i in range(3)],
                )
                for relation in schema.relations
            ],
        )
        for index in range(count)
    ]


def _poison_state(schema):
    """A state whose every relation contains the poison sentinel."""
    return DatabaseState(
        schema,
        [
            Relation(relation, [(faults.POISON_VALUE, 1), (2, 3)])
            for relation in schema.relations
        ],
    )


@pytest.fixture()
def prepared():
    schema = chain_schema(3)
    return analyze(schema).prepare(RelationSchema({"x0", "x3"}))


class TestCrashRecovery:
    def test_crash_on_first_shard_recovers_transparently(self, prepared):
        schema = prepared.schema
        states = _chain_states(schema, 6)
        classic = prepared.execute_many(states, backend="classic")
        with armed(**{faults.ENV_CRASH: "1"}):
            with ParallelExecutor(workers=2) as executor:
                runs = executor.execute_many(prepared, states)
                assert executor.restarts >= 1
                assert executor.healthy  # the pool was respawned, not lost
        _assert_parallel_matches_classic(classic, runs)
        stats = runs[0].stats
        assert stats.respawns >= 1
        assert stats.quarantined == []
        assert stats.states == sum(stats.shard_sizes) + stats.fallback_runs

    def test_pool_stays_usable_after_recovery(self, prepared):
        schema = prepared.schema
        states = _chain_states(schema, 4)
        with armed(**{faults.ENV_CRASH: "1"}):
            with ParallelExecutor(workers=2) as executor:
                first = executor.execute_many(prepared, states)
                assert first[0].stats.respawns >= 1
                # The crash slot is consumed: the next batch is clean.
                second = executor.execute_many(
                    prepared, _chain_states(schema, 4, salt=50)
                )
                assert second[0].stats.respawns == 0
                assert executor.healthy
        classic = prepared.execute_many(
            _chain_states(schema, 4, salt=50), backend="classic"
        )
        _assert_parallel_matches_classic(classic, second)

    def test_respawn_budget_exhaustion_raises_worker_crash_error(self, prepared):
        # Every poison execution kills its worker and the sentinel state
        # keeps being resubmitted, so a tiny respawn budget must trip.
        schema = prepared.schema
        states = [_poison_state(schema)]
        with armed(**{faults.ENV_POISON: "crash"}):
            with ParallelExecutor(
                workers=1, max_respawns=1, max_retries=3, retry_backoff=0.0
            ) as executor:
                with pytest.raises(WorkerCrashError) as info:
                    executor.execute_many(prepared, states)
        assert isinstance(info.value, ReproError)


class TestHangRecovery:
    def test_hang_past_timeout_recovers(self, prepared):
        schema = prepared.schema
        states = _chain_states(schema, 4)
        classic = prepared.execute_many(states, backend="classic")
        with armed(**{faults.ENV_HANG: "1:30"}):
            with ParallelExecutor(
                workers=2, shard_timeout=1.0, retry_backoff=0.0
            ) as executor:
                runs = executor.execute_many(prepared, states)
        _assert_parallel_matches_classic(classic, runs)
        stats = runs[0].stats
        assert stats.timeouts >= 1
        assert stats.respawns >= 1

    def test_repeated_hang_quarantines_without_in_process_retry(self, prepared):
        # A state that hangs on every attempt must never reach the
        # in-process fallback (that would hang the serving process); it
        # quarantines with a ShardTimeoutError instead.
        schema = prepared.schema
        states = [_poison_state(schema)]  # any single state; hang is counted
        with armed(**{faults.ENV_HANG: "10:30"}):
            with ParallelExecutor(
                workers=1, shard_timeout=0.5, max_retries=1, retry_backoff=0.0
            ) as executor:
                with pytest.raises(ShardExecutionError) as info:
                    executor.execute_many(prepared, states)
        error = info.value
        assert error.state_indices == (0,)
        cause = error.causes[0]
        assert isinstance(cause, ShardTimeoutError)
        assert cause.state_indices == (0,)

    def test_repeated_hang_degrades_to_partial_results(self, prepared):
        schema = prepared.schema
        good = _chain_states(schema, 2)
        with armed(**{faults.ENV_HANG: "10:30"}):
            with ParallelExecutor(
                workers=1,
                shard_timeout=0.5,
                max_retries=0,
                retry_backoff=0.0,
                shards_per_worker=1,
            ) as executor:
                runs = executor.execute_many(
                    prepared, good, failure_policy="degrade"
                )
        # The hang is counted, not content-targeted: with one worker and one
        # shard per worker both states share the first (hanging) shard, the
        # bisected halves hang again, and both end up quarantined.
        assert runs == [None, None]


class TestTransientFailures:
    def test_transient_succeeds_on_retry(self, prepared):
        schema = prepared.schema
        states = _chain_states(schema, 6)
        classic = prepared.execute_many(states, backend="classic")
        with armed(**{faults.ENV_TRANSIENT: "2"}):
            with ParallelExecutor(
                workers=2, max_retries=2, retry_backoff=0.0
            ) as executor:
                runs = executor.execute_many(prepared, states)
        _assert_parallel_matches_classic(classic, runs)
        stats = runs[0].stats
        assert stats.retries >= 1
        assert stats.respawns == 0  # clean exceptions never break the pool
        assert stats.quarantined == []

    def test_exhausted_retries_bisect_then_fall_back(self, prepared):
        # With a zero retry budget and a fault that fires on *every* shard
        # attempt, a 4-state shard must bisect 4 -> (2, 2) -> 4 singletons
        # and recover every state on the in-process backend.
        schema = prepared.schema
        states = _chain_states(schema, 4)
        classic = prepared.execute_many(states, backend="classic")
        with armed(**{faults.ENV_TRANSIENT: "100"}):
            with ParallelExecutor(
                workers=1,
                shards_per_worker=1,
                max_retries=0,
                retry_backoff=0.0,
            ) as executor:
                runs = executor.execute_many(prepared, states)
        _assert_parallel_matches_classic(classic, runs)
        stats = runs[0].stats
        assert stats.bisections == 3
        assert stats.fallback_runs == 4
        assert stats.states == sum(stats.shard_sizes) + stats.fallback_runs


class TestPoisonQuarantine:
    def test_worker_only_poison_recovers_in_process(self, prepared):
        schema = prepared.schema
        good = _chain_states(schema, 2)
        states = [good[0], _poison_state(schema), good[1]]
        classic = prepared.execute_many(states, backend="classic")
        with armed(**{faults.ENV_POISON: "worker"}):
            with ParallelExecutor(
                workers=2, max_retries=0, retry_backoff=0.0
            ) as executor:
                runs = executor.execute_many(prepared, states)
        _assert_parallel_matches_classic(classic, runs)
        stats = runs[0].stats
        assert stats.fallback_runs == 1
        assert stats.quarantined == []

    def test_crashing_poison_recovers_in_process(self, prepared):
        schema = prepared.schema
        states = [_poison_state(schema)] + _chain_states(schema, 3)
        classic = prepared.execute_many(states, backend="classic")
        with armed(**{faults.ENV_POISON: "crash"}):
            with ParallelExecutor(
                workers=2, max_retries=1, retry_backoff=0.0
            ) as executor:
                runs = executor.execute_many(prepared, states)
        _assert_parallel_matches_classic(classic, runs)
        stats = runs[0].stats
        assert stats.respawns >= 1
        assert stats.fallback_runs >= 1
        assert stats.quarantined == []

    def test_unrecoverable_poison_raises_with_attribution(self, prepared):
        schema = prepared.schema
        good = _chain_states(schema, 2)
        states = [good[0], _poison_state(schema), good[1]]
        with armed(**{faults.ENV_POISON: "always"}):
            with ParallelExecutor(
                workers=2, max_retries=0, retry_backoff=0.0
            ) as executor:
                with pytest.raises(ShardExecutionError) as info:
                    executor.execute_many(prepared, states)
        error = info.value
        assert error.state_indices == (1,)
        assert isinstance(error.causes[1], faults.InjectedFault)
        assert isinstance(error, ExecutionError)

    def test_degrade_returns_partial_results_in_input_order(self, prepared):
        schema = prepared.schema
        good = _chain_states(schema, 3)
        poison = _poison_state(schema)
        # The poison state appears twice (dedup shares its quarantine).
        states = [good[0], poison, good[1], poison, good[2]]
        classic = prepared.execute_many(states, backend="classic")
        with armed(**{faults.ENV_POISON: "always"}):
            with ParallelExecutor(
                workers=2, max_retries=0, retry_backoff=0.0
            ) as executor:
                runs = executor.execute_many(
                    prepared, states, failure_policy="degrade"
                )
        assert runs[1] is None and runs[3] is None
        survivors = [runs[0], runs[2], runs[4]]
        expected = [classic[0], classic[2], classic[4]]
        _assert_parallel_matches_classic(expected, survivors)
        stats = runs[0].stats
        assert stats.quarantined == [1, 3]
        assert stats.failure_policy == "degrade"

    def test_executor_wide_degrade_default(self, prepared):
        schema = prepared.schema
        states = [_poison_state(schema), _chain_states(schema, 1)[0]]
        with armed(**{faults.ENV_POISON: "always"}):
            with ParallelExecutor(
                workers=1,
                max_retries=0,
                retry_backoff=0.0,
                failure_policy="degrade",
            ) as executor:
                runs = executor.execute_many(prepared, states)
                assert runs[0] is None and runs[1] is not None
                # A per-batch override flips back to raising.
                with pytest.raises(ShardExecutionError):
                    executor.execute_many(prepared, states, failure_policy="raise")


class TestPicklingFailures:
    def test_unpicklable_state_recovers_in_process(self, prepared):
        schema = prepared.schema
        good = _chain_states(schema, 2)
        bad = DatabaseState(
            schema,
            [
                # A lambda is hashable (Relation accepts it) but unpicklable,
                # so the shard submission fails in the pool's feeder thread.
                Relation(relation, [((lambda: 1), 1)])
                for relation in schema.relations
            ],
        )
        states = [good[0], bad, good[1]]
        classic = prepared.execute_many(states, backend="classic")
        # armed() with no faults shields this test from the chaos CI job's
        # globally armed fault points: the assertions below pin down the
        # pickling path specifically.
        with armed():
            with ParallelExecutor(workers=2, retry_backoff=0.0) as executor:
                runs = executor.execute_many(prepared, states)
        _assert_parallel_matches_classic(classic, runs)
        stats = runs[0].stats
        assert stats.fallback_runs == 1
        assert stats.respawns == 0

    def test_unpicklable_and_failing_state_names_its_index(self, prepared):
        schema = prepared.schema
        good = _chain_states(schema, 2)
        bad = DatabaseState(
            schema,
            [
                Relation(relation, [((lambda: 1), faults.POISON_VALUE)])
                for relation in schema.relations
            ],
        )
        states = [good[0], good[1], bad]
        # Poison "always" makes the in-process fallback fail too, so the
        # opaque PicklingError must surface as a structured error naming the
        # offending input position.
        with armed(**{faults.ENV_POISON: "always"}):
            with ParallelExecutor(
                workers=2, max_retries=0, retry_backoff=0.0
            ) as executor:
                with pytest.raises(ShardExecutionError) as info:
                    executor.execute_many(prepared, states)
        cause = info.value.causes[2]
        assert isinstance(cause, StatePicklingError)
        assert cause.state_index == 2


class TestRecoveredBatchesMatchClassic:
    """The acceptance-criteria property: with faults injected, recovered
    parallel batches stay hypothesis-equal to ``backend="classic"``."""

    @settings(max_examples=8, deadline=None)
    @given(tree_instances(max_states=4))
    def test_crash_recovery_equivalence(self, instance):
        schema, target, states = instance
        prepared = analyze(schema).prepare(target)
        classic = prepared.execute_many(states, backend="classic")
        with armed(**{faults.ENV_CRASH: "1"}):
            with ParallelExecutor(workers=2, retry_backoff=0.0) as executor:
                runs = executor.execute_many(prepared, states)
        _assert_parallel_matches_classic(classic, runs)

    @settings(max_examples=8, deadline=None)
    @given(tree_instances(max_states=4))
    def test_transient_recovery_equivalence(self, instance):
        schema, target, states = instance
        prepared = analyze(schema).prepare(target)
        classic = prepared.execute_many(states, backend="classic")
        with armed(**{faults.ENV_TRANSIENT: "1"}):
            with ParallelExecutor(workers=2, retry_backoff=0.0) as executor:
                runs = executor.execute_many(prepared, states)
        _assert_parallel_matches_classic(classic, runs)


class TestFaultHarness:
    """The harness itself: parsing, counting, and misconfiguration."""

    def test_counted_faults_require_fault_dir(self, monkeypatch):
        for name in _ALL_FAULT_VARS:
            monkeypatch.delenv(name, raising=False)
        monkeypatch.setenv(faults.ENV_TRANSIENT, "1")
        with pytest.raises(ValueError, match="REPRO_FAULT_DIR"):
            faults.on_shard_start()

    def test_slots_fire_exactly_n_times(self, monkeypatch):
        for name in _ALL_FAULT_VARS:
            monkeypatch.delenv(name, raising=False)
        directory = tempfile.mkdtemp(prefix="repro-faults-")
        monkeypatch.setenv(faults.ENV_FAULT_DIR, directory)
        monkeypatch.setenv(faults.ENV_TRANSIENT, "2")
        fired = 0
        for _ in range(5):
            try:
                faults.on_shard_start()
            except faults.InjectedFault:
                fired += 1
        assert fired == 2
        shutil.rmtree(directory, ignore_errors=True)

    def test_poison_detection_and_mode_validation(self, monkeypatch):
        schema = chain_schema(2)
        assert faults.state_is_poison(_poison_state(schema))
        assert not faults.state_is_poison(_chain_states(schema, 1)[0])
        monkeypatch.setenv(faults.ENV_POISON, "sometimes")
        with pytest.raises(ValueError, match="REPRO_FAULT_POISON"):
            faults.poison_mode()

    def test_injected_fault_is_not_a_repro_error(self):
        # The harness stands in for arbitrary third-party failures; the
        # supervision layer must not be able to special-case it.
        assert not issubclass(faults.InjectedFault, ReproError)

    def test_malformed_counts_rejected(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_HANG, "soon")
        with pytest.raises(ValueError, match="REPRO_FAULT_HANG"):
            faults.on_shard_start()
        monkeypatch.setenv(faults.ENV_HANG, "1:fast")
        with pytest.raises(ValueError, match="REPRO_FAULT_HANG"):
            faults.on_shard_start()
