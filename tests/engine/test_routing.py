"""The adaptive routing cost model: gates, probe caching, degenerate one-shots."""

from __future__ import annotations

import pytest

from repro.engine import analyze
from repro.engine import parallel as parallel_module
from repro.engine import prepared as prepared_module
from repro.engine.routing import (
    DEFAULT_MIN_PARALLEL_STATES,
    RoutingPolicy,
    override_decision,
)
from repro.hypergraph import RelationSchema, chain_schema
from repro.relational import DatabaseState, Relation, numpy_available


def _states(schema, count, *, rows=3, salt=0):
    return [
        DatabaseState(
            schema,
            [
                Relation(
                    relation,
                    [(i + salt + index, i + salt + index + 1) for i in range(rows)],
                )
                for relation in schema.relations
            ],
        )
        for index in range(count)
    ]


def _empty_state(schema):
    return DatabaseState(
        schema, [Relation(relation, []) for relation in schema.relations]
    )


@pytest.fixture()
def prepared():
    schema = chain_schema(3)
    return analyze(schema).prepare(RelationSchema({"x0", "x3"}))


class TestGates:
    """Each rule in the gate cascade, decided deterministically via a pinned
    per-row cost (``per_row_s=``) so no timing noise enters the verdict."""

    def test_empty_batch(self, prepared):
        decision = RoutingPolicy(per_row_s=1.0).decide(prepared, [], workers=2)
        assert decision.backend == "compiled"
        assert decision.rule == "empty"

    def test_single_unique_state(self, prepared):
        schema = prepared.schema
        state = _states(schema, 1)[0]
        decision = RoutingPolicy(per_row_s=1.0).decide(
            prepared, [state, state, state], workers=2
        )
        assert decision.backend == "compiled"
        assert decision.rule == "single-unique"
        assert decision.states == 3
        assert decision.unique_states == 1

    def test_all_empty_states(self, prepared):
        schema = prepared.schema
        empties = [_empty_state(schema)]
        # A second, distinct all-empty state: drop one relation's rows only.
        partial = DatabaseState(
            schema, [Relation(relation, []) for relation in schema.relations]
        )
        decision = RoutingPolicy(per_row_s=1.0).decide(
            prepared, empties + [partial], workers=2
        )
        # Verbatim-equal empties dedup to one: the single-unique gate fires
        # first, which is equally in-process.
        assert decision.backend == "compiled"
        assert decision.rule in ("single-unique", "all-empty")

    def test_narrow_pool(self, prepared):
        states = _states(prepared.schema, 4)
        decision = RoutingPolicy(per_row_s=1.0).decide(prepared, states, workers=1)
        assert decision.backend == "compiled"
        assert decision.rule == "narrow-pool"

    def test_small_batch_gate(self, prepared):
        states = _states(prepared.schema, 4)
        decision = RoutingPolicy(per_row_s=1.0).decide(prepared, states, workers=2)
        assert decision.backend == "compiled"
        assert decision.rule == "small-batch"
        assert decision.unique_states == 4 < DEFAULT_MIN_PARALLEL_STATES

    def test_thin_serial_gate(self, prepared):
        # Many unique states, but a pinned per-row cost so tiny the whole
        # batch is cheaper than one round of pool bookkeeping.
        states = _states(prepared.schema, 40)
        decision = RoutingPolicy(
            per_row_s=1e-9, min_parallel_states=2
        ).decide(prepared, states, workers=2)
        assert decision.backend == "compiled"
        assert decision.rule == "thin-serial"
        assert decision.estimated_serial_s is not None

    def test_parallel_wins(self, prepared):
        states = _states(prepared.schema, 40)
        decision = RoutingPolicy(
            per_row_s=1.0, min_parallel_states=2, min_parallel_serial_s=0.0
        ).decide(prepared, states, workers=2, pool_live=True)
        assert decision.backend == "parallel"
        assert decision.rule == "parallel-wins"
        assert decision.estimated_parallel_s < decision.estimated_serial_s

    def test_parallel_loses_on_spawn_cost(self, prepared):
        # Same batch, but a cold pool: the spawn charge flips the verdict
        # when the serial estimate is smaller than the spawn.
        states = _states(prepared.schema, 40)
        policy = RoutingPolicy(
            per_row_s=1e-4,
            min_parallel_states=2,
            min_parallel_serial_s=0.0,
            spawn_s=1e9,
        )
        decision = policy.decide(prepared, states, workers=2, pool_live=False)
        assert decision.backend == "compiled"
        assert decision.rule == "parallel-loses"
        live = policy.decide(prepared, states, workers=2, pool_live=True)
        assert live.backend == "parallel"

    def test_as_dict_is_json_shaped(self, prepared):
        states = _states(prepared.schema, 4)
        decision = RoutingPolicy(per_row_s=1.0).decide(prepared, states, workers=2)
        payload = decision.as_dict()
        assert payload["backend"] == "compiled"
        assert payload["rule"] == "small-batch"
        assert set(payload) >= {"reason", "states", "unique_states", "unique_rows"}

    def test_large_states_upgrade_serial_verdict(self, prepared):
        # 200 rows x 3 relations clears VECTORIZED_MIN_STATE_ROWS, so the
        # in-process verdict names the vectorized kernel whenever numpy
        # imports; tiny batches (every other test here) stay compiled.
        states = _states(prepared.schema, 4, rows=200)
        decision = RoutingPolicy(per_row_s=1.0).decide(prepared, states, workers=2)
        expected = "vectorized" if numpy_available() else "compiled"
        assert decision.backend == expected
        assert decision.rule == "small-batch"

    def test_override_decision(self, prepared):
        states = _states(prepared.schema, 3) * 2
        decision = override_decision("parallel", states)
        assert decision.backend == "parallel"
        assert decision.rule == "override"
        assert decision.states == 6
        assert decision.unique_states == 3


class TestProbe:
    def test_probe_caches_on_analysis(self, prepared):
        analysis = analyze(prepared.schema)
        assert analysis.cached_cost_probe(prepared.target, root=prepared.root) is None
        states = _states(prepared.schema, 8)
        policy = RoutingPolicy()
        first = policy.probe(prepared, states)
        assert first > 0
        cached = analysis.cached_cost_probe(prepared.target, root=prepared.root)
        assert cached == first
        # A second probe returns the cached value without re-timing: pin the
        # cache to a sentinel and observe it come back verbatim.
        analysis.store_cost_probe(prepared.target, 123.0, root=prepared.root)
        assert policy.probe(prepared, states) == 123.0

    def test_pinned_per_row_skips_probe(self, prepared):
        analysis = analyze(prepared.schema)
        policy = RoutingPolicy(per_row_s=7.0)
        assert policy.probe(prepared, _states(prepared.schema, 2)) == 7.0
        # Pinning must not populate the shared cache.
        schema = chain_schema(4)
        other = analyze(schema).prepare(RelationSchema({"x0"}))
        assert analyze(schema).cached_cost_probe(other.target, root=other.root) is None
        del analysis

    def test_probe_cache_is_per_target(self, prepared):
        analysis = analyze(prepared.schema)
        other_target = RelationSchema({"x0"})
        other = analysis.prepare(other_target)
        analysis.store_cost_probe(prepared.target, 1.0, root=prepared.root)
        assert analysis.cached_cost_probe(other.target, root=other.root) is None


class TestDegenerate:
    def test_degenerate_shapes(self, prepared):
        schema = prepared.schema
        policy = RoutingPolicy()
        assert policy.is_degenerate([])
        state = _states(schema, 1)[0]
        assert policy.is_degenerate([state, state])
        assert policy.is_degenerate([_empty_state(schema)])
        assert not policy.is_degenerate(_states(schema, 2))

    def test_one_shot_empty_batch_never_touches_parallel(self, prepared, monkeypatch):
        monkeypatch.setattr(
            parallel_module,
            "ParallelExecutor",
            _raise_if_constructed,
        )
        assert prepared.execute_many([], backend="parallel") == []

    def test_one_shot_degenerate_batch_stays_in_process(self, prepared, monkeypatch):
        monkeypatch.setattr(
            parallel_module, "ParallelExecutor", _raise_if_constructed
        )
        schema = prepared.schema
        state = _states(schema, 1)[0]
        expected = prepared.execute(state)
        runs = prepared.execute_many([state, state, state], backend="parallel")
        assert [run.result for run in runs] == [expected.result] * 3
        assert all(run.backend == "parallel" for run in runs)
        stats = runs[0].stats
        assert stats.transport == "none"
        assert stats.workers == 0
        assert stats.routed_in_process == 1
        assert stats.deduped_states == 2

    def test_one_shot_robustness_overrides_pin_a_real_pool(self, prepared):
        # Degenerate shape + degrade request: the shortcut must NOT apply
        # (in-process execution cannot honor quarantine semantics).
        schema = prepared.schema
        state = _states(schema, 1)[0]
        runs = prepared.execute_many(
            [state], backend="parallel", workers=2, failure_policy="degrade"
        )
        assert runs[0].stats.workers == 2

    def test_non_degenerate_one_shot_still_spawns(self, prepared):
        runs = prepared.execute_many(
            _states(prepared.schema, 3), backend="parallel", workers=2
        )
        assert runs[0].stats.workers == 2
        assert runs[0].stats.shard_count >= 1


def _raise_if_constructed(*args, **kwargs):
    raise AssertionError("degenerate batch must not construct a pool")


class TestValidation:
    def test_constructor_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="probe_states"):
            RoutingPolicy(probe_states=0)
        with pytest.raises(ValueError, match="min_parallel_states"):
            RoutingPolicy(min_parallel_states=1)
        with pytest.raises(ValueError, match="spawn_s"):
            RoutingPolicy(spawn_s=-1.0)
        with pytest.raises(ValueError, match="per_row_s"):
            RoutingPolicy(per_row_s=0.0)


# The degenerate one-shot path imports ParallelExecutor from the *module*, so
# the monkeypatch above must target repro.engine.parallel — assert the import
# shape stays that way (a from-import in prepared.py would silently unbind
# the patch and let the test pass while spawning pools).
def test_prepared_imports_executor_lazily():
    import inspect

    source = inspect.getsource(prepared_module.PreparedQuery.execute_many)
    assert "from .parallel import" in source
