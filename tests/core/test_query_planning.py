"""Unit tests for the Section 4 query-planning API (Theorem 4.1)."""

from __future__ import annotations

import pytest

from repro.exceptions import NotASubSchemaError
from repro.core import (
    can_solve_with_joins,
    execute_join_plan,
    minimal_join_subschema,
    plan_join_query,
    queries_weakly_equivalent,
)
from repro.figures import SECTION_6_EXPECTED_CC, SECTION_6_SCHEMA, SECTION_6_TARGET
from repro.hypergraph import RelationSchema, gyo_reduction, parse_schema
from repro.relational import NaturalJoinQuery, random_ur_database


class TestCanSolveWithJoins:
    def test_section6_minimal_subschema(self):
        assert minimal_join_subschema(SECTION_6_SCHEMA, SECTION_6_TARGET) == SECTION_6_EXPECTED_CC
        assert can_solve_with_joins(SECTION_6_SCHEMA, SECTION_6_TARGET, SECTION_6_EXPECTED_CC)

    def test_dropping_a_needed_relation_fails(self):
        too_small = parse_schema("abg,ac")
        assert not can_solve_with_joins(SECTION_6_SCHEMA, SECTION_6_TARGET, too_small)

    def test_full_schema_always_works(self):
        assert can_solve_with_joins(SECTION_6_SCHEMA, SECTION_6_TARGET, SECTION_6_SCHEMA)

    def test_requires_subordinate_schema(self):
        with pytest.raises(NotASubSchemaError):
            can_solve_with_joins(SECTION_6_SCHEMA, SECTION_6_TARGET, parse_schema("xyz"))

    def test_tree_schema_case_matches_gr(self, chain4):
        """Hull / Yannakakis special case: for tree schemas the criterion is GR."""
        target = RelationSchema("ad")
        assert minimal_join_subschema(chain4, target) == gyo_reduction(chain4, target)


class TestWeakEquivalence:
    def test_methods_agree(self):
        pairs = [
            (parse_schema("ab,bc"), parse_schema("ab,bc,b"), "ac"),
            (parse_schema("ab,bc,ac"), parse_schema("ab,bc"), "ac"),
            (SECTION_6_SCHEMA, SECTION_6_EXPECTED_CC, "abc"),
        ]
        for first, second, target in pairs:
            assert queries_weakly_equivalent(
                first, second, target, method="canonical-connection"
            ) == queries_weakly_equivalent(first, second, target, method="tableau")

    def test_known_equivalence_and_inequivalence(self):
        assert queries_weakly_equivalent(SECTION_6_SCHEMA, SECTION_6_EXPECTED_CC, "abc")
        assert not queries_weakly_equivalent(
            parse_schema("ab,bc,ac"), parse_schema("ab,bc"), "ac"
        )

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            queries_weakly_equivalent(parse_schema("ab"), parse_schema("ab"), "a", method="x")


class TestJoinPlans:
    def test_section6_plan_identifies_irrelevant_relations(self):
        plan = plan_join_query(SECTION_6_SCHEMA, SECTION_6_TARGET)
        assert plan.sub_schema == SECTION_6_EXPECTED_CC
        assert set(plan.irrelevant_relations) == {3, 4, 5}
        assert set(plan.relevant_relations) == {0, 1, 2}

    @pytest.mark.parametrize("seed", range(4))
    def test_plan_execution_matches_full_query(self, seed):
        state = random_ur_database(SECTION_6_SCHEMA, tuple_count=25, domain_size=3, rng=seed)
        plan = plan_join_query(SECTION_6_SCHEMA, SECTION_6_TARGET)
        expected = NaturalJoinQuery(SECTION_6_SCHEMA, SECTION_6_TARGET).evaluate(state)
        assert execute_join_plan(plan, state) == expected

    def test_plan_on_tree_schema(self, chain4):
        plan = plan_join_query(chain4, RelationSchema("ad"))
        state = random_ur_database(chain4, tuple_count=20, domain_size=3, rng=8)
        expected = NaturalJoinQuery(chain4, RelationSchema("ad")).evaluate(state)
        assert execute_join_plan(plan, state) == expected

    def test_plan_with_single_relation_target(self, triangle):
        plan = plan_join_query(triangle, RelationSchema("ab"))
        assert len(plan.sub_schema) == 1
        state = random_ur_database(triangle, tuple_count=20, domain_size=3, rng=1)
        assert execute_join_plan(plan, state) == state[0]
