"""Unit tests for the Section 5.1 lossless-join criteria."""

from __future__ import annotations

import pytest

from repro.core import (
    jd_implies,
    lossless_for_tree_schema,
    lossless_subschemas,
    minimum_equivalent_subschema_is_lossless,
)
from repro.exceptions import NotASubSchemaError, NotATreeSchemaError
from repro.figures import SECTION_5_1_SCHEMA, SECTION_5_1_SUBSCHEMA
from repro.hypergraph import aring, chain_schema, parse_schema
from repro.relational import satisfies_join_dependency, search_implication_counterexample
from repro.tableau import canonical_connection


class TestJdImplies:
    def test_paper_counterexample(self):
        assert not jd_implies(SECTION_5_1_SCHEMA, SECTION_5_1_SUBSCHEMA)

    def test_subtree_of_chain_is_implied(self):
        chain = parse_schema("ab,bc,cd")
        assert jd_implies(chain, parse_schema("ab,bc"))
        assert jd_implies(chain, parse_schema("bc,cd"))
        assert not jd_implies(chain, parse_schema("ab,cd"))

    def test_whole_schema_is_always_implied(self, chain4, triangle):
        for schema in (chain4, triangle):
            assert jd_implies(schema, schema)

    def test_single_relations_are_always_implied(self, triangle):
        for relation in triangle.relations:
            assert jd_implies(triangle, parse_schema(relation.to_notation()))

    def test_ring_does_not_imply_its_path(self):
        ring = aring(4)
        path = ring.sub_schema([0, 1, 2])
        assert not jd_implies(ring, path)

    def test_requires_subordinate(self, chain4):
        with pytest.raises(NotASubSchemaError):
            jd_implies(chain4, parse_schema("xy"))

    def test_syntactic_criterion_agrees_with_semantic_search(self):
        """Cross-validate Theorem 5.1 against randomized counterexample search."""
        cases = [
            (SECTION_5_1_SCHEMA, SECTION_5_1_SUBSCHEMA),
            (parse_schema("ab,bc,cd"), parse_schema("ab,bc")),
            (parse_schema("ab,bc,cd"), parse_schema("ab,cd")),
            (aring(4), aring(4).sub_schema([0, 1])),
            (aring(4), aring(4).sub_schema([0, 1, 2])),
        ]
        for schema, sub in cases:
            implied = jd_implies(schema, sub)
            witness = search_implication_counterexample(schema, sub, trials=40, rng=0)
            if implied:
                assert witness is None, (schema, sub)
            else:
                assert witness is not None, (schema, sub)
                assert satisfies_join_dependency(witness, schema)
                assert not satisfies_join_dependency(witness, sub)


class TestCorollary52:
    def test_tree_schema_lossless_iff_subtree(self, chain4):
        assert lossless_for_tree_schema(chain4, parse_schema("ab,bc"))
        assert not lossless_for_tree_schema(chain4, parse_schema("ab,cd"))

    def test_paper_counterexample_is_not_a_subtree(self):
        assert not lossless_for_tree_schema(SECTION_5_1_SCHEMA, SECTION_5_1_SUBSCHEMA)

    def test_cyclic_schema_rejected(self, triangle):
        with pytest.raises(NotATreeSchemaError):
            lossless_for_tree_schema(triangle, parse_schema("ab"))

    def test_agreement_with_jd_implies_on_trees(self, small_tree_schemas):
        for schema in small_tree_schemas:
            if len(schema) > 5:
                continue
            for sub in schema.iter_sub_schemas():
                assert lossless_for_tree_schema(schema, sub) == jd_implies(schema, sub)


class TestEnumerationAndMinimality:
    def test_lossless_subschemas_of_chain(self):
        chain = parse_schema("ab,bc,cd")
        winners = set(lossless_subschemas(chain, connected_only=True))
        assert parse_schema("ab,bc") in winners
        assert parse_schema("ab,bc,cd") in winners

    def test_minimum_equivalent_subschema_is_lossless(self):
        schema = parse_schema("abg,bcg,acf,ad,de,ea")
        cc = canonical_connection(schema, "abc")
        assert minimum_equivalent_subschema_is_lossless(schema, cc, "abc")

    def test_non_equivalent_subschema_reports_false(self):
        schema = parse_schema("abg,bcg,acf,ad,de,ea")
        assert not minimum_equivalent_subschema_is_lossless(
            schema, parse_schema("abg,bcg"), "abc"
        )
