"""Unit tests for the Corollary 5.3' γ-acyclicity equivalences."""

from __future__ import annotations

import pytest

from repro.core import (
    all_connected_subschemas_lossless,
    cc_condition_holds_for_all_connected,
    check_gamma_equivalences,
    gr_condition_holds_for_all_connected,
)
from repro.hypergraph import aclique, aring, chain_schema, parse_schema, star_schema


GAMMA_ACYCLIC = [
    parse_schema("ab,bc"),
    parse_schema("ab,bc,cd"),
    star_schema(3),
    parse_schema("abc,abd"),
]

NOT_GAMMA_ACYCLIC = [
    parse_schema("ab,bc,ac"),
    aring(4),
    aclique(4),
    parse_schema("abc,ab,bc"),
    parse_schema("abc,cde,ace,afe"),
]


@pytest.mark.parametrize("schema", GAMMA_ACYCLIC, ids=str)
def test_gamma_acyclic_schemas_satisfy_all_conditions(schema):
    report = check_gamma_equivalences(schema)
    assert report.gamma_acyclic
    assert report.gr_condition
    assert report.cc_condition
    assert report.lossless_condition
    assert report.all_agree


@pytest.mark.parametrize("schema", NOT_GAMMA_ACYCLIC, ids=str)
def test_gamma_cyclic_schemas_violate_all_conditions(schema):
    report = check_gamma_equivalences(schema)
    assert not report.gamma_acyclic
    assert not report.gr_condition
    assert not report.cc_condition
    assert not report.lossless_condition
    assert report.all_agree


def test_individual_condition_functions_match_report():
    schema = parse_schema("abc,ab,bc")
    report = check_gamma_equivalences(schema)
    assert gr_condition_holds_for_all_connected(schema) == report.gr_condition
    assert cc_condition_holds_for_all_connected(schema) == report.cc_condition
    assert all_connected_subschemas_lossless(schema) == report.lossless_condition


def test_fagins_result_on_the_tree_counterexample():
    """Fagin's (*) on the paper's running example: {abc, ab, bc} is a tree
    schema, yet the connected sub-schema {ab, bc} has no lossless join, so the
    schema cannot be γ-acyclic."""
    schema = parse_schema("abc,ab,bc")
    assert not all_connected_subschemas_lossless(schema)
    assert not check_gamma_equivalences(schema).gamma_acyclic
