"""Unit tests for the UJR property (Section 5.1 discussion of [11])."""

from __future__ import annotations

from repro.core import connected_node_subsets, find_ujr_violation, is_ujr, minimum_qual_graphs
from repro.hypergraph import aring, chain_schema, parse_schema
from repro.relational import Relation, random_ur_database, universal_database


class TestMinimumQualGraphs:
    def test_tree_schema_minimum_graphs_are_qual_trees(self, chain4):
        graphs = minimum_qual_graphs(chain4)
        assert graphs
        assert all(graph.is_qual_tree() for graph in graphs)

    def test_triangle_minimum_graph_is_the_triangle(self, triangle):
        graphs = minimum_qual_graphs(triangle)
        assert len(graphs) == 1
        assert len(graphs[0].edges) == 3

    def test_connected_subsets_enumeration(self, chain4):
        graphs = minimum_qual_graphs(chain4)
        subsets = connected_node_subsets(graphs[0])
        assert (0,) in subsets and (0, 1) in subsets
        assert (0, 2) not in subsets


class TestUJR:
    def test_tree_schema_ur_states_are_ujr(self):
        """Goodman–Shmueli: every UR database over a tree schema is UJR."""
        for seed in range(5):
            schema = parse_schema("ab,bc,cd")
            state = random_ur_database(schema, tuple_count=12, domain_size=2, rng=seed)
            assert is_ujr(state)

    def test_cyclic_schema_admits_a_non_ujr_ur_state(self, triangle):
        """Goodman–Shmueli: for every cyclic schema some UR database is not UJR."""
        universal = Relation("abc", [(0, 0, 0), (1, 0, 1)])
        state = universal_database(triangle, universal)
        violation = find_ujr_violation(state)
        assert violation is not None
        graph, subset = violation
        assert len(subset) >= 2

    def test_cyclic_schema_also_has_ujr_states(self, triangle):
        # A single-tuple universal relation is trivially consistent everywhere.
        universal = Relation("abc", [(0, 0, 0)])
        state = universal_database(triangle, universal)
        assert is_ujr(state)

    def test_aring4_counterexample(self):
        ring = aring(4)
        universal = Relation("abcd", [(0, 0, 0, 0), (1, 1, 0, 0), (0, 0, 1, 1)])
        state = universal_database(ring, universal)
        # The specific instance may or may not violate UJR, but the check must
        # agree with a direct evaluation of the definition.
        violation = find_ujr_violation(state)
        assert (violation is None) == is_ujr(state)
