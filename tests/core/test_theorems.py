"""The theorem checkers evaluated on the paper's instances and small families."""

from __future__ import annotations

import pytest

from repro.core import (
    check_corollary_3_1,
    check_corollary_3_2,
    check_corollary_5_2,
    check_corollary_5_3_gamma,
    check_lemma_3_1,
    check_lemma_3_2,
    check_lemma_3_5,
    check_theorem_3_1_subtree,
    check_theorem_3_2,
    check_theorem_3_3,
    check_theorem_4_1,
    check_theorem_5_1,
    check_theorem_5_2,
    check_theorem_5_3,
)
from repro.figures import (
    FIGURE_1_CASES,
    SECTION_5_1_SCHEMA,
    SECTION_5_1_SUBSCHEMA,
    SECTION_6_EXPECTED_CC,
    SECTION_6_SCHEMA,
    SECTION_6_TARGET,
)
from repro.hypergraph import RelationSchema, aclique, aring, parse_schema, random_tree_schema
from repro.relational import random_ur_database


ALL_SMALL_SCHEMAS = [schema for schema, _ in FIGURE_1_CASES] + [
    aring(4),
    aclique(4),
    SECTION_5_1_SCHEMA,
    parse_schema("ab,bc,cd,da,ac"),
    parse_schema("abc,abd,acd"),
]


class TestSection3Checkers:
    @pytest.mark.parametrize("schema", ALL_SMALL_SCHEMAS, ids=str)
    def test_lemma_3_1(self, schema):
        assert check_lemma_3_1(schema)

    @pytest.mark.parametrize("schema", ALL_SMALL_SCHEMAS, ids=str)
    def test_corollary_3_1(self, schema):
        assert check_corollary_3_1(schema)

    @pytest.mark.parametrize("schema", ALL_SMALL_SCHEMAS, ids=str)
    def test_theorem_3_2(self, schema):
        assert check_theorem_3_2(schema)
        assert check_theorem_3_2(schema, extra=schema.attributes)
        assert check_theorem_3_2(schema, extra=schema.attributes.sorted_attributes()[:2])

    @pytest.mark.parametrize(
        "schema", [aring(4), aclique(3), parse_schema("ab,bc,ac,cd")], ids=str
    )
    def test_corollary_3_2(self, schema):
        assert check_corollary_3_2(schema)

    @pytest.mark.parametrize("schema", ALL_SMALL_SCHEMAS, ids=str)
    def test_theorem_3_3(self, schema):
        for size in (1, 2, len(schema.attributes)):
            target = schema.attributes.sorted_attributes()[:size]
            assert check_theorem_3_3(schema, target), (schema, target)

    def test_theorem_3_1_subtree_characterization(self, figure1_tree, chain4):
        for schema in (figure1_tree, chain4, SECTION_5_1_SCHEMA):
            for sub in schema.iter_sub_schemas():
                assert check_theorem_3_1_subtree(schema, sub)

    def test_lemma_3_2_and_3_5(self):
        pairs = [
            (SECTION_6_SCHEMA, SECTION_6_EXPECTED_CC, SECTION_6_TARGET),
            (parse_schema("ab,bc,ac"), parse_schema("ab,bc"), RelationSchema("ac")),
            (parse_schema("ab,bc"), parse_schema("ab,bc,b"), RelationSchema("ac")),
        ]
        for first, second, target in pairs:
            assert check_lemma_3_2(first, second, target)
            assert check_lemma_3_5(first, second, target)


class TestSection4And5Checkers:
    def test_theorem_4_1_on_section6(self):
        state = random_ur_database(SECTION_6_SCHEMA, tuple_count=20, domain_size=3, rng=0)
        assert check_theorem_4_1(
            SECTION_6_SCHEMA, SECTION_6_EXPECTED_CC, SECTION_6_TARGET, state
        )
        assert check_theorem_4_1(
            SECTION_6_SCHEMA, parse_schema("abg,bcg"), SECTION_6_TARGET, state
        )

    def test_theorem_4_1_on_random_subschemas(self, chain4, triangle):
        for schema in (chain4, triangle):
            state = random_ur_database(schema, tuple_count=15, domain_size=3, rng=1)
            for sub in schema.iter_sub_schemas():
                assert check_theorem_4_1(schema, sub, schema.attributes, state)

    def test_theorem_5_1(self, chain4, triangle):
        for schema in (chain4, triangle, SECTION_5_1_SCHEMA):
            state = random_ur_database(schema, tuple_count=15, domain_size=3, rng=2)
            for sub in schema.iter_sub_schemas():
                assert check_theorem_5_1(schema, sub, state)

    def test_corollary_5_2(self, small_tree_schemas):
        for schema in small_tree_schemas:
            if len(schema) > 5:
                continue
            for sub in schema.iter_sub_schemas():
                assert check_corollary_5_2(schema, sub)

    def test_theorem_5_2(self):
        for schema in ALL_SMALL_SCHEMAS:
            for size in (1, 2):
                target = schema.attributes.sorted_attributes()[:size]
                assert check_theorem_5_2(schema, target)

    @pytest.mark.parametrize("schema", ALL_SMALL_SCHEMAS, ids=str)
    def test_theorem_5_3(self, schema):
        assert check_theorem_5_3(schema)

    @pytest.mark.parametrize(
        "schema",
        [parse_schema("ab,bc"), parse_schema("abc,ab,bc"), aring(4), aclique(3)],
        ids=str,
    )
    def test_corollary_5_3_gamma(self, schema):
        assert check_corollary_5_3_gamma(schema)


class TestCheckersOnRandomTrees:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_tree_schema_passes_all_section3_checkers(self, seed):
        schema = random_tree_schema(5, rng=seed)
        assert check_lemma_3_1(schema)
        assert check_corollary_3_1(schema)
        assert check_theorem_3_2(schema)
        target = schema.attributes.sorted_attributes()[:2]
        assert check_theorem_3_3(schema, target)
        assert check_theorem_5_2(schema, target)
