"""Shared test configuration and fixtures.

The ``src`` layout is added to ``sys.path`` as a fallback so the suite also
runs in environments where the editable install is unavailable (e.g. fully
offline machines); when ``repro`` is already installed the import below is a
no-op.
"""

from __future__ import annotations

import os
import random
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, _SRC)

from repro.hypergraph import aclique, aring, chain_schema, parse_schema  # noqa: E402


@pytest.fixture
def rng():
    """A deterministic random generator for tests that sample."""
    return random.Random(20260613)


@pytest.fixture
def chain4():
    """The tree schema ``(ab, bc, cd)`` of Figure 1."""
    return parse_schema("ab,bc,cd")


@pytest.fixture
def triangle():
    """The cyclic schema ``(ab, bc, ac)`` of Figure 1 (the Aring of size 3)."""
    return parse_schema("ab,bc,ac")


@pytest.fixture
def figure1_tree():
    """The tree schema ``(abc, cde, ace, afe)`` of Figure 1."""
    return parse_schema("abc,cde,ace,afe")


@pytest.fixture
def aring4():
    """The Aring of size 4 (Figure 2a)."""
    return aring(4)


@pytest.fixture
def aclique4():
    """The Aclique of size 4 (Figure 2b)."""
    return aclique(4)


@pytest.fixture
def small_tree_schemas():
    """A handful of small tree schemas used across parametrized tests."""
    return [
        parse_schema("ab"),
        parse_schema("ab,bc"),
        parse_schema("ab,bc,cd"),
        parse_schema("abc,cde,ace,afe"),
        parse_schema("abc,ab,bc"),
        chain_schema(5),
    ]


@pytest.fixture
def small_cyclic_schemas():
    """A handful of small cyclic schemas used across parametrized tests."""
    return [
        parse_schema("ab,bc,ac"),
        aring(4),
        aring(5),
        aclique(3),
        aclique(4),
        parse_schema("ab,bc,cd,da,ac"),
    ]
