"""Tests that the paper's figures and in-text examples behave exactly as stated."""

from __future__ import annotations

from repro.figures import (
    FIGURE_1_CASES,
    FIGURE_2_ACLIQUE_4,
    FIGURE_2_ARING_4,
    FIGURE_2C_ACLIQUE_DELETION,
    FIGURE_2C_ARING_DELETION,
    FIGURE_2C_SCHEMA,
    FIGURE_7_ACLIQUE_PAIR,
    FIGURE_7_ARING_PAIR,
    SECTION_3_2_D,
    SECTION_3_2_D_DOUBLE_PRIME,
    SECTION_3_2_D_PRIME,
    SECTION_5_1_SCHEMA,
    SECTION_5_1_SUBSCHEMA,
    SECTION_6_EXPECTED_CC,
    SECTION_6_SCHEMA,
    SECTION_6_TARGET,
)
from repro.core import jd_implies, plan_join_query
from repro.hypergraph import (
    is_aclique,
    is_aring,
    is_cyclic_schema,
    is_subtree,
    is_tree_schema,
)
from repro.tableau import canonical_connection
from repro.treeproj import find_tree_projection, is_tree_projection


class TestFigure1:
    def test_classification(self):
        for schema, expected_tree in FIGURE_1_CASES:
            assert is_tree_schema(schema) == expected_tree, schema


class TestFigure2:
    def test_building_blocks(self):
        assert is_aring(FIGURE_2_ARING_4)
        assert is_aclique(FIGURE_2_ACLIQUE_4)
        assert is_cyclic_schema(FIGURE_2_ARING_4)
        assert is_cyclic_schema(FIGURE_2_ACLIQUE_4)

    def test_figure_2c_reductions_match_caption(self):
        assert is_cyclic_schema(FIGURE_2C_SCHEMA)
        ring_core = (
            FIGURE_2C_SCHEMA.delete_attributes(FIGURE_2C_ARING_DELETION)
            .reduction()
            .without_empty_relations()
        )
        clique_core = (
            FIGURE_2C_SCHEMA.delete_attributes(FIGURE_2C_ACLIQUE_DELETION)
            .reduction()
            .without_empty_relations()
        )
        assert is_aring(ring_core) and len(ring_core) == 4
        assert is_aclique(clique_core) and len(clique_core) == 4

    def test_figure_7_pairs_exist_in_figure_2c(self):
        for pair in (FIGURE_7_ARING_PAIR, FIGURE_7_ACLIQUE_PAIR):
            for relation in pair:
                assert any(relation <= big for big in FIGURE_2C_SCHEMA.relations)

    def test_figure_7_deleting_intersection_does_not_disconnect(self):
        """Figure 7's point: inside an Aring/Aclique-based cyclic schema,
        deleting R ∩ S leaves R and S connected (the γ-acyclicity test fails)."""
        for first, second in (FIGURE_7_ARING_PAIR, FIGURE_7_ACLIQUE_PAIR):
            schema = FIGURE_2C_SCHEMA
            supersets = []
            for target in (first, second):
                supersets.append(
                    next(index for index, rel in enumerate(schema.relations) if target <= rel)
                )
            shared = schema[supersets[0]].intersection(schema[supersets[1]])
            restricted = schema.delete_attributes(shared)
            adjacency = restricted.adjacency()
            # Breadth-first search between the two supersets in the restricted schema.
            seen, stack = {supersets[0]}, [supersets[0]]
            while stack:
                node = stack.pop()
                for neighbour in adjacency[node]:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        stack.append(neighbour)
            assert supersets[1] in seen


class TestSection32Example:
    def test_sandwich_and_projection(self):
        assert SECTION_3_2_D <= SECTION_3_2_D_DOUBLE_PRIME
        assert SECTION_3_2_D_DOUBLE_PRIME <= SECTION_3_2_D_PRIME
        assert is_tree_schema(SECTION_3_2_D_DOUBLE_PRIME)
        assert is_cyclic_schema(SECTION_3_2_D)
        assert is_cyclic_schema(SECTION_3_2_D_PRIME)
        assert is_tree_projection(
            SECTION_3_2_D_DOUBLE_PRIME, SECTION_3_2_D_PRIME, SECTION_3_2_D
        )

    def test_search_recovers_some_projection(self):
        result = find_tree_projection(SECTION_3_2_D_PRIME, SECTION_3_2_D)
        assert result.found


class TestSection51Example:
    def test_counterexample(self):
        assert is_tree_schema(SECTION_5_1_SCHEMA)
        assert not jd_implies(SECTION_5_1_SCHEMA, SECTION_5_1_SUBSCHEMA)
        assert not is_subtree(SECTION_5_1_SCHEMA, SECTION_5_1_SUBSCHEMA)


class TestSection6Example:
    def test_canonical_connection_matches_paper(self):
        assert canonical_connection(SECTION_6_SCHEMA, SECTION_6_TARGET) == SECTION_6_EXPECTED_CC

    def test_irrelevant_relations_are_ad_de_ea(self):
        plan = plan_join_query(SECTION_6_SCHEMA, SECTION_6_TARGET)
        irrelevant = {SECTION_6_SCHEMA[i].to_notation() for i in plan.irrelevant_relations}
        assert irrelevant == {"ad", "de", "ae"}
