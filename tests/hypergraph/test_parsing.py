"""Unit tests for the schema notation parser/formatter."""

from __future__ import annotations

import pytest

from repro.exceptions import ParseError
from repro.hypergraph import (
    RelationSchema,
    format_relation,
    format_schema,
    parse_relation,
    parse_schema,
)


class TestParseRelation:
    def test_single_characters(self):
        assert parse_relation("abc") == RelationSchema("abc")

    def test_whitespace_is_stripped(self):
        assert parse_relation("  ab ") == RelationSchema("ab")

    def test_explicit_separator(self):
        parsed = parse_relation("emp_id; dept", attribute_separator=";")
        assert parsed.attributes == frozenset({"emp_id", "dept"})

    def test_empty_forms(self):
        assert parse_relation("") == RelationSchema()
        assert parse_relation("{}") == RelationSchema()


class TestParseSchema:
    def test_paper_notation(self):
        schema = parse_schema("ab, bc, cd")
        assert [r.to_notation() for r in schema.relations] == ["ab", "bc", "cd"]

    def test_parentheses_tolerated(self):
        assert parse_schema("(ab, bc, ac)") == parse_schema("ab,bc,ac")
        assert parse_schema("{ab, bc}") == parse_schema("ab,bc")

    def test_empty_schema(self):
        assert len(parse_schema("")) == 0
        assert len(parse_schema("()")) == 0

    def test_multi_character_attributes(self):
        schema = parse_schema(
            "emp_id dept | dept mgr", relation_separator="|", attribute_separator=" "
        )
        assert len(schema) == 2
        assert schema.attributes.attributes == {"emp_id", "dept", "mgr"}

    def test_duplicate_relations_preserved(self):
        assert len(parse_schema("ab,ab")) == 2

    def test_same_separators_rejected(self):
        with pytest.raises(ParseError):
            parse_schema("a,b", relation_separator=",", attribute_separator=",")

    def test_non_string_rejected(self):
        with pytest.raises(ParseError):
            parse_schema(123)  # type: ignore[arg-type]


class TestFormatting:
    def test_round_trip(self):
        text = "(ab, bc, cd)"
        assert format_schema(parse_schema(text)) == text

    def test_format_relation(self):
        assert format_relation(RelationSchema("ba")) == "ab"

    def test_format_is_sorted_and_deterministic(self):
        assert format_schema(parse_schema("cd,ab,bc")) == "(ab, bc, cd)"

    def test_format_without_parentheses(self):
        assert format_schema(parse_schema("ab"), parenthesize=False) == "ab"
