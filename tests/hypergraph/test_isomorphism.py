"""Unit tests for schema isomorphism under attribute renaming."""

from __future__ import annotations

from repro.hypergraph import (
    aclique,
    aring,
    are_isomorphic,
    attribute_profile,
    chain_schema,
    find_isomorphism,
    parse_schema,
)


class TestIsomorphism:
    def test_identical_schemas_are_isomorphic(self, figure1_tree):
        mapping = find_isomorphism(figure1_tree, figure1_tree)
        assert mapping is not None
        image = figure1_tree.restrict_attributes(figure1_tree.attributes)
        assert image == figure1_tree

    def test_renamed_ring(self):
        assert are_isomorphic(aring(4), parse_schema("xy,yz,zw,wx"))
        assert are_isomorphic(aring(5, "vwxyz"), aring(5))

    def test_renamed_clique(self):
        assert are_isomorphic(aclique(4), aclique(4, "wxyz"))

    def test_mapping_is_a_valid_bijection(self):
        mapping = find_isomorphism(aring(4), parse_schema("xy,yz,zw,wx"))
        assert mapping is not None
        assert sorted(mapping.keys()) == ["a", "b", "c", "d"]
        assert sorted(mapping.values()) == ["w", "x", "y", "z"]

    def test_ring_and_chain_not_isomorphic(self):
        assert not are_isomorphic(aring(4), chain_schema(4))

    def test_ring_and_clique_not_isomorphic(self):
        assert not are_isomorphic(aring(4), aclique(4))

    def test_different_sizes_not_isomorphic(self):
        assert not are_isomorphic(aring(4), aring(5))
        assert not are_isomorphic(parse_schema("ab"), parse_schema("abc"))

    def test_multiplicity_matters(self):
        assert not are_isomorphic(parse_schema("ab,ab"), parse_schema("ab,ac"))
        assert are_isomorphic(parse_schema("ab,ab"), parse_schema("xy,xy"))

    def test_same_degree_sequence_but_different_structure(self):
        # Both have four binary edges over four attributes, but one is a ring
        # and the other is a multigraph-like double path.
        first = aring(4)
        second = parse_schema("ab,ab,cd,cd")
        assert not are_isomorphic(first, second)

    def test_attribute_profile_is_invariant(self):
        ring = aring(4)
        renamed = parse_schema("xy,yz,zw,wx")
        profiles_first = sorted(
            attribute_profile(ring, attribute) for attribute in ring.attributes
        )
        profiles_second = sorted(
            attribute_profile(renamed, attribute) for attribute in renamed.attributes
        )
        assert profiles_first == profiles_second
