"""Unit tests for Arings, Acliques and Lemma 3.1."""

from __future__ import annotations

import pytest

from repro.exceptions import SchemaError
from repro.hypergraph import (
    aclique,
    aring,
    are_isomorphic,
    default_attribute_names,
    find_aring_or_aclique_witness,
    is_aclique,
    is_aring,
    is_cyclic_schema,
    parse_schema,
    verify_lemma_3_1,
)


class TestConstructors:
    def test_aring_structure(self):
        ring = aring(5)
        assert len(ring) == 5
        assert len(ring.attributes) == 5
        assert all(len(rel) == 2 for rel in ring.relations)

    def test_aclique_structure(self):
        clique = aclique(5)
        assert len(clique) == 5
        assert len(clique.attributes) == 5
        assert all(len(rel) == 4 for rel in clique.relations)

    def test_custom_attribute_names(self):
        ring = aring(3, ["x", "y", "z"])
        assert ring.attributes.attributes == {"x", "y", "z"}

    def test_size_validation(self):
        with pytest.raises(SchemaError):
            aring(2)
        with pytest.raises(SchemaError):
            aclique(2)
        with pytest.raises(SchemaError):
            aring(4, ["a", "b", "c"])
        with pytest.raises(SchemaError):
            aring(3, ["a", "a", "b"])

    def test_default_attribute_names_unique(self):
        names = default_attribute_names(60)
        assert len(set(names)) == 60
        assert names[0] == "a" and names[26] == "a1"


class TestRecognizers:
    def test_paper_figures(self, aring4, aclique4):
        assert is_aring(aring4)
        assert is_aclique(aclique4)
        assert is_aring(parse_schema("ab,bc,cd,da"))
        assert is_aclique(parse_schema("bcd,acd,abd,abc"))

    def test_triangle_is_both_forms_of_size_3(self, triangle):
        # The Aring and Aclique of size 3 coincide.
        assert is_aring(triangle)
        assert is_aclique(triangle)

    def test_recognition_up_to_renaming(self):
        assert is_aring(parse_schema("xy,yz,zw,wx"))
        assert are_isomorphic(parse_schema("xy,yz,zw,wx"), aring(4))

    def test_non_examples(self, chain4, figure1_tree):
        assert not is_aring(chain4)
        assert not is_aclique(chain4)
        assert not is_aring(figure1_tree)
        assert not is_aclique(figure1_tree)
        assert not is_aring(parse_schema("ab,bc,cd,da,ac"))  # a chord breaks it
        assert not is_aclique(aclique(4).add_relation("abcd"))

    def test_duplicates_rejected(self):
        assert not is_aring(parse_schema("ab,ab,bc"))


class TestLemma31:
    def test_every_aring_and_aclique_is_its_own_witness(self):
        for size in (3, 4, 5):
            witness = find_aring_or_aclique_witness(aring(size))
            assert witness is not None
            assert len(witness.deleted_attributes) == 0
            witness = find_aring_or_aclique_witness(aclique(size))
            assert witness is not None
            assert witness.kind == "aclique" or size == 3

    def test_tree_schemas_have_no_witness(self, small_tree_schemas):
        for schema in small_tree_schemas:
            assert find_aring_or_aclique_witness(schema) is None, schema

    def test_cyclic_schemas_have_witnesses(self, small_cyclic_schemas):
        for schema in small_cyclic_schemas:
            witness = find_aring_or_aclique_witness(schema)
            assert witness is not None, schema
            core = (
                schema.delete_attributes(witness.deleted_attributes)
                .reduction()
                .without_empty_relations()
            )
            assert core == witness.core
            assert is_aring(core) or is_aclique(core)

    def test_figure_2c_reconstruction(self):
        from repro.figures import (
            FIGURE_2C_ACLIQUE_DELETION,
            FIGURE_2C_ARING_DELETION,
            FIGURE_2C_SCHEMA,
        )

        assert is_cyclic_schema(FIGURE_2C_SCHEMA)
        ring_core = (
            FIGURE_2C_SCHEMA.delete_attributes(FIGURE_2C_ARING_DELETION)
            .reduction()
            .without_empty_relations()
        )
        clique_core = (
            FIGURE_2C_SCHEMA.delete_attributes(FIGURE_2C_ACLIQUE_DELETION)
            .reduction()
            .without_empty_relations()
        )
        assert is_aring(ring_core) and len(ring_core) == 4
        assert is_aclique(clique_core) and len(clique_core) == 4

    def test_verify_lemma_on_mixed_instances(
        self, small_tree_schemas, small_cyclic_schemas
    ):
        for schema in small_tree_schemas + small_cyclic_schemas:
            assert verify_lemma_3_1(schema), schema

    def test_witness_description_mentions_kind(self, triangle):
        witness = find_aring_or_aclique_witness(triangle)
        assert "aring" in witness.describe() or "aclique" in witness.describe()
