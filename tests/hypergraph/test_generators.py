"""Unit tests for the schema generators (the benchmark workload builders)."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import SchemaError
from repro.hypergraph import (
    chain_schema,
    clique_of_rings,
    fan_schema,
    grid_schema,
    is_cyclic_schema,
    is_gamma_acyclic,
    is_tree_schema,
    random_cyclic_schema,
    random_schema,
    random_tree_schema,
    star_schema,
)


class TestDeterministicFamilies:
    def test_chain_is_tree_and_gamma_acyclic(self):
        for length in (1, 2, 5, 10):
            schema = chain_schema(length)
            assert len(schema) == length
            assert is_tree_schema(schema)
            assert is_gamma_acyclic(schema)

    def test_star_is_tree(self):
        schema = star_schema(6)
        assert len(schema) == 6
        assert is_tree_schema(schema)

    def test_fan_is_tree(self):
        schema = fan_schema(5)
        assert is_tree_schema(schema)
        assert len(schema) == 6

    def test_grid_2x2_and_larger_are_cyclic(self):
        assert is_cyclic_schema(grid_schema(2, 2))
        assert is_cyclic_schema(grid_schema(3, 3))

    def test_degenerate_grid_is_a_chain(self):
        assert is_tree_schema(grid_schema(1, 5))

    def test_clique_of_rings_is_cyclic_and_disconnected(self):
        schema = clique_of_rings(3, ring_size=4)
        assert len(schema) == 12
        assert is_cyclic_schema(schema)
        assert len(schema.connected_components()) == 3

    def test_validation(self):
        with pytest.raises(SchemaError):
            chain_schema(0)
        with pytest.raises(SchemaError):
            star_schema(0)
        with pytest.raises(SchemaError):
            fan_schema(1)
        with pytest.raises(SchemaError):
            grid_schema(0, 3)
        with pytest.raises(SchemaError):
            clique_of_rings(0)


class TestRandomFamilies:
    def test_random_tree_schema_is_always_a_tree(self):
        for seed in range(20):
            schema = random_tree_schema(10, rng=seed)
            assert len(schema) == 10
            assert is_tree_schema(schema)

    def test_random_cyclic_schema_is_always_cyclic(self):
        for seed in range(20):
            schema = random_cyclic_schema(8, rng=seed)
            assert len(schema) == 8
            assert is_cyclic_schema(schema)

    def test_random_cyclic_schema_is_connected_when_possible(self):
        schema = random_cyclic_schema(8, rng=3)
        assert schema.is_connected()

    def test_seed_reproducibility(self):
        assert random_tree_schema(9, rng=42) == random_tree_schema(9, rng=42)
        assert random_schema(6, 8, rng=7) == random_schema(6, 8, rng=7)

    def test_random_generator_instance_is_accepted(self):
        generator = random.Random(11)
        schema = random_tree_schema(5, rng=generator)
        assert is_tree_schema(schema)

    def test_random_schema_respects_bounds(self):
        schema = random_schema(15, 6, min_arity=2, max_arity=3, rng=1)
        assert len(schema) == 15
        assert all(2 <= len(rel) <= 3 for rel in schema.relations)
        assert len(schema.attributes) <= 6

    def test_random_schema_validation(self):
        with pytest.raises(SchemaError):
            random_schema(0, 5)
        with pytest.raises(SchemaError):
            random_schema(3, 5, min_arity=4, max_arity=2)
        with pytest.raises(SchemaError):
            random_tree_schema(0)
        with pytest.raises(SchemaError):
            random_cyclic_schema(2, ring_size=3)
