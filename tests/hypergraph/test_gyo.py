"""Unit tests for the GYO reduction engine (Section 3.3)."""

from __future__ import annotations

import pytest

from repro.exceptions import GYOError
from repro.hypergraph import (
    AttributeDeletion,
    GYOReduction,
    SubsetElimination,
    aclique,
    aring,
    chain_schema,
    gyo_reduce,
    gyo_reduction,
    is_cyclic_schema,
    is_partial_gyo_reduction,
    is_tree_schema,
    parse_schema,
)


class TestInteractiveReducer:
    def test_validates_attribute_deletion(self, chain4):
        reducer = GYOReduction(chain4)
        # 'b' occurs in two relations, so it is not isolated.
        assert not reducer.can_delete_attribute(0, "b")
        with pytest.raises(GYOError):
            reducer.delete_attribute(0, "b")
        # 'a' occurs only in relation 0.
        assert reducer.can_delete_attribute(0, "a")
        step = reducer.delete_attribute(0, "a")
        assert isinstance(step, AttributeDeletion)
        assert reducer.current_attributes(0).to_notation() == "b"

    def test_sacred_attributes_cannot_be_deleted(self, chain4):
        reducer = GYOReduction(chain4, sacred="a")
        assert not reducer.can_delete_attribute(0, "a")
        with pytest.raises(GYOError):
            reducer.delete_attribute(0, "a")

    def test_subset_elimination_requires_subset(self, chain4):
        reducer = GYOReduction(chain4)
        with pytest.raises(GYOError):
            reducer.eliminate_subset(0, 1)
        reducer.delete_attribute(0, "a")
        step = reducer.eliminate_subset(0, 1)
        assert isinstance(step, SubsetElimination)
        assert reducer.alive_indices() == (1, 2)

    def test_eliminated_relation_cannot_be_reused(self, chain4):
        reducer = GYOReduction(chain4)
        reducer.delete_attribute(0, "a")
        reducer.eliminate_subset(0, 1)
        with pytest.raises(GYOError):
            reducer.delete_attribute(0, "b")
        with pytest.raises(GYOError):
            reducer.eliminate_subset(1, 0)

    def test_self_elimination_rejected(self, chain4):
        reducer = GYOReduction(chain4)
        with pytest.raises(GYOError):
            reducer.eliminate_subset(1, 1)

    def test_applicable_operations_listing(self, triangle):
        reducer = GYOReduction(triangle)
        # The triangle has no isolated attributes and no subsets: it is GYO-reduced.
        assert reducer.applicable_operations() == []
        assert reducer.is_complete()

    def test_replay_of_recorded_trace(self, figure1_tree):
        trace = gyo_reduce(figure1_tree)
        replay = GYOReduction(figure1_tree)
        for step in trace.steps:
            replay.apply(step)
        assert replay.current_schema() == trace.result
        assert replay.is_complete()


class TestReductionResults:
    def test_tree_schema_reduces_to_empty(self, chain4):
        trace = gyo_reduce(chain4)
        assert trace.is_fully_reduced_to_empty
        assert not trace.result.attributes
        assert len(trace.parents) == len(chain4) - 1

    def test_cyclic_schema_is_its_own_reduction(self, triangle):
        assert gyo_reduction(triangle) == triangle

    def test_aclique_is_gyo_reduced(self, aclique4):
        assert gyo_reduction(aclique4) == aclique4

    def test_result_is_reduced_schema(self, small_tree_schemas, small_cyclic_schemas):
        for schema in small_tree_schemas + small_cyclic_schemas:
            assert gyo_reduction(schema).is_reduced()

    def test_sacred_attributes_survive(self, chain4):
        reduced = gyo_reduction(chain4, "ad")
        assert reduced == chain4  # b, c are shared; a, d are sacred

    def test_sacred_subset_case(self):
        # With X = {b, c} the chain collapses onto the middle relation.
        reduced = gyo_reduction(parse_schema("ab,bc,cd"), "bc")
        assert reduced == parse_schema("bc")

    def test_duplicate_relations_collapse(self):
        assert gyo_reduction(parse_schema("ab,ab")).attributes.to_notation() == "{}"
        assert is_tree_schema(parse_schema("ab,ab"))

    def test_disconnected_tree_schema(self):
        assert is_tree_schema(parse_schema("ab,cd"))

    def test_empty_schema_is_tree(self):
        assert is_tree_schema(parse_schema(""))

    def test_trace_elimination_order_matches_parents(self, figure1_tree):
        trace = gyo_reduce(figure1_tree)
        assert dict(trace.elimination_order()) == trace.parents
        assert set(trace.eliminated_indices()) | set(trace.survivors) == set(
            range(len(figure1_tree))
        )


class TestClassification:
    def test_figure1(self, chain4, triangle, figure1_tree):
        assert is_tree_schema(chain4)
        assert is_cyclic_schema(triangle)
        assert is_tree_schema(figure1_tree)

    def test_arings_and_acliques_are_cyclic(self):
        for size in (3, 4, 5, 6):
            assert is_cyclic_schema(aring(size))
            assert is_cyclic_schema(aclique(size))

    def test_chains_and_fans_are_trees(self):
        for size in (1, 2, 5, 20):
            assert is_tree_schema(chain_schema(size))

    def test_large_chain_reduces_quickly(self):
        assert is_tree_schema(chain_schema(500))

    def test_adding_big_relation_treefies_ring(self, aring4):
        assert is_tree_schema(aring4.add_relation(aring4.attributes))


class TestPartialReductionMembership:
    def test_trivial_membership(self, chain4):
        assert is_partial_gyo_reduction(chain4, "", chain4)

    def test_reachable_intermediate(self):
        schema = parse_schema("ab,bc,cd")
        assert is_partial_gyo_reduction(schema, "ab", parse_schema("ab,b"))

    def test_unreachable_schema(self):
        schema = parse_schema("ab,bc,cd")
        assert not is_partial_gyo_reduction(schema, "", parse_schema("xy"))

    def test_full_reduction_is_member(self, figure1_tree):
        target = gyo_reduction(figure1_tree)
        assert is_partial_gyo_reduction(figure1_tree, "", target)
