"""Unit tests for the GYO reduction engine (Section 3.3)."""

from __future__ import annotations

import pytest

from repro.exceptions import GYOError
from repro.hypergraph import (
    AttributeDeletion,
    GYOReduction,
    RelationSchema,
    SubsetElimination,
    aclique,
    aring,
    chain_schema,
    gyo_reduce,
    gyo_reduction,
    is_cyclic_schema,
    is_partial_gyo_reduction,
    is_tree_schema,
    parse_schema,
)


class TestInteractiveReducer:
    def test_validates_attribute_deletion(self, chain4):
        reducer = GYOReduction(chain4)
        # 'b' occurs in two relations, so it is not isolated.
        assert not reducer.can_delete_attribute(0, "b")
        with pytest.raises(GYOError):
            reducer.delete_attribute(0, "b")
        # 'a' occurs only in relation 0.
        assert reducer.can_delete_attribute(0, "a")
        step = reducer.delete_attribute(0, "a")
        assert isinstance(step, AttributeDeletion)
        assert reducer.current_attributes(0).to_notation() == "b"

    def test_sacred_attributes_cannot_be_deleted(self, chain4):
        reducer = GYOReduction(chain4, sacred="a")
        assert not reducer.can_delete_attribute(0, "a")
        with pytest.raises(GYOError):
            reducer.delete_attribute(0, "a")

    def test_subset_elimination_requires_subset(self, chain4):
        reducer = GYOReduction(chain4)
        with pytest.raises(GYOError):
            reducer.eliminate_subset(0, 1)
        reducer.delete_attribute(0, "a")
        step = reducer.eliminate_subset(0, 1)
        assert isinstance(step, SubsetElimination)
        assert reducer.alive_indices() == (1, 2)

    def test_eliminated_relation_cannot_be_reused(self, chain4):
        reducer = GYOReduction(chain4)
        reducer.delete_attribute(0, "a")
        reducer.eliminate_subset(0, 1)
        with pytest.raises(GYOError):
            reducer.delete_attribute(0, "b")
        with pytest.raises(GYOError):
            reducer.eliminate_subset(1, 0)

    def test_self_elimination_rejected(self, chain4):
        reducer = GYOReduction(chain4)
        with pytest.raises(GYOError):
            reducer.eliminate_subset(1, 1)

    def test_applicable_operations_listing(self, triangle):
        reducer = GYOReduction(triangle)
        # The triangle has no isolated attributes and no subsets: it is GYO-reduced.
        assert reducer.applicable_operations() == []
        assert reducer.is_complete()

    def test_replay_of_recorded_trace(self, figure1_tree):
        trace = gyo_reduce(figure1_tree)
        replay = GYOReduction(figure1_tree)
        for step in trace.steps:
            replay.apply(step)
        assert replay.current_schema() == trace.result
        assert replay.is_complete()


class TestReductionResults:
    def test_tree_schema_reduces_to_empty(self, chain4):
        trace = gyo_reduce(chain4)
        assert trace.is_fully_reduced_to_empty
        assert not trace.result.attributes
        assert len(trace.parents) == len(chain4) - 1

    def test_cyclic_schema_is_its_own_reduction(self, triangle):
        assert gyo_reduction(triangle) == triangle

    def test_aclique_is_gyo_reduced(self, aclique4):
        assert gyo_reduction(aclique4) == aclique4

    def test_result_is_reduced_schema(self, small_tree_schemas, small_cyclic_schemas):
        for schema in small_tree_schemas + small_cyclic_schemas:
            assert gyo_reduction(schema).is_reduced()

    def test_sacred_attributes_survive(self, chain4):
        reduced = gyo_reduction(chain4, "ad")
        assert reduced == chain4  # b, c are shared; a, d are sacred

    def test_sacred_subset_case(self):
        # With X = {b, c} the chain collapses onto the middle relation.
        reduced = gyo_reduction(parse_schema("ab,bc,cd"), "bc")
        assert reduced == parse_schema("bc")

    def test_duplicate_relations_collapse(self):
        assert gyo_reduction(parse_schema("ab,ab")).attributes.to_notation() == "{}"
        assert is_tree_schema(parse_schema("ab,ab"))

    def test_disconnected_tree_schema(self):
        assert is_tree_schema(parse_schema("ab,cd"))

    def test_empty_schema_is_tree(self):
        assert is_tree_schema(parse_schema(""))

    def test_trace_elimination_order_matches_parents(self, figure1_tree):
        trace = gyo_reduce(figure1_tree)
        assert dict(trace.elimination_order()) == trace.parents
        assert set(trace.eliminated_indices()) | set(trace.survivors) == set(
            range(len(figure1_tree))
        )


class TestClassification:
    def test_figure1(self, chain4, triangle, figure1_tree):
        assert is_tree_schema(chain4)
        assert is_cyclic_schema(triangle)
        assert is_tree_schema(figure1_tree)

    def test_arings_and_acliques_are_cyclic(self):
        for size in (3, 4, 5, 6):
            assert is_cyclic_schema(aring(size))
            assert is_cyclic_schema(aclique(size))

    def test_chains_and_fans_are_trees(self):
        for size in (1, 2, 5, 20):
            assert is_tree_schema(chain_schema(size))

    def test_large_chain_reduces_quickly(self):
        assert is_tree_schema(chain_schema(500))

    def test_adding_big_relation_treefies_ring(self, aring4):
        assert is_tree_schema(aring4.add_relation(aring4.attributes))


class TestPartialReductionMembership:
    def test_trivial_membership(self, chain4):
        assert is_partial_gyo_reduction(chain4, "", chain4)

    def test_reachable_intermediate(self):
        schema = parse_schema("ab,bc,cd")
        assert is_partial_gyo_reduction(schema, "ab", parse_schema("ab,b"))

    def test_unreachable_schema(self):
        schema = parse_schema("ab,bc,cd")
        assert not is_partial_gyo_reduction(schema, "", parse_schema("xy"))

    def test_full_reduction_is_member(self, figure1_tree):
        target = gyo_reduction(figure1_tree)
        assert is_partial_gyo_reduction(figure1_tree, "", target)


class TestTracePackagingReuse:
    """Sacred-set (and no-op) reductions reuse original schema objects
    instead of rebuilding every surviving relation schema (PR-4)."""

    def test_noop_sacred_reduction_returns_original_schema_object(self):
        schema = chain_schema(6)
        sacred = RelationSchema(schema.attributes)  # everything sacred: no-op
        reducer = GYOReduction(schema, sacred)
        reducer.run_to_completion()
        assert reducer.steps == ()
        assert reducer.current_schema() is schema
        trace = reducer.trace()
        assert trace.result is schema
        assert trace.survivors == tuple(range(len(schema)))

    def test_chain_endpoint_sacred_reduction_is_fixpoint(self):
        schema = chain_schema(5)
        trace = gyo_reduce(schema, RelationSchema({"x0", "x5"}))
        assert trace.result == schema  # nothing applies: GR(D, X) = D
        assert not trace.steps
        # The direct reducer hands back its input object verbatim (the
        # cached-analysis path may serve an equal schema instead).
        direct = GYOReduction(schema, RelationSchema({"x0", "x5"}))
        assert direct.run_to_completion().trace().result is schema

    def test_untouched_survivors_share_relation_schema_objects(self):
        schema = parse_schema("ab,bc,cd,d")
        # Sacred {a, b}: relation 3 ("d") has d isolated? d occurs in cd and
        # d -> not isolated; "d" ⊆ "cd" -> eliminated; then d isolated in cd.
        reducer = GYOReduction(schema, RelationSchema("ab"))
        reducer.run_to_completion()
        trace = reducer.trace()
        survivors = dict(zip(trace.survivors, trace.result.relations))
        for index, relation in survivors.items():
            if relation == schema[index]:
                # Unmodified survivors are the original objects, not copies.
                assert relation is schema[index]

    def test_modified_survivors_are_rebuilt_correctly(self):
        schema = parse_schema("ab,bc,cd")
        # No sacred set: the chain collapses; attribute deletions modify
        # relations, and the packaged contents must reflect the deletions.
        trace = gyo_reduce(schema)
        assert trace.is_fully_reduced_to_empty
        reducer = GYOReduction(schema, RelationSchema("ac"))
        reducer.run_to_completion()
        result = reducer.trace().result
        # b is deletable nowhere (occurs twice) until an elimination; the
        # exact shape matters less than internal consistency:
        assert result == reducer.current_schema()
        for index in reducer.alive_indices():
            assert reducer.current_attributes(index).attributes == frozenset(
                reducer._current[index]
            )

    def test_current_attributes_reuses_unmodified_schema(self):
        schema = parse_schema("ab,bc")
        reducer = GYOReduction(schema, RelationSchema("abc"))
        reducer.run_to_completion()
        assert reducer.current_attributes(0) is schema[0]
        assert reducer.current_attributes(1) is schema[1]
