"""Unit tests for relation and database schemas (Section 2 terminology)."""

from __future__ import annotations

import pytest

from repro.exceptions import SchemaError
from repro.hypergraph import DatabaseSchema, RelationSchema, attributes_of, parse_schema


class TestRelationSchema:
    def test_construction_from_string_uses_characters(self):
        assert RelationSchema("abc").attributes == frozenset({"a", "b", "c"})

    def test_construction_from_iterable_of_names(self):
        schema = RelationSchema(["emp_id", "dept"])
        assert schema.attributes == frozenset({"emp_id", "dept"})

    def test_empty_relation_schema_is_falsy(self):
        assert not RelationSchema()
        assert len(RelationSchema()) == 0

    def test_rejects_non_string_attributes(self):
        with pytest.raises(SchemaError):
            RelationSchema([1, 2])

    def test_rejects_empty_attribute_names(self):
        with pytest.raises(SchemaError):
            RelationSchema([""])

    def test_equality_and_hash_agree_with_frozenset(self):
        assert RelationSchema("ab") == RelationSchema("ba")
        assert hash(RelationSchema("ab")) == hash(RelationSchema("ba"))
        assert RelationSchema("ab") == frozenset({"a", "b"})

    def test_subset_and_superset_relations(self):
        assert RelationSchema("ab") <= RelationSchema("abc")
        assert RelationSchema("abc") >= RelationSchema("ab")
        assert RelationSchema("ab") < RelationSchema("abc")
        assert not RelationSchema("ad") <= RelationSchema("abc")

    def test_set_algebra(self):
        left, right = RelationSchema("abc"), RelationSchema("bcd")
        assert left | right == RelationSchema("abcd")
        assert left & right == RelationSchema("bc")
        assert left - right == RelationSchema("a")
        assert left ^ right == RelationSchema("ad")
        assert RelationSchema("ab").isdisjoint(RelationSchema("cd"))

    def test_immutable(self):
        schema = RelationSchema("ab")
        with pytest.raises(AttributeError):
            schema.attributes = frozenset()

    def test_notation_single_characters_concatenated(self):
        assert RelationSchema("cab").to_notation() == "abc"

    def test_notation_multi_character_uses_separator(self):
        assert RelationSchema(["b_long", "a_long"]).to_notation() == "a_long,b_long"

    def test_empty_notation(self):
        assert RelationSchema().to_notation() == "{}"

    def test_iteration_is_sorted(self):
        assert list(RelationSchema("cba")) == ["a", "b", "c"]


class TestDatabaseSchema:
    def test_attributes_is_union(self, chain4):
        assert chain4.attributes == RelationSchema("abcd")
        assert attributes_of(chain4.relations) == RelationSchema("abcd")

    def test_multiset_equality_ignores_order(self):
        assert parse_schema("ab,bc") == parse_schema("bc,ab")
        assert hash(parse_schema("ab,bc")) == hash(parse_schema("bc,ab"))

    def test_multiset_equality_respects_multiplicity(self):
        assert parse_schema("ab,ab") != parse_schema("ab")

    def test_covering_order(self):
        big = parse_schema("abc,cde")
        small = parse_schema("ab,cd,e")
        assert small <= big
        assert big >= small
        assert not big <= small

    def test_sub_multiset(self):
        schema = parse_schema("ab,bc,ab")
        assert parse_schema("ab,ab").is_sub_multiset_of(schema)
        assert not parse_schema("ab,ab,ab").is_sub_multiset_of(schema)

    def test_reduction_removes_subsets_and_duplicates(self):
        schema = parse_schema("ab,abc,abc,b")
        assert schema.reduction() == parse_schema("abc")
        assert not schema.is_reduced()
        assert schema.reduction().is_reduced()

    def test_reduction_keeps_incomparable_relations(self, chain4):
        assert chain4.reduction() == chain4

    def test_delete_and_restrict_attributes(self):
        schema = parse_schema("abc,bcd")
        assert schema.delete_attributes("b") == parse_schema("ac,cd")
        assert schema.restrict_attributes("bc") == parse_schema("bc,bc")

    def test_add_and_remove_relation(self, chain4):
        extended = chain4.add_relation("ad")
        assert len(extended) == 4
        assert extended.remove_relation("ad") == chain4
        with pytest.raises(SchemaError):
            chain4.remove_relation("zz")

    def test_remove_relation_at_bounds(self, chain4):
        with pytest.raises(SchemaError):
            chain4.remove_relation_at(7)

    def test_attribute_occurrences(self, triangle):
        occurrences = triangle.attribute_occurrences()
        assert occurrences["a"] == (0, 2)
        assert occurrences["b"] == (0, 1)
        assert occurrences["c"] == (1, 2)

    def test_connectivity(self):
        assert parse_schema("ab,bc").is_connected()
        assert not parse_schema("ab,cd").is_connected()
        assert parse_schema("ab,cd").connected_components() == [(0,), (1,)]

    def test_single_relation_is_connected(self):
        assert parse_schema("ab").is_connected()

    def test_sub_schema_by_indices(self, chain4):
        assert chain4.sub_schema([0, 2]) == parse_schema("ab,cd")
        with pytest.raises(SchemaError):
            chain4.sub_schema([9])

    def test_iter_sub_schemas_counts(self):
        schema = parse_schema("ab,bc,cd")
        all_subs = list(schema.iter_sub_schemas())
        assert len(all_subs) == 7  # 2^3 - 1
        connected = list(schema.iter_sub_schemas(connected_only=True))
        # {ab},{bc},{cd},{ab,bc},{bc,cd},{ab,bc,cd} are connected; {ab,cd} is not.
        assert len(connected) == 6

    def test_without_empty_relations_and_dedup(self):
        schema = DatabaseSchema([RelationSchema(""), RelationSchema("ab"), RelationSchema("ab")])
        assert schema.without_empty_relations() == parse_schema("ab,ab")
        assert schema.deduplicate() == DatabaseSchema([RelationSchema(""), RelationSchema("ab")])

    def test_sorted_is_equal_as_multiset(self, figure1_tree):
        assert figure1_tree.sorted() == figure1_tree
