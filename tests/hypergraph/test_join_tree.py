"""Unit tests for join-tree construction and the subtree characterization
(Theorem 3.1)."""

from __future__ import annotations

import pytest

from repro.exceptions import NotASubSchemaError, NotATreeSchemaError
from repro.hypergraph import (
    aring,
    chain_schema,
    find_qual_tree,
    is_subtree,
    is_subtree_semantic,
    join_tree_from_gyo,
    join_tree_from_spanning_tree,
    parse_schema,
    random_tree_schema,
    subtree_witness,
)


class TestJoinTreeConstruction:
    @pytest.mark.parametrize("method", ["gyo", "spanning-tree", "exhaustive"])
    def test_tree_schemas_get_valid_qual_trees(self, method, small_tree_schemas):
        for schema in small_tree_schemas:
            tree = find_qual_tree(schema, method=method)
            assert tree is not None, schema
            assert tree.is_qual_tree(), (schema, method)

    @pytest.mark.parametrize("method", ["gyo", "spanning-tree", "exhaustive"])
    def test_cyclic_schemas_get_none(self, method, small_cyclic_schemas):
        for schema in small_cyclic_schemas:
            assert find_qual_tree(schema, method=method) is None, schema

    def test_unknown_method_rejected(self, chain4):
        with pytest.raises(ValueError):
            find_qual_tree(chain4, method="magic")

    def test_gyo_join_tree_spans_every_relation(self):
        schema = random_tree_schema(12, rng=5)
        tree = join_tree_from_gyo(schema)
        assert tree is not None
        assert len(tree.edges) == len(schema) - 1
        assert tree.is_connected()

    def test_spanning_tree_agrees_with_gyo_on_classification(self):
        for seed in range(8):
            schema = random_tree_schema(7, rng=seed)
            assert join_tree_from_spanning_tree(schema) is not None
        for size in (3, 4, 5):
            assert join_tree_from_spanning_tree(aring(size)) is None

    def test_attribute_connectivity_of_constructed_trees(self):
        for seed in range(5):
            schema = random_tree_schema(8, rng=seed)
            tree = join_tree_from_gyo(schema)
            assert tree.check_attribute_connectivity()

    def test_empty_and_singleton_schemas(self):
        assert join_tree_from_gyo(parse_schema("")).edges == frozenset()
        assert join_tree_from_gyo(parse_schema("ab")).is_qual_tree()


class TestSubtrees:
    def test_paper_examples(self, figure1_tree):
        assert is_subtree(figure1_tree, parse_schema("abc,ace"))
        assert is_subtree(figure1_tree, parse_schema("ace,cde"))
        assert is_subtree(figure1_tree, parse_schema("abc"))
        # abc and aef are only connected through ace, so they are not a subtree.
        assert not is_subtree(figure1_tree, parse_schema("abc,afe"))

    def test_section_5_1_counterexample(self):
        schema = parse_schema("abc,ab,bc")
        assert not is_subtree(schema, parse_schema("ab,bc"))
        assert is_subtree(schema, parse_schema("abc,ab"))

    def test_singleton_is_always_a_subtree(self, figure1_tree):
        for relation in figure1_tree.relations:
            assert is_subtree(figure1_tree, parse_schema(relation.to_notation()))

    def test_whole_schema_is_a_subtree(self, chain4):
        assert is_subtree(chain4, chain4)

    def test_requires_sub_multiset(self, chain4):
        with pytest.raises(NotASubSchemaError):
            is_subtree(chain4, parse_schema("xy"))

    def test_requires_tree_schema(self, triangle):
        with pytest.raises(NotATreeSchemaError):
            is_subtree(triangle, parse_schema("ab"))

    def test_syntactic_matches_semantic_on_small_trees(self, small_tree_schemas):
        for schema in small_tree_schemas:
            if len(schema) > 5:
                continue
            for sub in schema.iter_sub_schemas():
                assert is_subtree(schema, sub) == is_subtree_semantic(schema, sub), (
                    schema,
                    sub,
                )

    def test_subtree_witness_is_a_qual_tree(self, figure1_tree):
        witness = subtree_witness(figure1_tree, parse_schema("abc,ace"))
        assert witness is not None
        assert witness.is_qual_tree()

    def test_disconnected_subset_of_chain_is_not_a_subtree(self):
        chain = chain_schema(4)
        sub = chain.sub_schema([0, 3])
        assert not is_subtree(chain, sub)
