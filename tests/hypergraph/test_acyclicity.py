"""Unit tests for α-, β- and γ-acyclicity (Theorem 5.3 and extensions)."""

from __future__ import annotations

import pytest

from repro.hypergraph import (
    aclique,
    aring,
    chain_schema,
    find_weak_gamma_cycle,
    grid_schema,
    is_alpha_acyclic,
    is_beta_acyclic,
    is_beta_acyclic_bruteforce,
    is_gamma_acyclic,
    is_gamma_acyclic_via_subtrees,
    is_tree_schema,
    parse_schema,
    star_schema,
    violating_pair,
)


GAMMA_ACYCLIC = [
    parse_schema("ab"),
    parse_schema("ab,bc"),
    parse_schema("ab,bc,cd"),
    parse_schema("abc,abd"),
    star_schema(4),
    chain_schema(5),
]

NOT_GAMMA_ACYCLIC = [
    parse_schema("ab,bc,ac"),          # cyclic
    aring(4),
    aclique(4),
    parse_schema("abc,ab,bc"),          # alpha- and beta-acyclic but not gamma
    parse_schema("abc,cde,ace,afe"),    # Figure 1's tree schema is not gamma-acyclic
]


class TestAlpha:
    def test_alpha_equals_tree_schema(self, small_tree_schemas, small_cyclic_schemas):
        for schema in small_tree_schemas:
            assert is_alpha_acyclic(schema) and is_tree_schema(schema)
        for schema in small_cyclic_schemas:
            assert not is_alpha_acyclic(schema)


class TestGamma:
    @pytest.mark.parametrize("schema", GAMMA_ACYCLIC, ids=str)
    def test_gamma_acyclic_instances(self, schema):
        assert is_gamma_acyclic(schema)
        assert find_weak_gamma_cycle(schema) is None
        assert violating_pair(schema) is None

    @pytest.mark.parametrize("schema", NOT_GAMMA_ACYCLIC, ids=str)
    def test_gamma_cyclic_instances(self, schema):
        assert not is_gamma_acyclic(schema)
        assert violating_pair(schema) is not None

    @pytest.mark.parametrize("schema", GAMMA_ACYCLIC + NOT_GAMMA_ACYCLIC, ids=str)
    def test_three_characterizations_agree(self, schema):
        """Theorem 5.3: (i) no weak γ-cycle ⟺ (ii) pair disconnection ⟺
        (iii) tree + every connected subset is a subtree."""
        by_cycle = find_weak_gamma_cycle(schema) is None
        by_pairs = violating_pair(schema) is None
        by_subtrees = is_gamma_acyclic_via_subtrees(schema)
        assert by_cycle == by_pairs == by_subtrees

    def test_weak_gamma_cycle_witness_is_well_formed(self):
        schema = parse_schema("abc,ab,bc")
        cycle = find_weak_gamma_cycle(schema)
        assert cycle is not None
        assert len(cycle) >= 3
        assert len(set(cycle.attributes)) == len(cycle.attributes)
        m = len(cycle.relation_indices)
        for position in range(m):
            here = schema[cycle.relation_indices[position]]
            there = schema[cycle.relation_indices[(position + 1) % m]]
            assert cycle.attributes[position] in here.intersection(there)

    def test_gamma_cycle_description(self):
        schema = aring(4)
        cycle = find_weak_gamma_cycle(schema)
        assert cycle is not None
        assert " - " in cycle.describe(schema)

    def test_unknown_method_rejected(self, chain4):
        with pytest.raises(ValueError):
            is_gamma_acyclic(chain4, method="magic")

    def test_gamma_implies_alpha(self):
        for schema in GAMMA_ACYCLIC:
            assert is_alpha_acyclic(schema)


class TestBeta:
    def test_beta_examples(self):
        # {abc, ab, bc} is the classical beta-acyclic-but-not-gamma example.
        assert is_beta_acyclic(parse_schema("abc,ab,bc"))
        assert not is_gamma_acyclic(parse_schema("abc,ab,bc"))

    def test_beta_counterexamples(self):
        for schema in (aring(3), aring(4), aclique(4), grid_schema(2, 2)):
            assert not is_beta_acyclic(schema)

    def test_beta_matches_bruteforce_on_small_schemas(
        self, small_tree_schemas, small_cyclic_schemas
    ):
        extras = [parse_schema("abc,ab,bc"), parse_schema("abc,abd,acd"), parse_schema("abc,bcd,cde")]
        for schema in small_tree_schemas + small_cyclic_schemas + extras:
            assert is_beta_acyclic(schema) == is_beta_acyclic_bruteforce(schema), schema

    def test_beta_implies_alpha(self, small_tree_schemas):
        for schema in small_tree_schemas + [parse_schema("abc,ab,bc")]:
            if is_beta_acyclic(schema):
                assert is_alpha_acyclic(schema)

    def test_gamma_implies_beta(self):
        for schema in GAMMA_ACYCLIC:
            assert is_beta_acyclic(schema)
