"""Property-based tests (hypothesis) for the hypergraph substrate.

These check structural invariants of the GYO reduction, the acyclicity
hierarchy and the qual-tree constructions on randomly generated schemas.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.hypergraph import (
    DatabaseSchema,
    RelationSchema,
    find_qual_tree,
    gyo_reduce,
    gyo_reduction,
    is_beta_acyclic,
    is_gamma_acyclic,
    is_tree_schema,
    join_tree_from_spanning_tree,
    random_tree_schema,
)

# A modest attribute universe keeps schemas small enough for the exhaustive
# cross-checks while still hitting plenty of structural variety.
ATTRIBUTES = "abcdef"

relation_schemas = st.sets(
    st.sampled_from(list(ATTRIBUTES)), min_size=1, max_size=4
).map(RelationSchema)

database_schemas = st.lists(relation_schemas, min_size=1, max_size=5).map(DatabaseSchema)


@given(database_schemas)
@settings(max_examples=120, deadline=None)
def test_gyo_reduction_is_idempotent(schema):
    reduced = gyo_reduction(schema)
    assert gyo_reduction(reduced) == reduced


@given(database_schemas)
@settings(max_examples=120, deadline=None)
def test_gyo_reduction_result_is_reduced_and_covered(schema):
    reduced = gyo_reduction(schema)
    assert reduced.is_reduced()
    # Every surviving relation is a subset of some original relation.
    assert schema.covers(reduced)


@given(database_schemas)
@settings(max_examples=120, deadline=None)
def test_gyo_trace_accounts_for_every_relation(schema):
    trace = gyo_reduce(schema)
    assert set(trace.survivors) | set(trace.parents) == set(range(len(schema)))
    assert len(trace.survivors) + len(trace.parents) == len(schema)


@given(database_schemas, st.sets(st.sampled_from(list(ATTRIBUTES)), max_size=3))
@settings(max_examples=120, deadline=None)
def test_sacred_attributes_are_never_deleted(schema, sacred):
    reduced = gyo_reduction(schema, sacred)
    surviving_attributes = reduced.attributes.attributes
    for attribute in sacred & schema.attributes.attributes:
        assert attribute in surviving_attributes


@given(database_schemas)
@settings(max_examples=100, deadline=None)
def test_qual_tree_exists_iff_gyo_says_tree(schema):
    gyo_says = is_tree_schema(schema)
    spanning = join_tree_from_spanning_tree(schema)
    assert (spanning is not None) == gyo_says
    if spanning is not None:
        assert spanning.is_qual_tree()


@given(database_schemas)
@settings(max_examples=100, deadline=None)
def test_gyo_join_tree_is_valid_for_tree_schemas(schema):
    tree = find_qual_tree(schema)
    if is_tree_schema(schema):
        assert tree is not None and tree.is_qual_tree()
    else:
        assert tree is None


@given(database_schemas)
@settings(max_examples=80, deadline=None)
def test_acyclicity_hierarchy(schema):
    """γ-acyclic ⇒ β-acyclic ⇒ α-acyclic."""
    if is_gamma_acyclic(schema):
        assert is_beta_acyclic(schema)
    if is_beta_acyclic(schema):
        assert is_tree_schema(schema)


@given(database_schemas, st.sampled_from(list(ATTRIBUTES)))
@settings(max_examples=80, deadline=None)
def test_attribute_deletion_preserves_tree_property(schema, attribute):
    """Deleting one attribute everywhere never turns a tree schema cyclic.

    (Isolated-attribute deletion preserves schema type; deleting a shared
    attribute everywhere corresponds to a sequence of reductions on the
    shrunken schema and also cannot create a cycle.)
    """
    if is_tree_schema(schema):
        assert is_tree_schema(schema.delete_attributes({attribute}))


@given(st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=1000))
@settings(max_examples=60, deadline=None)
def test_random_tree_schema_generator_is_sound(size, seed):
    assert is_tree_schema(random_tree_schema(size, rng=seed))
