"""Unit tests for Berge acyclicity (the strictest degree of Fagin's hierarchy)."""

from __future__ import annotations

import pytest

from repro.hypergraph import aclique, aring, chain_schema, parse_schema, star_schema
from repro.hypergraph.acyclicity import is_beta_acyclic, is_gamma_acyclic
from repro.hypergraph.berge import find_berge_cycle, is_berge_acyclic
from repro.hypergraph.gyo import is_tree_schema


BERGE_ACYCLIC = [
    parse_schema("ab"),
    parse_schema("ab,bc"),
    chain_schema(5),
    star_schema(4),
    parse_schema("ab,cd"),
]

NOT_BERGE_ACYCLIC = [
    parse_schema("abc,abd"),       # two relations share two attributes
    parse_schema("ab,bc,ac"),
    aring(4),
    aclique(4),
    parse_schema("abc,ab,bc"),
    parse_schema("ab,ab"),         # duplicate relations
]


@pytest.mark.parametrize("schema", BERGE_ACYCLIC, ids=str)
def test_berge_acyclic_instances(schema):
    assert is_berge_acyclic(schema)
    assert find_berge_cycle(schema) is None


@pytest.mark.parametrize("schema", NOT_BERGE_ACYCLIC, ids=str)
def test_berge_cyclic_instances(schema):
    assert not is_berge_acyclic(schema)
    cycle = find_berge_cycle(schema)
    assert cycle is not None
    relations, attributes = cycle
    assert len(relations) >= 2 and len(attributes) >= 2


def test_berge_cycle_witness_is_sound():
    schema = parse_schema("abc,abd")
    relations, attributes = find_berge_cycle(schema)
    # Every attribute in the witness occurs in at least two of the cycle's relations.
    for attribute in attributes:
        holders = [index for index in relations if attribute in schema[index]]
        assert len(holders) >= 2


@pytest.mark.parametrize("schema", BERGE_ACYCLIC + NOT_BERGE_ACYCLIC, ids=str)
def test_hierarchy_berge_implies_gamma_beta_alpha(schema):
    if is_berge_acyclic(schema):
        assert is_gamma_acyclic(schema)
        assert is_beta_acyclic(schema)
        assert is_tree_schema(schema)


def test_strictness_of_the_hierarchy():
    # gamma-acyclic but not Berge-acyclic: two relations sharing two attributes.
    witness = parse_schema("abc,abd")
    assert is_gamma_acyclic(witness)
    assert not is_berge_acyclic(witness)
