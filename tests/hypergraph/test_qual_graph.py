"""Unit tests for qual graphs and qual trees (Section 3.1)."""

from __future__ import annotations

import pytest

from repro.exceptions import QualGraphError
from repro.hypergraph import (
    QualGraph,
    enumerate_qual_trees,
    is_qual_graph,
    parse_schema,
)


class TestQualGraphBasics:
    def test_add_edge_validation(self, chain4):
        graph = QualGraph(chain4)
        with pytest.raises(QualGraphError):
            graph.add_edge(0, 0)
        with pytest.raises(QualGraphError):
            graph.add_edge(0, 9)

    def test_neighbours_and_degree(self, chain4):
        graph = QualGraph(chain4, [(0, 1), (1, 2)])
        assert graph.neighbours(1) == (0, 2)
        assert graph.degree(1) == 2
        assert graph.degree(0) == 1

    def test_remove_edge(self, chain4):
        graph = QualGraph(chain4, [(0, 1), (1, 2)])
        graph.remove_edge(1, 0)
        assert graph.edges == frozenset({(1, 2)})

    def test_path(self, chain4):
        graph = QualGraph(chain4, [(0, 1), (1, 2)])
        assert graph.path(0, 2) == (0, 1, 2)
        assert graph.path(2, 2) == (2,)
        graph.remove_edge(1, 2)
        assert graph.path(0, 2) is None

    def test_is_tree(self, chain4):
        assert QualGraph(chain4, [(0, 1), (1, 2)]).is_tree()
        assert not QualGraph(chain4, [(0, 1)]).is_tree()  # disconnected
        assert not QualGraph(chain4, [(0, 1), (1, 2), (0, 2)]).is_tree()  # cycle


class TestQualGraphValidity:
    def test_figure1_chain_qual_tree(self, chain4):
        # ab - bc - cd: the only qual tree for the chain.
        graph = QualGraph(chain4, [(0, 1), (1, 2)])
        assert graph.is_valid()
        assert graph.is_qual_tree()

    def test_wrong_chain_ordering_is_invalid(self, chain4):
        # ab - cd - bc breaks connectivity of attribute c?  Actually it breaks b.
        graph = QualGraph(chain4, [(0, 2), (2, 1)])
        assert not graph.is_valid()
        assert "b" in graph.invalid_attributes()

    def test_figure1_four_relation_tree(self, figure1_tree):
        # abc - ace - aef with cde attached to ace (the paper's qual tree).
        indexes = {rel.to_notation(): i for i, rel in enumerate(figure1_tree.relations)}
        graph = QualGraph(
            figure1_tree,
            [
                (indexes["abc"], indexes["ace"]),
                (indexes["ace"], indexes["aef"]),
                (indexes["cde"], indexes["ace"]),
            ],
        )
        assert graph.is_qual_tree()
        assert graph.check_attribute_connectivity()

    def test_triangle_only_qual_graph_is_the_triangle(self, triangle):
        # Each attribute is shared by exactly two relations, so all three edges
        # are forced; the triangle graph is valid but is not a tree.
        full = QualGraph(triangle, [(0, 1), (1, 2), (0, 2)])
        assert full.is_valid()
        assert not full.is_tree()
        for missing in [(0, 1), (1, 2), (0, 2)]:
            edges = {(0, 1), (1, 2), (0, 2)} - {missing}
            assert not QualGraph(triangle, edges).is_valid()

    def test_is_qual_graph_function(self, chain4):
        assert is_qual_graph(chain4, [(0, 1), (1, 2)])
        assert not is_qual_graph(chain4, [(0, 2), (1, 2)])

    def test_attribute_connectivity_requires_tree(self, triangle):
        graph = QualGraph(triangle, [(0, 1), (1, 2), (0, 2)])
        with pytest.raises(QualGraphError):
            graph.check_attribute_connectivity()


class TestEnumeration:
    def test_chain_has_exactly_one_qual_tree(self, chain4):
        trees = list(enumerate_qual_trees(chain4))
        assert len(trees) == 1
        assert trees[0].edges == frozenset({(0, 1), (1, 2)})

    def test_triangle_has_no_qual_tree(self, triangle):
        assert list(enumerate_qual_trees(triangle)) == []

    def test_figure1_tree_has_at_least_the_papers_tree(self, figure1_tree):
        trees = list(enumerate_qual_trees(figure1_tree))
        assert trees, "a tree schema must admit a qual tree"
        assert all(tree.is_qual_tree() for tree in trees)

    def test_tiny_schemas(self):
        assert len(list(enumerate_qual_trees(parse_schema("ab")))) == 1
        assert len(list(enumerate_qual_trees(parse_schema("ab,ac")))) == 1
        assert len(list(enumerate_qual_trees(parse_schema("")))) == 0
