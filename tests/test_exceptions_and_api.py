"""Tests for the exception hierarchy and the top-level public API surface."""

from __future__ import annotations

import pytest

import repro
from repro import exceptions


def test_every_library_exception_derives_from_repro_error():
    specific = [
        exceptions.SchemaError,
        exceptions.ParseError,
        exceptions.NotATreeSchemaError,
        exceptions.NotASubSchemaError,
        exceptions.QualGraphError,
        exceptions.GYOError,
        exceptions.TableauError,
        exceptions.RelationError,
        exceptions.ProgramError,
        exceptions.TreeProjectionError,
        exceptions.TreeficationError,
        exceptions.SearchBudgetExceeded,
    ]
    for exception_type in specific:
        assert issubclass(exception_type, exceptions.ReproError)


def test_parse_error_is_a_schema_error():
    assert issubclass(exceptions.ParseError, exceptions.SchemaError)


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version_is_exposed():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_quick_interactive_workflow_via_top_level_names():
    schema = repro.parse_schema("ab,bc,cd")
    assert repro.is_tree_schema(schema)
    assert repro.canonical_connection(schema, "ad") == repro.gyo_reduction(schema, "ad")
    state = repro.random_ur_database(schema, tuple_count=10, domain_size=2, rng=0)
    run = repro.yannakakis(schema, repro.RelationSchema("ad"), state)
    naive, _ = repro.naive_join_project(schema, repro.RelationSchema("ad"), state)
    assert run.result == naive
