"""Property-based tests (hypothesis): the interned-symbol kernel agrees with
the retained brute-force reference on random small tableaux.

The reference implementations (:mod:`repro.tableau.reference`) are the
pre-kernel dictionary-based searches; they share no code with the kernel's
bitmask machinery, so agreement on random instances is strong evidence the
compilation, occurrence indexing and incremental minimization are faithful.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.hypergraph import DatabaseSchema, RelationSchema
from repro.tableau import (
    find_containment_mapping,
    is_minimal_tableau,
    minimize_tableau,
    standard_tableau,
    tableaux_equivalent,
    tableaux_isomorphic,
)
from repro.tableau.reference import (
    find_containment_mapping_reference,
    is_minimal_tableau_reference,
    minimize_tableau_reference,
)
from repro.tableau.tableau import Tableau

# A modest attribute universe keeps the NP-hard searches small while still
# exercising folds, distinguished pruning and shared-variable chains.
ATTRIBUTES = "abcde"

relation_schemas = st.sets(
    st.sampled_from(list(ATTRIBUTES)), min_size=1, max_size=3
).map(RelationSchema)

database_schemas = st.lists(relation_schemas, min_size=1, max_size=4).map(
    DatabaseSchema
)

targets = st.sets(st.sampled_from(list(ATTRIBUTES)), max_size=3).map(RelationSchema)


def _tableau(schema: DatabaseSchema, target: RelationSchema) -> Tableau:
    # A fixed universe makes every generated tableau share one column tuple,
    # so any two of them are containment-comparable.
    return standard_tableau(schema, target, universe=ATTRIBUTES)


def _witness_is_valid(mapping, source: Tableau, target: Tableau) -> bool:
    """Check a claimed containment mapping cell by cell."""
    if len(mapping.row_mapping) != len(source):
        return False
    for symbol, image in mapping.symbol_mapping.items():
        if symbol.is_distinguished and symbol != image:
            return False
    for row_index, row in enumerate(source.rows):
        image_row = target.rows[mapping.row_mapping[row_index]]
        for position, symbol in enumerate(row.cells):
            if mapping.symbol_mapping[symbol] != image_row.cells[position]:
                return False
    return True


@given(database_schemas, database_schemas, targets)
@settings(max_examples=100, deadline=None)
def test_containment_agrees_with_reference(first, second, target):
    source = _tableau(first, target)
    destination = _tableau(second, target)
    kernel = find_containment_mapping(source, destination)
    reference = find_containment_mapping_reference(source, destination)
    assert (kernel is None) == (reference is None)
    if kernel is not None:
        assert _witness_is_valid(kernel, source, destination)
        assert _witness_is_valid(reference, source, destination)


@given(database_schemas, targets)
@settings(max_examples=80, deadline=None)
def test_minimization_agrees_with_reference(schema, target):
    tableau = _tableau(schema, target)
    kernel = minimize_tableau(tableau)
    reference = minimize_tableau_reference(tableau)
    # Cores are unique up to isomorphism (Lemma 3.4), not up to row identity.
    assert len(kernel.minimal) == len(reference.minimal)
    assert tableaux_isomorphic(kernel.minimal, reference.minimal)
    assert kernel.minimal.is_subtableau_of(tableau)
    assert tableaux_equivalent(tableau, kernel.minimal)
    assert sorted(kernel.kept_rows + kernel.removed_rows) == list(range(len(tableau)))


@given(database_schemas, targets)
@settings(max_examples=80, deadline=None)
def test_is_minimal_agrees_with_reference(schema, target):
    tableau = _tableau(schema, target)
    assert is_minimal_tableau(tableau) == is_minimal_tableau_reference(tableau)


@given(database_schemas, targets)
@settings(max_examples=80, deadline=None)
def test_minimize_is_idempotent(schema, target):
    minimal = minimize_tableau(_tableau(schema, target)).minimal
    again = minimize_tableau(minimal)
    assert again.removed_count == 0
    assert again.minimal == minimal
    assert is_minimal_tableau(minimal)


@given(database_schemas, targets, st.randoms(use_true_random=False))
@settings(max_examples=80, deadline=None)
def test_minimization_isomorphic_under_row_permutation(schema, target, rng):
    """Lemma 3.4: the core does not depend on the row (relation) order."""
    relations = list(schema.relations)
    rng.shuffle(relations)
    permuted = DatabaseSchema(relations)
    first = minimize_tableau(_tableau(schema, target)).minimal
    second = minimize_tableau(_tableau(permuted, target)).minimal
    assert len(first) == len(second)
    assert tableaux_isomorphic(first, second)
