"""Unit tests for canonical schemas and canonical connections (CS / CC)."""

from __future__ import annotations

import pytest

from repro.hypergraph import (
    aring,
    chain_schema,
    gyo_reduction,
    is_tree_schema,
    parse_schema,
    random_tree_schema,
)
from repro.tableau import (
    canonical_connection,
    canonical_connection_result,
    canonical_schema,
    standard_tableau,
)


class TestCanonicalSchema:
    def test_standard_tableau_of_reduced_schema_reads_back(self, chain4):
        # For a reduced schema with X = U(D), CS(Tab) is the schema itself.
        tab = standard_tableau(chain4, chain4.attributes)
        assert canonical_schema(tab) == chain4

    def test_unique_columns_are_dropped(self):
        tab = standard_tableau(parse_schema("abg,bcg,acf"), "abc").subtableau([0, 1, 2])
        schema = canonical_schema(tab)
        # f occurs in a single row and is not distinguished, so it disappears.
        assert schema == parse_schema("abg,bcg,ac")


class TestCanonicalConnection:
    def test_section6_example(self):
        schema = parse_schema("abg,bcg,acf,ad,de,ea")
        assert canonical_connection(schema, "abc") == parse_schema("abg,bcg,ac")

    def test_result_object_exposes_derivation(self):
        schema = parse_schema("abg,bcg,acf,ad,de,ea")
        result = canonical_connection_result(schema, "abc")
        assert len(result.standard) == 6
        assert len(result.minimal_tableau) == 3
        assert result.connection == parse_schema("abg,bcg,ac")
        assert result.target.to_notation() == "abc"

    def test_tree_schema_cc_equals_gr(self, small_tree_schemas):
        """Theorem 3.3(ii) on concrete tree schemas and several targets."""
        for schema in small_tree_schemas:
            universe = schema.attributes.sorted_attributes()
            targets = [universe[:1], universe[:2], universe]
            for target in targets:
                cc = canonical_connection(schema, target)
                gr = gyo_reduction(schema, target).reduction()
                assert cc == gr, (schema, target)

    def test_cc_covered_by_gr_in_general(self, small_cyclic_schemas):
        """Theorem 3.3(i) on cyclic schemas."""
        for schema in small_cyclic_schemas:
            target = schema.attributes.sorted_attributes()[:2]
            cc = canonical_connection(schema, target)
            gr = gyo_reduction(schema, target)
            assert gr.covers(cc), (schema, target)

    def test_cc_with_full_target_on_ring_is_the_ring(self, aring4):
        assert canonical_connection(aring4, aring4.attributes) == aring4

    def test_cc_of_single_relation_target(self, triangle):
        # X equal to one relation of the triangle: only that relation matters.
        assert canonical_connection(triangle, "ab") == parse_schema("ab")

    def test_cc_is_reduced(self):
        for schema in (parse_schema("abc,ab,bc"), parse_schema("abg,bcg,acf,ad,de,ea")):
            cc = canonical_connection(schema, "ab")
            assert cc.is_reduced()

    def test_cc_relations_are_covered_by_schema(self, small_tree_schemas, small_cyclic_schemas):
        for schema in small_tree_schemas + small_cyclic_schemas:
            target = schema.attributes.sorted_attributes()[:2]
            cc = canonical_connection(schema, target)
            assert schema.covers(cc)

    def test_cc_idempotence(self):
        """CC(CC(D, X), X) = CC(D, X) — the canonical connection is a fixpoint."""
        schema = parse_schema("abg,bcg,acf,ad,de,ea")
        cc = canonical_connection(schema, "abc")
        assert canonical_connection(cc, "abc", universe=schema.attributes) == cc

    def test_cc_contains_target_attributes(self):
        for schema in (chain_schema(4), aring(4), parse_schema("abc,ab,bc")):
            target = schema.attributes.sorted_attributes()[:2]
            cc = canonical_connection(schema, target)
            assert set(target) <= set(cc.attributes.attributes)

    def test_padding_universe_does_not_change_cc(self):
        schema = parse_schema("ab,bc")
        assert canonical_connection(schema, "ac") == canonical_connection(
            schema, "ac", universe="abcxyz"
        )

    def test_random_tree_schemas_agree_with_gr(self):
        for seed in range(5):
            schema = random_tree_schema(5, rng=seed)
            target = schema.attributes.sorted_attributes()[:2]
            assert canonical_connection(schema, target) == gyo_reduction(
                schema, target
            ).reduction()
