"""Unit tests for tableau minimization (minimal tableaux / cores)."""

from __future__ import annotations

from repro.hypergraph import aring, chain_schema, parse_schema
from repro.tableau import (
    is_minimal_tableau,
    minimize_tableau,
    standard_tableau,
    tableaux_equivalent,
    tableaux_isomorphic,
)


class TestMinimization:
    def test_minimal_result_is_equivalent_subtableau(self, chain4):
        tab = standard_tableau(chain4, "ad")
        result = minimize_tableau(tab)
        assert result.minimal.is_subtableau_of(tab)
        assert tableaux_equivalent(tab, result.minimal)
        assert is_minimal_tableau(result.minimal)

    def test_chain_with_endpoint_target_is_already_minimal(self, chain4):
        tab = standard_tableau(chain4, "ad")
        result = minimize_tableau(tab)
        assert result.removed_count == 0
        assert result.kept_rows == (0, 1, 2)

    def test_chain_with_single_endpoint_target_collapses(self):
        # With X = {a} only the relation containing a matters.
        tab = standard_tableau(parse_schema("ab,bc,cd"), "a")
        result = minimize_tableau(tab)
        assert len(result.minimal) == 1
        assert result.kept_rows == (0,)

    def test_section6_example_keeps_three_rows(self):
        schema = parse_schema("abg,bcg,acf,ad,de,ea")
        tab = standard_tableau(schema, "abc")
        result = minimize_tableau(tab)
        assert len(result.minimal) == 3
        assert set(result.kept_rows) == {0, 1, 2}
        assert set(result.removed_rows) == {3, 4, 5}

    def test_rings_do_not_minimize(self):
        for size in (3, 4, 5):
            ring = aring(size)
            tab = standard_tableau(ring, ring.attributes)
            result = minimize_tableau(tab)
            assert result.removed_count == 0

    def test_subset_relations_are_folded_away(self):
        tab = standard_tableau(parse_schema("abc,ab,bc"), "abc")
        result = minimize_tableau(tab)
        assert len(result.minimal) == 1
        assert result.minimal.rows[0].origin == 0

    def test_two_minimal_tableaux_are_isomorphic(self):
        """Lemma 3.4: minimal tableaux for the same query are isomorphic."""
        schema = parse_schema("abg,bcg,acf,ad,de,ea")
        # Present the same query with relations listed in a different order.
        permuted = parse_schema("ea,de,ad,acf,bcg,abg")
        first = minimize_tableau(standard_tableau(schema, "abc")).minimal
        second = minimize_tableau(standard_tableau(permuted, "abc")).minimal
        assert tableaux_isomorphic(first, second)

    def test_duplicate_relations_minimize_to_one_row(self):
        tab = standard_tableau(parse_schema("ab,ab,ab"), "ab")
        result = minimize_tableau(tab)
        assert len(result.minimal) == 1

    def test_longer_chain_interior_target(self):
        schema = chain_schema(6)
        tab = standard_tableau(schema, {"x2", "x3"})
        result = minimize_tableau(tab)
        # Only the relation {x2, x3} is needed.
        assert len(result.minimal) == 1

    def test_is_minimal_tableau_detects_redundancy(self, chain4):
        tab = standard_tableau(parse_schema("abc,ab"), "abc")
        assert not is_minimal_tableau(tab)
