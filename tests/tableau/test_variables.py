"""Unit tests for tableau variable objects (kept separate for clarity)."""

from __future__ import annotations

from repro.tableau import Variable, VariableKind, distinguished, shared, unique


def test_ordering_is_total_and_stable():
    symbols = [unique("b", 2), distinguished("a"), shared("a"), unique("a", 1)]
    ordered = sorted(symbols)
    assert ordered == sorted(ordered)
    assert len(set(symbols)) == 4


def test_kind_predicates():
    assert distinguished("a").is_distinguished
    assert not distinguished("a").is_nondistinguished
    assert shared("a").is_nondistinguished
    assert unique("a", 7).is_nondistinguished


def test_value_object_semantics():
    assert distinguished("a") == Variable("a", VariableKind.DISTINGUISHED)
    assert shared("a") == Variable("a", VariableKind.SHARED)
    assert unique("a", 3) == Variable("a", VariableKind.UNIQUE, 3)
    assert hash(shared("a")) == hash(Variable("a", VariableKind.SHARED))


def test_rendering_distinguishes_the_kinds():
    renders = {distinguished("a").render(), shared("a").render(), unique("a", 1).render()}
    assert len(renders) == 3
    assert str(unique("a", 1)) == unique("a", 1).render()
