"""Unit tests for tableaux and the standard tableau ``Tab(D, X)``."""

from __future__ import annotations

import pytest

from repro.exceptions import TableauError
from repro.hypergraph import parse_schema
from repro.tableau import (
    Tableau,
    TableauRow,
    Variable,
    VariableKind,
    distinguished,
    shared,
    standard_tableau,
    unique,
)


class TestVariables:
    def test_kinds(self):
        assert distinguished("a").is_distinguished
        assert not shared("a").is_distinguished
        assert unique("a", 3).is_nondistinguished

    def test_equality_and_rendering(self):
        assert distinguished("a") == distinguished("a")
        assert shared("a") != distinguished("a")
        assert unique("a", 1) != unique("a", 2)
        assert distinguished("a").render() == "a"
        assert shared("a").render() == "a'"
        assert unique("a", 3).render() == "a''3"


class TestStandardTableau:
    def test_row_per_relation_and_summary(self, chain4):
        tab = standard_tableau(chain4, "ad")
        assert len(tab) == 3
        assert tab.columns == ("a", "b", "c", "d")
        assert tab.summary == frozenset({"a", "d"})

    def test_cell_kinds_follow_the_definition(self, chain4):
        tab = standard_tableau(chain4, "ad")
        # Row 0 is for {a, b}: a is distinguished (in X), b is the shared
        # nondistinguished variable, c and d are unique.
        assert tab.cell(0, "a") == distinguished("a")
        assert tab.cell(0, "b") == shared("b")
        assert tab.cell(0, "c").kind is VariableKind.UNIQUE
        assert tab.cell(0, "d").kind is VariableKind.UNIQUE
        # Row 2 is for {c, d}: d distinguished, c shared.
        assert tab.cell(2, "d") == distinguished("d")
        assert tab.cell(2, "c") == shared("c")

    def test_shared_variables_are_shared_across_rows(self, chain4):
        tab = standard_tableau(chain4, "ad")
        assert tab.cell(0, "b") == tab.cell(1, "b")
        assert tab.cell(1, "c") == tab.cell(2, "c")

    def test_unique_variables_are_unique(self, chain4):
        tab = standard_tableau(chain4, "ad")
        occurrences = tab.symbol_occurrences()
        for symbol, positions in occurrences.items():
            if symbol.kind is VariableKind.UNIQUE:
                assert len(positions) == 1

    def test_rows_record_their_origin(self, chain4):
        tab = standard_tableau(chain4, "ad")
        assert [row.origin for row in tab.rows] == [0, 1, 2]

    def test_explicit_universe_pads_columns(self, chain4):
        tab = standard_tableau(chain4, "a", universe="abcdz")
        assert "z" in tab.columns
        assert all(tab.cell(i, "z").kind is VariableKind.UNIQUE for i in range(3))

    def test_universe_must_cover_schema_and_target(self, chain4):
        with pytest.raises(TableauError):
            standard_tableau(chain4, "a", universe="ab")

    def test_repeated_symbols(self, chain4):
        tab = standard_tableau(chain4, "ad")
        repeated = tab.repeated_symbols()
        assert shared("b") in repeated
        assert shared("c") in repeated
        assert distinguished("a") not in repeated  # appears in one row only

    def test_render_mentions_summary(self, chain4):
        text = standard_tableau(chain4, "ad").render()
        assert "summary" in text
        assert "a''" in text or "b'" in text


class TestTableauStructure:
    def test_row_length_validation(self):
        with pytest.raises(TableauError):
            Tableau(columns=("a", "b"), rows=[(distinguished("a"),)])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(TableauError):
            Tableau(columns=("a", "a"), rows=[])

    def test_summary_must_be_a_column(self):
        with pytest.raises(TableauError):
            Tableau(columns=("a",), rows=[], summary=("z",))

    def test_subtableau_and_without_row(self, chain4):
        tab = standard_tableau(chain4, "ad")
        sub = tab.subtableau([0, 2])
        assert len(sub) == 2
        assert sub.is_subtableau_of(tab)
        assert tab.without_row(1) == sub
        with pytest.raises(TableauError):
            tab.without_row(9)

    def test_equality_is_syntactic(self, chain4):
        assert standard_tableau(chain4, "ad") == standard_tableau(chain4, "ad")
        assert standard_tableau(chain4, "ad") != standard_tableau(chain4, "a")

    def test_column_position_lookup(self, chain4):
        tab = standard_tableau(chain4, "ad")
        assert tab.column_position("c") == 2
        with pytest.raises(TableauError):
            tab.column_position("z")
