"""Unit tests for the interned-symbol tableau kernel."""

from __future__ import annotations

import repro.tableau.containment as containment_module
from repro.hypergraph import DatabaseSchema, chain_schema, parse_schema
from repro.tableau import (
    find_isomorphism,
    standard_tableau,
)
from repro.tableau.kernel import CompiledTableau, find_row_mapping, iter_bits


class TestCompiledTableau:
    def test_compiled_is_cached_on_the_tableau(self, chain4):
        tab = standard_tableau(chain4, "ad")
        assert tab.compiled() is tab.compiled()

    def test_distinguished_codes_occupy_the_low_range(self, chain4):
        tab = standard_tableau(chain4, "ad")
        compiled = tab.compiled()
        assert isinstance(compiled, CompiledTableau)
        for code, symbol in enumerate(compiled.symbols):
            assert symbol.is_distinguished == (code < compiled.n_distinguished)
            assert compiled.code_of[symbol] == code
        # chain4 = (ab, bc, cd), target ad: distinguished a and d.
        assert compiled.n_distinguished == 2

    def test_row_and_column_codes_agree(self, chain4):
        tab = standard_tableau(chain4, "ad")
        compiled = tab.compiled()
        for row_index in range(compiled.n_rows):
            for position in range(compiled.n_columns):
                assert (
                    compiled.row_codes[row_index][position]
                    == compiled.column_codes[position][row_index]
                )
                symbol = compiled.symbols[compiled.row_codes[row_index][position]]
                assert symbol == tab.rows[row_index].cells[position]

    def test_occurrence_masks_index_rows_by_code(self, chain4):
        tab = standard_tableau(chain4, "ad")
        compiled = tab.compiled()
        for position in range(compiled.n_columns):
            union = 0
            for code, mask in compiled.occurrence_masks[position].items():
                union |= mask
                for row_index in iter_bits(mask):
                    assert compiled.row_codes[row_index][position] == code
            assert union == compiled.all_rows_mask

    def test_column_profiles_are_isomorphism_invariant(self):
        schema = chain_schema(4)
        permuted = DatabaseSchema(tuple(reversed(schema.relations)))
        first = standard_tableau(schema, {"x0", "x4"}).compiled()
        second = standard_tableau(permuted, {"x0", "x4"}).compiled()
        assert first.column_profiles() == second.column_profiles()


class TestRowMappingMasks:
    """``find_row_mapping`` over row bitmasks is minimization's substrate."""

    def test_full_masks_find_the_identity(self, chain4):
        compiled = standard_tableau(chain4, "ad").compiled()
        found = find_row_mapping(compiled, compiled)
        assert found is not None
        row_image, _ = found
        assert row_image == {0: 0, 1: 1, 2: 2}

    def test_restricting_the_target_detects_redundancy(self):
        tab = standard_tableau(parse_schema("abc,ab,bc"), "abc")
        compiled = tab.compiled()
        full = compiled.all_rows_mask
        # Rows 1 (ab) and 2 (bc) fold onto row 0 (abc): dropping either
        # still leaves a containment mapping from the full tableau.
        for dropped in (1, 2):
            found = find_row_mapping(
                compiled, compiled, source_rows=full, target_rows=full & ~(1 << dropped)
            )
            assert found is not None
            row_image, _ = found
            assert row_image[dropped] != dropped
        # Dropping row 0 is impossible: only it carries all three
        # distinguished variables, and rows 1/2 cannot cover for it.
        assert (
            find_row_mapping(
                compiled, compiled, source_rows=full, target_rows=full & ~1
            )
            is None
        )

    def test_empty_source_mask_succeeds_trivially(self, chain4):
        compiled = standard_tableau(chain4, "ad").compiled()
        found = find_row_mapping(compiled, compiled, source_rows=0)
        assert found is not None
        assert found[0] == {}


class TestIsomorphismShortCircuits:
    def test_row_count_mismatch_skips_backtracking(self, chain4, monkeypatch):
        tab = standard_tableau(chain4, "ad")
        monkeypatch.setattr(
            containment_module,
            "find_isomorphism_mapping",
            lambda *args: (_ for _ in ()).throw(AssertionError("backtracking entered")),
        )
        assert find_isomorphism(tab, tab.without_row(0)) is None

    def test_column_profile_mismatch_skips_backtracking(self, monkeypatch):
        # Same row count, same columns, but e.g. column a of the first holds
        # one distinguished and one unique symbol while the second holds two
        # distinguished ones.
        first = standard_tableau(parse_schema("ab,bc"), "ac", universe="abc")
        second = standard_tableau(parse_schema("ab,ab"), "ac", universe="abc")
        monkeypatch.setattr(
            containment_module,
            "find_isomorphism_mapping",
            lambda *args: (_ for _ in ()).throw(AssertionError("backtracking entered")),
        )
        assert find_isomorphism(first, second) is None

    def test_profiles_equal_still_requires_search(self):
        # Permuted relation order: profiles agree and the search succeeds.
        schema = chain_schema(4)
        permuted = DatabaseSchema(tuple(reversed(schema.relations)))
        first = standard_tableau(schema, {"x0", "x4"})
        second = standard_tableau(permuted, {"x0", "x4"})
        mapping = find_isomorphism(first, second)
        assert mapping is not None
        assert sorted(mapping.row_mapping) == list(range(len(first)))
