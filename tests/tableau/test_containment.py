"""Unit tests for containment mappings, equivalence and isomorphism."""

from __future__ import annotations

import pytest

from repro.exceptions import TableauError
from repro.hypergraph import aring, chain_schema, parse_schema
from repro.tableau import (
    find_containment_mapping,
    find_isomorphism,
    has_containment_mapping,
    standard_tableau,
    tableaux_equivalent,
    tableaux_isomorphic,
)


class TestContainmentMappings:
    def test_identity_mapping_always_exists(self, chain4):
        tab = standard_tableau(chain4, "ad")
        mapping = find_containment_mapping(tab, tab)
        assert mapping is not None
        assert mapping.row_mapping == (0, 1, 2)

    def test_subtableau_maps_into_full_tableau(self, chain4):
        tab = standard_tableau(chain4, "ad")
        sub = tab.subtableau([0, 2])
        assert has_containment_mapping(sub, tab)

    def test_distinguished_variables_must_be_preserved(self):
        # (ab) with target ab vs (ab) with target a: the first tableau's
        # distinguished b cannot map to a nondistinguished symbol.
        first = standard_tableau(parse_schema("ab"), "ab")
        second = standard_tableau(parse_schema("ab"), "a", universe="ab")
        assert not has_containment_mapping(first, second)
        assert has_containment_mapping(second, first)

    def test_section6_rows_fold_onto_the_core(self):
        # D = (abg, bcg, acf, ad, de, ea), X = abc: the rows for ad, de, ea
        # all fold onto the abg row (see Section 6 of the paper).
        schema = parse_schema("abg,bcg,acf,ad,de,ea")
        tab = standard_tableau(schema, "abc")
        core = tab.subtableau([0, 1, 2])
        mapping = find_containment_mapping(tab, core)
        assert mapping is not None
        assert set(mapping.row_mapping[:3]) == {0, 1, 2}

    def test_no_mapping_between_unrelated_queries(self):
        first = standard_tableau(parse_schema("ab,bc"), "ac")
        second = standard_tableau(parse_schema("ab"), "ac", universe="abc")
        # (ab,bc) produces tuples only when a path a-b-c exists; (ab) cannot
        # simulate it: no containment mapping from second to first... but the
        # interesting direction is first -> second which must also fail since
        # second has no row with a distinguished c.
        assert not has_containment_mapping(first, second)

    def test_column_mismatch_is_rejected(self, chain4):
        first = standard_tableau(chain4, "ad")
        second = standard_tableau(parse_schema("ab"), "a")
        with pytest.raises(TableauError):
            find_containment_mapping(first, second)

    def test_empty_tableaux(self, chain4):
        tab = standard_tableau(chain4, "ad")
        empty = tab.subtableau([])
        assert has_containment_mapping(empty, tab)
        assert not has_containment_mapping(tab, empty)

    def test_symbol_mapping_is_consistent(self, chain4):
        tab = standard_tableau(chain4, "ad")
        sub = tab.without_row(0)
        mapping = find_containment_mapping(sub, tab)
        assert mapping is not None
        for row_index, row in enumerate(sub.rows):
            image = tab.rows[mapping.row_mapping[row_index]]
            for column_index, symbol in enumerate(row.cells):
                assert mapping.symbol_mapping[symbol] == image.cells[column_index]


class TestEquivalenceAndIsomorphism:
    def test_equivalence_is_reflexive_and_symmetric(self, chain4, triangle):
        for schema in (chain4, triangle):
            tab = standard_tableau(schema, "ab")
            assert tableaux_equivalent(tab, tab)

    def test_redundant_relation_gives_equivalent_tableau(self):
        # (ab, bc) and (ab, bc, b) are weakly equivalent queries: the extra
        # row for (b) folds onto either existing row.
        first = standard_tableau(parse_schema("ab,bc"), "ac")
        second = standard_tableau(parse_schema("ab,bc,b"), "ac", universe="abc")
        first = standard_tableau(parse_schema("ab,bc"), "ac", universe="abc")
        assert tableaux_equivalent(first, second)

    def test_ring_not_equivalent_to_chain(self):
        ring = standard_tableau(aring(3), "ac", universe="abc")
        chain = standard_tableau(parse_schema("ab,bc"), "ac", universe="abc")
        assert has_containment_mapping(chain, ring)
        assert not has_containment_mapping(ring, chain)
        assert not tableaux_equivalent(ring, chain)

    def test_isomorphism_requires_equal_row_counts(self, chain4):
        tab = standard_tableau(chain4, "ad")
        assert not tableaux_isomorphic(tab, tab.without_row(0))

    def test_isomorphic_to_itself(self, figure1_tree):
        tab = standard_tableau(figure1_tree, "af")
        iso = find_isomorphism(tab, tab)
        assert iso is not None
        assert sorted(iso.row_mapping) == list(range(len(tab)))

    def test_isomorphism_between_renumbered_schemas(self):
        # The same schema listed in a different relation order yields an
        # isomorphic (not merely equivalent) standard tableau.
        first = standard_tableau(parse_schema("ab,bc,cd"), "ad")
        second = standard_tableau(parse_schema("cd,bc,ab"), "ad")
        assert tableaux_isomorphic(first, second)

    def test_equivalent_but_not_isomorphic(self):
        first = standard_tableau(parse_schema("ab,bc"), "ac", universe="abc")
        second = standard_tableau(parse_schema("ab,bc,b"), "ac", universe="abc")
        assert tableaux_equivalent(first, second)
        assert not tableaux_isomorphic(first, second)
