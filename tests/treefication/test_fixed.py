"""Unit tests for Fixed Treefication and the Theorem 4.2 reduction."""

from __future__ import annotations

import pytest

from repro.exceptions import TreeficationError
from repro.hypergraph import aclique, is_tree_schema, parse_schema
from repro.treefication import (
    BinPackingInstance,
    FixedTreeficationInstance,
    is_valid_treefication,
    packing_from_treefication,
    reduction_from_bin_packing,
    solve_bin_packing_exact,
    solve_fixed_treefication_exact,
    solve_fixed_treefication_via_packing,
    treefication_from_packing,
)


class TestFixedTreefication:
    def test_instance_validation(self, triangle):
        with pytest.raises(TreeficationError):
            FixedTreeficationInstance(triangle, max_relations=0, max_arity=3)
        with pytest.raises(TreeficationError):
            FixedTreeficationInstance(triangle, max_relations=1, max_arity=0)

    def test_witness_validation(self, triangle):
        instance = FixedTreeficationInstance(triangle, max_relations=1, max_arity=3)
        assert is_valid_treefication(instance, ["abc"])
        assert not is_valid_treefication(instance, ["ab"])
        assert not is_valid_treefication(instance, ["abc", "abc"])  # too many
        tight = FixedTreeficationInstance(triangle, max_relations=1, max_arity=2)
        assert not is_valid_treefication(tight, ["abc"])  # arity bound violated

    def test_exact_solver_on_tree_schema_needs_nothing(self, chain4):
        instance = FixedTreeficationInstance(chain4, max_relations=1, max_arity=1)
        solution = solve_fixed_treefication_exact(instance)
        assert solution is not None
        assert solution.added_relations == ()

    def test_exact_solver_on_triangle(self, triangle):
        yes = FixedTreeficationInstance(triangle, max_relations=1, max_arity=3)
        no = FixedTreeficationInstance(triangle, max_relations=1, max_arity=2)
        assert solve_fixed_treefication_exact(yes) is not None
        assert solve_fixed_treefication_exact(no) is None

    def test_exact_solver_on_two_disjoint_cliques(self):
        schema = parse_schema("")
        schema = schema.add_relations(aclique(3, "abc").relations)
        schema = schema.add_relations(aclique(3, "xyz").relations)
        one_big = FixedTreeficationInstance(schema, max_relations=1, max_arity=6)
        two_small = FixedTreeficationInstance(schema, max_relations=2, max_arity=3)
        impossible = FixedTreeficationInstance(schema, max_relations=1, max_arity=5)
        assert solve_fixed_treefication_exact(one_big) is not None
        assert solve_fixed_treefication_exact(two_small) is not None
        assert solve_fixed_treefication_exact(impossible) is None


class TestTheorem42Reduction:
    def test_reduction_builds_disjoint_acliques(self):
        instance = BinPackingInstance((3, 4), 7, 1)
        reduced = reduction_from_bin_packing(instance)
        assert len(reduced.schema) == 7  # 3 + 4 relation schemas
        assert len(reduced.schema.connected_components()) == 2
        assert reduced.max_relations == 1 and reduced.max_arity == 7

    def test_sizes_below_three_rejected(self):
        with pytest.raises(TreeficationError):
            reduction_from_bin_packing(BinPackingInstance((2, 3), 5, 1))

    @pytest.mark.parametrize(
        "sizes, capacity, bins, feasible",
        [
            ((3, 3), 6, 1, True),
            ((3, 3), 6, 2, True),
            ((3, 3, 3), 6, 1, False),
            ((3, 3, 3), 6, 2, True),
            ((3, 4, 5), 6, 2, False),
            ((3, 4, 5), 9, 2, True),
            ((6, 3, 3), 6, 2, True),
        ],
    )
    def test_yes_instances_map_to_yes_instances(self, sizes, capacity, bins, feasible):
        """The Theorem 4.2 equivalence, tested in both directions."""
        packing_instance = BinPackingInstance(sizes, capacity, bins)
        treefication_instance = reduction_from_bin_packing(packing_instance)

        packing = solve_bin_packing_exact(packing_instance)
        treefication = solve_fixed_treefication_exact(treefication_instance)

        assert (packing is not None) == feasible
        assert (treefication is not None) == feasible

        if feasible:
            # packing -> treefication witness
            derived = treefication_from_packing(packing)
            assert derived.is_valid()
            assert is_tree_schema(derived.treefied_schema())
            # treefication -> packing witness
            recovered = packing_from_treefication(packing_instance, derived)
            assert recovered.is_valid()

    def test_via_packing_solver_agrees_with_exact(self):
        instance = BinPackingInstance((3, 3, 4, 5), 8, 2)
        via_packing = solve_fixed_treefication_via_packing(instance)
        exact = solve_fixed_treefication_exact(reduction_from_bin_packing(instance))
        assert via_packing is not None and exact is not None
        assert via_packing.is_valid() and exact.is_valid()

    def test_heuristic_variant(self):
        instance = BinPackingInstance((3, 3, 4, 5), 8, 2)
        heuristic = solve_fixed_treefication_via_packing(instance, exact=False)
        assert heuristic is not None and heuristic.is_valid()

    def test_packing_recovery_rejects_uncovering_witness(self):
        instance = BinPackingInstance((3, 3), 6, 2)
        reduced = reduction_from_bin_packing(instance)
        from repro.treefication import FixedTreeficationSolution
        from repro.hypergraph import RelationSchema

        bogus = FixedTreeficationSolution(
            instance=reduced, added_relations=(RelationSchema("i0_0"),)
        )
        with pytest.raises(TreeficationError):
            packing_from_treefication(instance, bogus)
