"""Unit tests for the Bin Packing solvers."""

from __future__ import annotations

import pytest

from repro.exceptions import TreeficationError
from repro.treefication import (
    BinPackingInstance,
    first_fit_decreasing,
    solve_bin_packing_exact,
)


class TestInstances:
    def test_validation(self):
        with pytest.raises(TreeficationError):
            BinPackingInstance(sizes=(0,), bin_capacity=3, bin_count=1)
        with pytest.raises(TreeficationError):
            BinPackingInstance(sizes=(3,), bin_capacity=0, bin_count=1)
        with pytest.raises(TreeficationError):
            BinPackingInstance(sizes=(3,), bin_capacity=3, bin_count=0)

    def test_trivial_infeasibility(self):
        assert BinPackingInstance((9,), 6, 3).is_trivially_infeasible()
        assert BinPackingInstance((3, 3, 3), 3, 2).is_trivially_infeasible()
        assert not BinPackingInstance((3, 3), 3, 2).is_trivially_infeasible()


class TestExactSolver:
    @pytest.mark.parametrize(
        "sizes, capacity, bins, feasible",
        [
            ((3, 3, 4, 5), 8, 2, True),
            ((3, 3, 3), 9, 1, True),
            ((5, 5, 5), 8, 1, False),
            ((4, 4, 4, 4), 8, 2, True),
            ((4, 4, 4, 4, 3), 8, 2, False),
            ((6, 6, 3, 3, 3, 3), 9, 3, True),
            ((7, 5, 4, 3), 10, 2, True),
            ((7, 5, 5, 3), 10, 2, True),
            ((7, 7, 7), 10, 2, False),
        ],
    )
    def test_decision_matches_expectation(self, sizes, capacity, bins, feasible):
        instance = BinPackingInstance(sizes, capacity, bins)
        solution = solve_bin_packing_exact(instance)
        assert (solution is not None) == feasible
        if solution is not None:
            assert solution.is_valid()
            assert max(solution.bin_loads()) <= capacity

    def test_witness_partition_covers_all_items(self):
        instance = BinPackingInstance((3, 4, 5, 6), 9, 2)
        solution = solve_bin_packing_exact(instance)
        assert solution is not None
        assigned = sorted(index for bin_ in solution.bins for index in bin_)
        assert assigned == [0, 1, 2, 3]


class TestHeuristic:
    def test_ffd_solves_easy_instances(self):
        instance = BinPackingInstance((3, 3, 4, 5), 8, 2)
        solution = first_fit_decreasing(instance)
        assert solution is not None and solution.is_valid()

    def test_ffd_respects_bin_count(self):
        instance = BinPackingInstance((5, 5, 5), 8, 1)
        assert first_fit_decreasing(instance) is None

    def test_ffd_never_contradicts_exact_feasibility(self):
        # FFD may fail on feasible instances but must never "solve" infeasible ones.
        for sizes, capacity, bins in [((4, 4, 4), 8, 1), ((9,), 8, 2)]:
            instance = BinPackingInstance(sizes, capacity, bins)
            assert solve_bin_packing_exact(instance) is None
            assert first_fit_decreasing(instance) is None
