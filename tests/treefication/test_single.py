"""Unit tests for single-relation treefication (Corollary 3.2)."""

from __future__ import annotations

from repro.hypergraph import (
    aclique,
    aring,
    chain_schema,
    grid_schema,
    gyo_reduction,
    is_tree_schema,
    parse_schema,
)
from repro.treefication import (
    is_treefying_relation,
    minimum_treefying_relations_bruteforce,
    single_relation_treefication,
    treefying_relation,
)


class TestTreefyingRelation:
    def test_tree_schemas_need_nothing(self, small_tree_schemas):
        for schema in small_tree_schemas:
            assert len(treefying_relation(schema)) == 0
            result = single_relation_treefication(schema)
            assert result.was_already_tree
            assert result.treefied == schema

    def test_aring_needs_all_its_attributes(self, aring4):
        assert treefying_relation(aring4) == aring4.attributes

    def test_treefied_schema_is_a_tree(self, small_cyclic_schemas):
        for schema in small_cyclic_schemas:
            result = single_relation_treefication(schema)
            assert is_tree_schema(result.treefied), schema
            assert result.added_relation == gyo_reduction(schema).attributes

    def test_is_treefying_relation_checks(self, aring4):
        assert is_treefying_relation(aring4, "abcd")
        assert not is_treefying_relation(aring4, "abc")
        assert is_treefying_relation(aring4, "abcdz")  # supersets also work

    def test_grid_treefication(self):
        grid = grid_schema(2, 3)
        result = single_relation_treefication(grid)
        assert is_tree_schema(result.treefied)

    def test_partially_reducible_cyclic_schema(self):
        # A triangle with a pendant chain: the chain reduces away, so only the
        # triangle's attributes are needed.
        schema = parse_schema("ab,bc,ac,cd,de")
        assert treefying_relation(schema) == parse_schema("abc")[0]


class TestMinimality:
    def test_bruteforce_agrees_with_corollary_3_2(self):
        for schema in (aring(4), aclique(3), parse_schema("ab,bc,ac,cd")):
            best = treefying_relation(schema)
            winners = minimum_treefying_relations_bruteforce(schema)
            assert winners
            assert len(winners[0]) == len(best)
            assert best in winners

    def test_every_treefying_relation_contains_the_core(self, aring4):
        """Theorem 3.2(iii): S treefies D ⇒ S ⊇ U(GR(D))."""
        core = treefying_relation(aring4)
        for winner in minimum_treefying_relations_bruteforce(aring4):
            assert core <= winner
