"""End-to-end integration tests combining several subsystems."""

from __future__ import annotations

import pytest

from repro.core import execute_join_plan, jd_implies, plan_join_query
from repro.hypergraph import (
    RelationSchema,
    aring,
    chain_schema,
    is_tree_schema,
    parse_schema,
    random_cyclic_schema,
    random_tree_schema,
)
from repro.relational import (
    NaturalJoinQuery,
    Program,
    naive_join_project,
    random_ur_database,
    yannakakis,
)
from repro.tableau import canonical_connection
from repro.treefication import single_relation_treefication
from repro.treeproj import augment_program_with_semijoins, find_tree_projection


class TestAcyclicPipeline:
    """Tree schema -> join tree -> Yannakakis -> same answer as the plan."""

    @pytest.mark.parametrize("seed", range(3))
    def test_planning_and_evaluation_agree(self, seed):
        schema = random_tree_schema(6, rng=seed)
        attrs = schema.attributes.sorted_attributes()
        target = RelationSchema({attrs[0], attrs[-1]})
        state = random_ur_database(schema, tuple_count=25, domain_size=3, rng=seed)

        plan = plan_join_query(schema, target)
        plan_answer = execute_join_plan(plan, state)
        yannakakis_answer = yannakakis(schema, target, state).result
        naive_answer, _ = naive_join_project(schema, target, state)
        query_answer = NaturalJoinQuery(schema, target).evaluate(state)

        assert plan_answer == yannakakis_answer == naive_answer == query_answer


class TestCyclicPipeline:
    """Cyclic schema -> treefication -> the treefied query solves the original."""

    @pytest.mark.parametrize("seed", range(3))
    def test_treefication_enables_yannakakis(self, seed):
        schema = random_cyclic_schema(5, rng=seed)
        treefied = single_relation_treefication(schema)
        assert is_tree_schema(treefied.treefied)

        attrs = schema.attributes.sorted_attributes()
        target = RelationSchema({attrs[0], attrs[-1]})
        state = random_ur_database(schema, tuple_count=20, domain_size=3, rng=seed)

        # Build the state for the treefied schema: the new relation's state is
        # the join of the relations it came from, projected onto it (this is
        # step (ii) of the paper's Section 4 strategy for cyclic schemas).
        joined = state.join()
        extended_state_relations = list(state.relations)
        if not treefied.was_already_tree:
            extended_state_relations.append(joined.project(treefied.added_relation))
        from repro.relational import DatabaseState

        extended_state = DatabaseState(treefied.treefied, extended_state_relations)
        run = yannakakis(treefied.treefied, target, extended_state)
        expected = NaturalJoinQuery(schema, target).evaluate(state)
        assert run.result == expected

    def test_ring_query_via_program_and_tree_projection(self):
        ring = aring(5)
        target = RelationSchema({"a", "c"})
        program = Program(ring)
        program.join("P1", "R0", "R1").join("P2", "P1", "R2")
        program.join("P3", "R3", "R4")
        augmented = augment_program_with_semijoins(program, target)
        state = random_ur_database(ring, tuple_count=25, domain_size=3, rng=7)
        assert augmented.run(state) == NaturalJoinQuery(ring, target).evaluate(state)


class TestCrossSubsystemConsistency:
    def test_cc_gr_lossless_and_projection_form_a_consistent_story(self):
        """For the chain: CC-based planning, GYO, lossless joins and tree
        projections all tell the same story."""
        chain = chain_schema(4)
        target = RelationSchema({"x0", "x4"})
        cc = canonical_connection(chain, target)
        assert chain.covers(cc)
        assert jd_implies(chain, chain.sub_schema([0, 1]))
        assert not jd_implies(chain, chain.sub_schema([0, 2]))
        search = find_tree_projection(chain, chain)
        assert search.found  # a tree schema is its own tree projection

    def test_section4_cyclic_strategy_on_the_triangle(self, triangle):
        """Section 4's strategy for cyclic schemas: add U(GR(D)), build its
        state with joins, then proceed as in the tree case."""
        treefied = single_relation_treefication(triangle)
        assert treefied.added_relation == triangle.attributes
        state = random_ur_database(triangle, tuple_count=20, domain_size=3, rng=5)
        from repro.relational import DatabaseState

        extended = DatabaseState(
            treefied.treefied,
            list(state.relations) + [state.join().project("abc")],
        )
        target = RelationSchema("ab")
        run = yannakakis(treefied.treefied, target, extended)
        assert run.result == NaturalJoinQuery(triangle, target).evaluate(state)
