"""Property-based verification of the paper's theorems on random schemas.

Each test draws small random schemas (and sub-schemas / targets) and runs the
corresponding theorem checker from :mod:`repro.core.theorems`; a single
counterexample would falsify the implementation of GYO reductions, tableaux,
canonical connections or lossless joins.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import (
    check_corollary_5_2,
    check_lemma_3_1,
    check_theorem_3_2,
    check_theorem_3_3,
    check_theorem_4_1,
    check_theorem_5_1,
    check_theorem_5_2,
    check_theorem_5_3,
)
from repro.hypergraph import DatabaseSchema, RelationSchema

ATTRIBUTES = "abcde"

relation_schemas = st.sets(
    st.sampled_from(list(ATTRIBUTES)), min_size=1, max_size=3
).map(RelationSchema)

database_schemas = st.lists(relation_schemas, min_size=1, max_size=4).map(DatabaseSchema)

targets = st.sets(st.sampled_from(list(ATTRIBUTES)), min_size=1, max_size=3).map(
    RelationSchema
)


def _clip_target(schema: DatabaseSchema, target: RelationSchema) -> RelationSchema:
    clipped = target.intersection(schema.attributes)
    if clipped:
        return clipped
    return RelationSchema(schema.attributes.sorted_attributes()[:1])


@given(database_schemas)
@settings(max_examples=40, deadline=None)
def test_lemma_3_1_on_random_schemas(schema):
    assert check_lemma_3_1(schema)


@given(database_schemas, targets)
@settings(max_examples=50, deadline=None)
def test_theorem_3_2_and_3_3_on_random_schemas(schema, target):
    clipped = _clip_target(schema, target)
    assert check_theorem_3_2(schema, extra=clipped)
    assert check_theorem_3_3(schema, clipped)


@given(database_schemas, targets, st.data())
@settings(max_examples=40, deadline=None)
def test_theorem_4_1_on_random_subschemas(schema, target, data):
    clipped = _clip_target(schema, target)
    # Draw a random sub-multiset of the schema's relations.
    indices = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(schema) - 1),
            min_size=1,
            max_size=len(schema),
            unique=True,
        )
    )
    sub = schema.sub_schema(indices)
    assert check_theorem_4_1(schema, sub, clipped)


@given(database_schemas, st.data())
@settings(max_examples=40, deadline=None)
def test_theorem_5_1_and_corollary_5_2_on_random_subschemas(schema, data):
    indices = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(schema) - 1),
            min_size=1,
            max_size=len(schema),
            unique=True,
        )
    )
    sub = schema.sub_schema(indices)
    assert check_theorem_5_1(schema, sub)
    assert check_corollary_5_2(schema, sub)


@given(database_schemas, targets)
@settings(max_examples=40, deadline=None)
def test_theorem_5_2_on_random_schemas(schema, target):
    assert check_theorem_5_2(schema, _clip_target(schema, target))


@given(database_schemas)
@settings(max_examples=30, deadline=None)
def test_theorem_5_3_on_random_schemas(schema):
    assert check_theorem_5_3(schema)
