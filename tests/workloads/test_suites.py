"""Tests for the benchmark workload suites."""

from __future__ import annotations

from repro.hypergraph import is_cyclic_schema, is_tree_schema
from repro.workloads import (
    acyclicity_workload,
    gyo_scaling_workload,
    query_evaluation_workload,
    tableau_scaling_workload,
)


def test_gyo_scaling_workload_shapes():
    cases = gyo_scaling_workload(sizes=(5, 10))
    assert len(cases) == 8
    for case in cases:
        if case.label.startswith(("chain", "star", "random-tree")):
            assert is_tree_schema(case.schema), case.label
        if case.label.startswith("aring"):
            assert is_cyclic_schema(case.schema), case.label


def test_tableau_scaling_workload_has_targets():
    cases = tableau_scaling_workload(sizes=(4,))
    assert all(case.target is not None for case in cases)
    for case in cases:
        assert case.target <= case.schema.attributes


def test_acyclicity_workload_mixes_families():
    labels = {case.label.split("-")[0] for case in acyclicity_workload(sizes=(4,))}
    assert {"chain", "aring", "aclique", "grid", "random"} <= {
        label.split("-")[0] if "-" in label else label for label in labels
    } | labels


def test_query_evaluation_workload_builds_states():
    cases = query_evaluation_workload(chain_lengths=(4,), tuple_count=50)
    assert len(cases) == 1
    case = cases[0]
    assert case.state is not None
    assert case.state.schema == case.schema
    assert case.state.total_rows() > 0
    assert str(case) == case.label
