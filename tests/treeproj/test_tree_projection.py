"""Unit tests for tree projections (Section 3.2)."""

from __future__ import annotations

import pytest

from repro.exceptions import NotASubSchemaError
from repro.figures import (
    SECTION_3_2_D,
    SECTION_3_2_D_DOUBLE_PRIME,
    SECTION_3_2_D_PRIME,
)
from repro.hypergraph import aring, chain_schema, is_tree_schema, parse_schema
from repro.treeproj import (
    find_tree_projection,
    greedy_cover_candidate,
    has_tree_projection,
    is_tree_projection,
)


class TestMembership:
    def test_paper_example(self):
        assert is_tree_projection(
            SECTION_3_2_D_DOUBLE_PRIME, SECTION_3_2_D_PRIME, SECTION_3_2_D
        )

    def test_membership_requires_sandwich(self):
        # D'' must be covered by D' and must cover D.
        assert not is_tree_projection(
            parse_schema("abcz"), SECTION_3_2_D_PRIME, SECTION_3_2_D
        )
        assert not is_tree_projection(
            parse_schema("ab"), SECTION_3_2_D_PRIME, SECTION_3_2_D
        )

    def test_membership_requires_tree(self):
        # D' itself covers D and is covered by itself but is cyclic.
        assert not is_tree_projection(
            SECTION_3_2_D_PRIME, SECTION_3_2_D_PRIME, SECTION_3_2_D
        )

    def test_acyclic_lower_schema_is_its_own_projection(self, chain4):
        assert is_tree_projection(chain4, chain4, chain4)


class TestSearch:
    def test_paper_example_is_found(self):
        result = find_tree_projection(SECTION_3_2_D_PRIME, SECTION_3_2_D)
        assert result.found
        assert is_tree_projection(result.projection, SECTION_3_2_D_PRIME, SECTION_3_2_D)

    def test_lower_tree_shortcut(self, chain4):
        result = find_tree_projection(parse_schema("abcd"), chain4)
        assert result.found and result.method == "lower"

    def test_upper_tree_shortcut(self, triangle):
        result = find_tree_projection(parse_schema("abc"), triangle)
        assert result.found and result.method == "upper"

    def test_no_projection_for_bare_triangle(self, triangle):
        # D' = D = the triangle: the only sandwich schemas are sub-multisets of
        # the triangle itself, all cyclic or non-covering.
        result = find_tree_projection(triangle, triangle, allow_subset_search=True)
        assert not result.found
        assert result.exhaustive
        assert not has_tree_projection(triangle, triangle, allow_subset_search=True)

    def test_triangle_with_abc_relation_has_projection(self, triangle):
        upper = triangle.add_relation("abc")
        result = find_tree_projection(upper, triangle)
        assert result.found
        assert is_tree_projection(result.projection, upper, triangle)

    def test_aring_with_covering_pairs(self):
        # An 8-ring under an upper schema of two "half" relations admits a
        # 2-node tree projection.
        lower = aring(8)
        attrs = lower.attributes.sorted_attributes()
        upper = parse_schema("")
        upper = upper.add_relation(attrs[:5]).add_relation(attrs[4:] + attrs[:1])
        result = find_tree_projection(upper, lower)
        assert result.found
        assert is_tree_projection(result.projection, upper, lower)

    def test_requires_coverage(self, chain4):
        with pytest.raises(NotASubSchemaError):
            find_tree_projection(parse_schema("xy"), chain4)

    def test_greedy_cover_candidate_properties(self):
        candidate = greedy_cover_candidate(SECTION_3_2_D_PRIME, SECTION_3_2_D)
        assert candidate.covers(SECTION_3_2_D)
        assert SECTION_3_2_D_PRIME.covers(candidate)
