"""Unit tests for the Theorem 6.1 / 6.2 program-augmentation construction."""

from __future__ import annotations

import pytest

from repro.exceptions import TreeProjectionError
from repro.hypergraph import RelationSchema, aring, parse_schema
from repro.relational import NaturalJoinQuery, Program, random_ur_database
from repro.tableau import canonical_connection
from repro.treeproj import augment_program_with_semijoins, solve_with_tree_projection


@pytest.fixture
def triangle_program(triangle):
    """A program over the triangle whose join creates the tree projection."""
    program = Program(triangle)
    program.join("J", "R0", "R1")
    return program


class TestAugmentation:
    def test_augmented_program_solves_triangle_query(self, triangle, triangle_program):
        target = RelationSchema("abc")
        augmented = augment_program_with_semijoins(triangle_program, target)
        for seed in range(4):
            state = random_ur_database(triangle, tuple_count=20, domain_size=3, rng=seed)
            expected = NaturalJoinQuery(triangle, target).evaluate(state)
            assert augmented.run(state) == expected

    def test_solver_wrapper(self, triangle, triangle_program):
        state = random_ur_database(triangle, tuple_count=25, domain_size=3, rng=9)
        target = RelationSchema("ab")
        result = solve_with_tree_projection(triangle_program, target, state)
        assert result == NaturalJoinQuery(triangle, target).evaluate(state)

    def test_only_semijoins_and_projects_are_added(self, triangle, triangle_program):
        augmented = augment_program_with_semijoins(triangle_program, RelationSchema("abc"))
        assert augmented.added_joins == 0
        assert augmented.added_semijoins > 0
        before = triangle_program.statement_count()
        after = augmented.program.statement_count()
        assert after["join"] == before["join"]

    def test_semijoin_budget_of_theorem_6_1(self, triangle, triangle_program):
        # ≤ |anchors| + 2·(|D''| - 1) semijoins; for the triangle with the
        # one-node projection this is at most 3 + 0.
        augmented = augment_program_with_semijoins(triangle_program, RelationSchema("abc"))
        bound = len(triangle) + 2 * (len(augmented.tree_projection) - 1)
        assert augmented.added_semijoins <= bound
        assert augmented.added_semijoins <= 2 * len(triangle)

    def test_cc_anchors_variant_theorem_6_2(self, triangle, triangle_program):
        target = RelationSchema("abc")
        anchors = canonical_connection(triangle, target)
        augmented = augment_program_with_semijoins(
            triangle_program, target, anchors=anchors
        )
        state = random_ur_database(triangle, tuple_count=30, domain_size=3, rng=13)
        assert augmented.run(state) == NaturalJoinQuery(triangle, target).evaluate(state)
        assert augmented.added_semijoins <= 2 * len(anchors) + 2 * (
            len(augmented.tree_projection) - 1
        )

    def test_missing_tree_projection_raises(self, triangle):
        # A program that creates nothing new leaves P(D) = D, which has no
        # tree projection w.r.t. D ∪ (abc) (the triangle stays cyclic).
        program = Program(triangle)
        program.semijoin("S", "R0", "R1")
        with pytest.raises(TreeProjectionError):
            augment_program_with_semijoins(
                program, RelationSchema("abc"), budget=50_000
            )

    def test_explicit_tree_projection_is_validated(self, triangle, triangle_program):
        with pytest.raises(TreeProjectionError):
            augment_program_with_semijoins(
                triangle_program,
                RelationSchema("abc"),
                tree_projection=parse_schema("ab,bc"),  # does not cover ac or abc
            )

    def test_larger_ring_via_two_half_joins(self):
        ring = aring(6)
        program = Program(ring)
        program.join("H1", "R0", "R1").join("H1b", "H1", "R2")
        program.join("H2", "R3", "R4").join("H2b", "H2", "R5")
        target = RelationSchema({"a", "d"})
        augmented = augment_program_with_semijoins(program, target)
        state = random_ur_database(ring, tuple_count=30, domain_size=3, rng=3)
        expected = NaturalJoinQuery(ring, target).evaluate(state)
        assert augmented.run(state) == expected

    def test_tree_projection_of_augmented_program_exists_when_it_solves(self, triangle):
        """Theorem 6.3 on a concrete solving program: P(D) of the paper's
        working program admits a tree projection w.r.t. D ∪ (X)."""
        from repro.treeproj import find_tree_projection

        program = Program(triangle)
        program.join("J", "R0", "R1")
        assert find_tree_projection(
            program.extended_schema(), triangle.add_relation("abc")
        ).found
