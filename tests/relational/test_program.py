"""Unit tests for Section 6 join/project/semijoin programs."""

from __future__ import annotations

import pytest

from repro.exceptions import ProgramError
from repro.hypergraph import RelationSchema, parse_schema
from repro.relational import (
    JoinStatement,
    NaturalJoinQuery,
    Program,
    ProjectStatement,
    SemijoinStatement,
    default_base_names,
    random_ur_database,
)


@pytest.fixture
def section6_schema():
    return parse_schema("abg,bcg,acf,ad,de,ea")


class TestProgramConstruction:
    def test_default_base_names(self, section6_schema):
        assert default_base_names(section6_schema) == ("R0", "R1", "R2", "R3", "R4", "R5")

    def test_schema_tracking(self, section6_schema):
        program = Program(section6_schema)
        program.project("S", "R2", "ac").join("J", "R0", "S").semijoin("K", "R3", "J")
        assert program.schema_of("S") == RelationSchema("ac")
        assert program.schema_of("J") == RelationSchema("abcg")
        assert program.schema_of("K") == RelationSchema("ad")

    def test_extended_schema_is_p_of_d(self, section6_schema):
        program = Program(section6_schema)
        program.join("J", "R0", "R1")
        extended = program.extended_schema()
        assert len(extended) == len(section6_schema) + 1
        assert RelationSchema("abcg") in extended

    def test_result_name_and_counts(self, section6_schema):
        program = Program(section6_schema)
        with pytest.raises(ProgramError):
            program.result_name()
        program.join("J", "R0", "R1").project("A", "J", "ab")
        assert program.result_name() == "A"
        assert program.statement_count() == {"join": 1, "project": 1, "semijoin": 0}

    def test_validation_of_statements(self, section6_schema):
        program = Program(section6_schema)
        with pytest.raises(ProgramError):
            program.join("J", "R0", "NOPE")
        with pytest.raises(ProgramError):
            program.project("P", "R0", "xyz")
        program.join("J", "R0", "R1")
        with pytest.raises(ProgramError):
            program.join("J", "R0", "R1")  # duplicate result name
        with pytest.raises(ProgramError):
            program.append("not a statement")  # type: ignore[arg-type]

    def test_base_name_validation(self, section6_schema):
        with pytest.raises(ProgramError):
            Program(section6_schema, base_names=("A", "B"))
        with pytest.raises(ProgramError):
            Program(section6_schema, base_names=("A",) * 6)

    def test_describe_lists_statements(self, section6_schema):
        program = Program(section6_schema)
        program.join("J", "R0", "R1")
        text = program.describe()
        assert "R0(abg)" in text
        assert "J := R0 ⋈ R1" in text


class TestExecution:
    def test_statements_compute_the_right_values(self, section6_schema):
        state = random_ur_database(section6_schema, tuple_count=20, domain_size=3, rng=1)
        program = Program(section6_schema)
        program.project("S", "R2", "ac").join("J", "R0", "R1").semijoin("K", "J", "S")
        environment = program.execute(state)
        assert environment["S"] == state[2].project("ac")
        assert environment["J"] == state[0].natural_join(state[1])
        assert environment["K"] == environment["J"].semijoin(environment["S"])

    def test_run_returns_last_statement(self, section6_schema):
        state = random_ur_database(section6_schema, tuple_count=15, domain_size=3, rng=2)
        program = Program(section6_schema)
        program.join("J", "R0", "R1").project("A", "J", "ab")
        assert program.run(state) == state[0].natural_join(state[1]).project("ab")

    def test_wrong_state_rejected(self, section6_schema, chain4):
        program = Program(section6_schema).join("J", "R0", "R1")
        state = random_ur_database(chain4, rng=0)
        with pytest.raises(ProgramError):
            program.execute(state)


class TestSolvesQuery:
    def test_paper_program_solves_section6_query(self, section6_schema):
        # Join R1, R2 and π_ac(R3) and project onto abc — exactly the plan the
        # paper derives from CC(D, abc).
        program = Program(section6_schema)
        program.project("S3", "R2", "ac").join("J1", "R0", "R1").join("J2", "J1", "S3")
        program.project("ANSWER", "J2", "abc")
        assert program.solves_empirically("abc", rng=3) is None

    def test_dropping_a_relevant_relation_fails(self, section6_schema):
        # Joining only R1 and R2 (without ac) does not solve the query.
        program = Program(section6_schema)
        program.join("J1", "R0", "R1").project("ANSWER", "J1", "abc")
        counterexample = program.solves_empirically("abc", trials=40, rng=4)
        assert counterexample is not None
        query = NaturalJoinQuery(section6_schema, RelationSchema("abc"))
        assert not program.solves_on(query, counterexample)

    def test_program_ignoring_one_triangle_edge_fails(self, triangle):
        # Computing ab ⋈ bc (even after semijoin reduction) is not the triangle
        # join: the ac relation must constrain the same c (Theorem 6.3's
        # message — without a tree projection the query is not solved).
        program = Program(triangle)
        program.semijoin("S0", "R0", "R1").semijoin("S1", "S0", "R2")
        program.join("J", "S1", "R1")
        program.project("ANSWER", "J", "abc")
        counterexample = program.solves_empirically("abc", trials=60, rng=5)
        assert counterexample is not None
