"""Property-based tests: the array-backed vectorized backend ≡ the classic
object-tuple operators on every exposed entry point.

The classic executor (``backend="classic"``) is the retained oracle — it
shares no execution code with :mod:`repro.relational.vectorized`: no
interning, no code arrays, no membership masks or gather joins.  Agreement
on random tree schemas and random states (empty relations, dangling tuples,
mixed value types across the numeric tower, repeated states) is strong
evidence the vectorization is faithful.  The suite also pins the vectorized
backend to the *compiled* backend's execution accounting (stats parity), and
re-runs the core equivalence with numpy masked out, proving the stdlib
``array`` fallback computes the same answers.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

import repro.relational.vectorized as vectorized_module
from repro.engine import analyze, clear_analysis_cache
from repro.hypergraph import (
    DatabaseSchema,
    RelationSchema,
    chain_schema,
    random_tree_schema,
    star_schema,
)
from repro.relational import (
    DatabaseState,
    Relation,
    numpy_available,
    vectorize_plan,
)
from repro.relational.compiled import (
    ExecutionStats,
    compile_plan,
    shm_encode_state,
)
from repro.relational.vectorized import shm_attach_state

#: Value pool spanning the numeric tower (1 == 1.0 == True) plus strings and
#: None — both interner modes — extended with an int64-overflowing integer
#: and a tuple value so the identity→dictionary promotion path runs too.
VALUES = st.one_of(
    st.integers(-3, 6),
    st.sampled_from(
        [1.0, 2.5, -1.0, True, False, "a", "b", "v1", None, 1 << 70, (1, 2)]
    ),
)


def _build_schema(family: str, size: int, seed: int) -> DatabaseSchema:
    if family == "chain":
        return chain_schema(size)
    if family == "star":
        return star_schema(max(size, 2))
    return random_tree_schema(size, rng=seed)


@st.composite
def tree_instances(draw, max_states: int = 1):
    """A tree schema, a target, and ``max_states`` random (possibly
    repeated) states with independently sized relations."""
    family = draw(st.sampled_from(["chain", "star", "random-tree"]))
    size = draw(st.integers(1, 5))
    schema = _build_schema(family, size, draw(st.integers(0, 10**6)))
    attrs = schema.attributes.sorted_attributes()
    target = RelationSchema(
        draw(st.sets(st.sampled_from(list(attrs)), max_size=min(3, len(attrs))))
    )

    def draw_state() -> DatabaseState:
        relations = []
        for relation_schema in schema.relations:
            width = len(relation_schema.sorted_attributes())
            rows = draw(
                st.lists(st.tuples(*([VALUES] * width)), min_size=0, max_size=8)
            )
            relations.append(Relation(relation_schema, rows))
        return DatabaseState(schema, relations)

    states = [draw_state()]
    while len(states) < max_states:
        if draw(st.booleans()):
            states.append(states[draw(st.integers(0, len(states) - 1))])
        else:
            states.append(draw_state())
    return schema, target, states


def _assert_runs_agree(classic, vectorized) -> None:
    assert vectorized.result == classic.result
    assert vectorized.semijoin_count == classic.semijoin_count
    assert vectorized.join_count == classic.join_count
    assert vectorized.max_intermediate_size == classic.max_intermediate_size
    assert classic.backend == "classic"
    assert vectorized.backend == "vectorized"


class TestExecuteEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(tree_instances())
    def test_execute_matches_classic(self, instance):
        schema, target, (state,) = instance
        prepared = analyze(schema).prepare(target)
        classic = prepared.execute(state, backend="classic")
        run = prepared.execute(state, backend="vectorized")
        _assert_runs_agree(classic, run)

    @settings(max_examples=40, deadline=None)
    @given(tree_instances(max_states=4))
    def test_execute_many_matches_classic(self, instance):
        schema, target, states = instance
        prepared = analyze(schema).prepare(target)
        classic_runs = prepared.execute_many(states, backend="classic")
        runs = prepared.execute_many(states, backend="vectorized")
        assert len(classic_runs) == len(runs)
        for classic, run in zip(classic_runs, runs):
            _assert_runs_agree(classic, run)
        # One shared stats object describes the whole batch; repeated states
        # are deduplicated rather than re-executed.
        stats_ids = {id(run.stats) for run in runs}
        assert len(stats_ids) == 1
        stats = runs[0].stats
        assert stats.states + stats.deduped_states == len(states)

    @settings(max_examples=30, deadline=None)
    @given(tree_instances())
    def test_fresh_plan_equivalence(self, instance):
        """Cold path: a fresh analysis (and thus a fresh interner) per call."""
        schema, target, (state,) = instance
        clear_analysis_cache()
        prepared = analyze(schema).prepare(target)
        run = prepared.execute(state, backend="vectorized")
        clear_analysis_cache()
        classic = analyze(schema).prepare(target).execute(state, backend="classic")
        _assert_runs_agree(classic, run)

    def test_auto_prefers_vectorized_when_numpy_imports(self):
        schema = chain_schema(2)
        attrs = schema.attributes.sorted_attributes()
        prepared = analyze(schema).prepare(RelationSchema((attrs[0],)))
        # Large enough to clear the profitability floor: auto upgrades to
        # the array kernel exactly when numpy imports ...
        big = DatabaseState(
            schema,
            [Relation(rs, [(i, i + 1) for i in range(200)]) for rs in schema.relations],
        )
        expected = "vectorized" if numpy_available() else "compiled"
        assert prepared.execute(big).backend == expected
        # ... while a one-tuple state stays on the compiled backend even
        # with numpy present: arrays cannot pay for themselves there.
        tiny = DatabaseState(
            schema, [Relation(rs, [(1, 2)]) for rs in schema.relations]
        )
        assert prepared.execute(tiny).backend == "compiled"


class TestCompiledStatsParity:
    """The vectorized kernel reproduces the compiled backend's execution
    accounting, not just its answers: same keyset/bucket build schedule,
    same identity-vs-filtering semijoin lineage, same encode/cache counts —
    except after an identity→dictionary promotion, which the compiled
    backend does not have (it canonicalizes strays in place); there the
    per-slot totals still reconcile."""

    @settings(max_examples=50, deadline=None)
    @given(tree_instances(max_states=3))
    def test_stats_match_compiled(self, instance):
        schema, target, states = instance
        prepared = analyze(schema).prepare(target)
        vplan = vectorize_plan(prepared)
        cplan = compile_plan(prepared)
        vstats, cstats = ExecutionStats(), ExecutionStats()
        for state in states:
            vrun = vplan.execute_state(state, stats=vstats)
            crun = cplan.execute_state(state, stats=cstats)
            assert vrun.result == crun.result
        for field in ("states", "identity_semijoins", "filtering_semijoins"):
            assert getattr(vstats, field) == getattr(cstats, field)
        if vplan.mode_promotions == 0:
            for field in (
                "encoded_slots",
                "cached_slots",
                "keyset_builds",
                "bucket_builds",
            ):
                assert getattr(vstats, field) == getattr(cstats, field)
        else:
            assert (
                vstats.encoded_slots + vstats.cached_slots
                == cstats.encoded_slots + cstats.cached_slots
            )


class TestArrayFallback:
    """numpy masked out: plans must build on the stdlib ``array`` fallback
    and compute exactly what the classic operators compute."""

    @settings(max_examples=40, deadline=None)
    @given(tree_instances(max_states=2))
    def test_fallback_matches_classic(self, instance):
        schema, target, states = instance
        prepared = analyze(schema).prepare(target)
        classic_runs = [
            prepared.execute(state, backend="classic") for state in states
        ]
        saved = vectorized_module._np
        vectorized_module._np = None
        try:
            assert not numpy_available()
            plan = vectorize_plan(prepared)
            runs = plan.execute_batch(states)
        finally:
            vectorized_module._np = saved
        for classic, run in zip(classic_runs, runs):
            _assert_runs_agree(classic, run)

    def test_fallback_promotes_on_big_ints(self):
        schema = DatabaseSchema([RelationSchema("ab")])
        prepared = analyze(schema).prepare(RelationSchema("ab"))
        saved = vectorized_module._np
        vectorized_module._np = None
        try:
            plan = vectorize_plan(prepared)
            small = DatabaseState(
                schema, [Relation(schema[0], [(1, 2)])]
            )
            assert plan.execute_state(small).result == small.relations[0]
            big = DatabaseState(
                schema, [Relation(schema[0], [(1 << 70, 2)])]
            )
            assert plan.execute_state(big).result == big.relations[0]
            assert plan.mode_promotions >= 1
        finally:
            vectorized_module._np = saved


class TestValueSemantics:
    def test_numeric_tower_joins_across_relations(self):
        schema = DatabaseSchema([RelationSchema("ab"), RelationSchema("bc")])
        target = RelationSchema("ac")
        prepared = analyze(schema).prepare(target)
        state = DatabaseState(
            schema,
            [
                Relation(schema[0], [(1, "x"), (2.0, "y"), (True, "z")]),
                Relation(schema[1], [("x", 10), ("y", 2), ("z", 30)]),
            ],
        )
        classic = prepared.execute(state, backend="classic")
        run = prepared.execute(state, backend="vectorized")
        _assert_runs_agree(classic, run)
        assert len(run.result) == 3

    def test_identity_pinned_then_promotion(self):
        """A plan that saw pure-int columns first must still join later
        states carrying values int64 cannot hold (promotion restart)."""
        schema = DatabaseSchema([RelationSchema("ab"), RelationSchema("bc")])
        target = RelationSchema("ac")
        prepared = analyze(schema).prepare(target)
        plan = vectorize_plan(prepared)
        first = DatabaseState(
            schema,
            [Relation(schema[0], [(5, 1)]), Relation(schema[1], [(1, 9)])],
        )
        plan.execute_state(first)  # pins attributes to identity mode
        mixed = DatabaseState(
            schema,
            [
                Relation(schema[0], [(5.0, True), (1 << 70, 1)]),
                Relation(schema[1], [(1.0, 9)]),
            ],
        )
        classic = prepared.execute(mixed, backend="classic")
        run = plan.execute_state(mixed)
        _assert_runs_agree(classic, run)
        assert plan.mode_promotions >= 1

    def test_empty_relations_and_empty_target(self):
        schema = chain_schema(3)
        state = DatabaseState(
            schema, [Relation(relation, []) for relation in schema.relations]
        )
        prepared = analyze(schema).prepare(RelationSchema(()))
        classic = prepared.execute(state, backend="classic")
        run = prepared.execute(state, backend="vectorized")
        _assert_runs_agree(classic, run)
        assert len(run.result) == 0

    def test_nullary_relation_slot(self):
        schema = DatabaseSchema([RelationSchema("ab"), RelationSchema(())])
        target = RelationSchema("ab")
        prepared = analyze(schema).prepare(target)
        for nullary_rows in ([], [()]):
            state = DatabaseState(
                schema,
                [
                    Relation(schema[0], [(1, 2), (3, 4)]),
                    Relation(schema[1], nullary_rows),
                ],
            )
            classic = prepared.execute(state, backend="classic")
            run = prepared.execute(state, backend="vectorized")
            _assert_runs_agree(classic, run)

    def test_dangling_tuples_random_states(self):
        rng = random.Random(20260808)
        for _ in range(25):
            schema = _build_schema(
                rng.choice(["chain", "star", "random-tree"]),
                rng.randint(2, 5),
                rng.randint(0, 10**6),
            )
            attrs = schema.attributes.sorted_attributes()
            target = RelationSchema(rng.sample(attrs, min(2, len(attrs))))
            relations = [
                Relation(
                    rs,
                    [
                        tuple(
                            rng.randrange(4)
                            for _ in range(len(rs.sorted_attributes()))
                        )
                        for _ in range(rng.randint(0, 10))
                    ],
                )
                for rs in schema.relations
            ]
            state = DatabaseState(schema, relations)
            prepared = analyze(schema).prepare(target)
            classic = prepared.execute(state, backend="classic")
            run = prepared.execute(state, backend="vectorized")
            _assert_runs_agree(classic, run)


class TestInternerLifecycle:
    def test_interner_epoch_rollover(self):
        schema = DatabaseSchema([RelationSchema("ab")])
        prepared = analyze(schema).prepare(RelationSchema("ab"))
        plan = vectorize_plan(prepared, max_interned_values=4)
        stats = ExecutionStats()
        for index in range(8):
            state = DatabaseState(
                schema,
                [Relation(schema[0], [(f"k{index}", f"v{index}")])],
            )
            run = plan.execute_state(state, stats=stats)
            assert run.result == state.relations[0]
        assert plan.interner_epoch > 0
        assert stats.interner_resets > 0
        cap = plan.max_interned_values
        assert cap is not None and plan.interned_value_count() <= cap + 2

    def test_batch_dedups_repeated_states(self):
        schema = DatabaseSchema([RelationSchema("ab")])
        prepared = analyze(schema).prepare(RelationSchema("ab"))
        plan = vectorize_plan(prepared)
        state = DatabaseState(schema, [Relation(schema[0], [(1, 2)])])
        runs = plan.execute_batch([state, state, state])
        assert runs[0] is runs[1] is runs[2]
        assert runs[0].stats.deduped_states == 2


@pytest.mark.skipif(not numpy_available(), reason="numpy kernel not available")
class TestShmAttach:
    def test_attach_matches_decode_execute(self):
        schema = chain_schema(2)
        attrs = schema.attributes.sorted_attributes()
        prepared = analyze(schema).prepare(RelationSchema((attrs[0],)))
        rng = random.Random(7)
        relations = [
            Relation(
                rs,
                [
                    tuple(rng.randrange(30) for _ in rs.sorted_attributes())
                    for _ in range(40)
                ],
            )
            for rs in schema.relations
        ]
        state = DatabaseState(schema, relations)
        classic = prepared.execute(state, backend="classic")
        plan = vectorize_plan(prepared)
        payload = shm_encode_state(state)
        vstate = shm_attach_state(plan, memoryview(payload))
        assert vstate is not None
        run = plan.execute(vstate)
        assert run.result == classic.result
        assert run.backend == "vectorized"

    def test_attach_refuses_dictionary_mode(self):
        schema = DatabaseSchema([RelationSchema("ab")])
        prepared = analyze(schema).prepare(RelationSchema("ab"))
        plan = vectorize_plan(prepared)
        strings = DatabaseState(
            schema, [Relation(schema[0], [("x", "y")])]
        )
        plan.execute_state(strings)  # pins dictionary mode
        ints = DatabaseState(schema, [Relation(schema[0], [(1, 2)])])
        payload = shm_encode_state(ints)
        assert shm_attach_state(plan, memoryview(payload)) is None
