"""Unit tests for the free-standing algebra helpers (multi-way joins)."""

from __future__ import annotations

from repro.hypergraph import chain_schema
from repro.relational import (
    Relation,
    intermediate_join_sizes,
    join_all,
    join_all_in_order,
    natural_join,
    project,
    random_ur_database,
    semijoin,
)


class TestWrappers:
    def test_functional_wrappers_match_methods(self):
        left = Relation("ab", [(1, 2)])
        right = Relation("bc", [(2, 3)])
        assert natural_join(left, right) == left.natural_join(right)
        assert semijoin(left, right) == left.semijoin(right)
        assert project(left, "a") == left.project("a")


class TestMultiwayJoin:
    def test_empty_input_is_nullary_true(self):
        assert join_all([]) == Relation.nullary_true()
        assert join_all_in_order([]) == Relation.nullary_true()

    def test_both_orders_agree_on_ur_state(self):
        schema = chain_schema(5)
        state = random_ur_database(schema, tuple_count=30, domain_size=4, rng=1)
        assert join_all(state.relations) == join_all_in_order(state.relations)

    def test_greedy_order_avoids_cartesian_blowup(self):
        # Relations listed so that the naive order starts with a cross product.
        a = Relation("ab", [(i, i) for i in range(10)])
        z = Relation("yz", [(i, i) for i in range(10)])
        b = Relation("by", [(i, i) for i in range(10)])
        naive_sizes = intermediate_join_sizes([a, z, b])
        assert max(naive_sizes) == 100  # the cross product a × z
        assert len(join_all([a, z, b])) == len(join_all_in_order([a, z, b]))

    def test_intermediate_sizes_reports_every_step(self):
        a = Relation("ab", [(1, 2)])
        b = Relation("bc", [(2, 3)])
        c = Relation("cd", [(3, 4)])
        assert intermediate_join_sizes([a, b, c]) == [1, 1, 1]
        assert intermediate_join_sizes([]) == []
