"""Unit tests for full reducers and Yannakakis' algorithm."""

from __future__ import annotations

import pytest

from repro.exceptions import NotATreeSchemaError, SchemaError
from repro.hypergraph import RelationSchema, aring, chain_schema, parse_schema, random_tree_schema
from repro.relational import (
    NaturalJoinQuery,
    full_reduce,
    full_reducer_semijoins,
    naive_join_project,
    random_database_state,
    random_ur_database,
    yannakakis,
)


class TestFullReducer:
    def test_semijoin_count_is_two_n_minus_two(self, chain4):
        steps = full_reducer_semijoins(chain4)
        assert len(steps) == 2 * (len(chain4) - 1)

    def test_cyclic_schema_rejected(self, triangle):
        with pytest.raises(NotATreeSchemaError):
            full_reducer_semijoins(triangle)

    def test_full_reduction_gives_global_consistency(self, chain4):
        state = random_database_state(chain4, tuple_count=25, domain_size=3, rng=7)
        reduced = full_reduce(state)
        joined = reduced.join()
        for relation_schema, relation in zip(reduced.schema, reduced.relations):
            assert relation == joined.project(relation_schema)

    def test_full_reduction_is_idempotent(self, chain4):
        state = random_database_state(chain4, tuple_count=25, domain_size=3, rng=8)
        once = full_reduce(state)
        assert full_reduce(once) == once

    def test_steps_describe_semijoins(self, chain4):
        steps = full_reducer_semijoins(chain4)
        assert all("⋉" in step.describe() for step in steps)


class TestYannakakis:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_naive_on_ur_states(self, seed):
        schema = chain_schema(5)
        target = RelationSchema({"x0", "x5"})
        state = random_ur_database(schema, tuple_count=40, domain_size=4, rng=seed)
        run = yannakakis(schema, target, state)
        baseline, _ = naive_join_project(schema, target, state)
        assert run.result == baseline

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_naive_on_arbitrary_states(self, seed):
        schema = random_tree_schema(6, rng=seed)
        attrs = schema.attributes.sorted_attributes()
        target = RelationSchema({attrs[0], attrs[-1]})
        state = random_database_state(schema, tuple_count=20, domain_size=3, rng=seed)
        run = yannakakis(schema, target, state)
        baseline, _ = naive_join_project(schema, target, state)
        assert run.result == baseline

    def test_intermediate_sizes_never_exceed_naive(self):
        schema = chain_schema(6)
        target = RelationSchema({"x0", "x6"})
        state = random_ur_database(schema, tuple_count=150, domain_size=8, rng=11)
        run = yannakakis(schema, target, state)
        _, naive_max = naive_join_project(schema, target, state)
        assert run.max_intermediate_size <= naive_max

    def test_semijoin_and_join_counts(self):
        schema = chain_schema(4)
        state = random_ur_database(schema, rng=0)
        run = yannakakis(schema, RelationSchema({"x0"}), state)
        assert run.semijoin_count == 2 * (len(schema) - 1)
        assert run.join_count == len(schema) - 1

    def test_cyclic_schema_rejected(self, triangle):
        state = random_ur_database(triangle, rng=0)
        with pytest.raises(NotATreeSchemaError):
            yannakakis(triangle, RelationSchema("ab"), state)

    def test_target_must_be_in_universe(self, chain4):
        state = random_ur_database(chain4, rng=0)
        with pytest.raises(SchemaError):
            yannakakis(chain4, RelationSchema("az"), state)

    def test_single_relation_schema(self):
        schema = parse_schema("ab")
        state = random_ur_database(schema, tuple_count=5, rng=2)
        run = yannakakis(schema, RelationSchema("a"), state)
        assert run.result == state[0].project("a")

    def test_agrees_with_query_evaluation(self, figure1_tree):
        state = random_ur_database(figure1_tree, tuple_count=30, domain_size=3, rng=4)
        target = RelationSchema("bf")
        run = yannakakis(figure1_tree, target, state)
        query_answer = NaturalJoinQuery(figure1_tree, target).evaluate(state)
        assert run.result == query_answer
