"""Unit tests for natural-join queries and empirical weak containment."""

from __future__ import annotations

import pytest

from repro.exceptions import SchemaError
from repro.hypergraph import RelationSchema, parse_schema
from repro.relational import (
    NaturalJoinQuery,
    Relation,
    random_ur_database,
    universal_database,
    weakly_contained_empirically,
    weakly_equivalent_empirically,
)


class TestEvaluation:
    def test_evaluate_matches_manual_join(self, chain4):
        state = random_ur_database(chain4, tuple_count=20, domain_size=3, rng=3)
        query = NaturalJoinQuery(chain4, RelationSchema("ad"))
        manual = (
            state[0].natural_join(state[1]).natural_join(state[2]).project("ad")
        )
        assert query.evaluate(state) == manual
        assert query.evaluate(state, naive=True) == manual

    def test_evaluate_on_universal(self, triangle):
        universal = Relation("abc", [(0, 0, 0), (1, 1, 1)])
        query = NaturalJoinQuery(triangle, RelationSchema("ab"))
        assert query.evaluate_on_universal(universal) == universal.project("ab")

    def test_state_schema_mismatch_rejected(self, chain4, triangle):
        state = random_ur_database(triangle, rng=1)
        with pytest.raises(SchemaError):
            NaturalJoinQuery(chain4, RelationSchema("a")).evaluate(state)

    def test_validate_target(self, chain4):
        NaturalJoinQuery(chain4, RelationSchema("ab")).validate()
        with pytest.raises(SchemaError):
            NaturalJoinQuery(chain4, RelationSchema("az")).validate()


class TestEmpiricalContainment:
    def test_smaller_join_contains_full_join(self):
        schema = parse_schema("ab,bc,ac")
        sub = parse_schema("ab,bc")
        full = NaturalJoinQuery(schema, RelationSchema("ac"))
        partial = NaturalJoinQuery(sub, RelationSchema("ac"))
        # The full query is contained in the partial one on UR databases ...
        assert weakly_contained_empirically(full, partial, rng=0) is None
        # ... but not conversely: sampling finds a counterexample.
        assert weakly_contained_empirically(partial, full, rng=0) is not None

    def test_equivalence_of_redundant_subset_relation(self):
        first = NaturalJoinQuery(parse_schema("ab,bc"), RelationSchema("ac"))
        second = NaturalJoinQuery(parse_schema("ab,bc,b"), RelationSchema("ac"))
        assert weakly_equivalent_empirically(first, second, rng=1) is None

    def test_target_mismatch_rejected(self):
        first = NaturalJoinQuery(parse_schema("ab"), RelationSchema("a"))
        second = NaturalJoinQuery(parse_schema("ab"), RelationSchema("b"))
        with pytest.raises(SchemaError):
            weakly_contained_empirically(first, second)

    def test_counterexample_is_a_real_witness(self):
        schema = parse_schema("ab,bc,ac")
        sub = parse_schema("ab,bc")
        full = NaturalJoinQuery(schema, RelationSchema("ac"))
        partial = NaturalJoinQuery(sub, RelationSchema("ac"))
        witness = weakly_contained_empirically(partial, full, rng=0)
        assert witness is not None
        assert not partial.evaluate_on_universal(witness).issubset(
            full.evaluate_on_universal(witness)
        )
