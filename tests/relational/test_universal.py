"""Unit tests for the universal-relation generators."""

from __future__ import annotations

from repro.hypergraph import RelationSchema, chain_schema
from repro.relational import (
    chain_correlated_universal_relation,
    is_universal_database,
    random_universal_relation,
    random_ur_database,
)


class TestRandomUniversalRelation:
    def test_shape_and_domain(self):
        relation = random_universal_relation("abc", tuple_count=30, domain_size=4, rng=1)
        assert relation.schema == RelationSchema("abc")
        assert len(relation) <= 30
        for row in relation.to_dicts():
            assert all(0 <= value < 4 for value in row.values())

    def test_reproducible_with_same_seed(self):
        first = random_universal_relation("abcd", tuple_count=15, rng=9)
        second = random_universal_relation("abcd", tuple_count=15, rng=9)
        assert first == second

    def test_ur_database_generator_is_universal(self):
        schema = chain_schema(4)
        state = random_ur_database(schema, tuple_count=20, domain_size=3, rng=2)
        assert is_universal_database(state)
        assert state.schema == schema


class TestCorrelatedUniversalRelation:
    def test_correlation_one_copies_values_along_columns(self):
        relation = chain_correlated_universal_relation(
            "abc", tuple_count=25, domain_size=50, correlation=1.0, rng=3
        )
        for row in relation.to_dicts():
            assert len(set(row.values())) == 1

    def test_correlation_zero_is_plain_random(self):
        relation = chain_correlated_universal_relation(
            "abcde", tuple_count=40, domain_size=5, correlation=0.0, rng=4
        )
        assert len(relation) > 1

    def test_fully_correlated_data_joins_to_the_diagonal(self):
        schema = chain_schema(3)
        universe = chain_correlated_universal_relation(
            schema.attributes, tuple_count=40, domain_size=20, correlation=1.0, rng=5
        )
        from repro.relational import universal_database

        joined = universal_database(schema, universe).join()
        # Every attribute copies its predecessor, so the join is the diagonal
        # relation: one row per distinct value, all columns equal.
        assert len(joined) == len(universe)
        for row in joined.to_dicts():
            assert len(set(row.values())) == 1
