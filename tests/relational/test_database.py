"""Unit tests for database states and UR databases."""

from __future__ import annotations

import pytest

from repro.exceptions import RelationError, SchemaError
from repro.hypergraph import parse_schema
from repro.relational import (
    DatabaseState,
    Relation,
    is_universal_database,
    random_database_state,
    random_universal_relation,
    universal_database,
)


@pytest.fixture
def universal_abc():
    return Relation("abc", [(0, 0, 0), (0, 1, 1), (1, 1, 0)])


class TestDatabaseState:
    def test_positional_alignment_is_validated(self, chain4):
        good = DatabaseState(
            chain4,
            [Relation("ab", []), Relation("bc", []), Relation("cd", [])],
        )
        assert len(good) == 3
        with pytest.raises(RelationError):
            DatabaseState(chain4, [Relation("ab", []), Relation("bc", [])])
        with pytest.raises(RelationError):
            DatabaseState(
                chain4,
                [Relation("ab", []), Relation("xy", []), Relation("cd", [])],
            )

    def test_join_and_total_rows(self, triangle, universal_abc):
        state = universal_database(triangle, universal_abc)
        assert state.total_rows() == 9
        assert state.join().project("abc").rows >= universal_abc.rows

    def test_sub_state(self, chain4):
        state = DatabaseState(
            chain4,
            [Relation("ab", [(1, 2)]), Relation("bc", [(2, 3)]), Relation("cd", [(3, 4)])],
        )
        sub = state.sub_state([0, 2])
        assert sub.schema == parse_schema("ab,cd")
        assert len(sub) == 2

    def test_state_for_derives_projections(self, triangle, universal_abc):
        state = universal_database(triangle, universal_abc)
        derived = state.state_for(parse_schema("ab,a"))
        assert derived[0] == universal_abc.project("ab")
        assert derived[1] == universal_abc.project("a")
        with pytest.raises(SchemaError):
            state.state_for(parse_schema("xyz"))

    def test_equality(self, triangle, universal_abc):
        first = universal_database(triangle, universal_abc)
        second = universal_database(triangle, universal_abc)
        assert first == second


class TestUniversalDatabases:
    def test_projections_match_definition(self, triangle, universal_abc):
        state = universal_database(triangle, universal_abc)
        for relation_schema, relation in zip(triangle, state):
            assert relation == universal_abc.project(relation_schema)

    def test_universal_relation_must_cover_schema(self, chain4):
        with pytest.raises(SchemaError):
            universal_database(chain4, Relation("ab", []))

    def test_ur_state_is_recognized(self, triangle, universal_abc):
        state = universal_database(triangle, universal_abc)
        assert is_universal_database(state)

    def test_non_ur_state_is_detected(self, chain4):
        # Make relation states that cannot arise from a single universal
        # relation: b values do not match across ab and bc.
        state = DatabaseState(
            chain4,
            [Relation("ab", [(1, 1)]), Relation("bc", [(2, 2)]), Relation("cd", [(2, 3)])],
        )
        assert not is_universal_database(state)

    def test_random_generators_shapes(self, chain4, rng):
        ur_state = random_universal_relation(chain4.attributes, tuple_count=10, rng=rng)
        assert len(ur_state) <= 10
        state = random_database_state(chain4, tuple_count=5, domain_size=2, rng=rng)
        assert len(state) == len(chain4)
