"""Unit tests for the Relation class and its operators."""

from __future__ import annotations

import pytest

from repro.exceptions import RelationError
from repro.hypergraph import RelationSchema
from repro.relational import Relation


@pytest.fixture
def r_ab():
    return Relation.from_dicts("ab", [{"a": 1, "b": 10}, {"a": 2, "b": 20}, {"a": 1, "b": 20}])


@pytest.fixture
def r_bc():
    return Relation.from_dicts("bc", [{"b": 10, "c": 100}, {"b": 20, "c": 200}, {"b": 30, "c": 300}])


class TestConstruction:
    def test_from_dicts_and_len(self, r_ab):
        assert len(r_ab) == 3
        assert {"a": 1, "b": 10} in r_ab

    def test_duplicates_are_collapsed(self):
        relation = Relation("ab", [(1, 2), (1, 2)])
        assert len(relation) == 1

    def test_row_arity_validation(self):
        with pytest.raises(RelationError):
            Relation("ab", [(1,)])

    def test_missing_attribute_validation(self):
        with pytest.raises(RelationError):
            Relation.from_dicts("ab", [{"a": 1}])

    def test_empty_and_nullary(self):
        assert len(Relation.empty("ab")) == 0
        assert len(Relation.nullary_true()) == 1
        assert Relation.nullary_true().columns == ()

    def test_equality_ignores_construction_order(self):
        first = Relation("ab", [(1, 2), (3, 4)])
        second = Relation.from_dicts("ba", [{"b": 4, "a": 3}, {"b": 2, "a": 1}])
        assert first == second
        assert hash(first) == hash(second)

    def test_immutability(self, r_ab):
        with pytest.raises(AttributeError):
            r_ab.rows = frozenset()


class TestOperators:
    def test_projection(self, r_ab):
        projected = r_ab.project("a")
        assert projected.schema == RelationSchema("a")
        assert len(projected) == 2

    def test_projection_onto_nothing(self, r_ab):
        assert len(r_ab.project(())) == 1  # nullary TRUE
        assert len(Relation.empty("ab").project(())) == 0  # nullary FALSE

    def test_projection_validation(self, r_ab):
        with pytest.raises(RelationError):
            r_ab.project("az")

    def test_natural_join(self, r_ab, r_bc):
        joined = r_ab.natural_join(r_bc)
        assert joined.schema == RelationSchema("abc")
        assert {"a": 1, "b": 10, "c": 100} in joined
        assert {"a": 1, "b": 20, "c": 200} in joined
        assert len(joined) == 3

    def test_join_with_no_shared_attributes_is_product(self):
        left = Relation("a", [(1,), (2,)])
        right = Relation("b", [(7,), (8,)])
        assert len(left.natural_join(right)) == 4

    def test_join_with_nullary_true_is_identity(self, r_ab):
        assert r_ab.natural_join(Relation.nullary_true()) == r_ab

    def test_join_is_commutative_and_associative(self, r_ab, r_bc):
        r_cd = Relation("cd", [(100, "x"), (300, "y")])
        assert r_ab.natural_join(r_bc) == r_bc.natural_join(r_ab)
        left = r_ab.natural_join(r_bc).natural_join(r_cd)
        right = r_ab.natural_join(r_bc.natural_join(r_cd))
        assert left == right

    def test_semijoin_definition(self, r_ab, r_bc):
        # R ⋉ S = π_R(R ⋈ S)
        assert r_ab.semijoin(r_bc) == r_ab.natural_join(r_bc).project(r_ab.schema)

    def test_semijoin_without_shared_attributes(self, r_ab):
        assert r_ab.semijoin(Relation("z", [(1,)])) == r_ab
        assert len(r_ab.semijoin(Relation.empty("z"))) == 0

    def test_selection(self, r_ab):
        assert len(r_ab.select(lambda row: row["a"] == 1)) == 2
        assert len(r_ab.select_equal(a=1, b=10)) == 1
        with pytest.raises(RelationError):
            r_ab.select_equal(z=1)

    def test_rename(self, r_ab):
        renamed = r_ab.rename({"a": "x"})
        assert renamed.schema == RelationSchema({"x", "b"})
        assert {"x": 1, "b": 10} in renamed
        with pytest.raises(RelationError):
            r_ab.rename({"z": "y"})
        with pytest.raises(RelationError):
            r_ab.rename({"a": "b"})

    def test_set_operations(self, r_ab):
        other = Relation("ab", [(1, 10), (9, 90)])
        assert len(r_ab.union(other)) == 4
        assert len(r_ab.intersection(other)) == 1
        assert len(r_ab.difference(other)) == 2
        assert other.difference(r_ab).issubset(other)
        with pytest.raises(RelationError):
            r_ab.union(Relation("xy", []))

    def test_render_contains_header_and_rows(self, r_ab):
        text = r_ab.render()
        assert "a" in text and "b" in text
        assert "10" in text
