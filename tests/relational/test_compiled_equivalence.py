"""Property-based tests: the compiled interned-value backend ≡ the classic
object-tuple operators on every exposed entry point.

The classic executor (``backend="classic"``) is the retained oracle — it is
itself property-tested against ``naive_join_project`` — and shares no
execution code with :mod:`repro.relational.compiled`: no interning, no
positional step programs, no identity fast paths.  Agreement on random tree
schemas and random states (empty relations, dangling tuples, mixed value
types across the numeric tower, repeated relations across states) is strong
evidence the compilation is faithful.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.engine import analyze, clear_analysis_cache
from repro.hypergraph import (
    DatabaseSchema,
    RelationSchema,
    chain_schema,
    random_tree_schema,
    star_schema,
)
from repro.relational import (
    CompiledState,
    DatabaseState,
    Relation,
    yannakakis,
)

#: Value pool spanning the numeric tower (1 == 1.0 == True) plus strings and
#: None, so both interner modes (identity ints, dictionary codes) and the
#: stray-canonicalization path are exercised.
VALUES = st.one_of(
    st.integers(-3, 6),
    st.sampled_from([1.0, 2.5, -1.0, True, False, "a", "b", "v1", None]),
)


def _build_schema(family: str, size: int, seed: int) -> DatabaseSchema:
    if family == "chain":
        return chain_schema(size)
    if family == "star":
        return star_schema(max(size, 2))
    return random_tree_schema(size, rng=seed)


@st.composite
def tree_instances(draw, max_states: int = 1):
    """A tree schema, a target, and ``max_states`` random (possibly
    repeated) states with independently sized relations."""
    family = draw(st.sampled_from(["chain", "star", "random-tree"]))
    size = draw(st.integers(1, 5))
    schema = _build_schema(family, size, draw(st.integers(0, 10**6)))
    attrs = schema.attributes.sorted_attributes()
    target = RelationSchema(
        draw(st.sets(st.sampled_from(list(attrs)), max_size=min(3, len(attrs))))
    )

    def draw_state() -> DatabaseState:
        relations = []
        for relation_schema in schema.relations:
            width = len(relation_schema.sorted_attributes())
            rows = draw(
                st.lists(st.tuples(*([VALUES] * width)), min_size=0, max_size=8)
            )
            relations.append(Relation(relation_schema, rows))
        return DatabaseState(schema, relations)

    states = [draw_state()]
    while len(states) < max_states:
        if draw(st.booleans()):
            # Repeat an earlier state object: the batch paths must amortize
            # (and stay correct) when relations recur across states.
            states.append(states[draw(st.integers(0, len(states) - 1))])
        else:
            states.append(draw_state())
    return schema, target, states


def _assert_runs_agree(classic, compiled) -> None:
    assert compiled.result == classic.result
    assert compiled.semijoin_count == classic.semijoin_count
    assert compiled.join_count == classic.join_count
    assert compiled.max_intermediate_size == classic.max_intermediate_size
    assert classic.backend == "classic"
    assert compiled.backend == "compiled"


class TestExecuteEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(tree_instances())
    def test_execute_matches_classic(self, instance):
        schema, target, (state,) = instance
        prepared = analyze(schema).prepare(target)
        classic = prepared.execute(state, backend="classic")
        compiled = prepared.execute(state, backend="compiled")
        _assert_runs_agree(classic, compiled)

    @settings(max_examples=40, deadline=None)
    @given(tree_instances(max_states=4))
    def test_execute_many_matches_classic(self, instance):
        schema, target, states = instance
        prepared = analyze(schema).prepare(target)
        classic_runs = prepared.execute_many(states, backend="classic")
        compiled_runs = prepared.execute_many(states, backend="compiled")
        assert len(classic_runs) == len(compiled_runs)
        for classic, compiled in zip(classic_runs, compiled_runs):
            _assert_runs_agree(classic, compiled)
        # One shared stats object describes the whole batch; repeated states
        # are deduplicated rather than re-executed.
        stats_ids = {id(run.stats) for run in compiled_runs}
        assert len(stats_ids) == 1
        stats = compiled_runs[0].stats
        assert stats.states + stats.deduped_states == len(states)

    @settings(max_examples=40, deadline=None)
    @given(tree_instances())
    def test_yannakakis_wrapper_routes_backends(self, instance):
        schema, target, (state,) = instance
        classic = yannakakis(schema, target, state, backend="classic")
        compiled = yannakakis(schema, target, state, backend="compiled")
        _assert_runs_agree(classic, compiled)

    @settings(max_examples=30, deadline=None)
    @given(tree_instances())
    def test_fresh_plan_equivalence(self, instance):
        """Cold path: a fresh analysis (and thus a fresh interner) per call."""
        schema, target, (state,) = instance
        clear_analysis_cache()
        compiled = yannakakis(schema, target, state, backend="compiled")
        clear_analysis_cache()
        classic = yannakakis(schema, target, state, backend="classic")
        _assert_runs_agree(classic, compiled)


class TestEncodeDecodeRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(st.data())
    def test_decode_encode_round_trip(self, data):
        """π_U(R) over the single-relation schema [R] is R itself, and the
        compiled run computes it as decode(encode(R)) verbatim."""
        attrs = data.draw(
            st.sets(st.sampled_from(list("abcd")), min_size=1, max_size=3)
        )
        relation_schema = RelationSchema(attrs)
        width = len(relation_schema.sorted_attributes())
        rows = data.draw(
            st.lists(st.tuples(*([VALUES] * width)), min_size=0, max_size=10)
        )
        relation = Relation(relation_schema, rows)
        schema = DatabaseSchema([relation_schema])
        prepared = analyze(schema).prepare(relation_schema)
        run = prepared.execute(DatabaseState(schema, [relation]), backend="compiled")
        assert run.backend == "compiled"
        assert run.result == relation

    def test_round_trip_interns_shared_values_across_states(self):
        schema = DatabaseSchema([RelationSchema("ab")])
        prepared = analyze(schema).prepare(RelationSchema("ab"))
        prepared.reset_compiled()  # other tests may share this cached plan
        plan = prepared.compiled
        states = [
            DatabaseState(
                schema, [Relation(schema[0], [("k", i), ("k", i + 1)])]
            )
            for i in range(4)
        ]
        runs = prepared.execute_many(states, backend="compiled")
        for state, run in zip(states, runs):
            assert run.result == state.relations[0]
        # "k" is dictionary-interned once for the whole batch.
        assert plan.interned_value_count() == 1


class TestValueSemantics:
    def test_numeric_tower_joins_across_relations(self):
        schema = DatabaseSchema([RelationSchema("ab"), RelationSchema("bc")])
        target = RelationSchema("ac")
        prepared = analyze(schema).prepare(target)
        state = DatabaseState(
            schema,
            [
                Relation(schema[0], [(1, "x"), (2.0, "y"), (True, "z")]),
                Relation(schema[1], [("x", 10), ("y", 2), ("z", 30)]),
            ],
        )
        classic = prepared.execute(state, backend="classic")
        compiled = prepared.execute(state, backend="compiled")
        _assert_runs_agree(classic, compiled)
        assert len(compiled.result) == 3

    def test_identity_mode_pinned_then_strays_arrive(self):
        """A plan that saw pure-int columns first must still join later
        states carrying equal floats, bools, and unrelated strings."""
        schema = DatabaseSchema([RelationSchema("ab"), RelationSchema("bc")])
        target = RelationSchema("ac")
        prepared = analyze(schema).prepare(target)
        first = DatabaseState(
            schema,
            [
                Relation(schema[0], [(5, 1)]),
                Relation(schema[1], [(1, 9)]),
            ],
        )
        prepared.execute(first)  # pins both attributes to identity mode
        mixed = DatabaseState(
            schema,
            [
                Relation(schema[0], [(5.0, True), ("s", 1)]),
                Relation(schema[1], [(1.0, 9)]),
            ],
        )
        classic = prepared.execute(mixed, backend="classic")
        compiled = prepared.execute(mixed, backend="compiled")
        _assert_runs_agree(classic, compiled)

    def test_empty_relations_and_empty_target(self):
        schema = chain_schema(3)
        state = DatabaseState(
            schema, [Relation(relation, []) for relation in schema.relations]
        )
        prepared = analyze(schema).prepare(RelationSchema(()))
        classic = prepared.execute(state, backend="classic")
        compiled = prepared.execute(state, backend="compiled")
        _assert_runs_agree(classic, compiled)
        assert len(compiled.result) == 0

    def test_nullary_relation_slot(self):
        """A relation schema over no attributes exercises the empty-shared
        semijoin and join paths."""
        schema = DatabaseSchema([RelationSchema("ab"), RelationSchema(())])
        target = RelationSchema("ab")
        prepared = analyze(schema).prepare(target)
        for nullary_rows in ([], [()]):
            state = DatabaseState(
                schema,
                [
                    Relation(schema[0], [(1, 2), (3, 4)]),
                    Relation(schema[1], nullary_rows),
                ],
            )
            classic = prepared.execute(state, backend="classic")
            compiled = prepared.execute(state, backend="compiled")
            _assert_runs_agree(classic, compiled)

    def test_dangling_tuples_random_states(self):
        rng = random.Random(20260729)
        for _ in range(25):
            schema = _build_schema(
                rng.choice(["chain", "star", "random-tree"]),
                rng.randint(2, 5),
                rng.randint(0, 10**6),
            )
            attrs = schema.attributes.sorted_attributes()
            target = RelationSchema(rng.sample(attrs, min(2, len(attrs))))
            relations = [
                Relation(
                    relation_schema,
                    [
                        tuple(
                            rng.randrange(4)
                            for _ in relation_schema.sorted_attributes()
                        )
                        for _ in range(rng.randrange(0, 12))
                    ],
                )
                for relation_schema in schema.relations
            ]
            state = DatabaseState(schema, relations)
            prepared = analyze(schema).prepare(target)
            classic = prepared.execute(state, backend="classic")
            compiled = prepared.execute(state, backend="compiled")
            _assert_runs_agree(classic, compiled)


class TestCompiledStateApi:
    def test_from_state_executes_repeatedly(self):
        schema = chain_schema(3)
        target = RelationSchema({"x0", "x3"})
        prepared = analyze(schema).prepare(target)
        plan = prepared.compiled
        state = DatabaseState(
            schema,
            [
                Relation(relation, [(i, i + 1) for i in range(4)])
                for relation in schema.relations
            ],
        )
        compiled_state = CompiledState.from_state(plan, state)
        first = compiled_state.execute()
        second = compiled_state.execute()
        assert first.result == second.result
        assert first.result == prepared.execute(state, backend="classic").result

    def test_wrong_schema_rejected(self):
        import pytest

        from repro.exceptions import SchemaError

        schema = chain_schema(3)
        other = chain_schema(4)
        prepared = analyze(schema).prepare(RelationSchema({"x0"}))
        state = DatabaseState(
            other, [Relation(relation, []) for relation in other.relations]
        )
        with pytest.raises(SchemaError):
            CompiledState.from_state(prepared.compiled, state)

    def test_empty_schema_direct_plan_api(self):
        from repro.engine import PreparedQuery
        from repro.hypergraph import parse_schema

        schema = parse_schema("")
        prepared = PreparedQuery(schema, RelationSchema(()))
        plan = prepared.compiled
        run = CompiledState.from_state(plan, DatabaseState(schema, [])).execute()
        assert run.backend == "compiled"
        assert len(run.result) == 1  # nullary true
        assert run.max_intermediate_size == 1
