"""Unit tests for join dependencies and the lossless-join experiments."""

from __future__ import annotations

import pytest

from repro.exceptions import SchemaError
from repro.hypergraph import parse_schema
from repro.relational import (
    Relation,
    decompose_and_rejoin,
    satisfies_join_dependency,
    search_implication_counterexample,
)


@pytest.fixture
def consistent_instance():
    # a determines b and c, so the decomposition (ab, ac) is lossless here.
    return Relation("abc", [(1, 10, 100), (2, 20, 200), (3, 10, 300)])


@pytest.fixture
def lossy_instance():
    # Classic lossy case: two tuples agreeing on nothing but joined through b.
    return Relation("abc", [(1, 5, 100), (2, 5, 200)])


class TestSatisfaction:
    def test_lossless_instance_satisfies_jd(self, consistent_instance):
        assert satisfies_join_dependency(consistent_instance, parse_schema("ab,ac"))

    def test_lossy_instance_violates_jd(self, lossy_instance):
        assert not satisfies_join_dependency(lossy_instance, parse_schema("ab,bc"))

    def test_embedded_jd_projects_first(self, consistent_instance):
        # The JD only mentions a and b; the instance has attribute c too.
        assert satisfies_join_dependency(consistent_instance, parse_schema("ab,a"))

    def test_jd_attributes_must_exist(self, consistent_instance):
        with pytest.raises(SchemaError):
            satisfies_join_dependency(consistent_instance, parse_schema("az"))

    def test_trivial_jd_with_single_component(self, lossy_instance):
        assert satisfies_join_dependency(lossy_instance, parse_schema("abc"))


class TestDecomposition:
    def test_report_flags_spurious_tuples(self, lossy_instance):
        report = decompose_and_rejoin(lossy_instance, parse_schema("ab,bc"))
        assert not report.lossless
        assert len(report.spurious) == 2
        assert report.rejoined.rows >= report.original.rows

    def test_report_for_lossless_decomposition(self, consistent_instance):
        report = decompose_and_rejoin(consistent_instance, parse_schema("ab,ac"))
        assert report.lossless
        assert len(report.spurious) == 0


class TestImplicationSearch:
    def test_paper_counterexample_is_found(self):
        # Section 5.1: ⋈{abc, ab, bc} does not imply ⋈{ab, bc}.
        witness = search_implication_counterexample(
            parse_schema("abc,ab,bc"), parse_schema("ab,bc"), rng=0
        )
        assert witness is not None
        assert satisfies_join_dependency(witness, parse_schema("abc,ab,bc"))
        assert not satisfies_join_dependency(witness, parse_schema("ab,bc"))

    def test_subtree_implication_has_no_counterexample(self):
        # {ab, bc} is a subtree of the chain, so the implication holds and no
        # counterexample can exist (Corollary 5.2).
        witness = search_implication_counterexample(
            parse_schema("ab,bc,cd"), parse_schema("ab,bc"), trials=40, rng=0
        )
        assert witness is None

    def test_candidates_always_satisfy_the_premise(self):
        witness = search_implication_counterexample(
            parse_schema("ab,bc,ac"), parse_schema("ab,bc"), trials=10, rng=5
        )
        # Whether or not a counterexample is found, any returned witness must
        # satisfy the antecedent join dependency.
        if witness is not None:
            assert satisfies_join_dependency(witness, parse_schema("ab,bc,ac"))
