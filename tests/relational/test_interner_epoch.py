"""Bounded interner growth: epoch rollover under ``max_interned_values``.

PR-4 left plan interners growing monotonically (``reset_compiled`` was the
only relief, and manual).  Plans now carry a cap checked at every
state-encode boundary; overflow opens a new epoch — interning maps rebuilt,
stale encodings evicted — without changing any answer.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.engine import analyze
from repro.hypergraph import DatabaseSchema, RelationSchema
from repro.relational import DatabaseState, Relation
from repro.relational.compiled import DEFAULT_MAX_INTERNED_VALUES


def _schema():
    return DatabaseSchema([RelationSchema("ab"), RelationSchema("bc")])


def _string_state(schema, salt: int, rows: int = 4) -> DatabaseState:
    return DatabaseState(
        schema,
        [
            Relation(
                schema[0],
                [(f"a{salt}.{i}", f"b{salt}.{i}") for i in range(rows)],
            ),
            Relation(
                schema[1],
                [(f"b{salt}.{i}", f"c{salt}.{i}") for i in range(rows)],
            ),
        ],
    )


def _fresh_plan(cap):
    prepared = analyze(_schema()).prepare(RelationSchema("ac"))
    prepared.reset_compiled()
    plan = prepared.compiled
    plan.max_interned_values = cap
    return prepared, plan


class TestEpochRollover:
    def test_default_cap_is_finite(self):
        _, plan = _fresh_plan(cap=DEFAULT_MAX_INTERNED_VALUES)
        assert plan.max_interned_values == DEFAULT_MAX_INTERNED_VALUES
        assert plan.interner_epoch == 0

    def test_overflow_opens_epochs_and_bounds_growth(self):
        schema = _schema()
        prepared, plan = _fresh_plan(cap=20)
        for salt in range(12):
            prepared.execute(_string_state(schema, salt), backend="compiled")
        assert plan.interner_epoch > 0
        # Growth is bounded by cap + one state's worth of fresh values.
        assert plan.interned_value_count() <= 20 + 4 * 3

    def test_results_stay_correct_across_rollovers(self):
        schema = _schema()
        prepared, plan = _fresh_plan(cap=10)
        for salt in range(15):
            state = _string_state(schema, salt)
            compiled = prepared.execute(state, backend="compiled")
            classic = prepared.execute(state, backend="classic")
            assert compiled.result == classic.result
            assert compiled.max_intermediate_size == classic.max_intermediate_size
        assert plan.interner_epoch >= 1

    def test_batch_surfaces_reset_counter(self):
        schema = _schema()
        prepared, plan = _fresh_plan(cap=10)
        states = [_string_state(schema, salt) for salt in range(10)]
        runs = prepared.execute_many(states, backend="compiled")
        stats = runs[0].stats
        assert stats.interner_resets > 0
        assert stats.interner_resets == plan.interner_epoch

    def test_rollover_drops_stale_slot_encodings(self):
        schema = _schema()
        prepared, plan = _fresh_plan(cap=10)
        state = _string_state(schema, 0)
        prepared.execute(state, backend="compiled")
        assert sum(plan.cache_sizes()) > 0
        for salt in range(1, 8):
            prepared.execute(_string_state(schema, salt), backend="compiled")
        assert plan.interner_epoch > 0
        # Re-executing the very first state after rollovers re-encodes it
        # against the new epoch and still answers correctly.
        rerun = prepared.execute(state, backend="compiled")
        classic = prepared.execute(state, backend="classic")
        assert rerun.result == classic.result

    def test_pinned_compiled_state_survives_rollover(self):
        """A CompiledState captures its epoch's decoders at encode time, so
        executing it after rollovers still decodes the retired epoch's codes
        to the right values."""
        from repro.relational import CompiledState

        schema = _schema()
        prepared, plan = _fresh_plan(cap=10)
        state = _string_state(schema, 0)
        pinned = CompiledState.from_state(plan, state)
        expected = prepared.execute(state, backend="classic").result
        assert pinned.execute().result == expected
        for salt in range(1, 9):
            prepared.execute(_string_state(schema, salt), backend="compiled")
        assert plan.interner_epoch > 0
        # Same pinned encoding, executed against a plan that has since
        # rolled its interner over (possibly several times).
        assert pinned.execute().result == expected

    def test_unbounded_cap_never_rolls_over(self):
        schema = _schema()
        prepared, plan = _fresh_plan(cap=None)
        for salt in range(10):
            prepared.execute(_string_state(schema, salt), backend="compiled")
        assert plan.interner_epoch == 0
        assert plan.interned_value_count() > 20

    def test_identity_columns_unaffected_by_cap(self):
        """Pure-int states intern nothing, so even a tiny cap never triggers."""
        schema = _schema()
        prepared, plan = _fresh_plan(cap=1)
        for salt in range(6):
            state = DatabaseState(
                schema,
                [
                    Relation(schema[0], [(salt * 10 + i, i) for i in range(4)]),
                    Relation(schema[1], [(i, salt * 10 + i) for i in range(4)]),
                ],
            )
            compiled = prepared.execute(state, backend="compiled")
            classic = prepared.execute(state, backend="classic")
            assert compiled.result == classic.result
        assert plan.interner_epoch == 0

    @settings(max_examples=25, deadline=None)
    @given(
        cap=st.integers(1, 30),
        salts=st.lists(st.integers(0, 6), min_size=1, max_size=10),
    )
    def test_equivalence_under_random_caps(self, cap, salts):
        """Any cap, any (possibly repeating) state sequence: compiled with
        rollovers ≡ classic."""
        schema = _schema()
        prepared, plan = _fresh_plan(cap=cap)
        for salt in salts:
            state = _string_state(schema, salt, rows=3)
            compiled = prepared.execute(state, backend="compiled")
            classic = prepared.execute(state, backend="classic")
            assert compiled.result == classic.result
