"""Property-style tests: ``yannakakis(...)`` ≡ ``naive_join_project(...)``.

Both algorithms compute ``π_X(⋈ D)`` for *any* database state over a tree
schema, so they must agree on every instance.  These tests sweep the
generator families (chains, stars, random tree schemas) with randomized UR
and non-UR states, plus the edge cases that exercise the fast paths added to
the relational kernel (trusted construction, cached key indexes, early
projection, semijoin identity shortcut).
"""

from __future__ import annotations

import random

import pytest

from repro.hypergraph import (
    RelationSchema,
    chain_schema,
    parse_schema,
    random_tree_schema,
    star_schema,
)
from repro.relational import (
    DatabaseState,
    Relation,
    naive_join_project,
    yannakakis,
)
from repro.relational.universal import random_database_state, random_ur_database


def _random_target(schema, rng) -> RelationSchema:
    """A random non-empty subset of U(D)."""
    attributes = schema.attributes.sorted_attributes()
    count = rng.randint(1, min(3, len(attributes)))
    return RelationSchema(rng.sample(attributes, count))


def _assert_equivalent(schema, target, state) -> None:
    run = yannakakis(schema, target, state)
    baseline, naive_max = naive_join_project(schema, target, state)
    assert run.result == baseline
    assert run.max_intermediate_size <= max(naive_max, state.total_rows(), 1)


FAMILIES = [
    pytest.param(lambda size, seed: chain_schema(size), id="chain"),
    pytest.param(lambda size, seed: star_schema(size), id="star"),
    pytest.param(lambda size, seed: random_tree_schema(size, rng=seed), id="random-tree"),
]


class TestEquivalenceAcrossFamilies:
    @pytest.mark.parametrize("build", FAMILIES)
    @pytest.mark.parametrize("seed", range(5))
    def test_ur_states(self, build, seed):
        rng = random.Random(seed)
        schema = build(rng.randint(2, 6), seed)
        state = random_ur_database(schema, tuple_count=25, domain_size=4, rng=seed)
        _assert_equivalent(schema, _random_target(schema, rng), state)

    @pytest.mark.parametrize("build", FAMILIES)
    @pytest.mark.parametrize("seed", range(5))
    def test_non_ur_states(self, build, seed):
        # Yannakakis' algorithm does not require a UR database; the full
        # reducer makes an arbitrary state consistent first.
        rng = random.Random(100 + seed)
        schema = build(rng.randint(2, 6), seed)
        state = random_database_state(schema, tuple_count=12, domain_size=3, rng=seed)
        _assert_equivalent(schema, _random_target(schema, rng), state)

    @pytest.mark.parametrize("build", FAMILIES)
    def test_full_universe_target(self, build):
        rng = random.Random(7)
        schema = build(4, 7)
        state = random_ur_database(schema, tuple_count=15, domain_size=3, rng=7)
        _assert_equivalent(schema, RelationSchema(schema.attributes), state)


class TestEdgeCases:
    def test_empty_relation_state_annihilates_the_join(self):
        schema = chain_schema(4)
        state = random_ur_database(schema, tuple_count=20, domain_size=4, rng=1)
        relations = list(state.relations)
        relations[2] = Relation.empty(schema[2])
        emptied = DatabaseState(schema, relations)
        target = RelationSchema({"x0", "x4"})
        run = yannakakis(schema, target, emptied)
        baseline, _ = naive_join_project(schema, target, emptied)
        assert run.result == baseline == Relation.empty(target)

    def test_no_shared_attributes(self):
        # Attribute-disjoint relations form a (disconnected) tree schema;
        # the join is a cartesian product.
        schema = parse_schema("ab,cd")
        left = Relation("ab", [(1, 2), (3, 4)])
        right = Relation("cd", [(5, 6)])
        state = DatabaseState(schema, [left, right])
        target = RelationSchema("ac")
        _assert_equivalent(schema, target, state)
        run = yannakakis(schema, target, state)
        assert len(run.result) == 2

    def test_no_shared_attributes_with_empty_side(self):
        schema = parse_schema("ab,cd")
        state = DatabaseState(
            schema, [Relation("ab", [(1, 2)]), Relation.empty(RelationSchema("cd"))]
        )
        _assert_equivalent(schema, RelationSchema("a"), state)
        assert not yannakakis(schema, RelationSchema("a"), state).result

    def test_nullary_target(self):
        # π_∅(⋈ D) is the nullary TRUE relation iff the join is non-empty.
        schema = chain_schema(3)
        state = random_ur_database(schema, tuple_count=10, domain_size=3, rng=3)
        target = RelationSchema(())
        run = yannakakis(schema, target, state)
        baseline, _ = naive_join_project(schema, target, state)
        assert run.result == baseline == Relation.nullary_true()

    def test_nullary_target_on_empty_state(self):
        schema = chain_schema(3)
        state = DatabaseState(schema, [Relation.empty(rel) for rel in schema])
        target = RelationSchema(())
        run = yannakakis(schema, target, state)
        baseline, _ = naive_join_project(schema, target, state)
        assert run.result == baseline == Relation.empty(())

    def test_single_relation_schema(self):
        schema = parse_schema("abc")
        relation = Relation("abc", [(1, 2, 3), (4, 5, 6)])
        state = DatabaseState(schema, [relation])
        _assert_equivalent(schema, RelationSchema("ac"), state)

    def test_duplicate_relation_schemas(self):
        schema = parse_schema("ab,ab")
        state = DatabaseState(
            schema, [Relation("ab", [(1, 2), (3, 4)]), Relation("ab", [(1, 2)])]
        )
        _assert_equivalent(schema, RelationSchema("ab"), state)

    def test_globally_consistent_state_hits_semijoin_identity_path(self):
        # On a UR state the full reducer drops no rows, so every semijoin
        # returns its (already indexed) input unchanged.
        schema = chain_schema(5)
        state = random_ur_database(schema, tuple_count=40, domain_size=20, rng=11)
        _assert_equivalent(schema, RelationSchema({"x0", "x5"}), state)
