"""Scaling-benchmark runner producing a machine-readable trajectory file.

This script re-runs the three scaling benchmarks (``bench_scaling_gyo``,
``bench_yannakakis_vs_naive`` and ``bench_scaling_cc``) plus the engine
plan-reuse benchmark, the PR-4 ``serving`` section (classic vs compiled vs
batched per-state medians), the PR-5 ``parallel`` section (single-process
batched compiled vs the sharded multi-process executor at 2/4 workers, pool
reuse timed separately from cold spawn), the PR-6 ``robustness`` section
(supervision overhead when healthy, recovery latency under one injected
worker crash), the PR-7 ``service`` section (routing verdicts, shm vs
pickle transport), the PR-8 ``vectorized`` section (the array-backed
kernel vs classic and compiled on output-explosion joins and string-heavy
encode batches), the PR-9 ``cyclic`` section (batched compiled cyclic
plans vs the per-call Theorem 6.1 solver on aring/aclique serving
families) and the PR-10 ``catalog`` section (cold-start analysis +
prepare vs a warm persistent plan catalog, worker-respawn plan rebuilds
with and without the catalog, plus an execution noise control) outside
pytest and records sizes, median wall times and
max-intermediate sizes as JSON so that every PR has a regression baseline to
compare against.  Multi-process sections warn loudly on hosts with fewer
than four cores and stamp ``host_cpus`` into every row.

Usage::

    # capture a snapshot (e.g. before a refactor)
    python benchmarks/run_benchmarks.py --phase before --out /tmp/bench_before.json

    # capture the optimized snapshot and merge the baseline into one
    # trajectory file with per-case speedups
    python benchmarks/run_benchmarks.py --phase after \
        --before /tmp/bench_before.json --out BENCH_PR2.json

The naive join baseline is only run on cases listed in ``NAIVE_CASES``:
its intermediate results explode combinatorially on the larger chains (that
blow-up is the paper's point), so timing it there is infeasible.

Since PR 2 the free functions (``gyo_reduce``, ``canonical_connection``,
``yannakakis``) delegate to the memoizing engine façade, so the classic
sections clear the analysis cache inside the timed region — they keep
measuring the *cold* (plan-every-call) path and stay comparable with the
PR-1 baselines.  The ``engine`` section measures what the cache buys:
one ``PreparedQuery`` executed against many states versus re-planning on
every call.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from typing import Any, Callable, Dict, List, Optional

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.engine import analyze, clear_analysis_cache  # noqa: E402
from repro.hypergraph import (  # noqa: E402
    DatabaseSchema,
    RelationSchema,
    aring,
    chain_schema,
    gyo_reduce,
    gyo_reduction,
    random_tree_schema,
    star_schema,
)
from repro.relational import naive_join_project, yannakakis  # noqa: E402
from repro.relational.universal import random_ur_database  # noqa: E402
from repro.tableau import (  # noqa: E402
    canonical_connection,
    find_isomorphism,
    minimize_tableau,
    standard_tableau,
)

GYO_SIZES = (25, 100, 400)
GYO_FAMILIES = {
    "chain": chain_schema,
    "star": star_schema,
    "aring": lambda size: aring(max(size, 3)),
    "random-tree": lambda size: random_tree_schema(size, rng=size),
}

#: (chain length, tuples per relation, domain size) for the Yannakakis cases.
YANNAKAKIS_CASES = (
    (3, 90, 24),
    (4, 90, 24),
    (5, 90, 24),
    (6, 200, 32),
    (8, 300, 40),
)
#: Cases small enough to also time the naive join-then-project baseline.
NAIVE_CASES = {(3, 90, 24), (4, 90, 24), (5, 90, 24)}

CC_SIZES = (4, 6, 8)

#: Extra sizes for the sacred-set GYO family (``gr-*``): ``GR(D, X)`` with
#: the family's boundary attributes sacred (small sizes already come from the
#: ``CC_SIZES`` loop).  Sacred reductions mostly *survive* (the reduction is
#: a fixpoint or near-fixpoint), so these time the worklist's completeness
#: drain plus trace packaging — the path PR 4 made reuse original schema
#: objects for untouched survivors.
GR_SIZES = (100, 400)
GR_FAMILIES = ("chain", "star")

#: Tableau-kernel workloads (PR 3).  ``collapse`` families build the standard
#: tableau with a one-attribute target, so minimization folds every row onto a
#: single survivor — the canonical-connection hot path; ``minimal`` families
#: are already minimal, so every row-removal attempt fails and the benchmark
#: times the refutation path; ``iso`` compares row-permuted minimal tableaux.
TABLEAU_COLLAPSE_CHAIN_SIZES = (16, 24, 32)
TABLEAU_COLLAPSE_STAR_SIZES = (24, 32)
TABLEAU_MINIMAL_CHAIN_SIZES = (10, 12, 14)
TABLEAU_CC_CHAIN_SIZES = (12, 16)
TABLEAU_ISO_CHAIN_SIZES = (12, 16)

#: (schema family, size, tuples per relation, domain size, state count) for
#: the plan-reuse benchmark: 1 PreparedQuery amortized over ``state count``
#: distinct database states.  These are serving-shaped cases — many small to
#: medium states per schema — where planning is a real fraction of each call;
#: the execution-dominated large-state regime is covered by the plain
#: ``yannakakis`` section above (there plan reuse is asymptotically neutral).
ENGINE_CASES = (
    ("chain", 5, 30, 12, 100),
    ("chain", 8, 30, 12, 50),
    ("star", 12, 40, 10, 50),
    ("random-tree", 25, 30, 8, 50),
    ("random-tree", 40, 20, 8, 30),
)


def _median_time(fn: Callable[[], Any], repeats: int) -> float:
    times: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def _cold(fn: Callable[[], Any]) -> Callable[[], Any]:
    """Wrap ``fn`` so each call re-plans from scratch (engine cache cleared)."""

    def run() -> Any:
        clear_analysis_cache()
        return fn()

    return run


def bench_gyo(repeats: int) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for family, build in GYO_FAMILIES.items():
        for size in GYO_SIZES:
            schema = build(size)
            median = _median_time(_cold(lambda: gyo_reduce(schema)), repeats)
            trace = gyo_reduce(schema)
            rows.append(
                {
                    "case": f"{family}-{size}",
                    "family": family,
                    "size": size,
                    "median_s": median,
                    "steps": len(trace.steps),
                    "reduced_to_empty": trace.is_fully_reduced_to_empty,
                }
            )
    return rows


def bench_yannakakis(repeats: int) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for length, tuple_count, domain_size in YANNAKAKIS_CASES:
        schema = chain_schema(length)
        state = random_ur_database(
            schema, tuple_count=tuple_count, domain_size=domain_size, rng=length
        )
        target = RelationSchema({"x0", f"x{length}"})
        run = yannakakis(schema, target, state)
        median = _median_time(_cold(lambda: yannakakis(schema, target, state)), repeats)
        row: Dict[str, Any] = {
            "case": f"chain-{length}-n{tuple_count}",
            "length": length,
            "tuple_count": tuple_count,
            "median_s": median,
            "answer_rows": len(run.result),
            "max_intermediate": run.max_intermediate_size,
            "naive_median_s": None,
            "naive_max_intermediate": None,
        }
        if (length, tuple_count, domain_size) in NAIVE_CASES:
            result, naive_max = naive_join_project(schema, target, state)
            assert result == run.result, "yannakakis and naive disagree"
            row["naive_median_s"] = _median_time(
                lambda: naive_join_project(schema, target, state), repeats
            )
            row["naive_max_intermediate"] = naive_max
        rows.append(row)
    return rows


def bench_cc(repeats: int) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for size in CC_SIZES:
        chain = chain_schema(size)
        chain_target = RelationSchema({"x0", f"x{size}"})
        ring = aring(size)
        ring_attrs = ring.attributes.sorted_attributes()
        ring_target = RelationSchema({ring_attrs[0], ring_attrs[size // 2]})
        for label, schema, target in (
            (f"chain-{size}", chain, chain_target),
            (f"aring-{size}", ring, ring_target),
        ):
            rows.append(
                {
                    "case": f"cc-{label}",
                    "median_s": _median_time(
                        _cold(lambda: canonical_connection(schema, target)), repeats
                    ),
                }
            )
            rows.append(
                {
                    "case": f"gr-{label}",
                    "median_s": _median_time(
                        _cold(lambda: gyo_reduction(schema, target)), repeats
                    ),
                }
            )
    for family in GR_FAMILIES:
        for size in GR_SIZES:
            schema = chain_schema(size) if family == "chain" else star_schema(size)
            attrs = schema.attributes.sorted_attributes()
            target = RelationSchema({attrs[0], attrs[-1]})
            rows.append(
                {
                    "case": f"gr-{family}-{size}",
                    "median_s": _median_time(
                        _cold(lambda: gyo_reduction(schema, target)), repeats
                    ),
                }
            )
    return rows


def bench_tableau(repeats: int) -> List[Dict[str, Any]]:
    """Tableau-layer workloads: minimization, canonical connections, isomorphism.

    Every case rebuilds nothing per call except the operation under test: the
    standard tableaux are constructed outside the timed region (construction
    is linear and not the hot path), and ``canonical_connection`` runs with a
    cold engine cache so it times the full build → minimize → read-off
    derivation.
    """
    rows: List[Dict[str, Any]] = []

    def add(case: str, fn: Callable[[], Any], **extra: Any) -> None:
        rows.append({"case": case, "median_s": _median_time(fn, repeats), **extra})

    for size in TABLEAU_COLLAPSE_CHAIN_SIZES:
        tab = standard_tableau(chain_schema(size), {"x0"})
        result = minimize_tableau(tab)
        add(
            f"minimize-collapse-chain-{size}",
            lambda tab=tab: minimize_tableau(tab),
            rows_before=len(tab),
            rows_after=len(result.minimal),
        )
    for size in TABLEAU_COLLAPSE_STAR_SIZES:
        tab = standard_tableau(star_schema(size), {"x_hub"})
        result = minimize_tableau(tab)
        add(
            f"minimize-collapse-star-{size}",
            lambda tab=tab: minimize_tableau(tab),
            rows_before=len(tab),
            rows_after=len(result.minimal),
        )
    for size in TABLEAU_MINIMAL_CHAIN_SIZES:
        tab = standard_tableau(chain_schema(size), {"x0", f"x{size}"})
        result = minimize_tableau(tab)
        assert result.removed_count == 0, "chain endpoint tableau must be minimal"
        add(
            f"minimize-minimal-chain-{size}",
            lambda tab=tab: minimize_tableau(tab),
            rows_before=len(tab),
            rows_after=len(tab),
        )
    for size in TABLEAU_CC_CHAIN_SIZES:
        schema = chain_schema(size)
        target = RelationSchema({"x0"})
        add(
            f"cc-collapse-chain-{size}",
            _cold(lambda schema=schema, target=target: canonical_connection(schema, target)),
        )
    for size in TABLEAU_ISO_CHAIN_SIZES:
        schema = chain_schema(size)
        permuted = DatabaseSchema(tuple(reversed(schema.relations)))
        target = {"x0", f"x{size}"}
        first = standard_tableau(schema, target)
        second = standard_tableau(permuted, target)
        assert find_isomorphism(first, second) is not None
        add(
            f"iso-permuted-chain-{size}",
            lambda first=first, second=second: find_isomorphism(first, second),
        )
    return rows


def bench_engine(repeats: int) -> List[Dict[str, Any]]:
    """Plan-reuse amortization: N executions per 1 PreparedQuery.

    ``cold_per_exec_s`` re-plans on every call (the pre-engine cost of
    ``yannakakis()``); ``warm_per_exec_s`` calls ``yannakakis()`` with the
    engine cache warm; ``prepared_per_exec_s`` executes one compiled
    :class:`~repro.engine.PreparedQuery` against every state.  ``median_s``
    mirrors ``prepared_per_exec_s`` so cross-PR speedup tracking works.
    """
    rows: List[Dict[str, Any]] = []
    for family, size, tuple_count, domain_size, state_count in ENGINE_CASES:
        if family == "chain":
            schema = chain_schema(size)
            target = RelationSchema({"x0", f"x{size}"})
        else:
            schema = (
                star_schema(size)
                if family == "star"
                else random_tree_schema(size, rng=3)
            )
            attrs = schema.attributes.sorted_attributes()
            target = RelationSchema({attrs[0], attrs[-1]})
        states = [
            random_ur_database(
                schema, tuple_count=tuple_count, domain_size=domain_size, rng=seed
            )
            for seed in range(state_count)
        ]

        def run_cold() -> None:
            for state in states:
                clear_analysis_cache()
                yannakakis(schema, target, state)

        def run_warm() -> None:
            for state in states:
                yannakakis(schema, target, state)

        clear_analysis_cache()
        prepare_s = _median_time(
            _cold(lambda: analyze(schema).prepare(target)), repeats
        )
        prepared = analyze(schema).prepare(target)

        def run_prepared() -> None:
            prepared.execute_many(states)

        cold_s = _median_time(run_cold, repeats)
        clear_analysis_cache()
        yannakakis(schema, target, states[0])  # warm the cache once
        warm_s = _median_time(run_warm, repeats)
        prepared_s = _median_time(run_prepared, repeats)
        rows.append(
            {
                "case": f"{family}-{size}-n{tuple_count}-x{state_count}",
                "family": family,
                "size": size,
                "tuple_count": tuple_count,
                "states": state_count,
                "prepare_s": prepare_s,
                "cold_per_exec_s": cold_s / state_count,
                "warm_per_exec_s": warm_s / state_count,
                "prepared_per_exec_s": prepared_s / state_count,
                "median_s": prepared_s / state_count,
                "plan_reuse_speedup": (cold_s / prepared_s) if prepared_s else None,
            }
        )
    return rows


#: Serving workloads (PR 4): one compiled plan, many database states.
#: ``many-small`` families model request serving (hundreds of small states
#: per batch): ``distinct`` draws fresh random states per request,
#: ``shared-dims`` keeps dimension relations fixed under a varying fact
#: slot, ``repeat-pool`` draws requests from a small pool (duplicate
#: requests); ``few-large`` families model analytical batches.  Entries:
#: (case, family, size, tuple_count, domain, states, mode).
SERVING_CASES = (
    ("msmall-chain-distinct", "chain", 5, 12, 6, 300, "distinct"),
    ("msmall-tree-distinct", "random-tree", 12, 12, 6, 200, "distinct"),
    ("msmall-star-shared-dims", "star", 8, 30, 6, 200, "shared"),
    ("msmall-chain-repeat-pool", "chain", 4, 15, 6, 200, "pool"),
    ("flarge-chain", "chain", 6, 400, 40, 8, "distinct"),
    ("flarge-star", "star", 12, 300, 24, 8, "distinct"),
)


def _serving_schema(family: str, size: int):
    if family == "chain":
        schema = chain_schema(size)
        return schema, RelationSchema({"x0", f"x{size}"})
    if family == "star":
        schema = star_schema(size)
        attrs = schema.attributes.sorted_attributes()
        return schema, RelationSchema({"x_hub", attrs[0]})
    schema = random_tree_schema(size, rng=3)
    attrs = schema.attributes.sorted_attributes()
    return schema, RelationSchema({attrs[0], attrs[-1]})


def _serving_states(schema, mode, tuple_count, domain_size, count, seed_base):
    from repro.relational import DatabaseState

    if mode == "shared":
        base = random_ur_database(
            schema, tuple_count=tuple_count, domain_size=domain_size, rng=42
        )
        states = []
        for seed in range(count):
            relations = list(base.relations)
            relations[0] = random_ur_database(
                schema,
                tuple_count=tuple_count,
                domain_size=domain_size,
                rng=seed_base + seed,
            ).relations[0]
            states.append(DatabaseState(schema, relations))
        return states
    if mode == "pool":
        pool = [
            random_ur_database(
                schema,
                tuple_count=tuple_count,
                domain_size=domain_size,
                rng=seed_base + seed,
            )
            for seed in range(20)
        ]
        return [pool[index % len(pool)] for index in range(count)]
    return [
        random_ur_database(
            schema,
            tuple_count=tuple_count,
            domain_size=domain_size,
            rng=seed_base + seed,
        )
        for seed in range(count)
    ]


def bench_serving(repeats: int) -> List[Dict[str, Any]]:
    """Per-state medians: classic vs compiled vs batched compiled.

    Fairness protocol: every timed pass gets *fresh* state objects (new
    random seeds per repeat), since serving requests carry new data — timing
    repeated passes over one state list would let both backends reuse
    per-instance caches no real request stream provides.  ``median_s`` is
    the batched per-state time so cross-PR speedup tracking compares the
    serving path; ``classic_per_state_s`` is the per-state classic baseline
    the PR-4 acceptance criteria reference.  On a pre-PR-4 checkout the
    compiled columns degrade to ``None`` (the ``backend`` kwarg is missing),
    which keeps ``--phase before`` snapshots runnable.
    """
    rows: List[Dict[str, Any]] = []
    for case, family, size, tuple_count, domain_size, count, mode in SERVING_CASES:
        schema, target = _serving_schema(family, size)
        clear_analysis_cache()
        prepared = analyze(schema).prepare(target)

        def fresh_sets(salt: int) -> List[List[Any]]:
            # Every timed pass gets states no other pass has touched, so no
            # backend inherits caches (plan-level or per-relation) warmed by
            # a different backend's timing loop.
            return [
                _serving_states(
                    schema,
                    mode,
                    tuple_count,
                    domain_size,
                    count,
                    salt + 10_000 * (r + 1),
                )
                for r in range(repeats)
            ]

        def timed(fn, state_sets) -> float:
            times = []
            for states in state_sets:
                start = time.perf_counter()
                fn(states)
                times.append(time.perf_counter() - start)
            return statistics.median(times)

        # Probe once (one tiny state) for the PR-4 `backend` kwarg; any
        # TypeError raised later, inside the timed loops, is a real bug and
        # must propagate instead of masquerading as "pre-PR-4 engine".
        probe = _serving_states(schema, "distinct", 2, 3, 1, 999_983)[0]
        try:
            backend = prepared.execute(probe, backend="classic").backend
            has_backend_routing = True
        except TypeError:
            has_backend_routing = False
        if has_backend_routing:
            classic_s = timed(
                lambda states: [
                    prepared.execute(state, backend="classic") for state in states
                ],
                fresh_sets(0),
            )
            compiled_s = timed(
                lambda states: [
                    prepared.execute(state, backend="compiled") for state in states
                ],
                fresh_sets(1_000_000),
            )
            batched_s = timed(
                lambda states: prepared.execute_many(states),
                fresh_sets(2_000_000),
            )
            # Record the backend the timed batches actually resolved to:
            # ``auto``'s verdict depends on state size (the vectorized
            # profitability floor), so the tiny probe state would lie here.
            try:
                from repro.engine.prepared import resolve_backend_for

                backend = resolve_backend_for(
                    "auto",
                    _serving_states(
                        schema, mode, tuple_count, domain_size, count, 3_000_000
                    ),
                )
            except ImportError:  # pre-PR-8 engine: no profitability gate
                backend = prepared.execute_many([probe])[0].backend
        else:
            # Pre-PR-4 engine: no backend routing; record the classic path
            # only so --phase before snapshots stay comparable.
            classic_s = timed(
                lambda states: [prepared.execute(state) for state in states],
                fresh_sets(0),
            )
            compiled_s = batched_s = None
            backend = "classic"
        rows.append(
            {
                "case": case,
                "family": family,
                "size": size,
                "tuple_count": tuple_count,
                "states": count,
                "mode": mode,
                "classic_per_state_s": classic_s / count,
                "compiled_per_state_s": (
                    compiled_s / count if compiled_s is not None else None
                ),
                "batched_per_state_s": (
                    batched_s / count if batched_s is not None else None
                ),
                "median_s": (
                    (batched_s if batched_s is not None else classic_s) / count
                ),
                "batched_speedup_vs_classic": (
                    classic_s / batched_s if batched_s else None
                ),
                "backend": backend,
            }
        )
    return rows


#: Many-small serving families for the PR-5 parallel section — the cases
#: where the compiled backend already wins per core and the batch is
#: embarrassingly parallel across states.  (The few-large families are
#: deliberately excluded: a handful of big states leaves most of a pool
#: idle and measures shard-count luck, not the executor.)
PARALLEL_CASES = tuple(
    entry for entry in SERVING_CASES if entry[0].startswith("msmall-")
)
PARALLEL_WORKER_COUNTS = (2, 4)


def _warn_few_cores(section: str) -> None:
    """Shout when a multi-process section runs on a host that cannot show
    parallel speedups (the BENCH_PR5 one-core-capture caveat, mechanized).

    Per-state medians and overhead ratios stay meaningful on small hosts;
    absolute speedups vs serial do not.  Every affected row also records
    ``host_cpus`` so a reader of the JSON sees the caveat without this
    stderr warning.
    """
    host_cpus = os.cpu_count() or 1
    if host_cpus >= 4:
        return
    print(
        "=" * 72
        + f"\nWARNING: the '{section}' benchmark section is running on "
        f"{host_cpus} CPU core(s).\n"
        "Process parallelism cannot beat serial execution here: treat the\n"
        "speedup columns as lower bounds and compare only per-state medians\n"
        "and overhead ratios.  Re-run on >= 4 cores for meaningful speedups.\n"
        + "=" * 72,
        file=sys.stderr,
    )


def bench_parallel(repeats: int) -> List[Dict[str, Any]]:
    """Sharded multi-process serving vs single-process batched compiled.

    One row per (case, worker count).  ``serial_per_state_s`` is the
    single-process ``execute_many`` control (the PR-4 serving path);
    ``parallel_per_state_s`` times batches on a *reused* pool — the pool is
    spun up and the workers' per-spec plan compile is paid on an untimed
    warm-up batch first, and that one-off cost is reported separately as
    ``pool_spawn_s`` (``ensure_started``) and ``cold_batch_s`` (first batch
    on the fresh pool).  Every timed pass uses fresh state sets, exactly as
    in the serving section.  ``host_cpus`` records what the numbers can
    possibly mean: process parallelism cannot beat serial on a one-core
    container, so compare speedups against the core count, not the worker
    count.
    """
    from repro.engine.parallel import ParallelExecutor

    _warn_few_cores("parallel")
    rows: List[Dict[str, Any]] = []
    host_cpus = os.cpu_count() or 1
    for case, family, size, tuple_count, domain_size, count, mode in PARALLEL_CASES:
        schema, target = _serving_schema(family, size)
        clear_analysis_cache()
        prepared = analyze(schema).prepare(target)

        def fresh_sets(salt: int) -> List[List[Any]]:
            return [
                _serving_states(
                    schema,
                    mode,
                    tuple_count,
                    domain_size,
                    count,
                    salt + 10_000 * (r + 1),
                )
                for r in range(repeats)
            ]

        def timed(fn, state_sets) -> float:
            times = []
            for states in state_sets:
                start = time.perf_counter()
                fn(states)
                times.append(time.perf_counter() - start)
            return statistics.median(times)

        serial_s = timed(
            lambda states: prepared.execute_many(states),
            fresh_sets(5_000_000),
        )
        for workers in PARALLEL_WORKER_COUNTS:
            with ParallelExecutor(workers=workers) as executor:
                start = time.perf_counter()
                executor.ensure_started()
                spawn_s = time.perf_counter() - start
                # First batch on the fresh pool: workers resolve (and, unless
                # fork inherited a compiled plan, compile) the plan.
                cold_states = _serving_states(
                    schema, mode, tuple_count, domain_size, count, 6_000_000
                )
                start = time.perf_counter()
                cold_runs = executor.execute_many(prepared, cold_states)
                cold_s = time.perf_counter() - start
                parallel_s = timed(
                    lambda states, executor=executor: executor.execute_many(
                        prepared, states
                    ),
                    fresh_sets(7_000_000 + workers),
                )
            rows.append(
                {
                    "case": f"par-{case}-w{workers}",
                    "family": family,
                    "states": count,
                    "mode": mode,
                    "workers": workers,
                    "workers_resolved": executor.workers,
                    "host_cpus": host_cpus,
                    "backend": cold_runs[0].backend,
                    "pool_spawn_s": spawn_s,
                    "cold_batch_s": cold_s,
                    "serial_per_state_s": serial_s / count,
                    "parallel_per_state_s": parallel_s / count,
                    "median_s": parallel_s / count,
                    "parallel_speedup_vs_serial": (
                        serial_s / parallel_s if parallel_s else None
                    ),
                }
            )
    return rows


#: Cases the robustness section exercises (a representative subset of the
#: parallel section — the section times three executor configurations per
#: case plus a crash-recovery pass per repeat, so it is the most expensive
#: per case).
ROBUSTNESS_CASES = ("msmall-chain-distinct", "msmall-star-shared-dims")
ROBUSTNESS_WORKERS = 2


def bench_robustness(repeats: int) -> List[Dict[str, Any]]:
    """Supervision overhead when healthy, and recovery latency under faults.

    Three measurements per case, all on a reused warmed pool:

    * ``unsupervised_per_state_s`` — the executor with no timeout armed (the
      PR-5-shaped healthy path; supervision still watches for pool breakage
      but takes no per-wait deadline bookkeeping);
    * ``supervised_per_state_s`` — the same batches with ``shard_timeout``
      and retries armed; the acceptance bar is overhead within ~10% of the
      unarmed path (``supervision_overhead_ratio``);
    * ``crash_recovery_batch_s`` — wall time of one batch that absorbs one
      injected worker crash (``REPRO_FAULT_CRASH=1`` against a fresh fault
      directory per pass): pool respawn + lost-shard resubmission included.

    ``host_cpus`` is recorded per row — on small hosts the absolute numbers
    compress, but the overhead *ratio* stays meaningful.
    """
    import shutil
    import tempfile

    from repro.engine import faults
    from repro.engine.parallel import ParallelExecutor

    _warn_few_cores("robustness")
    rows: List[Dict[str, Any]] = []
    host_cpus = os.cpu_count() or 1
    fault_vars = (
        faults.ENV_FAULT_DIR,
        faults.ENV_CRASH,
        faults.ENV_HANG,
        faults.ENV_TRANSIENT,
        faults.ENV_POISON,
    )
    cases = [entry for entry in PARALLEL_CASES if entry[0] in ROBUSTNESS_CASES]
    for case, family, size, tuple_count, domain_size, count, mode in cases:
        schema, target = _serving_schema(family, size)
        clear_analysis_cache()
        prepared = analyze(schema).prepare(target)

        def fresh_sets(salt: int) -> List[List[Any]]:
            return [
                _serving_states(
                    schema,
                    mode,
                    tuple_count,
                    domain_size,
                    count,
                    salt + 10_000 * (r + 1),
                )
                for r in range(repeats)
            ]

        def timed_on(executor, state_sets) -> float:
            # Warm the pool and the workers' plan caches untimed, exactly as
            # the parallel section does.
            executor.ensure_started()
            executor.execute_many(
                prepared,
                _serving_states(schema, mode, tuple_count, domain_size, count, 13),
            )
            times = []
            for states in state_sets:
                start = time.perf_counter()
                executor.execute_many(prepared, states)
                times.append(time.perf_counter() - start)
            return statistics.median(times)

        with ParallelExecutor(workers=ROBUSTNESS_WORKERS) as executor:
            plain_s = timed_on(executor, fresh_sets(8_000_000))
        with ParallelExecutor(
            workers=ROBUSTNESS_WORKERS, shard_timeout=30.0, max_retries=2
        ) as executor:
            supervised_s = timed_on(executor, fresh_sets(9_000_000))

        recovery_times: List[float] = []
        recovery_respawns = 0
        for r in range(repeats):
            states = _serving_states(
                schema, mode, tuple_count, domain_size, count, 10_000_000 + r
            )
            directory = tempfile.mkdtemp(prefix="repro-bench-faults-")
            saved = {name: os.environ.pop(name, None) for name in fault_vars}
            os.environ[faults.ENV_FAULT_DIR] = directory
            os.environ[faults.ENV_CRASH] = "1"
            try:
                with ParallelExecutor(
                    workers=ROBUSTNESS_WORKERS, shard_timeout=30.0
                ) as executor:
                    executor.ensure_started()
                    start = time.perf_counter()
                    runs = executor.execute_many(prepared, states)
                    recovery_times.append(time.perf_counter() - start)
                    recovery_respawns += runs[0].stats.respawns
            finally:
                for name, value in saved.items():
                    if value is None:
                        os.environ.pop(name, None)
                    else:
                        os.environ[name] = value
                shutil.rmtree(directory, ignore_errors=True)

        rows.append(
            {
                "case": f"rob-{case}-w{ROBUSTNESS_WORKERS}",
                "family": family,
                "states": count,
                "mode": mode,
                "workers": ROBUSTNESS_WORKERS,
                "host_cpus": host_cpus,
                "unsupervised_per_state_s": plain_s / count,
                "supervised_per_state_s": supervised_s / count,
                "median_s": supervised_s / count,
                "supervision_overhead_ratio": (
                    supervised_s / plain_s if plain_s else None
                ),
                "crash_recovery_batch_s": statistics.median(recovery_times),
                "crash_recovery_respawns": recovery_respawns,
            }
        )
    return rows


#: Routing cases: (case, family, size, tuple_count, domain_size, count,
#: mode, expected_backend).  The thin case sits under the router's
#: small-batch gate ("serial" resolves per batch via the same
#: profitability rule ``auto`` applies: vectorized only when numpy imports
#: AND the states clear the row floor, compiled otherwise); the heavy case
#: carries enough rows that the cost model sends it to the (warm) pool
#: even charged with dispatch overhead.
SERVICE_ROUTING_CASES = (
    ("svc-thin-chain-repeat-pool", "chain", 4, 15, 6, 24, "pool", "serial"),
    ("svc-heavy-chain-distinct", "chain", 5, 40, 12, 200, "distinct", "parallel"),
)
SERVICE_TRANSPORT_CASES = (
    ("svc-shm-chain-distinct", "chain", 5, 40, 12, 200, "distinct"),
)
SERVICE_WORKERS = 2


def bench_service(repeats: int) -> List[Dict[str, Any]]:
    """The PR-7 serving layer: routing verdicts and the shm transport.

    Routing rows submit each batch through a warm ``QueryService`` with
    ``backend="auto"`` and record which backend the router picked
    (``routed_backend``/``routing_rule``) next to the expectation the
    acceptance criteria name — thin repeat-pool batches stay on the
    in-process compiled backend, heavy distinct batches go to the pool.
    The verdict is a function of the calibrated cost model and
    ``workers=2``, not of the host, so it holds on small hosts too; the
    *latency* numbers inherit the usual few-core caveat (``host_cpus``).

    Transport rows time identical batches on one reused executor with
    ``transport="pickle"`` vs ``transport="shm"``
    (``shm_speedup_vs_pickle``; per-state shipping volume recorded as
    ``shm_bytes_per_state``).  Fresh state sets per pass throughout, as
    established in PR-4.
    """
    from repro.engine.parallel import ParallelExecutor
    from repro.engine.service import QueryService

    _warn_few_cores("service")
    rows: List[Dict[str, Any]] = []
    host_cpus = os.cpu_count() or 1
    from repro.engine.prepared import resolve_backend_for

    for entry in SERVICE_ROUTING_CASES:
        case, family, size, tuple_count, domain_size, count, mode, expected = entry
        schema, target = _serving_schema(family, size)
        clear_analysis_cache()
        prepared = analyze(schema).prepare(target)
        if expected == "serial":
            # The in-process verdict depends on the batch, not just the host:
            # auto upgrades to the vectorized kernel only for states that
            # clear the profitability floor, so resolve against a
            # representative state set for this case.
            expected = resolve_backend_for(
                "auto",
                _serving_states(
                    schema, mode, tuple_count, domain_size, count, 9_000_000
                ),
            )

        def fresh_sets(salt: int) -> List[List[Any]]:
            return [
                _serving_states(
                    schema,
                    mode,
                    tuple_count,
                    domain_size,
                    count,
                    salt + 10_000 * (r + 1),
                )
                for r in range(repeats)
            ]

        with QueryService(workers=SERVICE_WORKERS) as service:
            # Warm the spec's pinned pool so the router sees the long-lived
            # serving shape (pool_live) instead of charging a spawn.
            warmup = _serving_states(
                schema, "distinct", tuple_count, domain_size, 40, 11_000_000
            )
            service.execute_many(prepared, warmup, backend="parallel")
            decision = None
            times = []
            for states in fresh_sets(12_000_000):
                start = time.perf_counter()
                handle = service.submit(prepared, states)
                handle.result()
                times.append(time.perf_counter() - start)
                decision = handle.decision
            routed_s = statistics.median(times)
        rows.append(
            {
                "case": case,
                "family": family,
                "states": count,
                "mode": mode,
                "workers": SERVICE_WORKERS,
                "host_cpus": host_cpus,
                "median_s": routed_s / count,
                "routed_per_state_s": routed_s / count,
                "routed_backend": decision.backend,
                "routing_rule": decision.rule,
                "expected_backend": expected,
                "routing_matches_expected": decision.backend == expected,
                "estimated_serial_s": decision.estimated_serial_s,
                "estimated_parallel_s": decision.estimated_parallel_s,
            }
        )

    for case, family, size, tuple_count, domain_size, count, mode in (
        SERVICE_TRANSPORT_CASES
    ):
        schema, target = _serving_schema(family, size)
        clear_analysis_cache()
        prepared = analyze(schema).prepare(target)

        def fresh_sets(salt: int) -> List[List[Any]]:
            return [
                _serving_states(
                    schema,
                    mode,
                    tuple_count,
                    domain_size,
                    count,
                    salt + 10_000 * (r + 1),
                )
                for r in range(repeats)
            ]

        def timed(fn, state_sets) -> float:
            times = []
            for states in state_sets:
                start = time.perf_counter()
                fn(states)
                times.append(time.perf_counter() - start)
            return statistics.median(times)

        with ParallelExecutor(workers=SERVICE_WORKERS) as executor:
            # One untimed batch: pool spawn + the workers' plan compile.
            executor.execute_many(
                prepared,
                _serving_states(
                    schema, mode, tuple_count, domain_size, count, 13_000_000
                ),
            )
            pickle_s = timed(
                lambda states: executor.execute_many(
                    prepared, states, transport="pickle"
                ),
                fresh_sets(14_000_000),
            )
            shm_stats = {}

            def run_shm(states):
                runs = executor.execute_many(prepared, states, transport="shm")
                shm_stats["stats"] = runs[0].stats

            shm_s = timed(run_shm, fresh_sets(15_000_000))
        stats = shm_stats["stats"]
        rows.append(
            {
                "case": case,
                "family": family,
                "states": count,
                "mode": mode,
                "workers": SERVICE_WORKERS,
                "host_cpus": host_cpus,
                "median_s": shm_s / count,
                "pickle_per_state_s": pickle_s / count,
                "shm_per_state_s": shm_s / count,
                "shm_speedup_vs_pickle": (pickle_s / shm_s) if shm_s else None,
                "shm_segments_per_batch": stats.shm_segments,
                "shm_bytes_per_state": stats.shm_bytes / count,
            }
        )
    return rows


#: The PR-8 vectorized-kernel workloads.  Two regimes where the array
#: backend's wins concentrate:
#:
#: * ``vec-explosion-star`` — an output-explosion join: star(3) with a
#:   dense hub (every hub value carried by every relation), so the final
#:   join materializes ``FANOUT**3`` combinations per hub value.  The
#:   vectorized backend builds the cross products as index gathers over
#:   int64 arrays instead of nested Python tuple loops.
#: * ``vec-string-chain`` — a dict-mode encode-bound batch: wide string
#:   relations where classic/compiled spend their time hashing Python
#:   strings row by row; the vectorized encode fast path bulk-interns
#:   whole columns.
#:
#: Fairness protocol (PR-4, tightened): every timed pass gets fresh state
#: objects AND a fresh plan per backend.  Reusing one plan across passes
#: lets its per-slot caches pin every encoding ever produced, and the
#: resulting gen-2 GC traversals grow linearly with pass count — the
#: later passes then time the garbage collector, not the kernel.
VECTORIZED_EXPLOSION = {"hub": 80, "fanout": 16, "card": 23}
VECTORIZED_STRING = {"card": 800, "rows": 20000, "states": 6}


def _explosion_state(schema, seed: int):
    import random

    from repro.relational import DatabaseState, Relation

    r = random.Random(seed)
    hub = VECTORIZED_EXPLOSION["hub"]
    fanout = VECTORIZED_EXPLOSION["fanout"]
    card = VECTORIZED_EXPLOSION["card"]
    relations = []
    for relation in schema.relations:
        rows = []
        for h in range(hub):
            for value in r.sample(range(card + 1), fanout):
                rows.append((value, h))
        relations.append(Relation(relation, rows))
    return DatabaseState(schema, relations)


def _string_states(schema, seed: int):
    import random

    from repro.relational import DatabaseState, Relation

    r = random.Random(seed)
    card = VECTORIZED_STRING["card"]
    target_rows = VECTORIZED_STRING["rows"]
    states = []
    for _ in range(VECTORIZED_STRING["states"]):
        relations = []
        for relation in schema.relations:
            rows = set()
            while len(rows) < target_rows:
                rows.add(
                    (
                        f"cat_{r.randrange(card)}",
                        f"cat_{r.randrange(card)}",
                    )
                )
            relations.append(Relation(relation, sorted(rows)))
        states.append(DatabaseState(schema, relations))
    return states


def bench_vectorized(repeats: int) -> List[Dict[str, Any]]:
    """The array-backed kernel vs the row-at-a-time backends (PR 8).

    Each row times classic vs compiled vs vectorized on the same fresh
    state sets, fresh plans per pass (see the fairness note above), and
    asserts all three backends return identical results before recording
    anything.  ``numpy`` stamps whether the real array path ran — without
    numpy the vectorized backend falls back to the same row program as
    compiled and the speedup columns read ~1x by construction.
    """
    from repro.relational.compiled import compile_plan
    from repro.relational.vectorized import numpy_available, vectorize_plan

    host_cpus = os.cpu_count() or 1
    rows: List[Dict[str, Any]] = []
    cases = (
        (
            "vec-explosion-star",
            star_schema(3),
            RelationSchema({"x0", "x1", "x2"}),
            lambda seed: [_explosion_state(star_schema(3), seed)],
        ),
        (
            "vec-string-chain",
            chain_schema(3),
            RelationSchema({"x0"}),
            lambda seed: _string_states(chain_schema(3), seed),
        ),
    )
    for case, schema, target, make_states in cases:
        clear_analysis_cache()
        prepared = analyze(schema).prepare(target)
        classic_times: List[float] = []
        compiled_times: List[float] = []
        vectorized_times: List[float] = []
        answer_rows = max_intermediate = 0
        state_count = 0
        for r in range(repeats):
            states = make_states(16_000_000 + 10_000 * r)
            state_count = len(states)

            start = time.perf_counter()
            classic_runs = [
                prepared.execute(state, backend="classic") for state in states
            ]
            classic_times.append(time.perf_counter() - start)

            compiled_plan = compile_plan(prepared)
            start = time.perf_counter()
            compiled_runs = compiled_plan.execute_batch(states)
            compiled_times.append(time.perf_counter() - start)

            vectorized_plan = vectorize_plan(prepared)
            start = time.perf_counter()
            vectorized_runs = vectorized_plan.execute_batch(states)
            vectorized_times.append(time.perf_counter() - start)

            for classic, compiled, vectorized in zip(
                classic_runs, compiled_runs, vectorized_runs
            ):
                assert compiled.result == classic.result, case
                assert vectorized.result == classic.result, case
            answer_rows = len(classic_runs[0].result)
            max_intermediate = classic_runs[0].max_intermediate_size
        classic_s = statistics.median(classic_times)
        compiled_s = statistics.median(compiled_times)
        vectorized_s = statistics.median(vectorized_times)
        rows.append(
            {
                "case": case,
                "states": state_count,
                "numpy": numpy_available(),
                "host_cpus": host_cpus,
                "answer_rows": answer_rows,
                "max_intermediate": max_intermediate,
                "classic_per_state_s": classic_s / state_count,
                "compiled_per_state_s": compiled_s / state_count,
                "vectorized_per_state_s": vectorized_s / state_count,
                "median_s": vectorized_s / state_count,
                "vectorized_speedup_vs_compiled": (
                    compiled_s / vectorized_s if vectorized_s else None
                ),
                "vectorized_speedup_vs_classic": (
                    classic_s / vectorized_s if vectorized_s else None
                ),
            }
        )
    return rows


#: PR-9 cyclic serving families: ``(case, family, size, target, tuple_count,
#: domain_size, states)``.  Many small states per pass — the regime where the
#: per-call solver's re-planning (tree-projection search + program rebuild
#: per state) dominates and the frozen ``CyclicPreparedQuery`` plan should
#: win by a wide margin.
CYCLIC_CASES = (
    # Many-small-state serving shapes where the per-call solver pays its
    # planning tax (tree-projection search + augmented-program rebuild)
    # on every state while the prepared plan amortizes it across the batch.
    ("cyclic-aring-10", "aring", 10, "af", 8, 6, 100),
    ("cyclic-aring-12", "aring", 12, "ag", 8, 6, 100),
    ("cyclic-aclique-8", "aclique", 8, "ab", 5, 16, 150),
)


def bench_cyclic(repeats: int) -> List[Dict[str, Any]]:
    """Batched compiled cyclic serving vs the per-call Theorem 6.1 solver.

    The baseline is :func:`repro.treeproj.solver.solve_with_tree_projection`
    over a sequential-join program — the paper-verbatim construction, which
    re-searches the tree projection and rebuilds the augmented program on
    every call.  The contender is ``prepare_cyclic(target)`` executed once
    and then ``execute_many(states, backend="compiled")`` per pass.  Fresh
    state sets per timed pass (serving fairness protocol), and every batched
    answer is asserted equal to the classic cyclic oracle in-loop so the
    speedup can never come from a wrong answer.  On a pre-PR-9 checkout the
    section degrades to an empty list (``prepare_cyclic`` missing), keeping
    ``--phase before`` snapshots runnable.
    """
    from repro.hypergraph import aclique
    from repro.relational.program import Program, default_base_names
    from repro.treeproj.solver import solve_with_tree_projection

    rows: List[Dict[str, Any]] = []
    for case, family, size, target_attrs, tuple_count, domain_size, count in CYCLIC_CASES:
        schema = aring(size) if family == "aring" else aclique(size)
        target = RelationSchema(target_attrs)
        clear_analysis_cache()
        analysis = analyze(schema)
        if not hasattr(analysis, "prepare_cyclic"):  # pre-PR-9 engine
            return rows
        prepared = analysis.prepare_cyclic(target)
        choice = prepared.projection_choice

        # The solver's input program: join every base relation in order, so
        # its extended schema covers U(D) and the per-call tree-projection
        # search always succeeds.  Built once — only the *solving* is
        # per-call, exactly the cost a plan-less serving loop would pay.
        program = Program(schema)
        names = list(default_base_names(schema))
        current = names[0]
        for index, name in enumerate(names[1:], start=1):
            joined = f"J{index}"
            program.join(joined, current, name)
            current = joined

        def fresh_sets(salt: int) -> List[List[Any]]:
            return [
                [
                    random_ur_database(
                        schema,
                        tuple_count=tuple_count,
                        domain_size=domain_size,
                        rng=salt + 10_000 * (r + 1) + seed,
                    )
                    for seed in range(count)
                ]
                for r in range(repeats)
            ]

        solver_times: List[float] = []
        for states in fresh_sets(0):
            start = time.perf_counter()
            for state in states:
                solve_with_tree_projection(program, target, state)
            solver_times.append(time.perf_counter() - start)

        batched_times: List[float] = []
        answer_rows = 0
        for states in fresh_sets(1_000_000):
            start = time.perf_counter()
            runs = prepared.execute_many(states, backend="compiled")
            batched_times.append(time.perf_counter() - start)
            # In-loop correctness: batched compiled ≡ classic cyclic oracle.
            for state, run in zip(states, runs):
                classic = prepared.execute(state, backend="classic")
                assert run.result == classic.result, case
            answer_rows = len(runs[0].result)

        solver_s = statistics.median(solver_times)
        batched_s = statistics.median(batched_times)
        rows.append(
            {
                "case": case,
                "family": family,
                "size": size,
                "target": target_attrs,
                "tuple_count": tuple_count,
                "states": count,
                "answer_rows": answer_rows,
                "tree_projection": choice.projection.to_notation(),
                "treefication_width": choice.width,
                "projection_method": choice.method,
                "projection_minimal": choice.minimal,
                "guard_semijoins": prepared.guard_semijoins,
                "backend": "compiled",
                "solver_per_state_s": solver_s / count,
                "batched_per_state_s": batched_s / count,
                "median_s": batched_s / count,
                "batched_speedup_vs_solver": (
                    solver_s / batched_s if batched_s else None
                ),
            }
        )
    return rows


#: PR-10 catalog cases: ``(case, family, size, cyclic)``.  Analysis-heavy
#: serving schemas: a cold start pays the full GYO / qual-tree / join-plan
#: derivation (plus the tree-projection search on the cyclic case); a warm
#: catalog replaces all of it with one verified disk read.  Targets span
#: the schema's sorted-attribute extremes, as in the engine section.
CATALOG_CASES = (
    ("cat-chain-40", "chain", 40, False),
    ("cat-star-48", "star", 48, False),
    ("cat-random-tree-60", "random-tree", 60, False),
    ("cat-aring-10", "aring", 10, True),
)
#: States per batch for the execution noise control — the check that a
#: restored analysis executes exactly like a freshly derived one (~1x).
CATALOG_EXEC_STATES = 30


def bench_catalog(repeats: int) -> List[Dict[str, Any]]:
    """Cold-start planning vs a warm persistent plan catalog (PR 10).

    Four measurements per case, each pass against an empty analysis LRU:

    * ``cold_prepare_s`` — ``analyze(schema)`` + ``prepare`` with no catalog:
      the full derivation every fresh process pays;
    * ``catalog_hit_prepare_s`` — the same call served from a warm
      :class:`~repro.engine.catalog.PlanCatalog`: one verified disk read
      restores the memoized artifacts, leaving only plan compilation;
    * ``respawn_cold_s`` / ``respawn_warm_s`` — ``prepared_from_spec`` on the
      plan's picklable spec, without and with the catalog: the exact path a
      pool worker respawned after a crash pays to rebuild its plan;
    * ``exec_cold_per_state_s`` / ``exec_restored_per_state_s`` — the noise
      control: identical fresh batches executed through a freshly derived
      and a catalog-restored plan, answers asserted equal in-loop.  The
      catalog accelerates planning only, so ``exec_ratio`` must read ~1x.

    On a pre-PR-10 checkout the catalog import fails and the section
    degrades to an empty list, keeping ``--phase before`` snapshots
    runnable.
    """
    import shutil
    import tempfile

    try:
        from repro.engine.analysis import prepared_from_spec
        from repro.engine.catalog import PlanCatalog
        from repro.engine.parallel import PlanSpec
    except ImportError:  # pre-PR-10 engine: no persistent catalog
        return []
    from repro.hypergraph import aring

    rows: List[Dict[str, Any]] = []
    # The env-default catalog must not leak into the no-catalog baselines.
    saved_env = os.environ.pop("REPRO_CATALOG_DIR", None)
    try:
        for case, family, size, cyclic in CATALOG_CASES:
            if family == "chain":
                schema = chain_schema(size)
                target = RelationSchema({"x0", f"x{size}"})
            elif family == "star":
                schema = star_schema(size)
                attrs = schema.attributes.sorted_attributes()
                target = RelationSchema({"x_hub", attrs[0]})
            elif family == "aring":
                schema = aring(size)
                target = RelationSchema("af")
            else:
                schema = random_tree_schema(size, rng=3)
                attrs = schema.attributes.sorted_attributes()
                target = RelationSchema({attrs[0], attrs[-1]})

            def build(catalog=None):
                clear_analysis_cache()
                analysis = analyze(schema, catalog=catalog)
                prepared = (
                    analysis.prepare_cyclic(target)
                    if cyclic
                    else analysis.prepare(target)
                )
                return analysis, prepared

            directory = tempfile.mkdtemp(prefix="repro-bench-catalog-")
            try:
                catalog = PlanCatalog(directory)
                # Seed the record untimed: one full derivation, stored once.
                analysis, prepared = build()
                start = time.perf_counter()
                assert catalog.store(analysis), "catalog store failed"
                store_s = time.perf_counter() - start
                record_bytes = os.path.getsize(catalog.record_path(schema))
                spec = PlanSpec.of(prepared)

                cold_s = _median_time(lambda: build(), repeats)
                hit_s = _median_time(lambda: build(catalog), repeats)
                assert catalog.stats.hits >= repeats, catalog.stats.as_dict()
                assert catalog.stats.quarantined == 0, catalog.stats.as_dict()

                def respawn(catalog=None):
                    clear_analysis_cache()
                    return prepared_from_spec(spec, catalog=catalog)

                respawn_cold_s = _median_time(lambda: respawn(), repeats)
                respawn_warm_s = _median_time(lambda: respawn(catalog), repeats)

                _, cold_prepared = build()
                _, restored_prepared = build(catalog)
                exec_backend = "compiled" if cyclic else None

                def run(prepared_query, salt):
                    states = [
                        random_ur_database(
                            schema, tuple_count=6, domain_size=6, rng=salt + seed
                        )
                        for seed in range(CATALOG_EXEC_STATES)
                    ]
                    start = time.perf_counter()
                    if exec_backend:
                        runs = prepared_query.execute_many(
                            states, backend=exec_backend
                        )
                    else:
                        runs = prepared_query.execute_many(states)
                    elapsed = time.perf_counter() - start
                    return elapsed, [run.result for run in runs]

                # Alternate which plan is timed first and collect garbage
                # before each timed region: the second-timed plan otherwise
                # pays gen-2 GC traversals over the first plan's live slot
                # caches (the PR-8 reused-plan effect), which reads as a
                # phantom ~2x in whichever column runs last.
                import gc

                exec_cold_times: List[float] = []
                exec_restored_times: List[float] = []
                for r in range(repeats):
                    salt = 20_000_000 + 10_000 * (r + 1)
                    pair = [
                        ("cold", cold_prepared, exec_cold_times),
                        ("restored", restored_prepared, exec_restored_times),
                    ]
                    if r % 2:
                        pair.reverse()
                    answers = {}
                    for label, plan, times in pair:
                        gc.collect()
                        elapsed, results = run(plan, salt)
                        times.append(elapsed)
                        answers[label] = results
                    assert answers["cold"] == answers["restored"], case
                exec_cold_s = statistics.median(exec_cold_times)
                exec_restored_s = statistics.median(exec_restored_times)
            finally:
                shutil.rmtree(directory, ignore_errors=True)

            rows.append(
                {
                    "case": case,
                    "family": family,
                    "size": size,
                    "cyclic": cyclic,
                    "record_bytes": record_bytes,
                    "store_s": store_s,
                    "cold_prepare_s": cold_s,
                    "catalog_hit_prepare_s": hit_s,
                    "median_s": hit_s,
                    "catalog_speedup": (cold_s / hit_s) if hit_s else None,
                    "respawn_cold_s": respawn_cold_s,
                    "respawn_warm_s": respawn_warm_s,
                    "respawn_speedup": (
                        respawn_cold_s / respawn_warm_s if respawn_warm_s else None
                    ),
                    "exec_cold_per_state_s": exec_cold_s / CATALOG_EXEC_STATES,
                    "exec_restored_per_state_s": (
                        exec_restored_s / CATALOG_EXEC_STATES
                    ),
                    "exec_ratio": (
                        exec_restored_s / exec_cold_s if exec_cold_s else None
                    ),
                }
            )
    finally:
        if saved_env is not None:
            os.environ["REPRO_CATALOG_DIR"] = saved_env
    return rows


def run_all(repeats: int) -> Dict[str, Any]:
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
        # Duplicated under the name the parallel/robustness rows use, so the
        # caveat (speedups are bounded by physical cores, not workers) is
        # visible at the top of every snapshot.
        "host_cpus": os.cpu_count() or 1,
        "repeats": repeats,
        "gyo_reduce": bench_gyo(repeats),
        "yannakakis": bench_yannakakis(repeats),
        "canonical_connection": bench_cc(repeats),
        "tableau": bench_tableau(repeats),
        "engine": bench_engine(repeats),
        "serving": bench_serving(repeats),
        "parallel": bench_parallel(repeats),
        "robustness": bench_robustness(repeats),
        "service": bench_service(repeats),
        "vectorized": bench_vectorized(repeats),
        "cyclic": bench_cyclic(repeats),
        "catalog": bench_catalog(repeats),
    }


def _speedups(before: Dict[str, Any], after: Dict[str, Any]) -> Dict[str, Any]:
    """Per-case and aggregate before/after speedup factors."""
    summary: Dict[str, Any] = {}
    for section in (
        "gyo_reduce",
        "yannakakis",
        "canonical_connection",
        "tableau",
        "engine",
        "serving",
        "parallel",
        "robustness",
        "service",
        "vectorized",
        "cyclic",
        "catalog",
    ):
        before_rows = {row["case"]: row for row in before.get(section, ())}
        cases: Dict[str, float] = {}
        total_before = total_after = 0.0
        for row in after.get(section, ()):
            base = before_rows.get(row["case"])
            if base is None or not row["median_s"]:
                continue
            cases[row["case"]] = base["median_s"] / row["median_s"]
            total_before += base["median_s"]
            total_after += row["median_s"]
        summary[section] = {
            "per_case": cases,
            "aggregate": (total_before / total_after) if total_after else None,
        }
    return summary


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--phase", choices=("before", "after"), default="after")
    parser.add_argument("--out", default="BENCH_PR10.json", help="output JSON path")
    parser.add_argument(
        "--before",
        default=None,
        help="path to a snapshot captured with --phase before, merged into the output",
    )
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)

    snapshot = run_all(args.repeats)
    if args.phase == "before":
        payload: Dict[str, Any] = {"before": snapshot}
    else:
        payload = {"after": snapshot}
        if args.before:
            with open(args.before) as handle:
                payload["before"] = json.load(handle)["before"]
            payload["speedup"] = _speedups(payload["before"], snapshot)

    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"wrote {args.out}")
    for section, data in payload.get("speedup", {}).items():
        aggregate = data["aggregate"]
        print(f"  {section}: aggregate speedup {aggregate:.2f}x" if aggregate else section)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
