"""SCALE-1 — GYO-reduction scaling on the workload families.

There is no table in the paper for this (1983 hardware), but every result in
Sections 3–5 leans on the GYO reduction being cheap; this benchmark records
how the implementation scales on chains, stars, Arings and random tree
schemas so regressions in the reduction engine are visible.
"""

from __future__ import annotations

import pytest

from repro.hypergraph import aring, chain_schema, gyo_reduce, random_tree_schema, star_schema

SIZES = (25, 100, 400)


@pytest.mark.parametrize("size", SIZES)
def test_gyo_chain(benchmark, size):
    schema = chain_schema(size)
    trace = benchmark(lambda: gyo_reduce(schema))
    assert trace.is_fully_reduced_to_empty


@pytest.mark.parametrize("size", SIZES)
def test_gyo_star(benchmark, size):
    schema = star_schema(size)
    trace = benchmark(lambda: gyo_reduce(schema))
    assert trace.is_fully_reduced_to_empty


@pytest.mark.parametrize("size", SIZES)
def test_gyo_aring(benchmark, size):
    schema = aring(size)
    trace = benchmark(lambda: gyo_reduce(schema))
    assert not trace.is_fully_reduced_to_empty  # rings are cyclic


@pytest.mark.parametrize("size", SIZES)
def test_gyo_random_tree(benchmark, size):
    schema = random_tree_schema(size, rng=size)
    trace = benchmark(lambda: gyo_reduce(schema))
    assert trace.is_fully_reduced_to_empty
