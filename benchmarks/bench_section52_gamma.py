"""THM-5.3 / COR-5.3' / FIG-7 — γ-acyclicity and its characterizations.

Paper statements: the three characterizations of γ-acyclicity (no weak
γ-cycle; pair-disconnection; tree schema + all connected subsets are
subtrees) coincide, and γ-acyclicity is exactly the condition under which
every connected sub-schema has a lossless join (Fagin's (*), Corollary 5.3').
Figure 7 illustrates why Aring/Aclique-based schemas fail the
pair-disconnection test.

The benchmark times the polynomial pair-disconnection test against the
γ-cycle search and the exponential subtree/lossless enumerations on a ladder
of schemas, asserting all four verdicts agree on every instance.
"""

from __future__ import annotations

import pytest

from repro.core import check_gamma_equivalences
from repro.hypergraph import (
    aclique,
    aring,
    chain_schema,
    find_weak_gamma_cycle,
    is_gamma_acyclic,
    parse_schema,
    star_schema,
    violating_pair,
)

SCHEMAS = [
    ("chain-4", chain_schema(4), True),
    ("star-4", star_schema(4), True),
    ("triangle", parse_schema("ab,bc,ac"), False),
    ("aring-5", aring(5), False),
    ("aclique-4", aclique(4), False),
    ("abc-ab-bc", parse_schema("abc,ab,bc"), False),
    ("figure1-tree", parse_schema("abc,cde,ace,afe"), False),
]


@pytest.mark.parametrize("label, schema, expected", SCHEMAS, ids=[s[0] for s in SCHEMAS])
def test_pair_disconnection_test(benchmark, label, schema, expected):
    result = benchmark(lambda: violating_pair(schema) is None)
    assert result == expected


@pytest.mark.parametrize("label, schema, expected", SCHEMAS, ids=[s[0] for s in SCHEMAS])
def test_gamma_cycle_search(benchmark, label, schema, expected):
    result = benchmark(lambda: find_weak_gamma_cycle(schema) is None)
    assert result == expected


@pytest.mark.parametrize("label, schema, expected", SCHEMAS, ids=[s[0] for s in SCHEMAS])
def test_corollary_5_3_equivalences(benchmark, label, schema, expected):
    report = benchmark(lambda: check_gamma_equivalences(schema))
    assert report.all_agree
    assert report.gamma_acyclic == expected


def test_section52_report():
    print()
    print("Theorem 5.3 / Corollary 5.3' — gamma-acyclicity characterizations")
    print(f"{'schema':<14}{'gamma':>7}{'no-cycle':>10}{'pairs':>7}{'GR-cond':>9}{'CC-cond':>9}{'lossless':>10}")
    for label, schema, _ in SCHEMAS:
        report = check_gamma_equivalences(schema)
        print(
            f"{label:<14}{str(report.gamma_acyclic):>7}"
            f"{str(find_weak_gamma_cycle(schema) is None):>10}"
            f"{str(violating_pair(schema) is None):>7}"
            f"{str(report.gr_condition):>9}{str(report.cc_condition):>9}"
            f"{str(report.lossless_condition):>10}"
        )
