"""SCALE-2 / THM-3.3 — canonical connections vs GYO reductions at scale.

Theorem 3.3 says ``CC(D, X) <= GR(D, X)`` with equality on tree schemas.  The
practical reading is that the cheap GYO reduction can replace expensive
tableau minimization exactly when the schema is a tree; this benchmark
measures both routes on growing chains and rings and asserts the theorem's
relationship on every instance.
"""

from __future__ import annotations

import pytest

from repro.hypergraph import RelationSchema, aring, chain_schema, gyo_reduction
from repro.tableau import canonical_connection

SIZES = (4, 6, 8)


def _chain_case(size):
    schema = chain_schema(size)
    target = RelationSchema({"x0", f"x{size}"})
    return schema, target


def _ring_case(size):
    schema = aring(size)
    attrs = schema.attributes.sorted_attributes()
    target = RelationSchema({attrs[0], attrs[size // 2]})
    return schema, target


@pytest.mark.parametrize("size", SIZES)
def test_cc_on_chain(benchmark, size):
    schema, target = _chain_case(size)
    connection = benchmark(lambda: canonical_connection(schema, target))
    assert connection == gyo_reduction(schema, target).reduction()


@pytest.mark.parametrize("size", SIZES)
def test_gr_on_chain(benchmark, size):
    schema, target = _chain_case(size)
    reduction = benchmark(lambda: gyo_reduction(schema, target))
    assert reduction.covers(canonical_connection(schema, target))


@pytest.mark.parametrize("size", SIZES)
def test_cc_on_ring(benchmark, size):
    schema, target = _ring_case(size)
    connection = benchmark(lambda: canonical_connection(schema, target))
    reduction = gyo_reduction(schema, target)
    assert reduction.covers(connection)  # Theorem 3.3(i)


@pytest.mark.parametrize("size", SIZES)
def test_gr_on_ring(benchmark, size):
    schema, target = _ring_case(size)
    reduction = benchmark(lambda: gyo_reduction(schema, target))
    assert reduction == schema  # rings are GYO-reduced once targets are inside
