"""FIG-2 — Figure 2: Arings, Acliques, and cyclic schemas built on them.

Paper statement: the Aring and Aclique of size 4 are cyclic; the Figure 2(c)
schema reduces to an Aring of size 4 by deleting ``X = abgi`` and to an
Aclique of size 4 by deleting ``X = efgi`` (Lemma 3.1 witnesses).

The benchmark regenerates both reductions (asserted) and measures the Lemma
3.1 witness search on the figure's schemas.
"""

from __future__ import annotations

import pytest

from repro.figures import (
    FIGURE_2_ACLIQUE_4,
    FIGURE_2_ARING_4,
    FIGURE_2C_ACLIQUE_DELETION,
    FIGURE_2C_ARING_DELETION,
    FIGURE_2C_SCHEMA,
)
from repro.hypergraph import (
    find_aring_or_aclique_witness,
    is_aclique,
    is_aring,
    is_cyclic_schema,
)


def _reduce(schema, deletion):
    return schema.delete_attributes(deletion).reduction().without_empty_relations()


def test_figure2_building_blocks_are_cyclic(benchmark):
    result = benchmark(
        lambda: (is_cyclic_schema(FIGURE_2_ARING_4), is_cyclic_schema(FIGURE_2_ACLIQUE_4))
    )
    assert result == (True, True)


def test_figure2c_aring_reduction(benchmark):
    core = benchmark(lambda: _reduce(FIGURE_2C_SCHEMA, FIGURE_2C_ARING_DELETION))
    assert is_aring(core) and len(core) == 4


def test_figure2c_aclique_reduction(benchmark):
    core = benchmark(lambda: _reduce(FIGURE_2C_SCHEMA, FIGURE_2C_ACLIQUE_DELETION))
    assert is_aclique(core) and len(core) == 4


@pytest.mark.parametrize(
    "schema",
    [FIGURE_2_ARING_4, FIGURE_2_ACLIQUE_4],
    ids=["aring-4", "aclique-4"],
)
def test_lemma_3_1_witness_search(benchmark, schema):
    witness = benchmark(lambda: find_aring_or_aclique_witness(schema))
    assert witness is not None
    assert len(witness.deleted_attributes) == 0  # they are their own cores


def test_figure2_report():
    """Print the regenerated Figure 2 rows."""
    print()
    print("Figure 2 — Arings and Acliques as the building blocks of cyclic schemas")
    print(f"Aring of size 4:   {FIGURE_2_ARING_4.to_notation()}  cyclic={is_cyclic_schema(FIGURE_2_ARING_4)}")
    print(f"Aclique of size 4: {FIGURE_2_ACLIQUE_4.to_notation()}  cyclic={is_cyclic_schema(FIGURE_2_ACLIQUE_4)}")
    print(f"Figure 2(c) schema (reconstructed): {FIGURE_2C_SCHEMA.to_notation()}")
    ring_core = _reduce(FIGURE_2C_SCHEMA, FIGURE_2C_ARING_DELETION)
    clique_core = _reduce(FIGURE_2C_SCHEMA, FIGURE_2C_ACLIQUE_DELETION)
    print(f"  delete X = {FIGURE_2C_ARING_DELETION.to_notation()}  -> {ring_core.to_notation()}  (Aring of size {len(ring_core)})")
    print(f"  delete X = {FIGURE_2C_ACLIQUE_DELETION.to_notation()}  -> {clique_core.to_notation()}  (Aclique of size {len(clique_core)})")
