"""SCALE-3 — the payoff of tree schemas: Yannakakis vs naive join-then-project.

The paper's motivation for the tree/cyclic dichotomy is query processing:
over a tree schema, semijoin reduction bounds intermediate results, while the
naive join order can blow up.  This benchmark runs both strategies over the
same UR states (chain queries with endpoint targets) and asserts the shape
the literature reports: identical answers, with the semijoin-based algorithm
touching far fewer intermediate tuples.
"""

from __future__ import annotations

import pytest

from repro.hypergraph import RelationSchema
from repro.relational import naive_join_project, yannakakis
from repro.workloads import query_evaluation_workload

CASES = query_evaluation_workload(chain_lengths=(3, 4, 5), tuple_count=90, domain_size=24)


@pytest.mark.parametrize("case", CASES, ids=[case.label for case in CASES])
def test_yannakakis(benchmark, case):
    run = benchmark(lambda: yannakakis(case.schema, case.target, case.state))
    baseline, _ = naive_join_project(case.schema, case.target, case.state)
    assert run.result == baseline


@pytest.mark.parametrize("case", CASES, ids=[case.label for case in CASES])
def test_naive_join(benchmark, case):
    result, _ = benchmark(lambda: naive_join_project(case.schema, case.target, case.state))
    assert result == yannakakis(case.schema, case.target, case.state).result


def test_intermediate_size_report():
    print()
    print("Yannakakis vs naive join (chain queries over UR states)")
    print(f"{'case':<18}{'answer':>8}{'max interm. (Yann.)':>21}{'max interm. (naive)':>21}{'ratio':>8}")
    for case in CASES:
        run = yannakakis(case.schema, case.target, case.state)
        _, naive_max = naive_join_project(case.schema, case.target, case.state)
        ratio = naive_max / max(run.max_intermediate_size, 1)
        print(
            f"{case.label:<18}{len(run.result):>8}{run.max_intermediate_size:>21}"
            f"{naive_max:>21}{ratio:>8.1f}"
        )
        assert run.max_intermediate_size <= naive_max
