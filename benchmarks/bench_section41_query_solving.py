"""THM-4.1 / COR-4.1 — solving queries with joins followed by one projection.

Paper statement: ``(D, X) ≡ (D', X)`` over UR databases iff ``CC(D, X) <= D'``
(Theorem 4.1); in particular ``CC(D, X)`` itself is the minimum sub-schema to
join (Corollary 4.1, Theorem 5.2).

The benchmark uses the Section 6 example ``D = (abg, bcg, acf, ad, de, ea)``,
``X = abc``: it times the canonical-connection planner and compares evaluating
the full query against evaluating only the planned sub-schema, asserting the
answers agree and reporting the work saved (relations joined, tuples touched).
"""

from __future__ import annotations

import pytest

from repro.core import execute_join_plan, plan_join_query
from repro.figures import SECTION_6_EXPECTED_CC, SECTION_6_SCHEMA, SECTION_6_TARGET
from repro.relational import NaturalJoinQuery, random_ur_database


STATE = random_ur_database(SECTION_6_SCHEMA, tuple_count=120, domain_size=6, rng=41)
QUERY = NaturalJoinQuery(SECTION_6_SCHEMA, SECTION_6_TARGET)


def test_planning_via_canonical_connection(benchmark):
    plan = benchmark(lambda: plan_join_query(SECTION_6_SCHEMA, SECTION_6_TARGET))
    assert plan.sub_schema == SECTION_6_EXPECTED_CC
    assert set(plan.irrelevant_relations) == {3, 4, 5}


def test_full_query_evaluation(benchmark):
    answer = benchmark(lambda: QUERY.evaluate(STATE, naive=True))
    assert answer == QUERY.evaluate(STATE)


def test_planned_query_evaluation(benchmark):
    plan = plan_join_query(SECTION_6_SCHEMA, SECTION_6_TARGET)
    answer = benchmark(lambda: execute_join_plan(plan, STATE))
    assert answer == QUERY.evaluate(STATE)


def test_section41_report():
    plan = plan_join_query(SECTION_6_SCHEMA, SECTION_6_TARGET)
    full = QUERY.evaluate(STATE)
    planned = execute_join_plan(plan, STATE)
    print()
    print("Theorem 4.1 / Corollary 4.1 — joins followed by a single projection")
    print(f"D  = {SECTION_6_SCHEMA.to_notation()}, X = {SECTION_6_TARGET.to_notation()}")
    print(f"CC(D, X) = {plan.sub_schema.to_notation()}  (paper: abg, bcg, ac)")
    print(f"irrelevant relations: {[SECTION_6_SCHEMA[i].to_notation() for i in plan.irrelevant_relations]}")
    print(f"relations joined: full={len(SECTION_6_SCHEMA)}  planned={len(plan.sub_schema)}")
    print(f"answers equal: {full == planned}  ({len(full)} tuples)")
