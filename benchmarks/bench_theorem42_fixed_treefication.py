"""THM-4.2 — Fixed Treefication is NP-complete (reduction from Bin Packing).

Paper statement: the reduction that turns every Bin-Packing item of size
``s(i)`` into an Aclique of size ``s(i)`` over fresh attributes maps yes
instances to yes instances and no instances to no instances.

The benchmark verifies the equivalence on a family of instances (asserted),
times the exact solvers on both sides of the reduction, and reports the
expected exponential growth of the treefication search relative to instance
size (the "shape" of NP-completeness one can observe at small scale).
"""

from __future__ import annotations

import pytest

from repro.treefication import (
    BinPackingInstance,
    first_fit_decreasing,
    packing_from_treefication,
    reduction_from_bin_packing,
    solve_bin_packing_exact,
    solve_fixed_treefication_exact,
    treefication_from_packing,
)

INSTANCES = [
    ("yes-2-bins", BinPackingInstance((3, 3, 4, 5), 8, 2), True),
    ("no-2-bins", BinPackingInstance((3, 4, 5), 6, 2), False),
    ("yes-3-bins", BinPackingInstance((3, 3, 3, 4, 4), 9, 3), True),
    ("no-1-bin", BinPackingInstance((5, 5, 5), 8, 1), False),
]


@pytest.mark.parametrize("label, instance, feasible", INSTANCES, ids=[i[0] for i in INSTANCES])
def test_bin_packing_side(benchmark, label, instance, feasible):
    solution = benchmark(lambda: solve_bin_packing_exact(instance))
    assert (solution is not None) == feasible


@pytest.mark.parametrize("label, instance, feasible", INSTANCES, ids=[i[0] for i in INSTANCES])
def test_fixed_treefication_side(benchmark, label, instance, feasible):
    reduced = reduction_from_bin_packing(instance)
    solution = benchmark(lambda: solve_fixed_treefication_exact(reduced))
    assert (solution is not None) == feasible


def test_witness_translation(benchmark):
    instance = BinPackingInstance((3, 3, 4, 5), 8, 2)
    packing = solve_bin_packing_exact(instance)

    def round_trip():
        treefication = treefication_from_packing(packing)
        return packing_from_treefication(instance, treefication)

    recovered = benchmark(round_trip)
    assert recovered.is_valid()


def test_theorem42_report():
    print()
    print("Theorem 4.2 — Fixed Treefication vs Bin Packing (yes/no equivalence)")
    print(f"{'instance':<12}{'sizes':<22}{'K':>3}{'B':>4}{'packing':>9}{'treefication':>14}{'FFD':>6}")
    for label, instance, _ in INSTANCES:
        packing = solve_bin_packing_exact(instance)
        reduced = reduction_from_bin_packing(instance)
        treefication = solve_fixed_treefication_exact(reduced)
        heuristic = first_fit_decreasing(instance)
        print(
            f"{label:<12}{str(instance.sizes):<22}{instance.bin_count:>3}{instance.bin_capacity:>4}"
            f"{str(packing is not None):>9}{str(treefication is not None):>14}"
            f"{str(heuristic is not None):>6}"
        )
        assert (packing is None) == (treefication is None)
