"""THM-5.1 / COR-5.1 / COR-5.2 + in-text example — lossless joins.

Paper statements:

* ``⋈D ⊨ ⋈D'`` iff ``CC(D, U(D')) ⊆ D'`` (Theorem 5.1 / Corollary 5.1);
* for tree schemas, iff ``D'`` is a subtree (Corollary 5.2);
* the in-text counterexample: ``D = (abc, ab, bc)``, ``D' = (ab, bc)`` —
  ``⋈D ⊭ ⋈D'`` and ``D'`` is not a subtree of ``D``.

The benchmark times the syntactic criterion against the semantic randomized
counterexample search, and also exercises the UJR experiments (Section 5.1's
discussion of [11]): UR databases over tree schemas are UJR, while the
triangle admits a UR database that is not.
"""

from __future__ import annotations

import pytest

from repro.core import is_ujr, jd_implies, lossless_for_tree_schema
from repro.figures import SECTION_5_1_SCHEMA, SECTION_5_1_SUBSCHEMA
from repro.hypergraph import aring, parse_schema
from repro.relational import (
    Relation,
    random_ur_database,
    search_implication_counterexample,
    universal_database,
)

CASES = [
    ("paper-counterexample", SECTION_5_1_SCHEMA, SECTION_5_1_SUBSCHEMA, False),
    ("chain-subtree", parse_schema("ab,bc,cd"), parse_schema("ab,bc"), True),
    ("chain-disconnected", parse_schema("ab,bc,cd"), parse_schema("ab,cd"), False),
    ("ring-path", aring(4), aring(4).sub_schema([0, 1, 2]), False),
    ("whole-ring", aring(4), aring(4), True),
]


@pytest.mark.parametrize("label, schema, sub, expected", CASES, ids=[c[0] for c in CASES])
def test_syntactic_criterion(benchmark, label, schema, sub, expected):
    result = benchmark(lambda: jd_implies(schema, sub))
    assert result == expected


@pytest.mark.parametrize("label, schema, sub, expected", CASES, ids=[c[0] for c in CASES])
def test_semantic_search_agrees(benchmark, label, schema, sub, expected):
    witness = benchmark(
        lambda: search_implication_counterexample(schema, sub, trials=20, rng=0)
    )
    if expected:
        assert witness is None
    else:
        assert witness is not None


def test_corollary_5_2_subtree_criterion(benchmark):
    result = benchmark(
        lambda: lossless_for_tree_schema(SECTION_5_1_SCHEMA, SECTION_5_1_SUBSCHEMA)
    )
    assert result is False


def test_ujr_tree_schema(benchmark):
    schema = parse_schema("ab,bc,cd")
    state = random_ur_database(schema, tuple_count=10, domain_size=2, rng=51)
    assert benchmark(lambda: is_ujr(state))


def test_ujr_triangle_counterexample(benchmark):
    triangle = parse_schema("ab,bc,ac")
    state = universal_database(triangle, Relation("abc", [(0, 0, 0), (1, 0, 1)]))
    assert not benchmark(lambda: is_ujr(state))


def test_section51_report():
    print()
    print("Section 5.1 — lossless joins (Theorem 5.1 / Corollaries 5.1, 5.2)")
    print(f"{'case':<22}{'jd_implies':>11}{'counterexample found':>22}")
    for label, schema, sub, expected in CASES:
        witness = search_implication_counterexample(schema, sub, trials=20, rng=0)
        print(f"{label:<22}{str(jd_implies(schema, sub)):>11}{str(witness is not None):>22}")
    print("UJR: tree-schema UR databases are UJR; the triangle has a UR database that is not.")
