"""Benchmark-suite configuration.

Adds the ``src`` layout to ``sys.path`` as a fallback (same as the test
suite) so ``pytest benchmarks/ --benchmark-only`` works even without the
editable install.
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, _SRC)
