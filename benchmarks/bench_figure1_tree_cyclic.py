"""FIG-1 — Figure 1: tree vs cyclic classification of the paper's three schemas.

Paper statement: ``(ab, bc, cd)`` is a tree schema, ``(ab, bc, ac)`` is cyclic
(its only qual graph is the triangle), and ``(abc, cde, ace, afe)`` is a tree
schema with qual tree ``abc - ace - aef`` and ``cde`` attached to ``ace``.

The benchmark regenerates the figure's classification column (asserted) and
measures the cost of the GYO-based classification plus qual-tree construction.
"""

from __future__ import annotations

import pytest

from repro.figures import FIGURE_1_CASES
from repro.hypergraph import find_qual_tree, gyo_reduce, is_tree_schema


@pytest.mark.parametrize("schema, expected_tree", FIGURE_1_CASES, ids=["chain", "triangle", "four-relations"])
def test_figure1_classification(benchmark, schema, expected_tree):
    result = benchmark(lambda: is_tree_schema(schema))
    assert result == expected_tree


@pytest.mark.parametrize(
    "schema, expected_tree", FIGURE_1_CASES, ids=["chain", "triangle", "four-relations"]
)
def test_figure1_qual_tree_construction(benchmark, schema, expected_tree):
    tree = benchmark(lambda: find_qual_tree(schema))
    assert (tree is not None) == expected_tree
    if tree is not None:
        assert tree.is_qual_tree()


def test_figure1_report():
    """Print the regenerated figure rows (schema, classification, qual tree)."""
    print()
    print("Figure 1 — tree vs cyclic schemas")
    print(f"{'schema':<24}{'type':<10}{'qual tree edges'}")
    for schema, _ in FIGURE_1_CASES:
        tree = find_qual_tree(schema)
        kind = "tree" if tree is not None else "cyclic"
        edges = tree.to_edge_notation() if tree is not None else "-"
        print(f"{schema.to_notation():<24}{kind:<10}{edges}")
        trace = gyo_reduce(schema)
        print(f"{'':<24}GYO steps: {len(trace.steps)}, residue: {trace.result.to_notation() or '(empty)'}")
