"""EX-6 / THM-6.1–6.4 — query programs, semijoins and tree projections.

Paper statements: the Section 6 example shows that for ``D = (abg, bcg, acf,
ad, de, ea)`` and ``X = abc`` only ``CC(D, X) = (abg, bcg, ac)`` matters; the
tree-projection theorems say a program solves ``(D, X)`` (over UR databases)
iff ``P(D)`` admits a tree projection w.r.t. ``CC(D, X) ∪ (X)``, and that
given one, ``2·|D|`` extra semijoins suffice.

The benchmark builds the paper's program for the example, augments a
join-creating program over the triangle per Theorem 6.1/6.2, and measures the
tree-projection search that the theorems revolve around.
"""

from __future__ import annotations

import pytest

from repro.figures import SECTION_6_EXPECTED_CC, SECTION_6_SCHEMA, SECTION_6_TARGET
from repro.hypergraph import RelationSchema, parse_schema
from repro.relational import NaturalJoinQuery, Program, random_ur_database
from repro.tableau import canonical_connection
from repro.treeproj import augment_program_with_semijoins, find_tree_projection

TRIANGLE = parse_schema("ab,bc,ac")
TRIANGLE_STATE = random_ur_database(TRIANGLE, tuple_count=60, domain_size=5, rng=6)
SECTION6_STATE = random_ur_database(SECTION_6_SCHEMA, tuple_count=60, domain_size=4, rng=6)


def _paper_program():
    program = Program(SECTION_6_SCHEMA)
    program.project("S3", "R2", "ac").join("J1", "R0", "R1").join("J2", "J1", "S3")
    program.project("ANSWER", "J2", "abc")
    return program


def test_section6_program_solves_the_query(benchmark):
    program = _paper_program()
    query = NaturalJoinQuery(SECTION_6_SCHEMA, SECTION_6_TARGET)
    answer = benchmark(lambda: program.run(SECTION6_STATE))
    assert answer == query.evaluate(SECTION6_STATE)


def test_section6_canonical_connection(benchmark):
    connection = benchmark(lambda: canonical_connection(SECTION_6_SCHEMA, SECTION_6_TARGET))
    assert connection == SECTION_6_EXPECTED_CC


def test_theorem_61_augmentation_on_triangle(benchmark):
    target = RelationSchema("abc")
    base_program = Program(TRIANGLE)
    base_program.join("J", "R0", "R1")

    def build_and_run():
        augmented = augment_program_with_semijoins(base_program, target)
        return augmented.run(TRIANGLE_STATE)

    answer = benchmark(build_and_run)
    expected = NaturalJoinQuery(TRIANGLE, target).evaluate(TRIANGLE_STATE)
    assert answer == expected


def test_theorem_63_tree_projection_search(benchmark):
    base_program = Program(TRIANGLE)
    base_program.join("J", "R0", "R1")
    lower = TRIANGLE.add_relation("abc")
    result = benchmark(lambda: find_tree_projection(base_program.extended_schema(), lower))
    assert result.found


def test_section6_report():
    program = _paper_program()
    query = NaturalJoinQuery(SECTION_6_SCHEMA, SECTION_6_TARGET)
    target = RelationSchema("abc")
    base_program = Program(TRIANGLE)
    base_program.join("J", "R0", "R1")
    augmented = augment_program_with_semijoins(base_program, target, anchors=canonical_connection(TRIANGLE, target))
    print()
    print("Section 6 — programs, semijoins and tree projections")
    print(f"D = {SECTION_6_SCHEMA.to_notation()}, X = abc")
    print(f"CC(D, X) = {canonical_connection(SECTION_6_SCHEMA, SECTION_6_TARGET).to_notation()} (paper: abg, bcg, ac)")
    print(f"paper program solves (D, X): {program.run(SECTION6_STATE) == query.evaluate(SECTION6_STATE)}")
    print("Theorem 6.1/6.2 on the triangle with P = {J := ab ⋈ bc}:")
    print(f"  tree projection used: {augmented.tree_projection.to_notation()}")
    print(f"  semijoins added: {augmented.added_semijoins} (bound 2·|CC| + 2·(|D''|-1))")
    print(f"  joins added: {augmented.added_joins}")
