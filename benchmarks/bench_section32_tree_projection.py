"""EX-3.2 — the Section 3.2 tree projection example.

Paper statement: for ``D`` the 8-ring, ``D' = (abef, abch, cdgh, defg, ef)``
and ``D'' = (ab, abch, cdgh, defg, ef)``, we have ``D <= D'' <= D'``, ``D''``
is a tree schema (hence ``D'' ∈ TP(D', D)``), and both ``D`` and ``D'`` are
cyclic.

The benchmark re-verifies the example and measures the tree-projection search
that recovers a witness automatically.
"""

from __future__ import annotations

from repro.figures import SECTION_3_2_D, SECTION_3_2_D_DOUBLE_PRIME, SECTION_3_2_D_PRIME
from repro.hypergraph import is_cyclic_schema, is_tree_schema
from repro.treeproj import find_tree_projection, is_tree_projection


def test_membership_check(benchmark):
    result = benchmark(
        lambda: is_tree_projection(
            SECTION_3_2_D_DOUBLE_PRIME, SECTION_3_2_D_PRIME, SECTION_3_2_D
        )
    )
    assert result


def test_projection_search(benchmark):
    result = benchmark(lambda: find_tree_projection(SECTION_3_2_D_PRIME, SECTION_3_2_D))
    assert result.found
    assert is_tree_projection(result.projection, SECTION_3_2_D_PRIME, SECTION_3_2_D)


def test_section32_report():
    print()
    print("Section 3.2 — tree projection example")
    print(f"D   = {SECTION_3_2_D.to_notation()}   cyclic={is_cyclic_schema(SECTION_3_2_D)}")
    print(f"D'' = {SECTION_3_2_D_DOUBLE_PRIME.to_notation()}   tree={is_tree_schema(SECTION_3_2_D_DOUBLE_PRIME)}")
    print(f"D'  = {SECTION_3_2_D_PRIME.to_notation()}   cyclic={is_cyclic_schema(SECTION_3_2_D_PRIME)}")
    search = find_tree_projection(SECTION_3_2_D_PRIME, SECTION_3_2_D)
    print(f"search result ({search.method}): {search.projection.to_notation()}")
