#!/usr/bin/env python3
"""Schema-design analysis: lossless joins, subtrees and γ-acyclicity.

Run with ``python examples/schema_design_lossless.py``.

A database designer splitting a wide relation into smaller ones needs to know
which groups of fragments can be joined back without spurious tuples.  The
paper answers this for universal-relation databases:

* ``⋈D ⊨ ⋈D'`` iff ``CC(D, U(D')) ⊆ D'`` (Theorem 5.1);
* over a tree schema, iff ``D'`` is a subtree (Corollary 5.2);
* *every* connected fragment set is safe iff the schema is γ-acyclic
  (Theorem 5.3 / Corollary 5.3').

The example analyses two candidate designs for the same attribute universe —
one γ-acyclic, one not — and demonstrates a concrete spurious tuple for the
unsafe fragment set.
"""

from __future__ import annotations

from repro import analyze, parse_schema
from repro.core import check_gamma_equivalences, jd_implies, lossless_for_tree_schema
from repro.hypergraph import is_tree_schema
from repro.relational import decompose_and_rejoin, search_implication_counterexample

# Attribute meanings: e = employee, d = department, m = manager, p = project,
# h = hours, l = location.
DESIGN_SAFE = parse_schema("edm, dml, dp, ph", attribute_separator=None)
DESIGN_RISKY = parse_schema("ed, dm, em, pl, ph", attribute_separator=None)


def analyse(design, label: str) -> None:
    analysis = analyze(design)  # one façade per design; flags below share it
    print("=" * 72)
    print(f"design {label}: {design}")
    print("=" * 72)
    print(f"  tree schema (α-acyclic): {analysis.is_tree_schema}")
    print(f"  γ-acyclic:               {analysis.is_gamma_acyclic}")
    report = check_gamma_equivalences(design)
    print(f"  all Corollary 5.3' conditions agree: {report.all_agree}")
    print()
    print("  lossless-join analysis of connected fragment groups:")
    for sub in design.iter_sub_schemas(min_size=2, connected_only=True):
        verdict = jd_implies(design, sub)
        note = ""
        if is_tree_schema(design):
            note = " (subtree)" if lossless_for_tree_schema(design, sub) else " (not a subtree)"
        print(f"    {str(sub):<28} lossless: {verdict}{note}")
    print()


def show_a_spurious_tuple() -> None:
    print("=" * 72)
    print("a concrete spurious tuple for the risky design")
    print("=" * 72)
    design = DESIGN_RISKY
    fragments = parse_schema("ed, dm")
    witness = search_implication_counterexample(design, fragments, trials=60, rng=3)
    if witness is None:
        print("  (no counterexample found in 60 samples — unusual but possible)")
        return
    report = decompose_and_rejoin(witness, fragments)
    print(f"  universal relation I with {len(witness)} tuples satisfies ⋈D "
          f"but re-joining the fragments {fragments} creates "
          f"{len(report.spurious)} spurious tuple(s):")
    for row in report.spurious.to_dicts()[:5]:
        print(f"    spurious: {row}")


def main() -> None:
    analyse(DESIGN_SAFE, "A (hierarchical)")
    analyse(DESIGN_RISKY, "B (overlapping fragments)")
    show_a_spurious_tuple()


if __name__ == "__main__":
    main()
