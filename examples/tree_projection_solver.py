#!/usr/bin/env python3
"""Tree projections and query programs (Section 6) on a cyclic query.

Run with ``python examples/tree_projection_solver.py``.

The scenario: a distributed-query optimizer has already decided to ship and
join a few relations (a *program* of joins/projects), and asks whether the
work done so far is enough to finish the query with cheap semijoins.  The
paper's answer (Theorems 6.1–6.4): exactly when the program's schema ``P(D)``
admits a *tree projection* with respect to ``CC(D, X) ∪ (X)``.

The example runs the analysis on the 6-cycle query: a program that joins the
ring into two "halves" admits a tree projection and is completed with
semijoins; a program that only semijoins does not.
"""

from __future__ import annotations

from repro import analyze
from repro.exceptions import TreeProjectionError
from repro.hypergraph import RelationSchema, aring
from repro.relational import NaturalJoinQuery, Program, random_ur_database
from repro.treeproj import augment_program_with_semijoins, find_tree_projection

RING = aring(6)                       # (ab, bc, cd, de, ef, af)
TARGET = RelationSchema({"a", "d"})   # opposite corners of the cycle
STATE = random_ur_database(RING, tuple_count=80, domain_size=5, rng=17)
QUERY = NaturalJoinQuery(RING, TARGET)
# One analysis of the ring serves every CC(D, X) lookup below.
ANALYSIS = analyze(RING)


def analyse(program: Program, label: str) -> None:
    print("=" * 72)
    print(f"program {label}")
    print("=" * 72)
    print(program.describe())
    lower = ANALYSIS.canonical_connection(TARGET).add_relation(TARGET)
    extended = program.extended_schema()
    if not extended.covers(lower):
        print("  P(D) does not even cover CC(D, X) ∪ (X): no tree projection can exist")
    else:
        search = find_tree_projection(extended, lower)
        print(f"  P(D) admits a tree projection w.r.t. CC(D, X) ∪ (X): {search.found}"
              + (f"  ({search.projection.to_notation()} via {search.method})" if search.found else ""))
    try:
        augmented = augment_program_with_semijoins(
            program, TARGET, anchors=ANALYSIS.canonical_connection(TARGET)
        )
    except TreeProjectionError as error:
        print(f"  augmentation refused: {error}")
        print()
        return
    answer = augmented.run(STATE)
    expected = QUERY.evaluate(STATE)
    print(f"  augmented with {augmented.added_semijoins} semijoins "
          f"and {augmented.added_projects} projections")
    print(f"  answer matches π_X(⋈D) on a random UR database: {answer == expected} "
          f"({len(answer)} tuples)")
    print()


def main() -> None:
    print(f"schema D = {RING}, target X = {TARGET.to_notation()}")
    print(f"CC(D, X) = {ANALYSIS.canonical_connection(TARGET)}")
    print()

    halves = Program(RING)
    halves.join("LEFT1", "R0", "R1").join("LEFT", "LEFT1", "R2")
    halves.join("RIGHT1", "R3", "R4").join("RIGHT", "RIGHT1", "R5")
    analyse(halves, "A — join the ring into two halves")

    lazy = Program(RING)
    lazy.semijoin("S0", "R0", "R1").semijoin("S1", "R2", "R3")
    analyse(lazy, "B — semijoins only (no new joint relations)")

    one_join = Program(RING)
    one_join.join("PAIR", "R0", "R1")
    analyse(one_join, "C — a single join (still not enough)")


if __name__ == "__main__":
    main()
