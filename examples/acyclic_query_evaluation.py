#!/usr/bin/env python3
"""Acyclic query evaluation on a small "university" database.

Run with ``python examples/acyclic_query_evaluation.py``.

This is the workload the paper's introduction motivates: a database whose
schema is a tree schema, queried with a natural join followed by a
projection.  The example builds a synthetic university universal relation
(students, courses, lecturers, departments, buildings), derives the UR
database, and answers the query three ways:

* the naive plan (join everything left to right, then project);
* the canonical-connection plan of Theorem 4.1 (join only ``CC(D, X)``);
* Yannakakis' semijoin-based algorithm, compiled once into a
  :class:`~repro.engine.PreparedQuery` via the engine façade and executed
  against the state.

All three agree; the printout compares how much intermediate work each does.
"""

from __future__ import annotations

import random
import time

from repro import analyze, parse_schema
from repro.core import execute_join_plan
from repro.hypergraph import RelationSchema
from repro.relational import (
    DatabaseState,
    NaturalJoinQuery,
    Relation,
    naive_join_project,
    universal_database,
)

# Attributes: s = student, c = course, l = lecturer, d = department,
# b = building, g = grade, y = year.
SCHEMA = parse_schema(
    "s c g, c l, l d, d b, s y",
    relation_separator=",",
    attribute_separator=" ",
)
TARGET = RelationSchema({"s", "d"})  # which students take courses in which departments


def build_university_universe(rng: random.Random, size: int = 400) -> Relation:
    """A synthetic universal relation with realistic-looking correlations."""
    rows = []
    for _ in range(size):
        student = f"s{rng.randrange(60)}"
        course = f"c{rng.randrange(25)}"
        lecturer = f"l{course[1:]}"                 # each course has one lecturer
        department = f"d{int(course[1:]) % 6}"      # lecturers cluster in departments
        building = f"b{int(department[1:]) % 4}"
        grade = rng.choice(["A", "B", "C"])
        year = rng.randrange(1, 5)
        rows.append(
            {
                "s": student,
                "c": course,
                "l": lecturer,
                "d": department,
                "b": building,
                "g": grade,
                "y": year,
            }
        )
    return Relation.from_dicts("scldbgy", rows)


def main() -> None:
    rng = random.Random(7)
    universe = build_university_universe(rng)
    state: DatabaseState = universal_database(SCHEMA, universe)
    query = NaturalJoinQuery(SCHEMA, TARGET)

    analysis = analyze(SCHEMA)
    print(f"schema D = {SCHEMA}")
    print(f"query target X = {TARGET.to_notation()}  (students x departments)")
    print(f"database sizes: {[len(r) for r in state.relations]} tuples per relation")
    print(f"qual tree: {analysis.qual_tree.to_edge_notation()}")
    print()

    started = time.perf_counter()
    naive_answer, naive_max = naive_join_project(SCHEMA, TARGET, state)
    naive_time = time.perf_counter() - started

    plan = analysis.join_plan(TARGET)
    started = time.perf_counter()
    planned_answer = execute_join_plan(plan, state)
    plan_time = time.perf_counter() - started

    prepared = analysis.prepare(TARGET)  # compiled once; reusable across states
    started = time.perf_counter()
    run = prepared.execute(state)
    yannakakis_time = time.perf_counter() - started

    assert naive_answer == planned_answer == run.result == query.evaluate(state)

    print(f"{'strategy':<34}{'tuples in answer':>17}{'max intermediate':>18}{'seconds':>10}")
    print(f"{'naive join then project':<34}{len(naive_answer):>17}{naive_max:>18}{naive_time:>10.4f}")
    print(
        f"{'join CC(D, X) only (Thm 4.1)':<34}{len(planned_answer):>17}"
        f"{'-':>18}{plan_time:>10.4f}"
    )
    print(
        f"{'Yannakakis (semijoins + joins)':<34}{len(run.result):>17}"
        f"{run.max_intermediate_size:>18}{yannakakis_time:>10.4f}"
    )
    print()
    print(f"CC(D, X) = {plan.sub_schema}  "
          f"(relations {[SCHEMA[i].to_notation() for i in plan.relevant_relations]} are relevant)")
    print(f"semijoins performed by the full reducer: {run.semijoin_count}")
    print("all three strategies returned identical answers.")


if __name__ == "__main__":
    main()
