#!/usr/bin/env python3
"""Treefication planning: turning cyclic schemas into tree schemas.

Run with ``python examples/treefication_planner.py``.

Section 4 of the paper proposes a strategy for cyclic queries: add one or
more relation schemas to make the schema a tree, materialize their states
with joins, then use the tree-schema machinery.  The paper pins down both
ends of the trade-off:

* adding a *single* relation — the unique best choice is ``U(GR(D))``
  (Corollary 3.2);
* adding *several bounded-size* relations — Fixed Treefication — is
  NP-complete (Theorem 4.2, by reduction from Bin Packing).

The example plans treefications for a few cyclic schemas and then walks
through the Theorem 4.2 reduction on a small Bin Packing instance, solving it
exactly and with the first-fit-decreasing heuristic.
"""

from __future__ import annotations

from repro import analyze, parse_schema
from repro.hypergraph import aring, grid_schema, is_tree_schema
from repro.treefication import (
    BinPackingInstance,
    FixedTreeficationInstance,
    first_fit_decreasing,
    reduction_from_bin_packing,
    solve_bin_packing_exact,
    solve_fixed_treefication_exact,
    treefication_from_packing,
)


def plan_single_relation_treefications() -> None:
    print("=" * 72)
    print("single-relation treefication (Corollary 3.2)")
    print("=" * 72)
    schemas = {
        "triangle": parse_schema("ab,bc,ac"),
        "Aring of size 6": aring(6),
        "2x3 grid": grid_schema(2, 3),
        "ring with a tail": parse_schema("ab,bc,ac,cd,de"),
    }
    for label, schema in schemas.items():
        result = analyze(schema).treefication  # shares the schema's GYO residue
        print(f"  {label:<18} add {result.added_relation.to_notation():<14} "
              f"-> tree schema: {is_tree_schema(result.treefied)}")
    print()


def plan_fixed_treefication() -> None:
    print("=" * 72)
    print("fixed treefication via Bin Packing (Theorem 4.2)")
    print("=" * 72)
    packing = BinPackingInstance(sizes=(3, 3, 4, 5), bin_capacity=8, bin_count=2)
    print(f"  bin packing instance: sizes={packing.sizes}, B={packing.bin_capacity}, K={packing.bin_count}")

    reduced = reduction_from_bin_packing(packing)
    print(f"  reduced schema: {len(reduced.schema)} relations over "
          f"{len(reduced.schema.attributes)} attributes "
          f"({len(reduced.schema.connected_components())} disjoint Acliques)")

    exact_packing = solve_bin_packing_exact(packing)
    print(f"  exact bin packing feasible: {exact_packing is not None}, "
          f"bins used: {len(exact_packing.bins)} with loads {exact_packing.bin_loads()}")

    treefication = treefication_from_packing(exact_packing)
    print(f"  induced treefication adds {len(treefication.added_relations)} relations "
          f"of sizes {[len(r) for r in treefication.added_relations]}")
    print(f"  D ∪ added is a tree schema: {is_tree_schema(treefication.treefied_schema())}")

    direct = solve_fixed_treefication_exact(reduced)
    print(f"  solving the treefication side directly agrees: {direct is not None}")

    heuristic = first_fit_decreasing(packing)
    print(f"  first-fit-decreasing heuristic also packs it: {heuristic is not None}")

    infeasible = BinPackingInstance(sizes=(5, 5, 5), bin_capacity=8, bin_count=1)
    reduced_infeasible = reduction_from_bin_packing(infeasible)
    print(f"  infeasible instance {infeasible.sizes} with K=1, B=8: "
          f"packing={solve_bin_packing_exact(infeasible) is not None}, "
          f"treefication={solve_fixed_treefication_exact(reduced_infeasible) is not None}")
    print()


def plan_against_arity_budget() -> None:
    print("=" * 72)
    print("how the arity budget B changes feasibility (triangle example)")
    print("=" * 72)
    triangle = parse_schema("ab,bc,ac")
    for max_arity in (2, 3):
        instance = FixedTreeficationInstance(triangle, max_relations=1, max_arity=max_arity)
        solution = solve_fixed_treefication_exact(instance)
        print(f"  K=1, B={max_arity}: feasible={solution is not None}"
              + (f", add {[r.to_notation() for r in solution.added_relations]}" if solution else ""))


def main() -> None:
    plan_single_relation_treefications()
    plan_fixed_treefication()
    plan_against_arity_budget()


if __name__ == "__main__":
    main()
