#!/usr/bin/env python3
"""Quickstart: the four concepts of the paper on a single small schema.

Run with ``python examples/quickstart.py``.

The walk-through takes the paper's Figure 1 and Section 6 schemas and shows:

1. classifying a schema as tree (α-acyclic) or cyclic via the GYO reduction;
2. building a qual tree (join tree) for a tree schema;
3. computing canonical connections ``CC(D, X)`` by tableau minimization and
   using them to plan a query (Theorem 4.1);
4. checking lossless joins syntactically (Theorem 5.1) and semantically.

Everything goes through the engine façade: ``analyze(schema)`` performs each
piece of structural work at most once, however many facts are asked of it.
"""

from __future__ import annotations

from repro import analyze, is_tree_schema, jd_implies, parse_schema, random_ur_database
from repro.core import execute_join_plan
from repro.relational import NaturalJoinQuery


def classify_schemas() -> None:
    print("=" * 72)
    print("1. Tree vs cyclic schemas (Figure 1)")
    print("=" * 72)
    for text in ("ab,bc,cd", "ab,bc,ac", "abc,cde,ace,afe"):
        trace = analyze(text).gyo_trace()
        kind = "tree schema" if trace.is_fully_reduced_to_empty else "cyclic schema"
        print(f"  ({text:<20}) -> {kind}; GYO applied {len(trace.steps)} operations, "
              f"residue = {trace.result.to_notation() or '(empty)'}")


def build_a_join_tree() -> None:
    print()
    print("=" * 72)
    print("2. Qual trees (join trees) for tree schemas")
    print("=" * 72)
    analysis = analyze("abc,cde,ace,afe")
    tree = analysis.qual_tree
    print(f"  schema {analysis.schema}")
    print(f"  qual tree edges: {tree.to_edge_notation()}")
    print(f"  valid qual tree: {tree.is_qual_tree()}, "
          f"attribute connectivity holds: {tree.check_attribute_connectivity()}")


def plan_a_query() -> None:
    print()
    print("=" * 72)
    print("3. Canonical connections and query planning (Section 6 example)")
    print("=" * 72)
    analysis = analyze("abg,bcg,acf,ad,de,ea")
    schema = analysis.schema
    result = analysis.canonical_connection_result("abc")
    print(f"  D = {schema}, X = abc")
    print(f"  standard tableau has {len(result.standard)} rows; "
          f"minimal tableau has {len(result.minimal_tableau)} rows")
    print(f"  CC(D, X) = {result.connection}   (the paper derives (abg, bcg, ac))")

    plan = analysis.join_plan("abc")
    irrelevant = [schema[i].to_notation() for i in plan.irrelevant_relations]
    print(f"  irrelevant relations: {irrelevant} — exactly ad, de, ea as in the paper")

    state = random_ur_database(schema, tuple_count=40, domain_size=4, rng=1)
    full = NaturalJoinQuery(schema, result.target).evaluate(state)
    planned = execute_join_plan(plan, state)
    print(f"  joining only CC(D, X) over a random UR database gives the same "
          f"{len(full)} answer tuples: {full == planned}")


def check_lossless_joins() -> None:
    print()
    print("=" * 72)
    print("4. Lossless joins (Section 5.1 counterexample)")
    print("=" * 72)
    schema = parse_schema("abc,ab,bc")
    sub = parse_schema("ab,bc")
    print(f"  D = {schema} is a tree schema: {is_tree_schema(schema)}")
    print(f"  does ⋈D imply that D' = {sub} has a lossless join?  "
          f"{jd_implies(schema, sub)}  (the paper: no, D' is not a subtree)")
    good = parse_schema("abc,ab")
    print(f"  and for D' = {good}?  {jd_implies(schema, good)}")


def main() -> None:
    classify_schemas()
    build_a_join_tree()
    plan_a_query()
    check_lossless_joins()


if __name__ == "__main__":
    main()
