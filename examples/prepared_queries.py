#!/usr/bin/env python3
"""Plan once, execute many: the engine façade on a stream of database states.

Run with ``python examples/prepared_queries.py``.

The serving scenario the engine is built for: one schema, one query shape,
and a stream of database states (snapshots, shards, tenants).  The schema's
structure — qual tree, full-reducer semijoin program, join order, early
projections — depends only on the schema and the target, so it is compiled
exactly once into a :class:`~repro.engine.PreparedQuery`; each incoming
state then pays only for execution.

The example times three ways of answering the same query over 200 states:

* re-planning per call with the analysis cache cleared (what every call cost
  before the engine existed);
* calling :func:`repro.yannakakis` repeatedly (the wrapper now hits the
  engine's caches, so only the first call plans);
* :meth:`PreparedQuery.execute_many` on a plan compiled up front.
"""

from __future__ import annotations

import time

from repro import analyze, clear_analysis_cache, yannakakis
from repro.hypergraph import RelationSchema, chain_schema
from repro.relational.universal import random_ur_database

SCHEMA = chain_schema(6)
TARGET = RelationSchema({"x0", "x6"})
STATE_COUNT = 200


def main() -> None:
    states = [
        random_ur_database(SCHEMA, tuple_count=60, domain_size=8, rng=seed)
        for seed in range(STATE_COUNT)
    ]
    print(f"schema D = {SCHEMA}")
    print(f"target X = {TARGET.to_notation()}, {STATE_COUNT} distinct states")
    print()

    started = time.perf_counter()
    cold_answers = []
    for state in states:
        clear_analysis_cache()  # force a full re-plan, as before the engine
        cold_answers.append(yannakakis(SCHEMA, TARGET, state).result)
    cold_time = time.perf_counter() - started

    clear_analysis_cache()
    started = time.perf_counter()
    warm_answers = [yannakakis(SCHEMA, TARGET, state).result for state in states]
    warm_time = time.perf_counter() - started

    analysis = analyze(SCHEMA)
    started = time.perf_counter()
    prepared = analysis.prepare(TARGET)
    prepare_time = time.perf_counter() - started
    started = time.perf_counter()
    runs = prepared.execute_many(states)
    execute_time = time.perf_counter() - started

    assert [run.result for run in runs] == cold_answers == warm_answers

    per = 1e6 / STATE_COUNT
    print(f"{'strategy':<44}{'total s':>10}{'µs/state':>12}")
    print(f"{'re-plan every call (pre-engine behavior)':<44}"
          f"{cold_time:>10.4f}{cold_time * per:>12.1f}")
    print(f"{'yannakakis() repeatedly (warm engine cache)':<44}"
          f"{warm_time:>10.4f}{warm_time * per:>12.1f}")
    print(f"{'PreparedQuery.execute_many':<44}"
          f"{execute_time:>10.4f}{execute_time * per:>12.1f}")
    print()
    print(f"plan compiled once in {prepare_time * 1e3:.2f} ms and reused "
          f"{STATE_COUNT}x; all strategies returned identical answers.")
    print()
    print(prepared.describe())


if __name__ == "__main__":
    main()
