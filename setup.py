from setuptools import find_packages, setup

setup(
    name="repro-gyo",
    version="1.1.0",
    description=(
        "Reproduction of Goodman, Shmueli & Tay: GYO reductions, canonical "
        "connections, tree and cyclic schemas, and tree projections"
    ),
    long_description=(
        "A library and CLI for acyclic-database theory: GYO reductions, qual "
        "trees, canonical connections, lossless joins, treefication, tree "
        "projections, and Yannakakis-style query evaluation with "
        "plan-once/execute-many prepared queries (see docs/api.md)."
    ),
    long_description_content_type="text/plain",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Database",
        "Topic :: Scientific/Engineering",
    ],
)
