"""Solving queries with joins followed by a single projection (Section 4).

Theorem 4.1: for ``D' <= D`` the following are equivalent —

(i)   ``CC(D, X) <= D'``;
(ii)  ``(D, X) ≡ (D', X)`` over universal-relation databases;
(iii) ``CC(D, X) = CC(D', X)``.

Corollary 4.1 reads this as a query-planning criterion: to solve ``(D, X)``
by joining the relations of ``D'`` and projecting onto ``X``, it is necessary
and sufficient that ``CC(D, X) <= D'``.  The canonical connection itself is
therefore the *minimum* sub-schema one can join (Theorem 5.2 makes the
minimality precise), and for tree schemas it coincides with the GYO reduction
``GR(D, X)`` (Theorem 3.3(ii), the Hull/Yannakakis special case).

This module packages those statements as a small planning API plus an
executable plan (project the relevant base relations, join, project onto
``X``) whose answers the tests compare against the naive evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple, Union

from ..exceptions import NotASubSchemaError, SchemaError
from ..hypergraph.schema import Attribute, DatabaseSchema, RelationSchema
from ..relational.algebra import join_all
from ..relational.database import DatabaseState
from ..relational.relation import Relation
from ..tableau.canonical import canonical_connection
from ..tableau.containment import tableaux_equivalent
from ..tableau.tableau import standard_tableau

__all__ = [
    "can_solve_with_joins",
    "minimal_join_subschema",
    "queries_weakly_equivalent",
    "JoinPlan",
    "plan_join_query",
    "execute_join_plan",
]


def _require_subordinate(schema: DatabaseSchema, sub: DatabaseSchema) -> None:
    if not schema.covers(sub):
        raise NotASubSchemaError(
            f"expected D' <= D, but {sub} is not covered by {schema}"
        )


def can_solve_with_joins(
    schema: DatabaseSchema,
    target: Union[RelationSchema, Iterable[Attribute]],
    sub_schema: DatabaseSchema,
) -> bool:
    """Corollary 4.1: ``(D, X)`` is solvable by joining ``D'`` and projecting
    iff ``CC(D, X) <= D'`` (requires ``D' <= D``)."""
    _require_subordinate(schema, sub_schema)
    connection = canonical_connection(schema, target)
    return sub_schema.covers(connection)


def minimal_join_subschema(
    schema: DatabaseSchema, target: Union[RelationSchema, Iterable[Attribute]]
) -> DatabaseSchema:
    """The minimum sub-schema whose join solves ``(D, X)``: ``CC(D, X)``.

    For tree schemas this equals ``GR(D, X)`` (Theorem 3.3(ii)); the general
    statement is Theorem 4.1 combined with Theorem 5.2.
    """
    return canonical_connection(schema, target)


def queries_weakly_equivalent(
    first: DatabaseSchema,
    second: DatabaseSchema,
    target: Union[RelationSchema, Iterable[Attribute]],
    *,
    method: str = "canonical-connection",
) -> bool:
    """Decide ``(D, X) ≡ (D', X)`` over UR databases.

    ``method`` is ``"canonical-connection"`` (Lemma 3.5: compare
    ``CC(D, X)`` and ``CC(D', X)``) or ``"tableau"`` (Lemma 3.2: compare the
    standard tableaux directly via containment mappings).  Both are exact; the
    tableau route skips minimization and is the reference implementation used
    to validate the canonical-connection route in the tests.
    """
    target_schema = (
        target if isinstance(target, RelationSchema) else RelationSchema(target)
    )
    if method == "canonical-connection":
        universe = first.attributes.union(second.attributes).union(target_schema)
        return canonical_connection(
            first, target_schema, universe=universe
        ) == canonical_connection(second, target_schema, universe=universe)
    if method == "tableau":
        universe = first.attributes.union(second.attributes).union(target_schema)
        first_tab = standard_tableau(first, target_schema, universe=universe)
        second_tab = standard_tableau(second, target_schema, universe=universe)
        return tableaux_equivalent(first_tab, second_tab)
    raise ValueError(f"unknown equivalence method: {method!r}")


@dataclass(frozen=True)
class JoinPlan:
    """An executable join-then-project plan for ``(D, X)``.

    ``sub_schema`` lists the relation schemas actually joined (by Theorem 4.1
    any ``D'`` covering ``CC(D, X)`` works; the planner uses ``CC(D, X)``
    itself).  ``irrelevant_relations`` are the indices of base relations whose
    state the plan never touches — the paper's Section 6 example observes that
    for ``D = (abg, bcg, acf, ad, de, ea)`` and ``X = abc`` the relations
    ``ad``, ``de`` and ``ea`` are irrelevant and the ``f`` column of ``acf``
    can be projected away.
    """

    schema: DatabaseSchema
    target: RelationSchema
    sub_schema: DatabaseSchema
    irrelevant_relations: Tuple[int, ...]

    @property
    def relevant_relations(self) -> Tuple[int, ...]:
        """Indices of base relations that contribute to some joined relation."""
        return tuple(
            index
            for index in range(len(self.schema))
            if index not in self.irrelevant_relations
        )


def plan_join_query(
    schema: DatabaseSchema, target: Union[RelationSchema, Iterable[Attribute]]
) -> JoinPlan:
    """Build the minimal join plan for ``(D, X)`` from its canonical connection.

    Delegates to the engine façade (:func:`repro.engine.analyze`), which
    memoizes the plan per target attribute set and shares the underlying
    canonical connection with every other consumer of the same analysis.
    """
    from ..engine.analysis import analyze  # deferred: the engine sits above us

    return analyze(schema).join_plan(target)


def execute_join_plan(plan: JoinPlan, state: DatabaseState) -> Relation:
    """Execute a join plan over a UR database state for the plan's schema.

    Every relation of the plan's sub-schema is materialized by projecting a
    covering base relation, all of them are joined, and the result is
    projected onto the target — exactly the "joins followed by a single
    project" strategy of Section 4.
    """
    if state.schema != plan.schema:
        raise SchemaError("the state is for a different schema than the plan")
    derived = state.state_for(plan.sub_schema) if len(plan.sub_schema) else None
    if derived is None or len(plan.sub_schema) == 0:
        joined = Relation.nullary_true()
    else:
        joined = join_all(derived.relations)
    if not plan.target <= joined.schema:
        # The degenerate case CC(D, X) = (X') with X' ⊂ X cannot occur when
        # X ⊆ U(D); guard to fail loudly rather than return a wrong schema.
        raise SchemaError("the join plan does not produce every target attribute")
    return joined.project(plan.target)
