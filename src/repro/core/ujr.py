"""Ultra join reduction (UJR) — the Section 5.1 discussion of [11].

A database state ``D`` for schema ``D`` is *UJR* when, for every minimum-size
qual graph ``G`` for ``D`` and every connected subgraph of ``G`` with nodes
``r_1, ..., r_k`` corresponding to ``R_1, ..., R_k``, the join of the
sub-database equals the projection of the full join onto its attributes:

``⋈_{i=1..k} R_i  =  π_{U({R_1..R_k})}( ⋈_{R ∈ D} R )``

i.e. joining any connected sub-database produces no tuples beyond what the
whole database supports.  Goodman & Shmueli proved that for tree schemas every
UR database is UJR, while for every cyclic schema some UR database is not —
and the paper explains both facts through Corollary 5.2 and Theorem 5.1.

Minimum-size qual graphs are expensive to enumerate in general (for a tree
schema they are exactly the qual trees); :func:`minimum_qual_graphs`
enumerates them exhaustively for small schemas, and :func:`is_ujr` checks the
UJR condition for a given state against the supplied (or enumerated) graphs.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, List, Optional, Sequence, Tuple

from ..exceptions import SearchBudgetExceeded
from ..hypergraph.qual_graph import QualGraph
from ..hypergraph.schema import DatabaseSchema
from ..relational.algebra import join_all
from ..relational.database import DatabaseState

__all__ = [
    "minimum_qual_graphs",
    "connected_node_subsets",
    "is_ujr",
    "find_ujr_violation",
]


def minimum_qual_graphs(
    schema: DatabaseSchema, *, budget: int = 500_000
) -> Tuple[QualGraph, ...]:
    """All qual graphs for ``schema`` with the minimum number of edges.

    Edge subsets of the complete graph are enumerated by increasing size; the
    first size admitting a valid qual graph is the minimum and every valid
    graph of that size is returned.  Exponential in the number of relations —
    intended for the small schemas of the UJR experiments.
    """
    n = len(schema)
    if n <= 1:
        return (QualGraph(schema, []),)
    all_edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    examined = 0
    for edge_count in range(0, len(all_edges) + 1):
        winners: List[QualGraph] = []
        for chosen in combinations(all_edges, edge_count):
            examined += 1
            if examined > budget:
                raise SearchBudgetExceeded(
                    f"minimum qual graph enumeration exceeded budget of {budget}"
                )
            graph = QualGraph(schema, chosen)
            if graph.is_valid():
                winners.append(graph)
        if winners:
            return tuple(winners)
    return ()


def connected_node_subsets(graph: QualGraph) -> Tuple[Tuple[int, ...], ...]:
    """All non-empty node subsets inducing a connected subgraph of ``graph``."""
    nodes = graph.nodes
    results: List[Tuple[int, ...]] = []
    for size in range(1, len(nodes) + 1):
        for subset in combinations(nodes, size):
            if graph.induces_connected_subgraph(subset):
                results.append(subset)
    return tuple(results)


def _ujr_holds_for_subset(state: DatabaseState, subset: Sequence[int]) -> bool:
    sub_join = join_all([state[index] for index in subset])
    full_join = state.join()
    return sub_join == full_join.project(sub_join.schema)


def is_ujr(
    state: DatabaseState,
    *,
    graphs: Optional[Iterable[QualGraph]] = None,
    budget: int = 500_000,
) -> bool:
    """Check the UJR property of a database state.

    ``graphs`` defaults to every minimum-size qual graph of the state's schema
    (enumerated exhaustively); supplying a specific graph restricts the check
    to it, which is how the tree-schema experiments use a single qual tree.
    """
    return find_ujr_violation(state, graphs=graphs, budget=budget) is None


def find_ujr_violation(
    state: DatabaseState,
    *,
    graphs: Optional[Iterable[QualGraph]] = None,
    budget: int = 500_000,
) -> Optional[Tuple[QualGraph, Tuple[int, ...]]]:
    """Find a ``(qual graph, connected node subset)`` violating UJR, if any."""
    if graphs is None:
        graphs = minimum_qual_graphs(state.schema, budget=budget)
    for graph in graphs:
        for subset in connected_node_subsets(graph):
            if not _ujr_holds_for_subset(state, subset):
                return (graph, subset)
    return None
