"""Executable checkers for every numbered claim of the paper.

The paper proves its results once and for all; a reproduction cannot re-derive
the proofs, but it can *verify* every statement mechanically on concrete
schemas — the paper's own examples plus randomized families.  Each function
here checks one lemma / theorem / corollary on a given instance and returns
``True`` when the statement holds on it, so a single failing instance would
falsify the implementation of the underlying concepts (GYO, tableaux,
canonical connections, tree projections).

These checkers are used by the unit and property tests and by the
verification benchmarks; the experiment index in ``DESIGN.md`` maps each one
back to the paper.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from ..engine.analysis import analyze
from ..hypergraph.acyclicity import (
    find_weak_gamma_cycle,
    is_gamma_acyclic,
    is_gamma_acyclic_via_subtrees,
    violating_pair,
)
from ..hypergraph.cycles import find_aring_or_aclique_witness
from ..hypergraph.gyo import gyo_reduction, is_tree_schema
from ..hypergraph.join_tree import is_subtree
from ..hypergraph.schema import Attribute, DatabaseSchema, RelationSchema
from ..relational.database import DatabaseState
from ..relational.query import NaturalJoinQuery
from ..tableau.containment import tableaux_equivalent
from .gamma import check_gamma_equivalences
from .lossless import jd_implies
from .query_planning import queries_weakly_equivalent

__all__ = [
    "check_lemma_3_1",
    "check_lemma_3_2",
    "check_lemma_3_5",
    "check_theorem_3_1_subtree",
    "check_theorem_3_2",
    "check_corollary_3_1",
    "check_corollary_3_2",
    "check_theorem_3_3",
    "check_theorem_4_1",
    "check_theorem_5_1",
    "check_corollary_5_2",
    "check_theorem_5_2",
    "check_theorem_5_3",
    "check_corollary_5_3_gamma",
]


def _as_relation(target: Union[RelationSchema, Iterable[Attribute]]) -> RelationSchema:
    return target if isinstance(target, RelationSchema) else RelationSchema(target)


# -- Section 3 ----------------------------------------------------------------------


def check_lemma_3_1(schema: DatabaseSchema, *, budget: int = 1_000_000) -> bool:
    """Lemma 3.1: ``D`` cyclic iff some attribute deletion + reduction yields an
    Aring or Aclique."""
    witness = find_aring_or_aclique_witness(schema, budget=budget)
    return (not is_tree_schema(schema)) == (witness is not None)


def check_lemma_3_2(
    first: DatabaseSchema,
    second: DatabaseSchema,
    target: Union[RelationSchema, Iterable[Attribute]],
    state: Optional[DatabaseState] = None,
) -> bool:
    """Lemma 3.2: ``(D, X) ≡ (D', X)`` iff ``Tab(D, X) ≡ Tab(D', X)``.

    The tableau side is decided exactly; the query side is decided through
    canonical connections (Lemma 3.5 / Theorem 4.1), and additionally
    cross-checked on ``state`` when one is supplied.  Both sides run against
    the engine façade's memoized tableaux, so checking several lemmas on the
    same query shares one tableau build and one minimization per schema.
    """
    target_schema = _as_relation(target)
    universe = first.attributes.union(second.attributes).union(target_schema)
    tab_side = tableaux_equivalent(
        analyze(first).standard_tableau(target_schema, universe=universe),
        analyze(second).standard_tableau(target_schema, universe=universe),
    )
    query_side = queries_weakly_equivalent(first, second, target_schema)
    if tab_side != query_side:
        return False
    if state is not None and tab_side:
        first_answer = NaturalJoinQuery(first, target_schema).evaluate(
            state.state_for(first)
        )
        second_answer = NaturalJoinQuery(second, target_schema).evaluate(
            state.state_for(second)
        )
        if first_answer != second_answer:
            return False
    return True


def check_lemma_3_5(
    first: DatabaseSchema,
    second: DatabaseSchema,
    target: Union[RelationSchema, Iterable[Attribute]],
) -> bool:
    """Lemma 3.5: ``(D, X) ≡ (D', X)`` iff ``CC(D, X) = CC(D', X)``.

    The left side is decided through tableau equivalence (Lemma 3.2), making
    the check non-circular.
    """
    target_schema = _as_relation(target)
    universe = first.attributes.union(second.attributes).union(target_schema)
    first_analysis = analyze(first)
    second_analysis = analyze(second)
    tableau_equal = tableaux_equivalent(
        first_analysis.standard_tableau(target_schema, universe=universe),
        second_analysis.standard_tableau(target_schema, universe=universe),
    )
    cc_equal = first_analysis.canonical_connection(
        target_schema, universe=universe
    ) == second_analysis.canonical_connection(target_schema, universe=universe)
    return tableau_equal == cc_equal


def check_theorem_3_1_subtree(schema: DatabaseSchema, sub: DatabaseSchema) -> bool:
    """Theorem 3.1(ii) (as used throughout Section 5): for a tree schema ``D``
    and ``D' ⊆ D``, the GYO characterization ``GR(D, U(D')) ⊆ D'`` agrees with
    the semantic subtree definition (some qual tree in which ``D'`` induces a
    connected subgraph).

    Only meaningful for small schemas (the semantic side enumerates labelled
    trees).
    """
    from ..hypergraph.join_tree import is_subtree_semantic

    syntactic = is_subtree(schema, sub)
    semantic = is_subtree_semantic(schema, sub)
    return syntactic == semantic


def check_theorem_3_2(
    schema: DatabaseSchema,
    extra: Optional[Union[RelationSchema, Iterable[Attribute]]] = None,
) -> bool:
    """Theorem 3.2: the four statements about adding a relation to ``D``.

    (i)   ``D ∪ (R)`` tree ⇒ ``GR(D) ∪ (R)`` tree (checked when ``extra`` is
          supplied and applicable);
    (ii)  ``D ∪ (U(GR(D)))`` is a tree schema;
    (iii) ``D ∪ (S)`` tree ⇒ ``S ⊇ U(GR(D))`` (checked when ``extra`` makes the
          hypothesis true);
    (iv)  ``GR(D) ∪ (S)`` tree ⇒ ``S ⊇ U(GR(D))`` (same proviso).
    """
    residue = gyo_reduction(schema)
    core_attributes = residue.attributes
    # (ii)
    if not is_tree_schema(schema.add_relation(core_attributes)):
        return False
    if extra is not None:
        relation = _as_relation(extra)
        extended_is_tree = is_tree_schema(schema.add_relation(relation))
        if extended_is_tree:
            # (i)
            if not is_tree_schema(residue.add_relation(relation)):
                return False
            # (iii)
            if not core_attributes <= relation:
                return False
        if is_tree_schema(residue.add_relation(relation)):
            # (iv)
            if not core_attributes <= relation:
                return False
    return True


def check_corollary_3_1(schema: DatabaseSchema) -> bool:
    """Corollary 3.1: ``D`` is a tree schema iff ``GR(D)`` deletes every attribute.

    The independent witness for being a tree schema is the existence of a qual
    tree (maximum-weight spanning-tree construction), so the two sides are
    computed by different algorithms.
    """
    from ..hypergraph.join_tree import join_tree_from_spanning_tree

    gyo_says_tree = not gyo_reduction(schema).attributes
    spanning_says_tree = join_tree_from_spanning_tree(schema) is not None
    return gyo_says_tree == spanning_says_tree


def check_corollary_3_2(schema: DatabaseSchema, *, budget: int = 500_000) -> bool:
    """Corollary 3.2: ``U(GR(D))`` is the least-cardinality treefying relation."""
    from ..treefication.single import (
        minimum_treefying_relations_bruteforce,
        treefying_relation,
    )

    best = treefying_relation(schema)
    winners = minimum_treefying_relations_bruteforce(schema, budget=budget)
    if not winners:
        return False
    minimum_size = len(winners[0])
    if len(best) != minimum_size:
        return False
    return best in winners


def check_theorem_3_3(
    schema: DatabaseSchema, target: Union[RelationSchema, Iterable[Attribute]]
) -> bool:
    """Theorem 3.3: (i) ``CC(D, X) <= GR(D, X)``; (ii) equality for tree
    schemas; (iii) equality when ``U(GR(D, X)) ⊆ X``."""
    target_schema = _as_relation(target)
    analysis = analyze(schema)
    connection = analysis.canonical_connection(target_schema)
    reduction = analysis.gyo_residue(target_schema)
    if not reduction.covers(connection):
        return False
    if analysis.is_tree_schema and connection != reduction.reduction():
        return False
    if reduction.attributes <= target_schema and connection != reduction.reduction():
        return False
    return True


# -- Section 4 ----------------------------------------------------------------------


def check_theorem_4_1(
    schema: DatabaseSchema,
    sub_schema: DatabaseSchema,
    target: Union[RelationSchema, Iterable[Attribute]],
    state: Optional[DatabaseState] = None,
) -> bool:
    """Theorem 4.1: for ``D' <= D``, ``CC(D, X) <= D'`` ⟺ ``(D, X) ≡ (D', X)``
    ⟺ ``CC(D, X) = CC(D', X)``.

    Weak equivalence is decided via tableau equivalence (Lemma 3.2) so the
    chain of equivalences is checked against an independent criterion; when a
    UR ``state`` is supplied the query answers are also compared on it.
    """
    target_schema = _as_relation(target)
    universe = schema.attributes.union(target_schema)
    analysis = analyze(schema)
    sub_analysis = analyze(sub_schema)
    condition_cc_covered = sub_schema.covers(
        analysis.canonical_connection(target_schema)
    )
    condition_tableau = tableaux_equivalent(
        analysis.standard_tableau(target_schema, universe=universe),
        sub_analysis.standard_tableau(target_schema, universe=universe),
    )
    condition_cc_equal = analysis.canonical_connection(
        target_schema, universe=universe
    ) == sub_analysis.canonical_connection(target_schema, universe=universe)
    if not (condition_cc_covered == condition_tableau == condition_cc_equal):
        return False
    if state is not None and condition_cc_covered:
        full = NaturalJoinQuery(schema, target_schema).evaluate(state)
        partial_state = state.state_for(sub_schema)
        partial = NaturalJoinQuery(sub_schema, target_schema).evaluate(partial_state)
        if full != partial:
            return False
    return True


# -- Section 5 ----------------------------------------------------------------------


def check_theorem_5_1(
    schema: DatabaseSchema,
    sub_schema: DatabaseSchema,
    state: Optional[DatabaseState] = None,
) -> bool:
    """Theorem 5.1: for ``D' <= D``, ``CC(D, U(D')) ⊆ D'`` ⟺ ``⋈D ⊨ ⋈D'``
    ⟺ ``CC(D, U(D')) = CC(D', U(D'))``.

    The middle condition is represented by Theorem 4.1's equivalence at target
    ``U(D')`` (which is how the paper proves it); when a UR ``state`` is
    supplied and the implication holds, the lossless-join conclusion is also
    checked semantically on the state's join.
    """
    universe_target = sub_schema.attributes
    analysis = analyze(schema)
    sub_analysis = analyze(sub_schema)
    condition_covered = sub_schema.covers(
        analysis.canonical_connection(universe_target)
    )
    condition_equiv = queries_weakly_equivalent(schema, sub_schema, universe_target)
    condition_cc_equal = analysis.canonical_connection(
        universe_target, universe=schema.attributes
    ) == sub_analysis.canonical_connection(
        universe_target, universe=schema.attributes
    )
    if not (condition_covered == condition_equiv == condition_cc_equal):
        return False
    if state is not None and condition_covered:
        joined = state.join()
        from ..relational.dependencies import satisfies_join_dependency

        if satisfies_join_dependency(joined, schema) and not satisfies_join_dependency(
            joined, sub_schema
        ):
            return False
    return True


def check_corollary_5_2(schema: DatabaseSchema, sub_schema: DatabaseSchema) -> bool:
    """Corollary 5.2: for a tree schema ``D`` and ``D' ⊆ D``, ``⋈D ⊨ ⋈D'`` iff
    ``D'`` is a subtree of ``D``."""
    if not is_tree_schema(schema):
        return True  # vacuously out of scope
    return jd_implies(schema, sub_schema) == is_subtree(schema, sub_schema)


def check_theorem_5_2(
    schema: DatabaseSchema,
    target: Union[RelationSchema, Iterable[Attribute]],
    *,
    max_candidate_size: Optional[int] = None,
) -> bool:
    """Theorem 5.2 / Corollary 5.3: a minimum-cardinality ``D' <= D`` with
    ``CC(D', X) = CC(D, X)`` satisfies ``CC(D, U(D')) = D'`` (hence has a
    lossless join).

    The check uses ``CC(D, X)`` itself as the minimum-cardinality witness
    (minimality follows from Theorem 4.1: any equivalent ``D'`` must cover the
    reduced schema ``CC(D, X)``, so it has at least as many relations).
    """
    target_schema = _as_relation(target)
    analysis = analyze(schema)
    connection = analysis.canonical_connection(target_schema)
    if len(connection) == 0:
        return True
    recovered = analysis.canonical_connection(connection.attributes)
    return recovered == connection


def check_theorem_5_3(schema: DatabaseSchema) -> bool:
    """Theorem 5.3: the three γ-acyclicity characterizations agree on ``schema``."""
    by_cycle = find_weak_gamma_cycle(schema) is None
    by_pairs = violating_pair(schema) is None
    by_subtrees = is_gamma_acyclic_via_subtrees(schema)
    return by_cycle == by_pairs == by_subtrees


def check_corollary_5_3_gamma(schema: DatabaseSchema) -> bool:
    """Corollary 5.3': γ-acyclicity ⟺ the GR / CC / lossless conditions on all
    connected sub-schemas."""
    return check_gamma_equivalences(schema).all_agree
