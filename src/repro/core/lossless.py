"""Lossless joins via canonical connections (Section 5.1).

Theorem 5.1: for ``D' <= D`` the following are equivalent —

(i)   ``CC(D, U(D')) ⊆ D'``;
(ii)  ``⋈D ⊨ ⋈D'`` (the join dependency of ``D`` implies that ``D'`` has a
      lossless join);
(iii) ``CC(D, U(D')) = CC(D', U(D'))``;

with equality in (i) exactly when ``D'`` is reduced.  Corollary 5.2
specializes the criterion to tree schemas: ``⋈D ⊨ ⋈D'`` iff ``D'`` is a
subtree of ``D``.  Theorem 5.2 / Corollary 5.3 relate minimum-cardinality
equivalent sub-schemas to lossless joins.

All functions are *syntactic* (tableau/GYO based) and therefore exact; the
semantic counterparts (project-and-rejoin experiments, randomized
counterexample search) live in :mod:`repro.relational.dependencies` and are
used by the tests to cross-validate these criteria.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple, Union

from ..exceptions import NotASubSchemaError, NotATreeSchemaError
from ..hypergraph.gyo import gyo_reduction, is_tree_schema
from ..hypergraph.join_tree import is_subtree
from ..hypergraph.schema import Attribute, DatabaseSchema, RelationSchema
from ..tableau.canonical import canonical_connection
from .query_planning import queries_weakly_equivalent

__all__ = [
    "jd_implies",
    "lossless_subschemas",
    "lossless_for_tree_schema",
    "minimum_equivalent_subschema_is_lossless",
]


def _require_subordinate(schema: DatabaseSchema, sub: DatabaseSchema) -> None:
    if not schema.covers(sub):
        raise NotASubSchemaError(
            f"expected D' <= D, but {sub} is not covered by {schema}"
        )


def jd_implies(schema: DatabaseSchema, sub_schema: DatabaseSchema) -> bool:
    """Theorem 5.1 / Corollary 5.1: decide ``⋈D ⊨ ⋈D'`` for ``D' <= D``.

    The criterion is ``CC(D, U(D')) <= D'`` (equivalently ``⊆``, since the
    canonical connection is reduced).
    """
    _require_subordinate(schema, sub_schema)
    connection = canonical_connection(schema, sub_schema.attributes)
    return sub_schema.covers(connection)


def lossless_subschemas(
    schema: DatabaseSchema, *, connected_only: bool = False, min_size: int = 1
) -> Tuple[DatabaseSchema, ...]:
    """All sub-multisets ``D' ⊆ D`` with ``⋈D ⊨ ⋈D'`` (exponential enumeration).

    Used by the γ-acyclicity experiments (Corollary 5.3': a schema is
    γ-acyclic iff *every* connected sub-multiset appears here).
    """
    winners = []
    for sub in schema.iter_sub_schemas(min_size=min_size, connected_only=connected_only):
        if jd_implies(schema, sub):
            winners.append(sub)
    return tuple(winners)


def lossless_for_tree_schema(schema: DatabaseSchema, sub_schema: DatabaseSchema) -> bool:
    """Corollary 5.2: for a tree schema ``D`` and ``D' ⊆ D``, ``⋈D ⊨ ⋈D'`` iff
    ``D'`` is a subtree of ``D``.

    Raises :class:`~repro.exceptions.NotATreeSchemaError` when ``D`` is cyclic.
    """
    if not is_tree_schema(schema):
        raise NotATreeSchemaError("Corollary 5.2 applies to tree schemas only")
    return is_subtree(schema, sub_schema)


def minimum_equivalent_subschema_is_lossless(
    schema: DatabaseSchema,
    sub_schema: DatabaseSchema,
    target: Union[RelationSchema, Iterable[Attribute]],
) -> bool:
    """Check the Corollary 5.3 property on a candidate sub-schema.

    Given ``D' <= D`` with ``(D, X) ≡ (D', X)`` and ``D'`` of minimum
    cardinality among such sub-schemas, the corollary states ``⋈D ⊨ ⋈D'``.
    This helper checks the conclusion (``jd_implies``); establishing the
    minimality hypothesis is the caller's business (the theorem checkers do it
    by enumerating smaller sub-schemas).
    """
    _require_subordinate(schema, sub_schema)
    if not queries_weakly_equivalent(schema, sub_schema, target):
        return False
    return jd_implies(schema, sub_schema)
