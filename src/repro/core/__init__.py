"""Core theory API: query planning with joins (Section 4), lossless joins
(Section 5), γ-acyclicity equivalences, the UJR property, and executable
checkers for every numbered claim of the paper."""

from .query_planning import (
    JoinPlan,
    can_solve_with_joins,
    execute_join_plan,
    minimal_join_subschema,
    plan_join_query,
    queries_weakly_equivalent,
)
from .lossless import (
    jd_implies,
    lossless_for_tree_schema,
    lossless_subschemas,
    minimum_equivalent_subschema_is_lossless,
)
from .gamma import (
    GammaEquivalenceReport,
    all_connected_subschemas_lossless,
    cc_condition_holds_for_all_connected,
    check_gamma_equivalences,
    gr_condition_holds_for_all_connected,
)
from .ujr import (
    connected_node_subsets,
    find_ujr_violation,
    is_ujr,
    minimum_qual_graphs,
)
from .theorems import (
    check_corollary_3_1,
    check_corollary_3_2,
    check_corollary_5_2,
    check_corollary_5_3_gamma,
    check_lemma_3_1,
    check_lemma_3_2,
    check_lemma_3_5,
    check_theorem_3_1_subtree,
    check_theorem_3_2,
    check_theorem_3_3,
    check_theorem_4_1,
    check_theorem_5_1,
    check_theorem_5_2,
    check_theorem_5_3,
)

__all__ = [
    "can_solve_with_joins",
    "minimal_join_subschema",
    "queries_weakly_equivalent",
    "JoinPlan",
    "plan_join_query",
    "execute_join_plan",
    "jd_implies",
    "lossless_subschemas",
    "lossless_for_tree_schema",
    "minimum_equivalent_subschema_is_lossless",
    "gr_condition_holds_for_all_connected",
    "cc_condition_holds_for_all_connected",
    "all_connected_subschemas_lossless",
    "GammaEquivalenceReport",
    "check_gamma_equivalences",
    "minimum_qual_graphs",
    "connected_node_subsets",
    "is_ujr",
    "find_ujr_violation",
    "check_lemma_3_1",
    "check_lemma_3_2",
    "check_lemma_3_5",
    "check_theorem_3_1_subtree",
    "check_theorem_3_2",
    "check_corollary_3_1",
    "check_corollary_3_2",
    "check_theorem_3_3",
    "check_theorem_4_1",
    "check_theorem_5_1",
    "check_corollary_5_2",
    "check_theorem_5_2",
    "check_theorem_5_3",
    "check_corollary_5_3_gamma",
]
