"""γ-acyclicity and lossless joins of connected sub-schemas (Section 5.2).

Fagin's result (*) characterizes the schemas for which *every* connected
sub-schema has a lossless join, and Corollary 5.3' of the paper re-derives it
through GYO reductions and canonical connections: the following are
equivalent —

(i)   ``D`` is γ-acyclic;
(ii)  for all connected ``D' ⊆ D``: ``GR(D, U(D')) ⊆ D'``;
(iii) for all connected ``D' ⊆ D``: ``CC(D, U(D')) ⊆ D'``;
(iv)  for all connected ``D' ⊆ D``: ``⋈D ⊨ ⋈D'``.

The per-sub-schema conditions are exponential to enumerate, so these
functions are meant for the verification experiments (and carry the same
sub-schema enumeration budget caveats as the rest of the library); the
polynomial γ-acyclicity test itself is
:func:`repro.hypergraph.acyclicity.is_gamma_acyclic`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..hypergraph.acyclicity import is_gamma_acyclic
from ..hypergraph.gyo import gyo_reduction
from ..hypergraph.schema import DatabaseSchema
from ..tableau.canonical import canonical_connection
from .lossless import jd_implies

__all__ = [
    "gr_condition_holds_for_all_connected",
    "cc_condition_holds_for_all_connected",
    "all_connected_subschemas_lossless",
    "GammaEquivalenceReport",
    "check_gamma_equivalences",
]


def _connected_subschemas(schema: DatabaseSchema):
    return schema.iter_sub_schemas(min_size=1, connected_only=True)


def _contained_as_relations(small: DatabaseSchema, big: DatabaseSchema) -> bool:
    members = set(big.relations)
    return all(relation in members for relation in small.relations)


def gr_condition_holds_for_all_connected(schema: DatabaseSchema) -> bool:
    """Condition (ii): ``GR(D, U(D')) ⊆ D'`` for every connected ``D' ⊆ D``."""
    for sub in _connected_subschemas(schema):
        reduced = gyo_reduction(schema, sub.attributes)
        if not _contained_as_relations(reduced, sub):
            return False
    return True


def cc_condition_holds_for_all_connected(schema: DatabaseSchema) -> bool:
    """Condition (iii): ``CC(D, U(D')) ⊆ D'`` for every connected ``D' ⊆ D``."""
    for sub in _connected_subschemas(schema):
        connection = canonical_connection(schema, sub.attributes)
        if not sub.covers(connection):
            return False
    return True


def all_connected_subschemas_lossless(schema: DatabaseSchema) -> bool:
    """Condition (iv): ``⋈D ⊨ ⋈D'`` for every connected ``D' ⊆ D`` (Fagin's (*))."""
    for sub in _connected_subschemas(schema):
        if not jd_implies(schema, sub):
            return False
    return True


@dataclass(frozen=True)
class GammaEquivalenceReport:
    """Truth values of the four conditions of Corollary 5.3' on one schema."""

    schema: DatabaseSchema
    gamma_acyclic: bool
    gr_condition: bool
    cc_condition: bool
    lossless_condition: bool

    @property
    def all_agree(self) -> bool:
        """True when the four conditions have the same truth value."""
        values = {
            self.gamma_acyclic,
            self.gr_condition,
            self.cc_condition,
            self.lossless_condition,
        }
        return len(values) == 1


def check_gamma_equivalences(schema: DatabaseSchema) -> GammaEquivalenceReport:
    """Evaluate all four Corollary 5.3' conditions on ``schema``.

    The report's :attr:`~GammaEquivalenceReport.all_agree` flag is the
    mechanical verification of the corollary on this instance.
    """
    return GammaEquivalenceReport(
        schema=schema,
        gamma_acyclic=is_gamma_acyclic(schema),
        gr_condition=gr_condition_holds_for_all_connected(schema),
        cc_condition=cc_condition_holds_for_all_connected(schema),
        lossless_condition=all_connected_subschemas_lossless(schema),
    )
