"""Fixed Treefication and the Theorem 4.2 reduction from Bin Packing.

**Fixed Treefication** (Section 4): given a schema ``D`` and integers ``K``,
``B``, are there relation schemas ``R'_1, ..., R'_k`` (``k <= K``), each with
at most ``B`` attributes, such that ``D ∪ (R'_1, ..., R'_k)`` is a tree
schema?  Theorem 4.2 proves the problem NP-complete by reduction from Bin
Packing: every item of size ``s(i)`` becomes an Aclique of size ``s(i)`` over
a fresh attribute set, and a packing into ``K`` bins of capacity ``B``
corresponds exactly to a treefication with ``K`` added relations of at most
``B`` attributes.

This module implements the problem (instances, verification, exact and
heuristic solvers) and the reduction in both directions, so the
yes/no-equivalence claimed by the theorem can be tested mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..exceptions import SearchBudgetExceeded, TreeficationError
from ..hypergraph.cycles import aclique
from ..hypergraph.gyo import gyo_reduction, is_tree_schema
from ..hypergraph.schema import Attribute, DatabaseSchema, RelationSchema
from .binpacking import (
    BinPackingInstance,
    BinPackingSolution,
    first_fit_decreasing,
    solve_bin_packing_exact,
)

__all__ = [
    "FixedTreeficationInstance",
    "FixedTreeficationSolution",
    "is_valid_treefication",
    "solve_fixed_treefication_exact",
    "reduction_from_bin_packing",
    "treefication_from_packing",
    "packing_from_treefication",
    "solve_fixed_treefication_via_packing",
]


@dataclass(frozen=True)
class FixedTreeficationInstance:
    """A Fixed Treefication decision instance ``(D, K, B)``."""

    schema: DatabaseSchema
    max_relations: int
    max_arity: int

    def __post_init__(self) -> None:
        if self.max_relations <= 0:
            raise TreeficationError("the number of added relations K must be positive")
        if self.max_arity <= 0:
            raise TreeficationError("the arity bound B must be positive")


@dataclass(frozen=True)
class FixedTreeficationSolution:
    """A witnessing set of added relation schemas."""

    instance: FixedTreeficationInstance
    added_relations: Tuple[RelationSchema, ...]

    def treefied_schema(self) -> DatabaseSchema:
        """``D ∪ (R'_1, ..., R'_k)``."""
        return self.instance.schema.add_relations(self.added_relations)

    def is_valid(self) -> bool:
        """Re-check the witness against the instance's constraints."""
        return is_valid_treefication(
            self.instance, self.added_relations
        )


def is_valid_treefication(
    instance: FixedTreeficationInstance,
    added_relations: Sequence[Union[RelationSchema, Iterable]],
) -> bool:
    """Check that the added relations satisfy ``(K, B)`` and treefy ``D``."""
    relations = [
        relation if isinstance(relation, RelationSchema) else RelationSchema(relation)
        for relation in added_relations
    ]
    if len(relations) > instance.max_relations:
        return False
    if any(len(relation) > instance.max_arity for relation in relations):
        return False
    return is_tree_schema(instance.schema.add_relations(relations))


def solve_fixed_treefication_exact(
    instance: FixedTreeficationInstance, *, budget: int = 500_000
) -> Optional[FixedTreeficationSolution]:
    """Exact solver by bounded search.

    The search space is restricted, without loss of generality, to added
    relations drawn from subsets of ``U(GR(D))``: attributes outside the GYO
    residue are already removable, and by Theorem 3.2(i) adding relations can
    be analysed on ``GR(D)`` directly.  The subsets of each connected
    component of ``GR(D)`` must be covered jointly, so candidates are unions
    of component attribute sets capped at arity ``B`` — exactly the structure
    the Theorem 4.2 reduction exploits.  A final fully general fallback
    enumerates subsets of ``U(GR(D))`` of size at most ``B`` when the
    component-based candidates fail; everything is guarded by ``budget``.
    """
    schema = instance.schema
    residue = gyo_reduction(schema)
    if not residue.attributes:
        return FixedTreeficationSolution(instance=instance, added_relations=())

    # Candidate building blocks: the attribute sets of GR(D)'s connected
    # components (each must end up inside a single added relation for the
    # component to reduce, when the component is an Aclique-like core).
    components = [
        residue.sub_schema(indices).attributes
        for indices in residue.connected_components()
    ]

    examined = 0

    def try_candidate_sets(pool: List[RelationSchema]) -> Optional[Tuple[RelationSchema, ...]]:
        nonlocal examined
        usable = [relation for relation in pool if len(relation) <= instance.max_arity]
        for count in range(1, instance.max_relations + 1):
            for chosen in combinations(usable, count):
                examined += 1
                if examined > budget:
                    raise SearchBudgetExceeded(
                        f"fixed treefication search exceeded budget of {budget}"
                    )
                if is_tree_schema(schema.add_relations(chosen)):
                    return tuple(chosen)
        return None

    # Layer 1: unions of whole components (the bin-packing shape).
    union_pool: List[RelationSchema] = []
    seen = set()
    max_groups = len(components)
    for group_size in range(1, max_groups + 1):
        for group in combinations(range(len(components)), group_size):
            examined += 1
            if examined > budget:
                raise SearchBudgetExceeded(
                    f"fixed treefication search exceeded budget of {budget}"
                )
            union = RelationSchema(())
            for index in group:
                union = union.union(components[index])
            if len(union) <= instance.max_arity and union.attributes not in seen:
                seen.add(union.attributes)
                union_pool.append(union)
    witness = try_candidate_sets(union_pool)
    if witness is not None:
        return FixedTreeficationSolution(instance=instance, added_relations=witness)

    # When every connected component of GR(D) is an Aclique, layer 1 is
    # complete: the paper's Theorem 4.2 argument shows each Aclique's
    # attribute set must lie inside a single added relation, so any witness
    # is (dominated by) a union-of-components witness.  A "no" answer is
    # therefore definitive and the expensive general fallback is skipped.
    from ..hypergraph.cycles import is_aclique

    if all(
        is_aclique(residue.sub_schema(indices))
        for indices in residue.connected_components()
    ):
        return None

    # Layer 2: general fallback over subsets of U(GR(D)) up to arity B.
    attrs = residue.attributes.sorted_attributes()
    subset_pool: List[RelationSchema] = []
    for size in range(1, min(instance.max_arity, len(attrs)) + 1):
        for subset in combinations(attrs, size):
            examined += 1
            if examined > budget:
                raise SearchBudgetExceeded(
                    f"fixed treefication search exceeded budget of {budget}"
                )
            subset_pool.append(RelationSchema(subset))
    witness = try_candidate_sets(subset_pool)
    if witness is not None:
        return FixedTreeficationSolution(instance=instance, added_relations=witness)
    return None


# ---------------------------------------------------------------------------
# The Theorem 4.2 reduction
# ---------------------------------------------------------------------------


def _aclique_attributes(item_index: int, size: int) -> List[Attribute]:
    """Fresh, per-item attribute names for the reduction."""
    return [f"i{item_index}_{position}" for position in range(size)]


def reduction_from_bin_packing(
    instance: BinPackingInstance,
) -> FixedTreeficationInstance:
    """Theorem 4.2: map a Bin Packing instance to a Fixed Treefication instance.

    Item ``i`` of size ``s(i)`` becomes an Aclique of size ``s(i)`` over a
    fresh attribute universe; ``K`` and ``B`` carry over unchanged.  (The
    paper assumes w.l.o.g. every size is at least 3 so that an Aclique exists;
    the same assumption is enforced here.)
    """
    if any(size < 3 for size in instance.sizes):
        raise TreeficationError(
            "the Theorem 4.2 reduction requires every item size to be at least 3 "
            "(the paper assumes sizes divisible by 3)"
        )
    relations: List[RelationSchema] = []
    for item_index, size in enumerate(instance.sizes):
        relations.extend(
            aclique(size, _aclique_attributes(item_index, size)).relations
        )
    schema = DatabaseSchema(relations)
    return FixedTreeficationInstance(
        schema=schema,
        max_relations=instance.bin_count,
        max_arity=instance.bin_capacity,
    )


def treefication_from_packing(
    packing: BinPackingSolution,
) -> FixedTreeficationSolution:
    """Map a Bin Packing solution to a treefication witness (the ``⇐`` direction).

    Bin ``j`` becomes the relation schema containing all attributes of the
    Acliques of the items packed into it.
    """
    instance = reduction_from_bin_packing(packing.instance)
    added: List[RelationSchema] = []
    for bin_content in packing.bins:
        attributes: List[Attribute] = []
        for item in bin_content:
            attributes.extend(
                _aclique_attributes(item, packing.instance.sizes[item])
            )
        if attributes:
            added.append(RelationSchema(attributes))
    return FixedTreeficationSolution(instance=instance, added_relations=tuple(added))


def packing_from_treefication(
    packing_instance: BinPackingInstance,
    treefication: FixedTreeficationSolution,
) -> BinPackingSolution:
    """Map a treefication witness back to a packing (the ``⇒`` direction).

    Each item is assigned to a bin whose added relation contains the item's
    whole Aclique attribute set, exactly as in the proof of Theorem 4.2.
    """
    bins: List[List[int]] = [[] for _ in treefication.added_relations]
    for item_index, size in enumerate(packing_instance.sizes):
        attributes = RelationSchema(_aclique_attributes(item_index, size))
        placed = False
        for bin_index, relation in enumerate(treefication.added_relations):
            if attributes <= relation:
                bins[bin_index].append(item_index)
                placed = True
                break
        if not placed:
            raise TreeficationError(
                f"item {item_index} has no added relation covering its Aclique; "
                "the treefication witness does not induce a packing"
            )
    return BinPackingSolution(
        instance=packing_instance,
        bins=tuple(tuple(bin_content) for bin_content in bins if bin_content),
    )


def solve_fixed_treefication_via_packing(
    instance: BinPackingInstance, *, exact: bool = True, budget: int = 2_000_000
) -> Optional[FixedTreeficationSolution]:
    """Solve the *reduced* treefication instance by solving the packing side.

    With ``exact=False`` the first-fit-decreasing heuristic is used instead of
    the exact bin packing solver.
    """
    packing = (
        solve_bin_packing_exact(instance, budget=budget)
        if exact
        else first_fit_decreasing(instance)
    )
    if packing is None:
        return None
    return treefication_from_packing(packing)
