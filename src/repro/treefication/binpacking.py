"""Bin Packing: instances, exact solver, first-fit-decreasing heuristic.

Bin Packing is the NP-complete problem Theorem 4.2 reduces *from*: given items
with positive integer sizes, a bin capacity ``B`` and a bin count ``K``, decide
whether the items can be partitioned into at most ``K`` bins whose contents
each sum to at most ``B``.

The exact solver is a depth-first search with standard symmetry breaking
(items placed in non-increasing size order, empty bins interchangeable); it is
exponential in the worst case but comfortable for the instance sizes used to
validate the reduction.  The first-fit-decreasing heuristic provides the
polynomial-time companion used by the treefication planner example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..exceptions import SearchBudgetExceeded, TreeficationError

__all__ = [
    "BinPackingInstance",
    "BinPackingSolution",
    "solve_bin_packing_exact",
    "first_fit_decreasing",
]


@dataclass(frozen=True)
class BinPackingInstance:
    """A Bin Packing decision instance: item sizes, bin capacity, bin count."""

    sizes: Tuple[int, ...]
    bin_capacity: int
    bin_count: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "sizes", tuple(self.sizes))
        if any(size <= 0 for size in self.sizes):
            raise TreeficationError("item sizes must be positive integers")
        if self.bin_capacity <= 0:
            raise TreeficationError("the bin capacity must be positive")
        if self.bin_count <= 0:
            raise TreeficationError("the bin count must be positive")

    @property
    def item_count(self) -> int:
        """Number of items."""
        return len(self.sizes)

    def is_trivially_infeasible(self) -> bool:
        """Cheap necessary conditions: no oversized item, enough total capacity."""
        if any(size > self.bin_capacity for size in self.sizes):
            return True
        return sum(self.sizes) > self.bin_capacity * self.bin_count


@dataclass(frozen=True)
class BinPackingSolution:
    """A satisfying assignment: ``bins[j]`` lists the item indices in bin ``j``."""

    instance: BinPackingInstance
    bins: Tuple[Tuple[int, ...], ...]

    def is_valid(self) -> bool:
        """Re-check that the assignment is a partition respecting the capacity."""
        assigned = [index for bin_content in self.bins for index in bin_content]
        if sorted(assigned) != list(range(self.instance.item_count)):
            return False
        if len(self.bins) > self.instance.bin_count:
            return False
        return all(
            sum(self.instance.sizes[index] for index in bin_content)
            <= self.instance.bin_capacity
            for bin_content in self.bins
        )

    def bin_loads(self) -> Tuple[int, ...]:
        """Total size placed in each bin."""
        return tuple(
            sum(self.instance.sizes[index] for index in bin_content)
            for bin_content in self.bins
        )


def solve_bin_packing_exact(
    instance: BinPackingInstance, *, budget: int = 2_000_000
) -> Optional[BinPackingSolution]:
    """Exact decision + witness by branch-and-bound search.

    Returns a :class:`BinPackingSolution` or ``None`` when the instance is
    infeasible.  ``budget`` bounds the number of search nodes.
    """
    if instance.is_trivially_infeasible():
        return None
    order = sorted(
        range(instance.item_count), key=lambda index: -instance.sizes[index]
    )
    loads = [0] * instance.bin_count
    assignment: List[List[int]] = [[] for _ in range(instance.bin_count)]
    nodes = 0

    def place(position: int) -> bool:
        nonlocal nodes
        nodes += 1
        if nodes > budget:
            raise SearchBudgetExceeded(
                f"bin packing search exceeded budget of {budget} nodes"
            )
        if position == len(order):
            return True
        item = order[position]
        size = instance.sizes[item]
        tried_empty = False
        for bin_index in range(instance.bin_count):
            if loads[bin_index] == 0:
                if tried_empty:
                    continue  # all empty bins are interchangeable
                tried_empty = True
            if loads[bin_index] + size > instance.bin_capacity:
                continue
            loads[bin_index] += size
            assignment[bin_index].append(item)
            if place(position + 1):
                return True
            loads[bin_index] -= size
            assignment[bin_index].pop()
        return False

    if not place(0):
        return None
    bins = tuple(tuple(bin_content) for bin_content in assignment if bin_content)
    return BinPackingSolution(instance=instance, bins=bins)


def first_fit_decreasing(instance: BinPackingInstance) -> Optional[BinPackingSolution]:
    """The first-fit-decreasing heuristic.

    Returns a solution using at most ``bin_count`` bins when the heuristic
    finds one, otherwise ``None`` (which does **not** prove infeasibility).
    """
    if any(size > instance.bin_capacity for size in instance.sizes):
        return None
    order = sorted(
        range(instance.item_count), key=lambda index: -instance.sizes[index]
    )
    loads: List[int] = []
    bins: List[List[int]] = []
    for item in order:
        size = instance.sizes[item]
        for bin_index, load in enumerate(loads):
            if load + size <= instance.bin_capacity:
                loads[bin_index] += size
                bins[bin_index].append(item)
                break
        else:
            loads.append(size)
            bins.append([item])
    if len(bins) > instance.bin_count:
        return None
    return BinPackingSolution(
        instance=instance, bins=tuple(tuple(bin_content) for bin_content in bins)
    )
