"""Single-relation treefication (Theorem 3.2 and Corollary 3.2).

Adding one relation schema to a cyclic schema ``D`` can make it a tree
schema.  The paper pins down the best choice exactly:

* Theorem 3.2(ii) — ``D ∪ (U(GR(D)))`` is always a tree schema;
* Theorem 3.2(iii) — any ``S`` with ``D ∪ (S)`` a tree schema satisfies
  ``S ⊇ U(GR(D))``;
* Corollary 3.2 — therefore ``U(GR(D))`` is the (unique) least-cardinality
  relation schema whose addition treefies ``D``.

:func:`treefying_relation` also feeds the cyclic execution planner
(:func:`repro.engine.cyclic.choose_tree_projection`): widened by the query
target, ``U(GR(D))`` is the "residue" candidate tree projection, competing
against the greedy-merge triangulation and the layered search of
:mod:`repro.treeproj.tree_projection` under the Greco–Scarcello
minimality-first ranking.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Optional, Tuple, Union

from ..exceptions import SearchBudgetExceeded
from ..hypergraph.gyo import gyo_reduction, is_tree_schema
from ..hypergraph.schema import Attribute, DatabaseSchema, RelationSchema

__all__ = [
    "treefying_relation",
    "is_treefying_relation",
    "SingleTreefication",
    "single_relation_treefication",
    "minimum_treefying_relations_bruteforce",
]


def treefying_relation(schema: DatabaseSchema) -> RelationSchema:
    """``U(GR(D))`` — the minimum-cardinality relation whose addition treefies ``D``.

    For a tree schema this is the empty relation schema (nothing needs to be
    added).
    """
    return gyo_reduction(schema).attributes


def is_treefying_relation(
    schema: DatabaseSchema, relation: Union[RelationSchema, Iterable[Attribute]]
) -> bool:
    """True when ``D ∪ (relation)`` is a tree schema."""
    candidate = relation if isinstance(relation, RelationSchema) else RelationSchema(relation)
    return is_tree_schema(schema.add_relation(candidate))


@dataclass(frozen=True)
class SingleTreefication:
    """The result of single-relation treefication."""

    original: DatabaseSchema
    added_relation: RelationSchema
    treefied: DatabaseSchema

    @property
    def was_already_tree(self) -> bool:
        """True when the original schema needed nothing added."""
        return len(self.added_relation) == 0


def single_relation_treefication(schema: DatabaseSchema) -> SingleTreefication:
    """Apply Corollary 3.2: add ``U(GR(D))`` and return the treefied schema."""
    relation = treefying_relation(schema)
    treefied = schema if not relation else schema.add_relation(relation)
    return SingleTreefication(
        original=schema, added_relation=relation, treefied=treefied
    )


def minimum_treefying_relations_bruteforce(
    schema: DatabaseSchema, *, budget: int = 500_000
) -> Tuple[RelationSchema, ...]:
    """All minimum-cardinality relation schemas whose addition treefies ``D``.

    Brute force over attribute subsets in order of increasing size — used to
    validate Corollary 3.2 (the result should be exactly ``(U(GR(D)),)`` for
    cyclic schemas).  Exponential in ``|U(D)|``; guarded by ``budget``.
    """
    universe = schema.attributes.sorted_attributes()
    examined = 0
    winners = []
    for size in range(0, len(universe) + 1):
        for subset in combinations(universe, size):
            examined += 1
            if examined > budget:
                raise SearchBudgetExceeded(
                    f"brute-force treefication search exceeded budget of {budget}"
                )
            if is_treefying_relation(schema, subset):
                winners.append(RelationSchema(subset))
        if winners:
            return tuple(winners)
    return tuple(winners)
