"""Treefication: turning cyclic schemas into tree schemas by adding relations.

Single-relation treefication is solved exactly by Corollary 3.2
(``U(GR(D))``); adding multiple bounded-size relations is the NP-complete
Fixed Treefication problem of Theorem 4.2, reduced from Bin Packing.
"""

from .single import (
    SingleTreefication,
    is_treefying_relation,
    minimum_treefying_relations_bruteforce,
    single_relation_treefication,
    treefying_relation,
)
from .binpacking import (
    BinPackingInstance,
    BinPackingSolution,
    first_fit_decreasing,
    solve_bin_packing_exact,
)
from .fixed import (
    FixedTreeficationInstance,
    FixedTreeficationSolution,
    is_valid_treefication,
    packing_from_treefication,
    reduction_from_bin_packing,
    solve_fixed_treefication_exact,
    solve_fixed_treefication_via_packing,
    treefication_from_packing,
)

__all__ = [
    "treefying_relation",
    "is_treefying_relation",
    "SingleTreefication",
    "single_relation_treefication",
    "minimum_treefying_relations_bruteforce",
    "BinPackingInstance",
    "BinPackingSolution",
    "solve_bin_packing_exact",
    "first_fit_decreasing",
    "FixedTreeficationInstance",
    "FixedTreeficationSolution",
    "is_valid_treefication",
    "solve_fixed_treefication_exact",
    "reduction_from_bin_packing",
    "treefication_from_packing",
    "packing_from_treefication",
    "solve_fixed_treefication_via_packing",
]
