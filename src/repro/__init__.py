"""repro — a reproduction of Goodman, Shmueli & Tay (PODS 1983 / JCSS 1984):
*GYO Reductions, Canonical Connections, Tree and Cyclic Schemas, and Tree
Projections*.

The recommended entry point is the engine façade (see ``docs/api.md``)::

    from repro import analyze

    analysis = analyze("ab,bc,cd")          # AnalyzedSchema: lazy, cached
    analysis.is_tree_schema                 # structural facts, computed once
    prepared = analysis.prepare("ad")       # PreparedQuery: plan once ...
    prepared.execute_many(states)           # ... execute many, no re-planning

The package is organized by substrate:

* :mod:`repro.engine` — the façade above: :class:`~repro.engine.AnalyzedSchema`
  (memoized schema analysis) and :class:`~repro.engine.PreparedQuery`
  (compiled plans with plan-once/execute-many semantics);
* :mod:`repro.hypergraph` — database schemas as hypergraphs, qual graphs and
  qual trees, the GYO reduction, Arings/Acliques, α/β/γ-acyclicity, schema
  generators;
* :mod:`repro.tableau` — standard tableaux, containment mappings,
  minimization, canonical schemas and canonical connections;
* :mod:`repro.relational` — relation states, relational algebra, UR
  databases, join dependencies, full reducers, Yannakakis' algorithm, and
  Section 6 join/project/semijoin programs;
* :mod:`repro.treeproj` — tree projections and the Section 6 theorems;
* :mod:`repro.treefication` — single-relation treefication (Corollary 3.2),
  Fixed Treefication, Bin Packing and the Theorem 4.2 reduction;
* :mod:`repro.core` — the paper's headline results as a query-planning /
  lossless-join API plus executable checkers for every numbered claim;
* :mod:`repro.figures` — the paper's concrete examples;
* :mod:`repro.workloads` — benchmark workload suites.

The most commonly used names are re-exported here so that
``from repro import parse_schema, gyo_reduce, canonical_connection`` works for
quick interactive use; the subpackages remain the canonical import points.
"""

from .exceptions import (
    GYOError,
    NotASubSchemaError,
    NotATreeSchemaError,
    ParseError,
    ProgramError,
    QualGraphError,
    RelationError,
    ReproError,
    SchemaError,
    SearchBudgetExceeded,
    TableauError,
    TreeficationError,
    TreeProjectionError,
)
from .hypergraph import (
    DatabaseSchema,
    RelationSchema,
    aclique,
    aring,
    find_qual_tree,
    format_schema,
    gyo_reduce,
    gyo_reduction,
    is_cyclic_schema,
    is_gamma_acyclic,
    is_subtree,
    is_tree_schema,
    parse_relation,
    parse_schema,
)
from .tableau import (
    canonical_connection,
    canonical_connection_result,
    minimize_tableau,
    standard_tableau,
    tableaux_equivalent,
)
from .relational import (
    DatabaseState,
    NaturalJoinQuery,
    Program,
    Relation,
    naive_join_project,
    random_universal_relation,
    random_ur_database,
    universal_database,
    yannakakis,
)
from .treeproj import find_tree_projection, is_tree_projection, solve_with_tree_projection
from .treefication import (
    BinPackingInstance,
    reduction_from_bin_packing,
    single_relation_treefication,
    treefying_relation,
)
from .core import (
    can_solve_with_joins,
    check_gamma_equivalences,
    jd_implies,
    lossless_for_tree_schema,
    minimal_join_subschema,
    plan_join_query,
    queries_weakly_equivalent,
)
from .engine import (
    AnalyzedSchema,
    PreparedQuery,
    analyze,
    clear_analysis_cache,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # engine façade
    "analyze",
    "AnalyzedSchema",
    "PreparedQuery",
    "clear_analysis_cache",
    # exceptions
    "ReproError",
    "SchemaError",
    "ParseError",
    "NotATreeSchemaError",
    "NotASubSchemaError",
    "QualGraphError",
    "GYOError",
    "TableauError",
    "RelationError",
    "ProgramError",
    "TreeProjectionError",
    "TreeficationError",
    "SearchBudgetExceeded",
    # hypergraph
    "RelationSchema",
    "DatabaseSchema",
    "parse_relation",
    "parse_schema",
    "format_schema",
    "gyo_reduce",
    "gyo_reduction",
    "is_tree_schema",
    "is_cyclic_schema",
    "is_gamma_acyclic",
    "is_subtree",
    "find_qual_tree",
    "aring",
    "aclique",
    # tableau
    "standard_tableau",
    "tableaux_equivalent",
    "minimize_tableau",
    "canonical_connection",
    "canonical_connection_result",
    # relational
    "Relation",
    "DatabaseState",
    "NaturalJoinQuery",
    "Program",
    "universal_database",
    "random_universal_relation",
    "random_ur_database",
    "yannakakis",
    "naive_join_project",
    # tree projections
    "is_tree_projection",
    "find_tree_projection",
    "solve_with_tree_projection",
    # treefication
    "treefying_relation",
    "single_relation_treefication",
    "BinPackingInstance",
    "reduction_from_bin_packing",
    # core
    "can_solve_with_joins",
    "minimal_join_subschema",
    "plan_join_query",
    "queries_weakly_equivalent",
    "jd_implies",
    "lossless_for_tree_schema",
    "check_gamma_equivalences",
]
