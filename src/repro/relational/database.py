"""Database states and universal-relation (UR) databases (Section 2).

A *database state* for schema ``D = (R_1, ..., R_n)`` assigns a relation
state to every relation schema, positionally.  A *universal-relation
database* is a state of the form ``D = { π_R(I) | R ∈ D }`` for a single
universal relation ``I`` over (at least) ``U(D)`` — the only kind of database
the paper's results quantify over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..exceptions import RelationError, SchemaError
from ..hypergraph.schema import Attribute, DatabaseSchema, RelationSchema
from .algebra import join_all
from .relation import Relation

__all__ = ["DatabaseState", "universal_database", "is_universal_database"]


class DatabaseState:
    """A positional assignment of relation states to the relation schemas of ``D``."""

    __slots__ = ("_schema", "_relations", "__weakref__")

    def __init__(self, schema: DatabaseSchema, relations: Sequence[Relation]) -> None:
        if len(schema) != len(relations):
            raise RelationError(
                f"schema has {len(schema)} relation schemas but "
                f"{len(relations)} relation states were given"
            )
        for index, (relation_schema, relation) in enumerate(zip(schema, relations)):
            if relation.schema != relation_schema:
                raise RelationError(
                    f"relation state #{index} is over {relation.schema.to_notation()} "
                    f"but the schema expects {relation_schema.to_notation()}"
                )
        object.__setattr__(self, "_schema", schema)
        object.__setattr__(self, "_relations", tuple(relations))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("DatabaseState is immutable")

    def __reduce__(self):
        # Round-trips through the constructor (per-slot schema validation is
        # one frozenset comparison per relation); required so states can be
        # shipped to the sharded multi-process executor.
        return (DatabaseState, (self._schema, self._relations))

    # -- accessors -------------------------------------------------------------

    @property
    def schema(self) -> DatabaseSchema:
        """The database schema this state instantiates."""
        return self._schema

    @property
    def relations(self) -> Tuple[Relation, ...]:
        """The relation states, aligned with ``schema.relations``."""
        return self._relations

    def __len__(self) -> int:
        return len(self._relations)

    def __getitem__(self, index: int) -> Relation:
        return self._relations[index]

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseState):
            return NotImplemented
        return self._schema == other._schema and self._relations == other._relations

    def __hash__(self) -> int:
        return hash((self._schema, self._relations))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        sizes = ", ".join(str(len(relation)) for relation in self._relations)
        return f"DatabaseState({self._schema.to_notation()!r}, sizes=[{sizes}])"

    def total_rows(self) -> int:
        """Total number of stored tuples across all relation states."""
        return sum(len(relation) for relation in self._relations)

    # -- derived states -----------------------------------------------------------

    def join(self) -> Relation:
        """``⋈_{R ∈ D} R`` — the natural join of every relation state."""
        return join_all(self._relations)

    def sub_state(self, indices: Iterable[int]) -> "DatabaseState":
        """The state restricted to the relation schemas at the given indices."""
        index_list = list(indices)
        sub_schema = self._schema.sub_schema(index_list)
        return DatabaseState(sub_schema, [self._relations[index] for index in index_list])

    def state_for(self, sub_schema: DatabaseSchema) -> "DatabaseState":
        """Derive a state for ``sub_schema <= schema`` by projection.

        Every relation schema of ``sub_schema`` must be contained in some
        relation schema of this state's schema; its state is obtained by
        projecting a containing relation's state.  For UR databases this is
        exactly the sub-database the paper associates with ``D' <= D``.
        """
        derived: List[Relation] = []
        for target in sub_schema.relations:
            source_index: Optional[int] = None
            for index, relation_schema in enumerate(self._schema.relations):
                if target <= relation_schema:
                    source_index = index
                    break
            if source_index is None:
                raise SchemaError(
                    f"relation schema {target.to_notation()} is not contained in any "
                    "relation schema of the state"
                )
            derived.append(self._relations[source_index].project(target))
        return DatabaseState(sub_schema, derived)


def universal_database(schema: DatabaseSchema, universal: Relation) -> DatabaseState:
    """Build the UR database ``{ π_R(I) | R ∈ D }`` from a universal relation ``I``."""
    if not schema.attributes <= universal.schema:
        raise SchemaError(
            "the universal relation must contain every attribute of the schema "
            f"(missing {schema.attributes.difference(universal.schema).to_notation()})"
        )
    relations = [universal.project(relation_schema) for relation_schema in schema.relations]
    return DatabaseState(schema, relations)


def is_universal_database(state: DatabaseState) -> bool:
    """Check whether a state is a UR database *witnessed by its own join*.

    A state is universal iff there exists some universal relation whose
    projections give the state.  The join of the state is always such a
    witness when one exists, so the check is: for every relation schema ``R``,
    ``π_R(⋈ state) = state[R]``.
    """
    joined = state.join()
    for relation_schema, relation in zip(state.schema, state.relations):
        if joined.project(relation_schema) != relation:
            return False
    return True
