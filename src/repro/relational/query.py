"""Natural-join queries ``Q = (D, X)`` and weak containment / equivalence.

``Q = (D, X)`` denotes ``π_X(⋈_{R ∈ D} R)``.  The paper compares queries over
*universal databases only*: ``Q ⊑ Q'`` (weak containment) when ``Q(D) ⊆
Q'(D)`` for every UR database ``D``, and ``Q ≡ Q'`` (weak equivalence) when
containment holds both ways.

Exact decision procedures for weak equivalence are tableau-based (Lemma 3.2,
implemented in :mod:`repro.tableau`); this module provides the *semantic*
side: evaluating queries over states and empirically testing containment /
equivalence over sampled universal relations, which is how the property tests
validate the syntactic criteria.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple, Union

from ..exceptions import SchemaError
from ..hypergraph.generators import ResolvableRandom, resolve_rng
from ..hypergraph.schema import Attribute, DatabaseSchema, RelationSchema
from .algebra import join_all, join_all_in_order
from .database import DatabaseState, universal_database
from .relation import Relation
from .universal import random_universal_relation

__all__ = [
    "NaturalJoinQuery",
    "weakly_contained_empirically",
    "weakly_equivalent_empirically",
]


@dataclass(frozen=True)
class NaturalJoinQuery:
    """The query ``(D, X)``: join every relation of ``D`` and project onto ``X``."""

    schema: DatabaseSchema
    target: RelationSchema

    def __post_init__(self) -> None:
        target = self.target
        if not isinstance(target, RelationSchema):
            object.__setattr__(self, "target", RelationSchema(target))

    @property
    def attributes(self) -> RelationSchema:
        """``U(D)`` of the query's schema."""
        return self.schema.attributes

    def validate(self) -> None:
        """Check ``X ⊆ U(D)`` (the paper's standing assumption)."""
        if not self.target <= self.schema.attributes:
            raise SchemaError(
                f"query target {self.target.to_notation()} is not contained in "
                f"U(D) = {self.schema.attributes.to_notation()}"
            )

    def evaluate(self, state: DatabaseState, *, naive: bool = False) -> Relation:
        """Evaluate the query over a database state for its schema.

        ``naive=True`` joins relations strictly in schema order (the baseline
        used by the benchmarks); the default uses the greedy connected-join
        order.
        """
        if state.schema != self.schema:
            raise SchemaError("the state is for a different schema than the query")
        joined = (
            join_all_in_order(state.relations) if naive else join_all(state.relations)
        )
        return joined.project(self.target)

    def evaluate_on_universal(self, universal: Relation, *, naive: bool = False) -> Relation:
        """Evaluate the query over the UR database induced by ``universal``."""
        state = universal_database(self.schema, universal)
        return self.evaluate(state, naive=naive)

    def __str__(self) -> str:
        return f"({self.schema.to_notation()}; target={self.target.to_notation()})"


def _sample_universals(
    attributes: RelationSchema,
    trials: int,
    rng: ResolvableRandom,
    tuple_count: int,
    domain_size: int,
):
    generator = resolve_rng(rng)
    for _ in range(trials):
        yield random_universal_relation(
            attributes,
            tuple_count=tuple_count,
            domain_size=domain_size,
            rng=generator,
        )


def weakly_contained_empirically(
    first: NaturalJoinQuery,
    second: NaturalJoinQuery,
    *,
    trials: int = 25,
    tuple_count: int = 15,
    domain_size: int = 3,
    rng: ResolvableRandom = None,
) -> Optional[Relation]:
    """Empirically test ``first ⊑ second`` over sampled universal relations.

    Both queries must have the same target.  Returns ``None`` when no
    counterexample was found in ``trials`` samples, otherwise the witnessing
    universal relation (whose UR database makes ``first ⊄ second``).
    """
    if first.target != second.target:
        raise SchemaError("weak containment compares queries with the same target")
    universe = first.attributes.union(second.attributes)
    for universal in _sample_universals(universe, trials, rng, tuple_count, domain_size):
        left = first.evaluate_on_universal(universal)
        right = second.evaluate_on_universal(universal)
        if not left.issubset(right):
            return universal
    return None


def weakly_equivalent_empirically(
    first: NaturalJoinQuery,
    second: NaturalJoinQuery,
    *,
    trials: int = 25,
    tuple_count: int = 15,
    domain_size: int = 3,
    rng: ResolvableRandom = None,
) -> Optional[Relation]:
    """Empirically test ``first ≡ second``; returns a counterexample or ``None``."""
    generator = resolve_rng(rng)
    witness = weakly_contained_empirically(
        first,
        second,
        trials=trials,
        tuple_count=tuple_count,
        domain_size=domain_size,
        rng=generator,
    )
    if witness is not None:
        return witness
    return weakly_contained_empirically(
        second,
        first,
        trials=trials,
        tuple_count=tuple_count,
        domain_size=domain_size,
        rng=generator,
    )
