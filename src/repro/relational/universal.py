"""Generation of universal relations and UR database states.

The paper's results quantify over *universal relation databases*: states of
the form ``{ π_R(I) | R ∈ D }``.  The generators here produce the universal
relation ``I`` synthetically — random tuples over small integer domains, with
a configurable skew — and are used by the property tests (semantic checks of
Theorems 4.1, 5.1, 6.x) and by the query-evaluation benchmarks.

Small domains are deliberate: they maximize the chance of value collisions,
which is what makes joins, semijoins and lossless-join counterexamples
interesting at small scale.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Union

from ..hypergraph.generators import ResolvableRandom, resolve_rng
from ..hypergraph.schema import Attribute, DatabaseSchema, RelationSchema
from .database import DatabaseState, universal_database
from .relation import Relation

__all__ = [
    "random_universal_relation",
    "random_ur_database",
    "random_database_state",
    "chain_correlated_universal_relation",
]


def random_universal_relation(
    attributes: Union[RelationSchema, Iterable[Attribute]],
    *,
    tuple_count: int = 20,
    domain_size: int = 3,
    rng: ResolvableRandom = None,
) -> Relation:
    """A random universal relation over the given attributes.

    Each of the ``tuple_count`` tuples assigns every attribute an independent
    uniform value from ``range(domain_size)``.
    """
    schema = (
        attributes
        if isinstance(attributes, RelationSchema)
        else RelationSchema(attributes)
    )
    generator = resolve_rng(rng)
    columns = schema.sorted_attributes()
    rows = [
        tuple(generator.randrange(domain_size) for _ in columns)
        for _ in range(tuple_count)
    ]
    return Relation(schema, rows)


def chain_correlated_universal_relation(
    attributes: Union[RelationSchema, Iterable[Attribute]],
    *,
    tuple_count: int = 50,
    domain_size: int = 10,
    correlation: float = 0.5,
    rng: ResolvableRandom = None,
) -> Relation:
    """A universal relation with correlated adjacent attributes.

    Attributes are taken in sorted order; with probability ``correlation`` an
    attribute copies the value of its predecessor, otherwise it draws a fresh
    uniform value.  Correlation creates many-to-many join patterns that make
    the intermediate-size differences between naive joins and
    semijoin-reduced plans visible in the benchmarks.
    """
    schema = (
        attributes
        if isinstance(attributes, RelationSchema)
        else RelationSchema(attributes)
    )
    generator = resolve_rng(rng)
    columns = schema.sorted_attributes()
    rows = []
    for _ in range(tuple_count):
        row: List[int] = []
        for position, _ in enumerate(columns):
            if position > 0 and generator.random() < correlation:
                row.append(row[-1])
            else:
                row.append(generator.randrange(domain_size))
        rows.append(tuple(row))
    return Relation(schema, rows)


def random_ur_database(
    schema: DatabaseSchema,
    *,
    tuple_count: int = 20,
    domain_size: int = 3,
    rng: ResolvableRandom = None,
) -> DatabaseState:
    """A random UR database for ``schema`` (projections of a random universal relation)."""
    universal = random_universal_relation(
        schema.attributes,
        tuple_count=tuple_count,
        domain_size=domain_size,
        rng=rng,
    )
    return universal_database(schema, universal)


def random_database_state(
    schema: DatabaseSchema,
    *,
    tuple_count: int = 20,
    domain_size: int = 3,
    rng: ResolvableRandom = None,
) -> DatabaseState:
    """A random, generally **non**-UR database state for ``schema``.

    Each relation state is generated independently; useful for exercising the
    general-database statements of Section 6 and for showing where UR-only
    results fail on arbitrary states.
    """
    generator = resolve_rng(rng)
    relations = []
    for relation_schema in schema.relations:
        columns = relation_schema.sorted_attributes()
        rows = [
            tuple(generator.randrange(domain_size) for _ in columns)
            for _ in range(tuple_count)
        ]
        relations.append(Relation(relation_schema, rows))
    return DatabaseState(schema, relations)
