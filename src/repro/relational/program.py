"""Query programs made of join, project and semijoin statements (Section 6).

A *program* ``P`` is a finite sequence of statements, each creating a new
named relation:

* ``R_k := R_i ⋈ R_j``   (join statement)
* ``R_k := π_X(R_i)``    (project statement)
* ``R_k := R_i ⋉ R_j``   (semijoin statement)

``P`` *solves* ``(D, X)`` when, for every UR database for ``D``, the value of
the last statement equals ``π_X(⋈ D)``.

A program maps the original database schema and state to a new schema and
state: ``P(D)`` (the original relation schemas plus the schema of every
created relation) and ``P(D)`` on states.  The schema map ``P(D)`` is what
the tree-projection theorems of Section 6 quantify over (Theorems 6.1–6.4,
implemented in :mod:`repro.treeproj`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..exceptions import ProgramError, SchemaError
from ..hypergraph.generators import ResolvableRandom, resolve_rng
from ..hypergraph.schema import Attribute, DatabaseSchema, RelationSchema
from .database import DatabaseState
from .query import NaturalJoinQuery
from .relation import Relation
from .universal import random_universal_relation

__all__ = [
    "JoinStatement",
    "ProjectStatement",
    "SemijoinStatement",
    "Statement",
    "Program",
    "default_base_names",
]


def default_base_names(schema: DatabaseSchema) -> Tuple[str, ...]:
    """The default names given to the base relations: ``R0, R1, ...``."""
    return tuple(f"R{index}" for index in range(len(schema)))


@dataclass(frozen=True)
class JoinStatement:
    """``result := left ⋈ right``."""

    result: str
    left: str
    right: str

    def describe(self) -> str:
        """Human readable rendering of the statement."""
        return f"{self.result} := {self.left} ⋈ {self.right}"


@dataclass(frozen=True)
class ProjectStatement:
    """``result := π_attributes(source)``."""

    result: str
    source: str
    attributes: RelationSchema

    def __post_init__(self) -> None:
        if not isinstance(self.attributes, RelationSchema):
            object.__setattr__(self, "attributes", RelationSchema(self.attributes))

    def describe(self) -> str:
        """Human readable rendering of the statement."""
        return f"{self.result} := π_{self.attributes.to_notation()}({self.source})"


@dataclass(frozen=True)
class SemijoinStatement:
    """``result := left ⋉ right``."""

    result: str
    left: str
    right: str

    def describe(self) -> str:
        """Human readable rendering of the statement."""
        return f"{self.result} := {self.left} ⋉ {self.right}"


Statement = Union[JoinStatement, ProjectStatement, SemijoinStatement]


class Program:
    """A validated sequence of statements over a base database schema.

    On construction every statement is checked: operands must refer to a base
    relation or a previously created relation, result names must be fresh, and
    projection targets must be contained in the operand's schema.  The induced
    schema of every relation (base and created) is available via
    :meth:`schema_of` and the full schema map via :meth:`extended_schema`.
    """

    def __init__(
        self,
        base_schema: DatabaseSchema,
        statements: Iterable[Statement] = (),
        base_names: Optional[Sequence[str]] = None,
    ) -> None:
        self._base_schema = base_schema
        self._base_names = (
            tuple(base_names) if base_names is not None else default_base_names(base_schema)
        )
        if len(self._base_names) != len(base_schema):
            raise ProgramError(
                f"{len(self._base_names)} base names given for "
                f"{len(base_schema)} base relations"
            )
        if len(set(self._base_names)) != len(self._base_names):
            raise ProgramError("base relation names must be distinct")
        self._schemas: Dict[str, RelationSchema] = {
            name: relation
            for name, relation in zip(self._base_names, base_schema.relations)
        }
        self._statements: List[Statement] = []
        for statement in statements:
            self.append(statement)

    # -- construction -----------------------------------------------------------

    def append(self, statement: Statement) -> "Program":
        """Validate and append one statement; returns ``self`` for chaining."""
        if not isinstance(statement, (JoinStatement, ProjectStatement, SemijoinStatement)):
            raise ProgramError(f"unknown statement type {type(statement).__name__}")
        if statement.result in self._schemas:
            raise ProgramError(
                f"statement result {statement.result!r} is already defined"
            )
        if isinstance(statement, JoinStatement):
            left = self._schema_of_operand(statement.left)
            right = self._schema_of_operand(statement.right)
            self._schemas[statement.result] = left.union(right)
        elif isinstance(statement, SemijoinStatement):
            left = self._schema_of_operand(statement.left)
            self._schema_of_operand(statement.right)
            self._schemas[statement.result] = left
        elif isinstance(statement, ProjectStatement):
            source = self._schema_of_operand(statement.source)
            if not statement.attributes <= source:
                raise ProgramError(
                    f"cannot project {statement.source!r} "
                    f"({source.to_notation()}) onto {statement.attributes.to_notation()}"
                )
            self._schemas[statement.result] = statement.attributes
        else:
            raise ProgramError(f"unknown statement type {type(statement).__name__}")
        self._statements.append(statement)
        return self

    def join(self, result: str, left: str, right: str) -> "Program":
        """Append a join statement (fluent helper)."""
        return self.append(JoinStatement(result=result, left=left, right=right))

    def product(self, result: str, left: str, right: str) -> "Program":
        """Alias of :meth:`join` (a join of attribute-disjoint relations)."""
        return self.join(result, left, right)

    def project(
        self, result: str, source: str, attributes: Union[RelationSchema, Iterable[Attribute]]
    ) -> "Program":
        """Append a project statement (fluent helper)."""
        return self.append(
            ProjectStatement(result=result, source=source, attributes=RelationSchema(attributes))
        )

    def semijoin(self, result: str, left: str, right: str) -> "Program":
        """Append a semijoin statement (fluent helper)."""
        return self.append(SemijoinStatement(result=result, left=left, right=right))

    def _schema_of_operand(self, name: str) -> RelationSchema:
        try:
            return self._schemas[name]
        except KeyError:
            raise ProgramError(f"statement refers to undefined relation {name!r}") from None

    # -- inspection ----------------------------------------------------------------

    @property
    def base_schema(self) -> DatabaseSchema:
        """The database schema the program runs against."""
        return self._base_schema

    @property
    def base_names(self) -> Tuple[str, ...]:
        """The names of the base relations, aligned with the base schema."""
        return self._base_names

    @property
    def statements(self) -> Tuple[Statement, ...]:
        """The statements in execution order."""
        return tuple(self._statements)

    def __len__(self) -> int:
        return len(self._statements)

    def created_names(self) -> Tuple[str, ...]:
        """Names of the relations created by the program, in creation order."""
        return tuple(statement.result for statement in self._statements)

    def schema_of(self, name: str) -> RelationSchema:
        """The relation schema of a base or created relation."""
        return self._schema_of_operand(name)

    def result_name(self) -> str:
        """The name of the relation produced by the last statement.

        An empty program has no result; asking for it is an error.
        """
        if not self._statements:
            raise ProgramError("an empty program has no result relation")
        return self._statements[-1].result

    def extended_schema(self) -> DatabaseSchema:
        """``P(D)``: the base schema plus the schema of every created relation."""
        created = [self._schemas[name] for name in self.created_names()]
        return DatabaseSchema(tuple(self._base_schema.relations) + tuple(created))

    def statement_count(self) -> Dict[str, int]:
        """How many statements of each kind the program contains."""
        counts = {"join": 0, "project": 0, "semijoin": 0}
        for statement in self._statements:
            if isinstance(statement, JoinStatement):
                counts["join"] += 1
            elif isinstance(statement, ProjectStatement):
                counts["project"] += 1
            else:
                counts["semijoin"] += 1
        return counts

    def describe(self) -> str:
        """The whole program as numbered, human readable lines."""
        lines = [
            f"-- base relations: "
            + ", ".join(
                f"{name}({relation.to_notation()})"
                for name, relation in zip(self._base_names, self._base_schema.relations)
            )
        ]
        for index, statement in enumerate(self._statements):
            lines.append(f"{index:3d}: {statement.describe()}")
        return "\n".join(lines)

    # -- execution ----------------------------------------------------------------------

    def execute(self, state: DatabaseState) -> Dict[str, Relation]:
        """Run the program over a state for the base schema.

        Returns the environment mapping every (base and created) relation name
        to its value; the query answer, if the program computes one, is the
        value of ``self.result_name()``.
        """
        if state.schema != self._base_schema:
            raise ProgramError("the state is for a different schema than the program")
        environment: Dict[str, Relation] = {
            name: relation for name, relation in zip(self._base_names, state.relations)
        }
        for statement in self._statements:
            if isinstance(statement, JoinStatement):
                value = environment[statement.left].natural_join(environment[statement.right])
            elif isinstance(statement, SemijoinStatement):
                value = environment[statement.left].semijoin(environment[statement.right])
            else:
                value = environment[statement.source].project(statement.attributes)
            environment[statement.result] = value
        return environment

    def run(self, state: DatabaseState) -> Relation:
        """Execute and return the value of the last statement."""
        return self.execute(state)[self.result_name()]

    # -- does the program solve a query? -----------------------------------------------

    def solves_on(self, query: NaturalJoinQuery, state: DatabaseState) -> bool:
        """Whether the program's result equals the query answer on one state."""
        return self.run(state) == query.evaluate(state)

    def solves_empirically(
        self,
        target: Union[RelationSchema, Iterable[Attribute]],
        *,
        trials: int = 20,
        tuple_count: int = 12,
        domain_size: int = 3,
        rng: ResolvableRandom = None,
        universal: bool = True,
    ) -> Optional[DatabaseState]:
        """Empirically test whether the program solves ``(D, X)``.

        Samples random UR databases (or arbitrary states when
        ``universal=False``) and compares the program's result with the query
        answer.  Returns a counterexample state, or ``None`` when all trials
        agreed.  Agreement on samples is evidence, not proof — the exact
        criteria are the tree-projection theorems.
        """
        from .database import universal_database
        from .universal import random_database_state

        query = NaturalJoinQuery(self._base_schema, RelationSchema(target))
        generator = resolve_rng(rng)
        for _ in range(trials):
            if universal:
                seed = random_universal_relation(
                    self._base_schema.attributes,
                    tuple_count=tuple_count,
                    domain_size=domain_size,
                    rng=generator,
                )
                state = universal_database(self._base_schema, seed)
            else:
                state = random_database_state(
                    self._base_schema,
                    tuple_count=tuple_count,
                    domain_size=domain_size,
                    rng=generator,
                )
            if not self.solves_on(query, state):
                return state
        return None
