"""Semijoin full reducers and Yannakakis' algorithm for tree schemas.

The payoff of the paper's tree/cyclic dichotomy is query processing: over a
tree schema, ``π_X(⋈ D)`` can be computed with a linear number of semijoins
and joins whose intermediate results never exceed (input + output) size
(Yannakakis, VLDB 1981; Bernstein & Chiu).  This module implements:

* :func:`full_reducer_semijoins` — the semijoin program (leaf-to-root then
  root-to-leaf passes over a qual tree) that makes every relation state
  globally consistent;
* :func:`full_reduce` — apply that program to a database state;
* :func:`yannakakis` — the full algorithm: full reduction followed by a
  bottom-up join with early projection;
* :func:`naive_join_project` — the baseline the benchmarks compare against.

Both algorithms compute exactly ``π_X(⋈ D)`` for *any* database state (UR or
not); the difference is intermediate-result size and running time, which the
benchmarks measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import NotATreeSchemaError, SchemaError
from ..hypergraph.join_tree import find_qual_tree
from ..hypergraph.qual_graph import QualGraph
from ..hypergraph.schema import DatabaseSchema, RelationSchema
from .database import DatabaseState
from .relation import Relation

__all__ = [
    "SemijoinStep",
    "rooted_orientation",
    "full_reducer_semijoins",
    "full_reduce",
    "YannakakisRun",
    "yannakakis",
    "naive_join_project",
]


@dataclass(frozen=True)
class SemijoinStep:
    """One semijoin ``target := target ⋉ source`` over relation indices."""

    target: int
    source: int

    def describe(self) -> str:
        """Human readable description of the step."""
        return f"R{self.target} := R{self.target} ⋉ R{self.source}"


def rooted_orientation(
    tree: QualGraph, root: int = 0
) -> Tuple[Tuple[int, ...], Dict[int, Optional[int]]]:
    """Orient a qual tree from ``root``: returns a pre-order and a parent map."""
    adjacency = tree.adjacency()
    order: List[int] = []
    parent: Dict[int, Optional[int]] = {root: None}
    stack = [root]
    seen = {root}
    while stack:
        node = stack.pop()
        order.append(node)
        for neighbour in sorted(adjacency[node], reverse=True):
            if neighbour not in seen:
                seen.add(neighbour)
                parent[neighbour] = node
                stack.append(neighbour)
    if len(order) != len(tree.nodes):
        raise SchemaError("the qual tree is not connected")
    return tuple(order), parent


def full_reducer_semijoins(
    schema: DatabaseSchema,
    *,
    tree: Optional[QualGraph] = None,
    root: int = 0,
) -> Tuple[SemijoinStep, ...]:
    """The full-reducer semijoin program for a tree schema.

    Leaf-to-root pass (each parent semijoined by each child, children first)
    followed by a root-to-leaf pass (each child semijoined by its parent);
    ``2·(|D| - 1)`` semijoins in total.  Raises
    :class:`~repro.exceptions.NotATreeSchemaError` on cyclic schemas.
    """
    if len(schema) == 0:
        return ()
    if tree is None:
        tree = find_qual_tree(schema)
        if tree is None:
            raise NotATreeSchemaError(
                "full reducers exist exactly for tree schemas; the schema is cyclic"
            )
    order, parent = rooted_orientation(tree, root=root)
    steps: List[SemijoinStep] = []
    for node in reversed(order):
        mother = parent[node]
        if mother is not None:
            steps.append(SemijoinStep(target=mother, source=node))
    for node in order:
        mother = parent[node]
        if mother is not None:
            steps.append(SemijoinStep(target=node, source=mother))
    return tuple(steps)


def full_reduce(
    state: DatabaseState,
    *,
    tree: Optional[QualGraph] = None,
    root: int = 0,
) -> DatabaseState:
    """Apply the full reducer to a state over a tree schema.

    Afterwards every relation state equals the projection of the global join
    onto its schema (global consistency).

    Each tree edge is semijoined across twice (leaf-to-root, then
    root-to-leaf) on the same shared attributes; the hash indexes that
    :meth:`~repro.relational.relation.Relation.key_index` caches per instance
    are therefore shared between the two passes instead of being rebuilt, and
    semijoins that drop no rows return the (already indexed) input unchanged.
    """
    steps = full_reducer_semijoins(state.schema, tree=tree, root=root)
    relations = list(state.relations)
    for step in steps:
        relations[step.target] = relations[step.target].semijoin(relations[step.source])
    return DatabaseState(state.schema, relations)


def _subtree_intervals(
    order: Sequence[int], parent: Dict[int, Optional[int]]
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Preorder index and subtree extent per node, in one traversal.

    ``order`` is a DFS preorder, so the subtree of ``node`` occupies the
    contiguous index interval ``[tin[node], tout[node]]``.  This lets the
    bottom-up join decide "does attribute ``a`` occur outside this subtree?"
    in O(1) from the attribute's min/max preorder extent, replacing the
    per-node descendant recomputation that made the pipeline quadratic.
    """
    tin = {node: position for position, node in enumerate(order)}
    tout = dict(tin)
    for node in reversed(order):
        mother = parent[node]
        if mother is not None and tout[node] > tout[mother]:
            tout[mother] = tout[node]
    return tin, tout


@dataclass(frozen=True)
class YannakakisRun:
    """The result of running Yannakakis' algorithm, with size accounting.

    ``max_intermediate_size`` is the largest relation materialized at any
    point (after semijoins, during the bottom-up joins, and the final
    result) — the quantity whose boundedness distinguishes tree from cyclic
    query processing.
    """

    result: Relation
    semijoin_count: int
    join_count: int
    max_intermediate_size: int


def yannakakis(
    schema: DatabaseSchema,
    target: RelationSchema,
    state: DatabaseState,
    *,
    tree: Optional[QualGraph] = None,
    root: int = 0,
) -> YannakakisRun:
    """Compute ``π_X(⋈ D)`` over a tree schema via full reduction + guarded joins.

    After the full reducer, nodes are joined bottom-up along the qual tree;
    before each join the child is projected onto the target attributes plus
    the attributes that still occur outside its subtree (an O(1) preorder
    interval test), which is what keeps intermediate sizes polynomially
    bounded.
    """
    if not isinstance(target, RelationSchema):
        target = RelationSchema(target)
    if state.schema != schema:
        raise SchemaError("the state is for a different schema than the query")
    if not target <= schema.attributes:
        raise SchemaError("the target must be contained in U(D)")
    if len(schema) == 0:
        return YannakakisRun(
            result=Relation.nullary_true(),
            semijoin_count=0,
            join_count=0,
            max_intermediate_size=1,
        )
    if tree is None:
        tree = find_qual_tree(schema)
        if tree is None:
            raise NotATreeSchemaError(
                "Yannakakis' algorithm applies to tree schemas; the schema is cyclic"
            )

    order, parent = rooted_orientation(tree, root=root)
    reduced = full_reduce(state, tree=tree, root=root)
    relations: Dict[int, Relation] = {
        index: relation for index, relation in enumerate(reduced.relations)
    }
    semijoin_count = 2 * (len(schema) - 1) if len(schema) > 0 else 0
    max_intermediate = max((len(relation) for relation in relations.values()), default=0)
    join_count = 0

    # One rooted traversal precomputes, for every attribute, the preorder
    # extent of the nodes carrying it.  An attribute occurs outside the
    # subtree [tin, tout] of a node iff its extent sticks out of the interval.
    tin, tout = _subtree_intervals(order, parent)
    attr_min: Dict[str, int] = {}
    attr_max: Dict[str, int] = {}
    for node in order:
        position = tin[node]
        for attribute in schema[node].attributes:
            if attribute not in attr_min:
                attr_min[attribute] = attr_max[attribute] = position
            else:
                if position < attr_min[attribute]:
                    attr_min[attribute] = position
                if position > attr_max[attribute]:
                    attr_max[attribute] = position
    target_attributes = target.attributes

    # Bottom-up join with early projection: before joining a child into its
    # mother, project away the child attributes that neither the target nor
    # any node outside the child's subtree can still use.  (Those attributes
    # occur on no other join path, so projecting first is equivalent to
    # projecting the joined result and keeps the join itself narrow.)
    for node in reversed(order):
        mother = parent[node]
        if mother is None:
            continue
        child_relation = relations[node]
        low, high = tin[node], tout[node]
        keep = frozenset(
            attribute
            for attribute in child_relation.attributes
            if attribute in target_attributes
            or attr_min[attribute] < low
            or attr_max[attribute] > high
        )
        if keep != child_relation.attributes:
            child_relation = child_relation.project(RelationSchema(keep))
            max_intermediate = max(max_intermediate, len(child_relation))
        joined = relations[mother].natural_join(child_relation)
        join_count += 1
        max_intermediate = max(max_intermediate, len(joined))
        relations[mother] = joined

    final = relations[order[0]].project(
        RelationSchema(set(relations[order[0]].attributes) & set(target.attributes))
    )
    # When the target is spread over several nodes the root accumulated all of
    # it; when some target attribute is missing entirely the query target was
    # not contained in U(D) (rejected above).
    if final.schema != target:
        # The root may be missing target attributes only if they were
        # projected away before a join; the `keep` sets always retain target
        # attributes, so this indicates an internal error.
        raise SchemaError(
            "internal error: Yannakakis result schema does not match the target"
        )
    max_intermediate = max(max_intermediate, len(final))
    return YannakakisRun(
        result=final,
        semijoin_count=semijoin_count,
        join_count=join_count,
        max_intermediate_size=max_intermediate,
    )


def naive_join_project(
    schema: DatabaseSchema, target: RelationSchema, state: DatabaseState
) -> Tuple[Relation, int]:
    """The baseline: join every relation in schema order, then project.

    The accumulator is seeded from the smallest relation state; apart from
    that seed the joins proceed in plain schema order, deliberately without
    any join-ordering optimization — this function stays the *unoptimized*
    baseline that the benchmarks compare :func:`yannakakis` against.  (The
    seed can even hurt: a smallest relation sharing no attributes with the
    schema-order prefix makes the first join a cartesian product.  That
    unplanned behavior is exactly what a baseline should exhibit.)

    Returns the result and the largest intermediate relation size, for
    comparison with :func:`yannakakis` in the benchmarks.
    """
    if not isinstance(target, RelationSchema):
        target = RelationSchema(target)
    relations = state.relations
    if not relations:
        return Relation.nullary_true().project(RelationSchema(())), 0
    seed = min(range(len(relations)), key=lambda index: len(relations[index]))
    current = relations[seed]
    max_intermediate = len(current)
    for index, relation in enumerate(relations):
        if index == seed:
            continue
        current = current.natural_join(relation)
        max_intermediate = max(max_intermediate, len(current))
    result = current.project(target)
    max_intermediate = max(max_intermediate, len(result))
    return result, max_intermediate
