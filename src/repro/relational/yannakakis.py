"""Semijoin full reducers and Yannakakis' algorithm for tree schemas.

The payoff of the paper's tree/cyclic dichotomy is query processing: over a
tree schema, ``π_X(⋈ D)`` can be computed with a linear number of semijoins
and joins whose intermediate results never exceed (input + output) size
(Yannakakis, VLDB 1981; Bernstein & Chiu).  This module implements:

* :func:`full_reducer_semijoins` — the semijoin program (leaf-to-root then
  root-to-leaf passes over a qual tree) that makes every relation state
  globally consistent;
* :func:`full_reduce` — apply that program to a database state;
* :func:`yannakakis` — the full algorithm: full reduction followed by a
  bottom-up join with early projection (a wrapper over the engine façade's
  cached :class:`~repro.engine.prepared.PreparedQuery` plans);
* :func:`naive_join_project` — the baseline the benchmarks compare against.

Both algorithms compute exactly ``π_X(⋈ D)`` for *any* database state (UR or
not); the difference is intermediate-result size and running time, which the
benchmarks measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..exceptions import NotATreeSchemaError, SchemaError
from ..hypergraph.qual_graph import QualGraph
from ..hypergraph.schema import DatabaseSchema, RelationSchema
from .database import DatabaseState
from .relation import Relation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (compiled imports us)
    from .compiled import ExecutionStats

__all__ = [
    "SemijoinStep",
    "rooted_orientation",
    "full_reducer_semijoins",
    "full_reduce",
    "YannakakisRun",
    "yannakakis",
    "naive_join_project",
]


@dataclass(frozen=True)
class SemijoinStep:
    """One semijoin ``target := target ⋉ source`` over relation indices."""

    target: int
    source: int

    def describe(self) -> str:
        """Human readable description of the step."""
        return f"R{self.target} := R{self.target} ⋉ R{self.source}"


def rooted_orientation(
    tree: QualGraph, root: int = 0
) -> Tuple[Tuple[int, ...], Dict[int, Optional[int]]]:
    """Orient a qual tree from ``root``: returns a pre-order and a parent map."""
    adjacency = tree.adjacency()
    order: List[int] = []
    parent: Dict[int, Optional[int]] = {root: None}
    stack = [root]
    seen = {root}
    while stack:
        node = stack.pop()
        order.append(node)
        for neighbour in sorted(adjacency[node], reverse=True):
            if neighbour not in seen:
                seen.add(neighbour)
                parent[neighbour] = node
                stack.append(neighbour)
    if len(order) != len(tree.nodes):
        raise SchemaError("the qual tree is not connected")
    return tuple(order), parent


def full_reducer_semijoins(
    schema: DatabaseSchema,
    *,
    tree: Optional[QualGraph] = None,
    root: int = 0,
) -> Tuple[SemijoinStep, ...]:
    """The full-reducer semijoin program for a tree schema.

    Leaf-to-root pass (each parent semijoined by each child, children first)
    followed by a root-to-leaf pass (each child semijoined by its parent);
    ``2·(|D| - 1)`` semijoins in total.  Raises
    :class:`~repro.exceptions.NotATreeSchemaError` on cyclic schemas.
    """
    if len(schema) == 0:
        return ()
    if tree is None:
        from ..engine.analysis import analyze  # deferred: the engine sits above us

        tree = analyze(schema).qual_tree
        if tree is None:
            raise NotATreeSchemaError(
                "full reducers exist exactly for tree schemas; the schema is cyclic"
            )
    order, parent = rooted_orientation(tree, root=root)
    steps: List[SemijoinStep] = []
    for node in reversed(order):
        mother = parent[node]
        if mother is not None:
            steps.append(SemijoinStep(target=mother, source=node))
    for node in order:
        mother = parent[node]
        if mother is not None:
            steps.append(SemijoinStep(target=node, source=mother))
    return tuple(steps)


def full_reduce(
    state: DatabaseState,
    *,
    tree: Optional[QualGraph] = None,
    root: int = 0,
) -> DatabaseState:
    """Apply the full reducer to a state over a tree schema.

    Afterwards every relation state equals the projection of the global join
    onto its schema (global consistency).

    Each tree edge is semijoined across twice (leaf-to-root, then
    root-to-leaf) on the same shared attributes; the hash indexes that
    :meth:`~repro.relational.relation.Relation.key_index` caches per instance
    are therefore shared between the two passes instead of being rebuilt, and
    semijoins that drop no rows return the (already indexed) input unchanged.
    """
    steps = full_reducer_semijoins(state.schema, tree=tree, root=root)
    relations = list(state.relations)
    for step in steps:
        relations[step.target] = relations[step.target].semijoin(relations[step.source])
    return DatabaseState(state.schema, relations)


@dataclass(frozen=True)
class YannakakisRun:
    """The result of running Yannakakis' algorithm, with size accounting.

    ``max_intermediate_size`` is the largest relation materialized at any
    point (after semijoins, during the bottom-up joins, and the final
    result) — the quantity whose boundedness distinguishes tree from cyclic
    query processing.

    ``backend`` reports which execution backend produced the run:
    ``"classic"`` object-tuple operators, the ``"compiled"`` interned-value
    kernel of :mod:`repro.relational.compiled`, or ``"parallel"`` when the
    run came out of the sharded process-pool layer of
    :mod:`repro.engine.parallel` (workers execute on the compiled kernel;
    the batch entry point re-tags their runs).  ``stats`` carries the
    compiled backend's instrumentation
    (:class:`~repro.relational.compiled.ExecutionStats`, shared by all runs
    of one batch; parallel batches share one merged
    :class:`~repro.engine.parallel.ParallelStats`) and is ``None`` on
    classic runs.  Neither field participates in equality: two runs that
    computed the same answer with the same accounting compare equal
    regardless of the backend.
    """

    result: Relation
    semijoin_count: int
    join_count: int
    max_intermediate_size: int
    backend: str = field(default="classic", compare=False)
    stats: Optional["ExecutionStats"] = field(  # noqa: F821 - see compiled.py
        default=None, compare=False, repr=False
    )


def yannakakis(
    schema: DatabaseSchema,
    target: RelationSchema,
    state: DatabaseState,
    *,
    tree: Optional[QualGraph] = None,
    root: int = 0,
    backend: str = "auto",
) -> YannakakisRun:
    """Compute ``π_X(⋈ D)`` over a tree schema via full reduction + guarded joins.

    This is now a thin wrapper over the engine façade: the plan (qual tree,
    semijoin program, join order, early-projection schedule) is compiled once
    per ``(schema, target, root)`` by
    :meth:`repro.engine.analysis.AnalyzedSchema.prepare` and cached, so
    repeated calls over different states only pay for execution.  Passing an
    explicit ``tree`` bypasses the cache and compiles a one-off plan for that
    tree.  ``backend`` selects the execution kernel (``"auto"`` routes to the
    interned-value compiled backend; ``"classic"`` forces the object-tuple
    operators) — the returned run's ``backend`` field reports which one ran.
    For bulk evaluation prefer
    ``analyze(schema).prepare(target).execute_many(states)``.
    """
    if not isinstance(target, RelationSchema):
        target = RelationSchema(target)
    if state.schema != schema:
        raise SchemaError("the state is for a different schema than the query")
    from ..engine.analysis import analyze  # deferred: the engine sits above us
    from ..engine.prepared import PreparedQuery

    if tree is not None:
        prepared = PreparedQuery(schema, target, tree=tree, root=root)
    else:
        prepared = analyze(schema).prepare(target, root=root)
    return prepared.execute(state, backend=backend)


def naive_join_project(
    schema: DatabaseSchema, target: RelationSchema, state: DatabaseState
) -> Tuple[Relation, int]:
    """The baseline: join every relation in schema order, then project.

    The accumulator is seeded from the smallest relation state; apart from
    that seed the joins proceed in plain schema order, deliberately without
    any join-ordering optimization — this function stays the *unoptimized*
    baseline that the benchmarks compare :func:`yannakakis` against.  (The
    seed can even hurt: a smallest relation sharing no attributes with the
    schema-order prefix makes the first join a cartesian product.  That
    unplanned behavior is exactly what a baseline should exhibit.)

    Returns the result and the largest intermediate relation size, for
    comparison with :func:`yannakakis` in the benchmarks.
    """
    if not isinstance(target, RelationSchema):
        target = RelationSchema(target)
    relations = state.relations
    if not relations:
        return Relation.nullary_true().project(RelationSchema(())), 0
    seed = min(range(len(relations)), key=lambda index: len(relations[index]))
    current = relations[seed]
    max_intermediate = len(current)
    for index, relation in enumerate(relations):
        if index == seed:
            continue
        current = current.natural_join(relation)
        max_intermediate = max(max_intermediate, len(current))
    result = current.project(target)
    max_intermediate = max(max_intermediate, len(result))
    return result, max_intermediate
