"""Array-backed vectorized execution backend for prepared queries.

The compiled backend (:mod:`repro.relational.compiled`) freezes the plan's
column algebra into positional step programs, but still *executes* them as
per-row Python: key sets are built by mapping ``itemgetter`` over tuple rows,
semijoins probe Python sets row by row, and general joins concatenate tuples
in a Python loop.  Since every intermediate is already a table of dense
``int`` codes, all of that is vector work in disguise.  This module runs the
same positional programs (:func:`repro.relational.compiled.plan_layout` is
shared verbatim, so the step semantics — and the stats lineages — are
identical by construction) over contiguous int64 **code arrays**:

* **Representation.**  Each relation slot encodes column-major into one
  contiguous int64 array per column (`numpy` when importable; the stdlib
  ``array`` module otherwise, so the dependency stays optional).  Composite
  join keys pack their columns into a C-contiguous ``(n, k)`` block viewed as
  a ``numpy`` void dtype — one fixed-width scalar per row — so every kernel
  below works uniformly for single- and multi-column keys.
* **Semijoins as membership masks.**  A key set is the sorted unique key
  array (``np.unique``); membership is a batch binary search
  (``searchsorted`` + one vectorized equality), and filtering is a boolean
  gather.  Subset checks (the identity-semijoin detection the compiled
  backend does with ``set <= set``) are the same mask, reduced with
  ``all()``.
* **Mother/child semijoin joins as gathers.**  The degenerate join shapes
  reuse the membership mask; early projections dedup via
  ``np.unique(return_index)`` over the projected key block and gather the
  kept columns once.
* **General joins as index cross products.**  The child groups by join key
  once per (slot, step) — stable argsort, boundary scan, pre-gathered "new"
  columns in sort order — and the probe expands mother rows with
  ``np.repeat``/``cumsum`` index arithmetic: output columns are built by two
  gathers (mother rows by repeat index, child parts by group-offset index)
  with no per-row Python at all.
* **Bulk interning.**  Dictionary-mode encode of an all-string column runs
  ``np.unique(return_inverse)`` over the raw values and only walks the
  *unique* values through the interning dictionary — the vectorized
  canonical-value mode the ROADMAP left open.  Warm columns still take the
  C-level ``map`` fast path shared with the compiled backend.

**Interning modes and promotion.**  Codes must live in int64 arrays, so the
compiled backend's ``_Stray`` wrappers (objects used as out-of-band codes in
identity-mode columns) have no representation here.  Instead, an attribute
pinned identity-mode that later meets a non-int value — or an int outside
int64 — is **promoted** to dictionary mode: the promotion drops every cached
slot encoding (their identity codes for that attribute are retired) and
restarts the in-progress state encode so a single state never mixes modes.
Promotions are monotone (identity → dict only) and surface as
:attr:`VectorizedPlan.mode_promotions`.  Numeric-tower equality
(``1 == 1.0 == True``) holds in dictionary mode for free: equal values are
equal dict keys, so they intern to one code.

**Epochs, caches, lifecycle.**  The plan mirrors the compiled backend's
bounded growth machinery one-for-one: per-slot LRU encoding caches with
miss-streak self-disable, a ``max_interned_values`` cap whose overflow opens
a new interner epoch at the next state-encode boundary, and per-state
decoders captured at encode time so in-flight states decode against the
epoch that minted their codes.

**No-numpy fallback.**  Without numpy, columns encode into ``array('q')``
buffers and execution zips them back to code-tuple rows, running the *exact*
compiled row program (:func:`repro.relational.compiled.execute_row_program`
over :func:`~repro.relational.compiled.build_row_ops` programs) — a
correctness-grade engine proving the dependency optional, equivalence-tested
on the same suite.

**Process boundaries.**  Like a ``CompiledPlan``, a ``VectorizedPlan`` never
crosses a process boundary; workers rebuild plans from ``PlanSpec``.  The
shm transport's raw-int64 blocks are *exactly* this backend's identity-mode
column encoding, so :func:`shm_attach_state` adopts a shard payload into
column arrays directly — one ``frombuffer`` + transpose copy per relation,
no ``DatabaseState`` detour — whenever every block is int64 and no attribute
has gone dictionary-mode.

The classic executor remains the property-test oracle
(``tests/relational/test_vectorized_equivalence.py``), with the compiled
backend as a second cross-check.
"""

from __future__ import annotations

import threading
from array import array
from collections import OrderedDict
from operator import itemgetter
from typing import Any, Dict, Iterable, List, Optional, Tuple

try:  # pragma: no cover - absence is exercised by the no-numpy test leg
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

from ..exceptions import SchemaError
from .compiled import (
    DEFAULT_MAX_INTERNED_VALUES,
    ExecutionStats,
    _JOIN_GENERAL,
    _JOIN_SEMI_CHILD,
    _JOIN_SEMI_MOTHER,
    _MODE_DICT,
    _MODE_IDENTITY,
    _SHM_INT64_HEADER,
    _SHM_KIND_INT64,
    _SHM_STATE_HEADER,
    _USE_DEFAULT_CAP,
    build_row_ops,
    execute_row_program,
    plan_layout,
)
from .database import DatabaseState
from .relation import Relation, pure_int_column
from .yannakakis import YannakakisRun

__all__ = [
    "VectorizedPlan",
    "VectorizedState",
    "numpy_available",
    "shm_attach_state",
    "vectorize_plan",
]


def numpy_available() -> bool:
    """True when the numpy kernel backs new :class:`VectorizedPlan` objects
    (``repro.relational.vectorized._np`` is the patch point for tests)."""
    return _np is not None


class _PromoteToDict(Exception):
    """Internal: an identity-mode column met a value int64 cannot carry.

    Raised inside a state encode and handled at the encode loop: the
    attribute's mode flips to dictionary, stale caches are dropped, and the
    state encode restarts from its first slot (modes only ever move
    identity → dict, so the restart loop terminates).
    """

    def __init__(self, attribute: Any) -> None:
        super().__init__(attribute)
        self.attribute = attribute


class _VecEncoding:
    """Encoded columns of one relation slot plus its reusable key indexes.

    ``columns`` holds one contiguous int64 code array per column (numpy
    arrays or ``array('q')`` buffers, matching the owning plan's engine) and
    ``n`` the row count — kept explicitly so zero-width (nullary) slots
    still know their cardinality.  ``keysets`` caches sorted-unique key
    arrays per key-position tuple (plain Python sets in the fallback
    engine); ``keyarrays`` caches packed per-row key arrays; ``buckets``
    caches per-join-step structures.  Encodings held in a batch cache are
    shared across states, so cached indexes amortize exactly like the
    compiled backend's.

    ``rows`` materializes code-tuple rows lazily — only the no-numpy
    fallback engine (which runs the compiled row program) ever touches it.
    """

    __slots__ = ("columns", "n", "keysets", "keyarrays", "buckets", "_rows")

    def __init__(self, columns: Tuple[Any, ...], n: int) -> None:
        self.columns = columns
        self.n = n
        self.keysets: Dict[Tuple[int, ...], Any] = {}
        self.keyarrays: Dict[Tuple[int, ...], Any] = {}
        self.buckets: Dict[int, Any] = {}
        self._rows: Optional[Tuple[Tuple[int, ...], ...]] = None

    @property
    def rows(self) -> Tuple[Tuple[int, ...], ...]:
        rows = self._rows
        if rows is None:
            if self.columns:
                rows = tuple(zip(*self.columns))
            else:
                rows = ((),) * self.n
            self._rows = rows
        return rows


# -- numpy kernels ---------------------------------------------------------------
#
# All helpers take the numpy module explicitly (the plan pins it at
# construction) and treat int64 1-D arrays and fixed-width void arrays
# uniformly: a void scalar is the packed bytes of one composite key row, and
# ``unique``/``searchsorted``/``argsort``/``==`` all operate on it like any
# scalar dtype.  Byte order of the void comparisons is not numeric order,
# but every kernel only needs a *consistent* total order on both sides.


def _build_key(np, columns, n: int, kpos: Tuple[int, ...]):
    """Pack the key columns at ``kpos`` into one array of per-row keys.

    Empty keys pack as zeros (every row shares one key — the degenerate
    cross-product/nonempty-test semantics the row engine gets from its
    ``lambda row: ()`` getter); single columns pass through; composite keys
    copy into a C-contiguous block viewed as a fixed-width void scalar.
    """
    if not kpos:
        return np.zeros(n, dtype=np.int64)
    if len(kpos) == 1:
        return columns[kpos[0]]
    k = len(kpos)
    block = np.empty((n, k), dtype=np.int64)
    for j, p in enumerate(kpos):
        block[:, j] = columns[p]
    return block.view(np.dtype((np.void, 8 * k))).ravel()


def _key_array(np, encoding: _VecEncoding, kpos: Tuple[int, ...]):
    """Per-row key array for an encoding, cached per key-position tuple."""
    cached = encoding.keyarrays.get(kpos)
    if cached is None:
        cached = _build_key(np, encoding.columns, encoding.n, kpos)
        encoding.keyarrays[kpos] = cached
    return cached


def _member_mask(np, sorted_unique, keys):
    """Boolean mask: which of ``keys`` occur in the sorted-unique array."""
    if len(sorted_unique) == 0:
        return np.zeros(len(keys), dtype=bool)
    index = sorted_unique.searchsorted(keys)
    np.minimum(index, len(sorted_unique) - 1, out=index)
    return sorted_unique[index] == keys


#: Dense-scatter dedup is allowed to allocate up to this many slots per row.
_DENSE_DEDUP_SLACK = 4


def _unique_rows_index(np, encoding: _VecEncoding, positions: Tuple[int, ...]):
    """Indices of one representative of each distinct row at ``positions``.

    Within-relation dedup needs no cross-relation key representation, so it
    avoids the void-dtype sort (memcmp comparisons — the slowest kernel in
    the module) entirely.  Columns pack into a single int64 by range
    compression; a small packed domain dedups by pure scatter (no sort at
    all), a larger one by a single typed ``np.unique``.  Domains too wide to
    pack fall back to iterative inverse recompression: one typed unique per
    column, with the running group id recompressed below ``n`` each step so
    the arithmetic never overflows.  Representatives are arbitrary (callers
    gather whole equal rows), and output order is irrelevant.
    """
    n = encoding.n
    if n == 0:
        return np.empty(0, dtype=np.intp)
    cols = [encoding.columns[p] for p in positions]
    lows = [int(col.min()) for col in cols]
    widths = [int(col.max()) - low + 1 for col, low in zip(cols, lows)]
    span = 1
    for width in widths:
        span *= width
    if span < 1 << 62:
        combined = cols[0] - lows[0]
        for col, low, width in zip(cols[1:], lows[1:], widths[1:]):
            combined = combined * width + (col - low)
        if span <= max(_DENSE_DEDUP_SLACK * n, 1 << 16):
            representative = np.full(span, -1, dtype=np.intp)
            representative[combined] = np.arange(n, dtype=np.intp)
            return representative[representative >= 0]
        _, index = np.unique(combined, return_index=True)
        return index
    inverse = None
    for col in cols:
        _, col_inverse = np.unique(col, return_inverse=True)
        col_inverse = col_inverse.astype(np.int64, copy=False)
        if inverse is None:
            inverse = col_inverse
        else:
            # Both factors are < n, so the product stays well inside int64.
            inverse = inverse * (int(col_inverse.max()) + 1) + col_inverse
            _, inverse = np.unique(inverse, return_inverse=True)
            inverse = inverse.astype(np.int64, copy=False)
    representative = np.empty(int(inverse.max()) + 1, dtype=np.intp)
    representative[inverse] = np.arange(n, dtype=np.intp)
    return representative


def _filtered(np, encoding: _VecEncoding, mask) -> _VecEncoding:
    """A fresh encoding keeping the masked rows of every column."""
    return _VecEncoding(
        tuple(column[mask] for column in encoding.columns),
        int(mask.sum()),
    )


def _empty_like(np, width: int) -> _VecEncoding:
    empty = np.empty(0, dtype=np.int64)
    return _VecEncoding(tuple(empty for _ in range(width)), 0)


def _general_bucket(np, child: _VecEncoding, op):
    """Group a general-join child by its key, early projection folded in.

    Returns ``(group_keys, starts, counts, new_sorted, proj_len)``:
    sorted-unique group keys, each group's start offset and length in stable
    key-sort order, the child's *new* columns pre-gathered into that order
    (so the probe's second gather indexes them directly), and the projected
    child's cardinality when the step carries an early projection.
    """
    if op.extract_pos is not None:
        # Composed projection: dedup the (key, new) extraction — which IS
        # the projected child — then split by the fixed key width.
        index = _unique_rows_index(np, child, op.extract_pos)
        extracted = [child.columns[p][index] for p in op.extract_pos]
        m = len(index)
        proj_len: Optional[int] = m
        key = _build_key(np, extracted, m, tuple(range(op.kw)))
        new_source = extracted[op.kw :]
    else:
        proj_len = None
        key = _key_array(np, child, op.ckey)
        new_source = [child.columns[p] for p in op.cnew_pos]
        m = child.n
    order = np.argsort(key, kind="stable")
    sorted_keys = key[order]
    if m:
        boundary = np.empty(m, dtype=bool)
        boundary[0] = True
        boundary[1:] = sorted_keys[1:] != sorted_keys[:-1]
        starts = np.flatnonzero(boundary)
        counts = np.diff(np.append(starts, m))
        group_keys = sorted_keys[starts]
    else:
        starts = np.empty(0, dtype=np.intp)
        counts = np.empty(0, dtype=np.int64)
        group_keys = sorted_keys
    new_sorted = tuple(column[order] for column in new_source)
    return group_keys, starts, counts, new_sorted, proj_len


class VectorizedPlan:
    """An array-program twin of :class:`~repro.relational.compiled.CompiledPlan`.

    Built once per :class:`~repro.engine.prepared.PreparedQuery` (see its
    ``vectorized`` property); owns the per-attribute interning dictionaries,
    the positional step layout shared with the compiled backend, and the
    same bounded per-slot encoding cache.  Execution semantics — results,
    semijoin/join counts, intermediate-size accounting, and the lineage
    attribution of :class:`~repro.relational.compiled.ExecutionStats` —
    match the compiled backend branch for branch.
    """

    _ENCODE_CACHE_MAX = 1024
    _CACHE_MISS_STREAK_MAX = 512

    __slots__ = (
        "schema",
        "target",
        "root",
        "slot_columns",
        "_np",
        "_modes",
        "_intern",
        "_values",
        "_encode_lock",
        "_semijoins",
        "_joins",
        "_final_positions",
        "_final_permutes",
        "_final_schema",
        "_final_columns",
        "_row_semijoin_ops",
        "_row_join_ops",
        "_row_final_get",
        "_slot_cache",
        "_cache_meta",
        "max_interned_values",
        "interner_epoch",
        "mode_promotions",
    )

    def __init__(
        self, prepared, *, max_interned_values: Optional[int] = _USE_DEFAULT_CAP
    ) -> None:
        schema = prepared.schema
        self.schema = schema
        self.target = prepared.target
        self.root = prepared.root
        #: The array engine is pinned at construction so a plan's behaviour
        #: never changes under it (tests patch the module global before
        #: building a plan to exercise the fallback).
        self._np = _np
        columns = tuple(
            relation.sorted_attributes() for relation in schema.relations
        )
        self.slot_columns = columns
        self._modes: Dict[Any, Optional[int]] = {
            attribute: None for attribute in schema.attributes
        }
        self._intern: Dict[Any, Dict[Any, int]] = {
            attribute: {} for attribute in schema.attributes
        }
        self._values: Dict[Any, List[Any]] = {
            attribute: [] for attribute in schema.attributes
        }
        self._encode_lock = threading.Lock()
        self._slot_cache: Tuple["OrderedDict[Relation, _VecEncoding]", ...] = tuple(
            OrderedDict() for _ in columns
        )
        self._cache_meta: List[List[int]] = [[0, 0] for _ in columns]
        self.max_interned_values: Optional[int] = (
            DEFAULT_MAX_INTERNED_VALUES
            if max_interned_values is _USE_DEFAULT_CAP
            else max_interned_values
        )
        self.interner_epoch = 0
        #: Identity→dictionary mode promotions forced by stray or oversized
        #: values arriving in a pinned identity column (see module notes).
        self.mode_promotions = 0

        layout = plan_layout(prepared)
        self._semijoins = layout.semijoins
        self._joins = layout.joins
        self._final_positions = layout.final_positions
        # Candidate for the final-projection permutation shortcut: the
        # positions are distinct and cover a prefix 0..k-1 (the execution
        # still checks they span the root's whole final layout).
        self._final_permutes = layout.final_positions is not None and sorted(
            layout.final_positions
        ) == list(range(len(layout.final_positions)))
        final = prepared.final_projection
        self._final_schema = final
        self._final_columns = final.sorted_attributes()
        if self._np is None:
            # Fallback engine: the compiled row program over zipped columns.
            (
                self._row_semijoin_ops,
                self._row_join_ops,
                self._row_final_get,
            ) = build_row_ops(layout)
        else:
            self._row_semijoin_ops = ()
            self._row_join_ops = ()
            self._row_final_get = None

    # -- encoding --------------------------------------------------------------

    def _int64_or_none(self, data):
        """Convert rows/column to an int64 array at C speed, or ``None``.

        Conversion without an explicit dtype lets numpy *classify* instead
        of coerce: pure native-int data lands exactly on int64, while every
        hazard the per-cell classifier guards against lands elsewhere —
        floats on float64 (never truncated), pure bools on bool, out-of-range
        ints on object (or an ``OverflowError``), strings on unicode, ragged
        or exotic values on object/``ValueError`` — and is rejected by the
        dtype/ndim check.  The one deliberate coarsening: a *mixed* int/bool
        column converts to int64, canonicalizing ``True``/``False`` onto
        ``1``/``0``.  That is equality-preserving (``True == 1`` across the
        numeric tower, and the dictionary mode of both backends already
        canonicalizes tower-equal values onto one representative), so
        results still compare equal to the classic oracle's.
        """
        np = self._np
        try:
            converted = np.asarray(data)
        except Exception:
            return None
        if converted.dtype == np.int64:
            return converted
        return None

    def _encode_dict_column(self, attribute: Any, column):
        """One dictionary-mode column as a contiguous int64 code array.

        Warm columns — every value already interned, the serving steady
        state on stable value domains — encode as one C-level ``map`` over
        the interning dictionary (the idiom shared with the compiled
        backend) and stay columnar: no zip back into row tuples.  A novel
        value falls through to the bulk path: for all-string columns,
        ``np.unique`` collapses the raw values at C speed and only the
        *unique* values touch the interning dictionary, so per-cell Python
        work is proportional to the distinct-value count, not the row count
        (the vectorized canonical-value mode).  Everything else takes the
        interning loop.
        """
        np = self._np
        intern_map = self._intern[attribute]
        values = self._values[attribute]
        if intern_map:
            try:
                codes = list(map(intern_map.__getitem__, column))
            except KeyError:
                pass
            else:
                if np is not None:
                    return np.asarray(codes, dtype=np.int64)
                return array("q", codes)
        # The type scan runs as C-level ``map``; mixed columns must never
        # reach ``np.asarray`` below, which would silently stringify them.
        if np is not None and set(map(type, column)) == {str}:
            uniques, inverse = np.unique(np.asarray(column), return_inverse=True)
            unique_codes = np.empty(len(uniques), dtype=np.int64)
            get = intern_map.get
            for position, value in enumerate(uniques.tolist()):
                code = get(value)
                if code is None:
                    code = len(values)
                    intern_map[value] = code
                    values.append(value)
                unique_codes[position] = code
            return unique_codes[inverse]
        get = intern_map.get
        codes = []
        append = codes.append
        for value in column:
            code = get(value)
            if code is None:
                code = len(values)
                intern_map[value] = code
                values.append(value)
            append(code)
        if np is not None:
            return np.asarray(codes, dtype=np.int64)
        return array("q", codes)

    def _encode_relation(self, slot: int, relation: Relation) -> _VecEncoding:
        """Encode one relation column-major into int64 code arrays."""
        rows = relation.rows
        attrs = self.slot_columns[slot]
        n = len(rows)
        np = self._np
        if not attrs:
            return _VecEncoding((), n)
        if not n:
            if np is not None:
                empty = np.empty(0, dtype=np.int64)
                return _VecEncoding(tuple(empty for _ in attrs), 0)
            return _VecEncoding(tuple(array("q") for _ in attrs), 0)
        rows_t = tuple(rows)
        modes = self._modes
        if np is not None:
            # Whole-slot identity fast path: one 2-D classify-and-convert
            # (see ``_int64_or_none``) + transpose copy turns the value rows
            # into contiguous per-column arrays — value == code in identity
            # mode, no per-cell Python at all.
            if all(modes[a] != _MODE_DICT for a in attrs):
                block = self._int64_or_none(rows_t)
                if block is not None and block.ndim == 2:
                    for a in attrs:
                        if modes[a] is None:
                            modes[a] = _MODE_IDENTITY
                    transposed = np.ascontiguousarray(block.T)
                    return _VecEncoding(
                        tuple(transposed[j] for j in range(len(attrs))), n
                    )
            # Columns extract via ``map(itemgetter, ...)`` pipelines instead
            # of a ``zip(*rows)`` transpose: star-unpacking tens of
            # thousands of rows costs more than one C pass per column, and
            # the warm dictionary path below never materializes the column
            # at all — extraction and interning fuse into nested C maps.
            coded: List[Any] = []
            for position, attribute in enumerate(attrs):
                getter = itemgetter(position)
                mode = modes[attribute]
                if mode == _MODE_DICT:
                    intern_map = self._intern[attribute]
                    if intern_map:
                        try:
                            codes = list(
                                map(intern_map.__getitem__, map(getter, rows_t))
                            )
                        except KeyError:
                            pass
                        else:
                            coded.append(np.asarray(codes, dtype=np.int64))
                            continue
                    coded.append(
                        self._encode_dict_column(
                            attribute, tuple(map(getter, rows_t))
                        )
                    )
                    continue
                column = tuple(map(getter, rows_t))
                converted = self._int64_or_none(column)
                if converted is not None and converted.ndim == 1:
                    if mode is None:
                        modes[attribute] = _MODE_IDENTITY
                    coded.append(converted)
                    continue
                if mode is None:
                    modes[attribute] = _MODE_DICT
                else:
                    # Pinned identity met a column int64 cannot carry.
                    raise _PromoteToDict(attribute)
                coded.append(self._encode_dict_column(attribute, column))
            return _VecEncoding(tuple(coded), n)
        coded = []
        for attribute, column in zip(attrs, zip(*rows_t)):
            mode = modes[attribute]
            if mode is None:
                mode = _MODE_IDENTITY if pure_int_column(column) else _MODE_DICT
                modes[attribute] = mode
            if mode == _MODE_IDENTITY:
                if not pure_int_column(column):
                    raise _PromoteToDict(attribute)
                try:
                    coded.append(array("q", column))
                except OverflowError:
                    raise _PromoteToDict(attribute) from None
                continue
            coded.append(self._encode_dict_column(attribute, column))
        return _VecEncoding(tuple(coded), n)

    def _decoders(self) -> Tuple[Optional[Any], ...]:
        """Per-final-column decoders for the *current* interner epoch.

        ``None`` for identity columns (no strays exist in this backend —
        they promote instead); dictionary columns index their epoch's value
        list.  Captured onto each :class:`VectorizedState` at encode time.
        """
        return tuple(
            self._values[attribute].__getitem__
            if self._modes[attribute] == _MODE_DICT
            else None
            for attribute in self._final_columns
        )

    def _encode_all_locked(self, state: DatabaseState, use_cache: bool):
        """One cache-assisted encode pass over every slot (lock held)."""
        encodings: List[_VecEncoding] = []
        encoded = cached_hits = 0
        for slot, relation in enumerate(state.relations):
            meta = self._cache_meta[slot]
            caching = use_cache and not meta[1]
            if caching:
                cache = self._slot_cache[slot]
                encoding = cache.get(relation)
                if encoding is not None:
                    cache.move_to_end(relation)
                    meta[0] = 0
                    cached_hits += 1
                    encodings.append(encoding)
                    continue
            encoding = self._encode_relation(slot, relation)
            encoded += 1
            if caching:
                cache = self._slot_cache[slot]
                cache[relation] = encoding
                if len(cache) > self._ENCODE_CACHE_MAX:
                    cache.popitem(last=False)
                meta[0] += 1
                if meta[0] > self._CACHE_MISS_STREAK_MAX:
                    meta[1] = 1
                    cache.clear()
            encodings.append(encoding)
        return encodings, encoded, cached_hits

    def encode_state(
        self,
        state: DatabaseState,
        *,
        use_cache: bool = True,
        stats: Optional[ExecutionStats] = None,
    ) -> "VectorizedState":
        """Encode a database state against this plan's interner.

        Mirrors :meth:`CompiledPlan.encode_state` (bounded per-slot caches,
        epoch rollover at the cap, captured decoders), plus the
        identity→dictionary promotion restart described in the module notes.
        Stats are committed only after a successful pass, so a restarted
        encode is not double-counted.
        """
        schema = state.schema
        if schema is not self.schema and schema != self.schema:
            raise SchemaError("the state is for a different schema than the query")
        with self._encode_lock:
            cap = self.max_interned_values
            if cap is not None and self.interned_value_count() > cap:
                self._open_interner_epoch_locked()
                if stats is not None:
                    stats.interner_resets += 1
            while True:
                try:
                    encodings, encoded, cached_hits = self._encode_all_locked(
                        state, use_cache
                    )
                    break
                except _PromoteToDict as promote:
                    self._modes[promote.attribute] = _MODE_DICT
                    self.mode_promotions += 1
                    # Cached encodings of slots containing the promoted
                    # attribute carry identity codes for it and must go; a
                    # slot without the attribute is untouched by the mode
                    # flip, so its cache (and future hits) survive.
                    for slot, columns in enumerate(self.slot_columns):
                        if promote.attribute in columns:
                            self._slot_cache[slot].clear()
            decoders = self._decoders()
        if stats is not None:
            stats.states += 1
            stats.encoded_slots += encoded
            stats.cached_slots += cached_hits
        return VectorizedState(self, state, tuple(encodings), decoders)

    # -- execution -------------------------------------------------------------

    def execute(
        self,
        vectorized_state: "VectorizedState",
        stats: Optional[ExecutionStats] = None,
    ) -> YannakakisRun:
        """Run the vector program against one encoded state.

        Semantics — result, semijoin/join counts and the intermediate-size
        accounting — match the classic and compiled executors exactly; the
        equivalence suite checks this on random schemas and states.
        """
        if vectorized_state.plan is not self:
            raise SchemaError("the vectorized state belongs to a different plan")
        if not self.slot_columns:
            return YannakakisRun(
                result=Relation.nullary_true(),
                semijoin_count=0,
                join_count=0,
                max_intermediate_size=1,
                backend="vectorized",
                stats=stats,
            )
        if self._np is not None:
            return self._execute_arrays(vectorized_state, stats)
        return self._execute_rows(vectorized_state, stats)

    def _execute_rows(
        self, vectorized_state: "VectorizedState", stats: Optional[ExecutionStats]
    ) -> YannakakisRun:
        """Fallback engine: the compiled row program over zipped columns."""
        final_rows, join_count, max_intermediate = execute_row_program(
            self._row_semijoin_ops,
            self._row_join_ops,
            self.root,
            self._row_final_get,
            list(vectorized_state.encodings),
            stats,
        )
        result = Relation.from_interned(
            self._final_schema,
            self._final_columns,
            final_rows,
            vectorized_state.decoders,
        )
        if len(result) > max_intermediate:
            max_intermediate = len(result)
        return YannakakisRun(
            result=result,
            semijoin_count=len(self._semijoins),
            join_count=join_count,
            max_intermediate_size=max_intermediate,
            backend="vectorized",
            stats=stats,
        )

    def _execute_arrays(
        self, vectorized_state: "VectorizedState", stats: Optional[ExecutionStats]
    ) -> YannakakisRun:
        np = self._np
        views: List[_VecEncoding] = list(vectorized_state.encodings)

        # Phase 1: the full-reducer semijoin program as membership masks.
        for op in self._semijoins:
            source_view = views[op.source]
            source_keys = source_view.keysets.get(op.skey)
            if source_keys is None:
                source_keys = np.unique(_key_array(np, source_view, op.skey))
                source_view.keysets[op.skey] = source_keys
                if stats is not None:
                    lineage = (op.source, op.skey)
                    builds = stats.keyset_builds
                    builds[lineage] = builds.get(lineage, 0) + 1
            target_view = views[op.target]
            target_keys = target_view.keysets.get(op.tkey)
            if target_keys is None:
                target_keys = np.unique(_key_array(np, target_view, op.tkey))
                target_view.keysets[op.tkey] = target_keys
                if stats is not None:
                    lineage = (op.target, op.tkey)
                    builds = stats.keyset_builds
                    builds[lineage] = builds.get(lineage, 0) + 1
            subset_mask = _member_mask(np, source_keys, target_keys)
            if bool(subset_mask.all()):
                if stats is not None:
                    stats.identity_semijoins += 1
                continue
            mask = _member_mask(
                np, source_keys, _key_array(np, target_view, op.tkey)
            )
            filtered = _filtered(np, target_view, mask)
            filtered.keysets[op.tkey] = target_keys[subset_mask]
            views[op.target] = filtered
            if stats is not None:
                stats.filtering_semijoins += 1
        max_intermediate = max((view.n for view in views), default=0)

        # Phase 2: the bottom-up join as gathers.
        join_count = 0
        for op in self._joins:
            child_view = views[op.node]
            mother_view = views[op.mother]
            join_count += 1
            if op.kind == _JOIN_SEMI_MOTHER:
                cached = child_view.buckets.get(op.tag)
                if cached is None:
                    # The (projected) child's columns are exactly the key,
                    # so its sorted-unique key array IS the projected child.
                    keys = np.unique(_key_array(np, child_view, op.ckey))
                    proj_len: Optional[int] = len(keys) if op.has_proj else None
                    child_view.buckets[op.tag] = (keys, proj_len)
                    if stats is not None:
                        lineage = (op.node, op.ckey)
                        builds = stats.bucket_builds
                        builds[lineage] = builds.get(lineage, 0) + 1
                else:
                    keys, proj_len = cached
                if proj_len is not None and proj_len > max_intermediate:
                    max_intermediate = proj_len
                # Identity detection keeps the mother's view object — and
                # with it every cached index a later step would rebuild.
                mother_keys = mother_view.keysets.get(op.mkey)
                if mother_keys is not None and bool(
                    _member_mask(np, keys, mother_keys).all()
                ):
                    joined = mother_view
                else:
                    mask = _member_mask(
                        np, keys, _key_array(np, mother_view, op.mkey)
                    )
                    if bool(mask.all()):
                        joined = mother_view
                    else:
                        joined = _filtered(np, mother_view, mask)
            elif op.kind == _JOIN_SEMI_CHILD:
                if op.proj_pos is not None:
                    cached = child_view.buckets.get(op.tag)
                    if cached is None:
                        index = _unique_rows_index(np, child_view, op.proj_pos)
                        projected = tuple(
                            child_view.columns[p][index] for p in op.proj_pos
                        )
                        cached = (projected, len(index))
                        child_view.buckets[op.tag] = cached
                        if stats is not None:
                            lineage = (op.node, op.ckey)
                            builds = stats.bucket_builds
                            builds[lineage] = builds.get(lineage, 0) + 1
                    child_columns, child_n = cached
                    if child_n > max_intermediate:
                        max_intermediate = child_n
                else:
                    child_columns, child_n = child_view.columns, child_view.n
                mother_keys = mother_view.keysets.get(op.mkey)
                if mother_keys is None:
                    mother_keys = np.unique(
                        _key_array(np, mother_view, op.mkey)
                    )
                    mother_view.keysets[op.mkey] = mother_keys
                    if stats is not None:
                        lineage = (op.mother, op.mkey)
                        builds = stats.keyset_builds
                        builds[lineage] = builds.get(lineage, 0) + 1
                child_key = _build_key(np, child_columns, child_n, op.ckey)
                mask = _member_mask(np, mother_keys, child_key)
                if op.proj_pos is None and bool(mask.all()):
                    joined = child_view
                else:
                    joined = _VecEncoding(
                        tuple(column[mask] for column in child_columns),
                        int(mask.sum()),
                    )
            else:
                cached = child_view.buckets.get(op.tag)
                if cached is None:
                    cached = _general_bucket(np, child_view, op)
                    child_view.buckets[op.tag] = cached
                    if stats is not None:
                        lineage = (op.node, op.ckey)
                        builds = stats.bucket_builds
                        builds[lineage] = builds.get(lineage, 0) + 1
                group_keys, starts, counts, new_sorted, proj_len = cached
                if proj_len is not None and proj_len > max_intermediate:
                    max_intermediate = proj_len
                mother_n = mother_view.n
                if mother_n == 0 or len(group_keys) == 0:
                    joined = _empty_like(
                        np, len(mother_view.columns) + len(new_sorted)
                    )
                else:
                    mother_key = _key_array(np, mother_view, op.mkey)
                    position = group_keys.searchsorted(mother_key)
                    np.minimum(position, len(group_keys) - 1, out=position)
                    match = group_keys[position] == mother_key
                    per_mother = np.where(match, counts[position], 0)
                    total = int(per_mother.sum())
                    if total == 0:
                        joined = _empty_like(
                            np, len(mother_view.columns) + len(new_sorted)
                        )
                    else:
                        # Expand: mother row index per output row, and the
                        # matched group's offsets into the key-sorted child.
                        mother_index = np.repeat(
                            np.arange(mother_n), per_mother
                        )
                        cumulative = np.cumsum(per_mother)
                        offsets = np.arange(total) - np.repeat(
                            cumulative - per_mother, per_mother
                        )
                        group_start = np.where(match, starts[position], 0)
                        child_index = np.repeat(group_start, per_mother) + offsets
                        joined = _VecEncoding(
                            tuple(
                                column[mother_index]
                                for column in mother_view.columns
                            )
                            + tuple(column[child_index] for column in new_sorted),
                            total,
                        )
            if joined.n > max_intermediate:
                max_intermediate = joined.n
            views[op.mother] = joined

        # Final projection + decode: the only value-level materialization
        # (and a bare ``tolist`` for pure identity-mode columns).
        root_view = views[self.root]
        final_positions = self._final_positions
        if final_positions is None:
            final_columns = root_view.columns
            final_n = root_view.n
        elif not final_positions:
            # Projection onto the nullary target relation.
            final_columns = ()
            final_n = 1 if root_view.n else 0
        elif self._final_permutes and len(final_positions) == len(
            root_view.columns
        ):
            # Pure column reorder: no column is dropped, so the root's rows
            # (distinct by construction) stay distinct — skip the dedup.
            final_columns = tuple(root_view.columns[p] for p in final_positions)
            final_n = root_view.n
        else:
            index = _unique_rows_index(np, root_view, final_positions)
            final_columns = tuple(
                root_view.columns[p][index] for p in final_positions
            )
            final_n = len(index)
        if not final_columns:
            rows = frozenset([()]) if final_n else frozenset()
        else:
            decoded = []
            for column, decoder in zip(final_columns, vectorized_state.decoders):
                cells = column.tolist()
                decoded.append(cells if decoder is None else list(map(decoder, cells)))
            rows = frozenset(zip(*decoded))
        result = Relation._from_trusted(
            self._final_schema, self._final_columns, rows
        )
        if len(result) > max_intermediate:
            max_intermediate = len(result)
        return YannakakisRun(
            result=result,
            semijoin_count=len(self._semijoins),
            join_count=join_count,
            max_intermediate_size=max_intermediate,
            backend="vectorized",
            stats=stats,
        )

    def execute_state(
        self, state: DatabaseState, stats: Optional[ExecutionStats] = None
    ) -> YannakakisRun:
        """Encode (cache-assisted) and execute one state."""
        return self.execute(self.encode_state(state, stats=stats), stats=stats)

    def execute_batch(
        self,
        states: Iterable[DatabaseState],
        stats: Optional[ExecutionStats] = None,
    ) -> List[YannakakisRun]:
        """Execute many states as one batch with shared instrumentation.

        Identical contract to :meth:`CompiledPlan.execute_batch`: shared
        interner and slot caches across the batch, repeated states executed
        once, one :class:`ExecutionStats` describing the whole batch
        (caller-supplied via ``stats`` when a wrapping plan needs to fold in
        its own accounting).
        """
        if stats is None:
            stats = ExecutionStats()
        runs: List[YannakakisRun] = []
        memo: Dict[DatabaseState, YannakakisRun] = {}
        for state in states:
            run = memo.get(state)
            if run is None:
                run = self.execute_state(state, stats=stats)
                memo[state] = run
            else:
                stats.deduped_states += 1
            runs.append(run)
        return runs

    # -- maintenance -----------------------------------------------------------

    def _open_interner_epoch_locked(self) -> None:
        """Rebuild the interner and retire every encoding of the old epoch.

        Same contract as the compiled backend's rollover: interning maps and
        value lists are *replaced* (never cleared in place) so in-flight
        states keep decoding against the retired epoch's intact lists, slot
        caches are dropped wholesale, and attribute modes — including past
        promotions — stay pinned.
        """
        self._intern = {attribute: {} for attribute in self._intern}
        self._values = {attribute: [] for attribute in self._values}
        for cache in self._slot_cache:
            cache.clear()
        for meta in self._cache_meta:
            meta[0] = 0
            meta[1] = 0
        self.interner_epoch += 1

    def cache_sizes(self) -> Tuple[int, ...]:
        """Cached encodings per slot (diagnostic)."""
        return tuple(len(cache) for cache in self._slot_cache)

    def clear_encode_cache(self) -> None:
        """Drop cached slot encodings and re-arm tripped slot caches (the
        interner is left intact)."""
        with self._encode_lock:
            for cache in self._slot_cache:
                cache.clear()
            for meta in self._cache_meta:
                meta[0] = 0
                meta[1] = 0

    def interned_value_count(self) -> int:
        """Total distinct dictionary-mode values interned (diagnostic).

        Identity-mode columns intern nothing in this backend — values that
        would have been strays promote the attribute instead.
        """
        return sum(len(intern_map) for intern_map in self._intern.values())

    def __repr__(self) -> str:  # pragma: no cover - trivial
        engine = "numpy" if self._np is not None else "array"
        return (
            f"VectorizedPlan(schema={self.schema.to_notation()!r}, "
            f"target={self.target.to_notation()!r}, engine={engine!r}, "
            f"semijoins={len(self._semijoins)}, joins={len(self._joins)})"
        )


class VectorizedState:
    """One database state encoded against a vectorized plan's interner.

    Holds one (possibly cache-shared) :class:`_VecEncoding` per relation
    slot plus the decoders of the interner epoch that minted its codes.
    ``state`` is the source :class:`DatabaseState`, or ``None`` for states
    adopted straight off the shm wire by :func:`shm_attach_state`.
    Immutable from the executor's point of view — execution replaces slot
    views instead of mutating them — so it can be executed any number of
    times.
    """

    __slots__ = ("plan", "state", "encodings", "decoders")

    def __init__(
        self,
        plan: VectorizedPlan,
        state: Optional[DatabaseState],
        encodings: Tuple[_VecEncoding, ...],
        decoders: Optional[Tuple[Optional[Any], ...]] = None,
    ) -> None:
        self.plan = plan
        self.state = state
        self.encodings = encodings
        self.decoders = plan._decoders() if decoders is None else decoders

    @classmethod
    def from_state(
        cls,
        plan: VectorizedPlan,
        state: DatabaseState,
        *,
        use_cache: bool = True,
        stats: Optional[ExecutionStats] = None,
    ) -> "VectorizedState":
        """Encode ``state`` for ``plan`` (the public entry point)."""
        return plan.encode_state(state, use_cache=use_cache, stats=stats)

    def execute(self, stats: Optional[ExecutionStats] = None) -> YannakakisRun:
        """Run the owning plan against this encoded state."""
        return self.plan.execute(self, stats=stats)

    def total_rows(self) -> int:
        """Total encoded tuples across all slots."""
        return sum(encoding.n for encoding in self.encodings)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        sizes = ", ".join(str(encoding.n) for encoding in self.encodings)
        return f"VectorizedState({self.plan.schema.to_notation()!r}, sizes=[{sizes}])"


def vectorize_plan(
    prepared, *, max_interned_values: Optional[int] = _USE_DEFAULT_CAP
) -> VectorizedPlan:
    """Build a :class:`VectorizedPlan` for a prepared query (see the module
    notes; normally reached through ``prepared.vectorized``)."""
    return VectorizedPlan(prepared, max_interned_values=max_interned_values)


def shm_attach_state(
    plan: VectorizedPlan, buffer
) -> Optional[VectorizedState]:
    """Adopt one shm wire payload straight into column arrays, if possible.

    The shm transport's int64 blocks (:func:`~repro.relational.compiled
    .shm_encode_state`) carry exactly this backend's identity-mode column
    encoding, so an all-int64 payload attaches as one ``frombuffer`` +
    transpose copy per relation — no ``DatabaseState`` reconstruction, no
    per-cell encode.  Returns ``None`` when the fast path does not apply
    (no numpy, any pickled block, or any attribute already promoted to
    dictionary mode) — the caller then falls back to
    :func:`~repro.relational.compiled.shm_decode_state` + a normal encode.

    The returned state carries ``state=None`` and bypasses the slot caches:
    it is a transient per-shard handoff, and the arrays are copied out of
    the segment so the caller may release it immediately.
    """
    np = plan._np
    if np is None:
        return None
    view = memoryview(buffer)
    (count,) = _SHM_STATE_HEADER.unpack_from(view, 0)
    if count != len(plan.slot_columns):
        raise ValueError(
            f"shm payload carries {count} relation(s) but the plan "
            f"expects {len(plan.slot_columns)}"
        )
    blocks: List[Tuple[int, int, int]] = []
    offset = _SHM_STATE_HEADER.size
    for attrs in plan.slot_columns:
        if view[offset] != _SHM_KIND_INT64:
            return None
        _, n_rows, width = _SHM_INT64_HEADER.unpack_from(view, offset)
        if width != len(attrs):
            return None
        offset += _SHM_INT64_HEADER.size
        blocks.append((offset, n_rows, width))
        offset += n_rows * width * 8
    with plan._encode_lock:
        for attrs in plan.slot_columns:
            for attribute in attrs:
                if plan._modes[attribute] == _MODE_DICT:
                    return None
        encodings: List[_VecEncoding] = []
        for block_offset, n_rows, width in blocks:
            if width:
                flat = np.frombuffer(
                    view, dtype=np.int64, count=n_rows * width, offset=block_offset
                )
                transposed = np.ascontiguousarray(flat.reshape(n_rows, width).T)
                encodings.append(
                    _VecEncoding(
                        tuple(transposed[j] for j in range(width)), n_rows
                    )
                )
            else:
                encodings.append(_VecEncoding((), n_rows))
        for attrs in plan.slot_columns:
            for attribute in attrs:
                if plan._modes[attribute] is None:
                    plan._modes[attribute] = _MODE_IDENTITY
        decoders = plan._decoders()
    return VectorizedState(plan, None, tuple(encodings), decoders)
