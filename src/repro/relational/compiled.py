"""Columnar, interned-value execution backend for prepared queries.

The classic executor (:meth:`repro.engine.prepared.PreparedQuery.execute`
with ``backend="classic"``) runs the full-reducer semijoin program and the
bottom-up join on :class:`~repro.relational.relation.Relation` objects: every
step re-derives shared attributes, sorts them, and hashes rows of arbitrary
Python values.  That per-step schema algebra is pure overhead on the
plan-once/execute-many serving path — the plan already fixes, for every step,
which columns are compared and which are kept.

This module compiles a :class:`~repro.engine.prepared.PreparedQuery` into a
:class:`CompiledPlan` that freezes *all* of that algebra ahead of time:

* **Interned values.**  Every attribute owns an interning dictionary mapping
  values to integer codes (shared across all states executed by the plan), so
  rows become tuples of ints — cheap to hash, cheap to compare — and the
  codes of a value agree across relations and states.  Columns of native
  Python ints take an identity fast path (the value *is* the code, as in
  columnar engines that skip dictionary-encoding integer columns), so integer
  data is encoded and decoded at near-zero cost; each attribute's mode
  (identity vs. dictionary) is pinned at first encounter and equality across
  the numeric tower (``1 == 1.0 == True``) is preserved by canonicalizing
  int-valued strays onto their int code.
* **Positional step programs.**  Each semijoin step is compiled to integer
  column positions and prebuilt ``itemgetter`` extractors; each join step is
  resolved at compile time to one of three shapes (mother-semijoin,
  child-semijoin, general hash join) by replaying the column algebra
  symbolically, so execution never touches attribute names.
* **Encode-time key indexes.**  :meth:`CompiledState.from_state` encodes each
  relation slot column-major into code tuples; key sets and join buckets are
  built at most once per (slot, key) and cached on the encoding, where every
  later step that touches the slot — both reducer passes and the join — finds
  them.  :meth:`CompiledPlan.execute_batch` additionally shares encodings
  across the states of a batch, so a slot whose rows repeat across states
  (e.g. fixed dimension tables under a changing fact table) is encoded and
  indexed once per batch, not once per state.

Intermediates never materialize object tuples; only the final result is
decoded back to a classic :class:`~repro.relational.relation.Relation`.
The classic operators remain in place as the property-test oracle
(``tests/relational/test_compiled_equivalence.py``), mirroring how
``repro.tableau.reference`` anchors the interned tableau kernel.

Lifecycle: a :class:`CompiledPlan` (and its interning dictionaries) lives as
long as the :class:`~repro.engine.prepared.PreparedQuery` that owns it.  The
dictionaries grow with the distinct values ever executed, but growth is
*bounded*: each plan carries a ``max_interned_values`` cap (default
:data:`DEFAULT_MAX_INTERNED_VALUES`), and when the interned-value count
overflows it, the next :meth:`CompiledPlan.encode_state` opens a new interner
*epoch* — the dictionary-mode interning maps and identity-mode stray tables
are rebuilt empty and every cached slot encoding (whose code tuples reference
the retired epoch's codes) is dropped.  Epochs are transparent to callers:
codes never leak across an epoch boundary because the stale encodings are
evicted with the epoch, and results are always decoded before the next state
is encoded.  The number of rebuilds is surfaced as
:attr:`CompiledPlan.interner_epoch` and, per batch, as
:attr:`ExecutionStats.interner_resets`.
:meth:`repro.engine.prepared.PreparedQuery.reset_compiled` remains the
heavier hammer (drops the whole plan).

Process boundaries: a ``CompiledPlan`` is **not** picklable by design — it is
built from closures and ``itemgetter`` programs, and its interner is a
process-local, mutable object.  The pickle-safe boundary is one level up:
:class:`repro.engine.parallel.PlanSpec` (ordered relation tuple, target,
root, backend knobs) crosses the process boundary and each worker rebuilds
and caches its own plan from the spec.  Per-worker interners are therefore
*independent*, which is sound because codes are a private encoding detail:
every answer a worker ships back is decoded to plain values first
(:meth:`Relation.from_interned` runs inside the worker, under that worker's
own interner), so integer codes never cross a process boundary and two
workers assigning different codes to the same value can never disagree about
results.
"""

from __future__ import annotations

import pickle
import struct
import threading
from array import array
from collections import OrderedDict
from operator import itemgetter
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import SchemaError
from ..hypergraph.schema import Attribute, DatabaseSchema
from .database import DatabaseState
from .relation import Relation, _tuple_getter, pure_int_column, pure_int_rows
from .yannakakis import YannakakisRun

__all__ = [
    "CompiledPlan",
    "CompiledState",
    "DEFAULT_MAX_INTERNED_VALUES",
    "ExecutionStats",
    "compile_plan",
    "plan_layout",
    "shm_encode_state",
    "shm_decode_state",
]

#: Default cap on distinct interned values per plan (dictionary-mode codes
#: plus identity-mode strays).  Overflow opens a new interner epoch at the
#: next state-encode boundary; see the module notes.  Sized so that ordinary
#: serving never trips it while a long-lived process churning through
#: unbounded string domains stays bounded.
DEFAULT_MAX_INTERNED_VALUES = 1 << 20

#: Sentinel distinguishing "use the default cap" from an explicit ``None``
#: (= unbounded) in :class:`CompiledPlan`'s constructor.
_USE_DEFAULT_CAP: Any = object()


def _key_getter(positions: Sequence[int]):
    """An extractor for join/semijoin keys over code rows.

    Unlike :func:`~repro.relational.relation._tuple_getter`, a single-column
    key is extracted as the *bare* int code (no 1-tuple wrapping): key sets
    and bucket dictionaries over bare ints hash faster and allocate nothing
    per row.  Both sides of every step use this consistently, so the key
    representations always agree.
    """
    if not positions:
        return lambda row: ()
    if len(positions) == 1:
        return itemgetter(positions[0])
    return itemgetter(*positions)


class ExecutionStats:
    """Instrumentation for one compiled execution or batch.

    ``keyset_builds`` and ``bucket_builds`` are lineage-attributed: they map
    ``(slot index, key column positions)`` to the number of times that index
    was actually constructed.  On a batch over states whose slot contents
    repeat (and are not filtered by the reducer), each count stays at 1 —
    the property the call-count tests pin down.
    """

    __slots__ = (
        "states",
        "deduped_states",
        "encoded_slots",
        "cached_slots",
        "keyset_builds",
        "bucket_builds",
        "identity_semijoins",
        "filtering_semijoins",
        "interner_resets",
    )

    def __init__(self) -> None:
        self.states = 0
        self.deduped_states = 0
        self.encoded_slots = 0
        self.cached_slots = 0
        self.keyset_builds: Dict[Tuple[int, Tuple[int, ...]], int] = {}
        self.bucket_builds: Dict[Tuple[int, Tuple[int, ...]], int] = {}
        self.identity_semijoins = 0
        self.filtering_semijoins = 0
        #: Interner epochs opened while this batch ran (``max_interned_values``
        #: overflows observed at state-encode boundaries).
        self.interner_resets = 0

    def absorb(self, other: "ExecutionStats") -> None:
        """Fold another stats object into this one (used by stats merging
        across shards/workers; lineage counts are summed per (slot, key))."""
        self.states += other.states
        self.deduped_states += other.deduped_states
        self.encoded_slots += other.encoded_slots
        self.cached_slots += other.cached_slots
        self.identity_semijoins += other.identity_semijoins
        self.filtering_semijoins += other.filtering_semijoins
        self.interner_resets += other.interner_resets
        for lineage, count in other.keyset_builds.items():
            self.keyset_builds[lineage] = self.keyset_builds.get(lineage, 0) + count
        for lineage, count in other.bucket_builds.items():
            self.bucket_builds[lineage] = self.bucket_builds.get(lineage, 0) + count

    def total_keyset_builds(self) -> int:
        """Total number of key-set constructions across all (slot, key) pairs."""
        return sum(self.keyset_builds.values())

    def total_bucket_builds(self) -> int:
        """Total number of join-bucket constructions across all (slot, key) pairs."""
        return sum(self.bucket_builds.values())

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ExecutionStats(states={self.states}, "
            f"encoded_slots={self.encoded_slots}, cached_slots={self.cached_slots}, "
            f"keyset_builds={self.total_keyset_builds()}, "
            f"bucket_builds={self.total_bucket_builds()})"
        )


class _Stray:
    """Code for a non-int value living in an identity-mode (int) column.

    Identity-mode codes are the int values themselves, so stray non-int
    values need codes from a disjoint space: wrapper objects hash and compare
    by identity, which is exactly value equality because strays are interned
    (one wrapper per distinct value).  Numeric strays equal to an int
    (``2.0``, ``True``) never reach here — they canonicalize onto the int
    itself so the numeric tower keeps joining correctly.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"_Stray({self.value!r})"


def _unwrap(code: Any) -> Any:
    """Decode one identity-mode cell (stray wrappers carry their value)."""
    return code.value if type(code) is _Stray else code


# Identity-mode codes that *are* native ints decode to themselves;
# ``Relation.from_interned`` uses this marker to skip the decode map on
# result columns the pure-int classifier clears (the attribute may carry
# strays plan-wide while this particular column does not).
_unwrap.identity_when_int = True  # type: ignore[attr-defined]


#: Per-attribute encoding modes, pinned the first time the attribute is seen.
_MODE_IDENTITY = 0  # codes are the int values themselves (+ stray wrappers)
_MODE_DICT = 1  # codes are dense ints assigned by the interning dictionary


class _Encoding:
    """Encoded rows of one relation slot plus its reusable key indexes.

    ``rows`` is a tuple of row tuples of int codes (one per column, in the
    slot's canonical column order).  ``keysets`` caches, per key-position
    tuple, the set of key tuples occurring in ``rows``; ``buckets`` caches,
    per join-step tag, grouped rows for the join probe.  Encodings held in a
    batch cache are shared across states, so cached indexes amortize across
    every state whose slot carries the same rows.
    """

    __slots__ = ("rows", "keysets", "buckets")

    def __init__(self, rows: Tuple[Tuple[int, ...], ...]) -> None:
        self.rows = rows
        self.keysets: Dict[Tuple[int, ...], set] = {}
        self.buckets: Dict[int, Tuple[Dict[Tuple[int, ...], tuple], Optional[int]]] = {}


class _SemijoinOp:
    """One compiled reducer step: filter ``target`` rows by ``source`` keys."""

    __slots__ = ("target", "source", "tkey", "skey", "tget", "sget")

    def __init__(
        self,
        target: int,
        source: int,
        tkey: Tuple[int, ...],
        skey: Tuple[int, ...],
    ) -> None:
        self.target = target
        self.source = source
        self.tkey = tkey
        self.skey = skey
        self.tget = _key_getter(tkey)
        self.sget = _key_getter(skey)


#: Join-step shapes resolved at compile time (see ``compile_plan``).
_JOIN_SEMI_MOTHER = 0  # child ⊆ mother: mother := mother ⋉ child
_JOIN_SEMI_CHILD = 1  # mother ⊆ child: mother := child ⋉ mother
_JOIN_GENERAL = 2  # hash join combining rows


class _JoinOp:
    """One compiled bottom-up join step (child merged into mother).

    The plan composes each step's early projection directly into the child
    extractors, so execution never materializes projected child relations:

    * mother-semijoin shape — ``cget`` reads the key straight off the
      *unprojected* child row; when the step had a projection, the key set
      *is* the projected child (``has_proj`` drives the size accounting).
    * general shape — ``extract`` reads the projected child columns in
      (shared key, new columns) order off the unprojected row; buckets map
      ``row[:kw]`` keys to ``row[kw:]`` parts and output rows are built as
      ``mother_row + part`` (intermediate layouts are chosen at compile time
      to make every join a plain tuple concatenation).
    * child-semijoin shape — projected child rows are the output, so this
      shape keeps an explicit ``proj_get``.
    """

    __slots__ = (
        "kind",
        "mother",
        "node",
        "tag",
        "proj_get",
        "has_proj",
        "mkey",
        "ckey",
        "mget",
        "cget",
        "cnew",
        "extract",
        "kw",
    )

    def __init__(
        self,
        kind: int,
        mother: int,
        node: int,
        tag: int,
        *,
        proj_get=None,
        has_proj: bool = False,
        mkey: Tuple[int, ...] = (),
        ckey: Tuple[int, ...] = (),
        cnew=None,
        extract=None,
        kw: int = 0,
    ) -> None:
        self.kind = kind
        self.mother = mother
        self.node = node
        self.tag = tag
        self.proj_get = proj_get
        self.has_proj = has_proj
        self.mkey = mkey
        self.ckey = ckey
        self.mget = _key_getter(mkey)
        self.cget = _key_getter(ckey)
        self.cnew = cnew
        self.extract = extract
        self.kw = kw


class _SemijoinLayout:
    """Position-only description of one reducer step (see :func:`plan_layout`)."""

    __slots__ = ("target", "source", "tkey", "skey")

    def __init__(
        self,
        target: int,
        source: int,
        tkey: Tuple[int, ...],
        skey: Tuple[int, ...],
    ) -> None:
        self.target = target
        self.source = source
        self.tkey = tkey
        self.skey = skey


class _JoinLayout:
    """Position-only description of one join step (see :func:`plan_layout`).

    ``proj_pos`` (child-semijoin shape), ``extract_pos`` and ``cnew_pos``
    (general shape) carry the column positions the compiled backend turns
    into ``itemgetter`` programs; ``None`` marks a position program the shape
    does not use.  ``ckey`` follows the compiled convention: positions in the
    *unprojected* child row for the mother-semijoin shape, positions in the
    projected child layout otherwise (the pair also keys stats lineages).
    """

    __slots__ = (
        "kind",
        "mother",
        "node",
        "tag",
        "has_proj",
        "mkey",
        "ckey",
        "kw",
        "proj_pos",
        "extract_pos",
        "cnew_pos",
    )

    def __init__(
        self,
        kind: int,
        mother: int,
        node: int,
        tag: int,
        *,
        has_proj: bool = False,
        mkey: Tuple[int, ...] = (),
        ckey: Tuple[int, ...] = (),
        kw: int = 0,
        proj_pos: Optional[Tuple[int, ...]] = None,
        extract_pos: Optional[Tuple[int, ...]] = None,
        cnew_pos: Optional[Tuple[int, ...]] = None,
    ) -> None:
        self.kind = kind
        self.mother = mother
        self.node = node
        self.tag = tag
        self.has_proj = has_proj
        self.mkey = mkey
        self.ckey = ckey
        self.kw = kw
        self.proj_pos = proj_pos
        self.extract_pos = extract_pos
        self.cnew_pos = cnew_pos


class _PlanLayout:
    """The fully positional step program shared by the execution backends.

    ``final_positions`` is ``None`` when the root's final layout already
    matches the target's canonical column order (projection is a no-op).
    """

    __slots__ = ("semijoins", "joins", "final_positions")

    def __init__(
        self,
        semijoins: Tuple[_SemijoinLayout, ...],
        joins: Tuple[_JoinLayout, ...],
        final_positions: Optional[Tuple[int, ...]],
    ) -> None:
        self.semijoins = semijoins
        self.joins = joins
        self.final_positions = final_positions


def plan_layout(prepared) -> _PlanLayout:
    """Replay the plan's column algebra symbolically into a positional layout.

    The columns every slot carries at each join step are a function of the
    plan alone (the same recurrence :class:`~repro.engine.prepared
    .PreparedQuery` uses to place its early projections), so the shape of
    every join — semijoin degeneration included — is decided here, once.
    Intermediate column layouts are *not* kept sorted: a general join's
    output layout is the mother's layout followed by the child's new
    columns, so the execution-time combine is a bare concatenation and only
    the final projection re-establishes the canonical order.

    Both the compiled (tuple-program) and vectorized (array-program)
    backends consume this layout, which is what keeps their step semantics
    — and their stats lineages — identical by construction.
    """
    schema = prepared.schema
    columns: Tuple[Tuple[Attribute, ...], ...] = tuple(
        relation.sorted_attributes() for relation in schema.relations
    )
    positions = tuple(
        {column: index for index, column in enumerate(cols)} for cols in columns
    )
    semijoins: List[_SemijoinLayout] = []
    for step in prepared.semijoin_steps:
        tcols, scols = columns[step.target], columns[step.source]
        shared = sorted(set(tcols) & set(scols))
        semijoins.append(
            _SemijoinLayout(
                step.target,
                step.source,
                tuple(positions[step.target][a] for a in shared),
                tuple(positions[step.source][a] for a in shared),
            )
        )

    current: Dict[int, Tuple[Attribute, ...]] = {
        index: cols for index, cols in enumerate(columns)
    }
    joins: List[_JoinLayout] = []
    for tag, step in enumerate(prepared.join_steps):
        orig_child_cols = current[step.node]
        orig_positions = {c: i for i, c in enumerate(orig_child_cols)}
        child_cols = orig_child_cols
        has_proj = step.projection is not None
        if has_proj:
            child_cols = step.projection.sorted_attributes()
        mother_cols = current[step.mother]
        mother_positions = {c: i for i, c in enumerate(mother_cols)}
        mother_set = set(mother_cols)
        shared = sorted(mother_set & set(child_cols))
        mkey = tuple(mother_positions[c] for c in shared)
        if len(shared) == len(child_cols):
            # Projection (if any) keeps exactly the key columns, so the key
            # set read off the unprojected rows IS the projected child; no
            # materialization needed.
            joins.append(
                _JoinLayout(
                    _JOIN_SEMI_MOTHER,
                    step.mother,
                    step.node,
                    tag,
                    has_proj=has_proj,
                    mkey=mkey,
                    ckey=tuple(orig_positions[c] for c in shared),
                )
            )
            current[step.mother] = mother_cols
            continue
        child_positions = {c: i for i, c in enumerate(child_cols)}
        ckey = tuple(child_positions[c] for c in shared)
        if len(shared) == len(mother_cols):
            proj_pos = (
                tuple(orig_positions[c] for c in child_cols) if has_proj else None
            )
            joins.append(
                _JoinLayout(
                    _JOIN_SEMI_CHILD,
                    step.mother,
                    step.node,
                    tag,
                    has_proj=has_proj,
                    mkey=mkey,
                    ckey=ckey,
                    proj_pos=proj_pos,
                )
            )
            current[step.mother] = child_cols
            continue
        new_cols = tuple(c for c in child_cols if c not in mother_set)
        if has_proj:
            # One pass extracts (key, new) in that order off the unprojected
            # rows; since key ∪ new covers every projected column, deduping
            # the extraction IS the projection.
            extract_pos: Optional[Tuple[int, ...]] = tuple(
                [orig_positions[c] for c in shared]
                + [orig_positions[c] for c in new_cols]
            )
            cnew_pos: Optional[Tuple[int, ...]] = None
        else:
            extract_pos = None
            cnew_pos = tuple(child_positions[c] for c in new_cols)
        joins.append(
            _JoinLayout(
                _JOIN_GENERAL,
                step.mother,
                step.node,
                tag,
                has_proj=has_proj,
                mkey=mkey,
                ckey=ckey,
                kw=len(shared),
                extract_pos=extract_pos,
                cnew_pos=cnew_pos,
            )
        )
        current[step.mother] = mother_cols + new_cols

    final_columns = prepared.final_projection.sorted_attributes()
    final_positions: Optional[Tuple[int, ...]]
    if columns:
        root_cols = current[prepared.root]
        if final_columns == root_cols:
            final_positions = None
        else:
            root_positions = {c: i for i, c in enumerate(root_cols)}
            final_positions = tuple(root_positions[c] for c in final_columns)
    else:
        final_positions = None
    return _PlanLayout(tuple(semijoins), tuple(joins), final_positions)


def build_row_ops(layout: _PlanLayout):
    """Compile a positional layout into row-tuple step programs.

    Returns ``(semijoin_ops, join_ops, final_get)`` — the ``itemgetter``
    programs :func:`execute_row_program` runs.  Shared by the compiled
    backend and the vectorized backend's no-numpy fallback (which executes
    the same row program over its column-built encodings).
    """
    semijoin_ops = tuple(
        _SemijoinOp(sj.target, sj.source, sj.tkey, sj.skey)
        for sj in layout.semijoins
    )
    join_ops: List[_JoinOp] = []
    for jl in layout.joins:
        if jl.kind == _JOIN_SEMI_MOTHER:
            join_ops.append(
                _JoinOp(
                    jl.kind,
                    jl.mother,
                    jl.node,
                    jl.tag,
                    has_proj=jl.has_proj,
                    mkey=jl.mkey,
                    ckey=jl.ckey,
                )
            )
        elif jl.kind == _JOIN_SEMI_CHILD:
            join_ops.append(
                _JoinOp(
                    jl.kind,
                    jl.mother,
                    jl.node,
                    jl.tag,
                    proj_get=(
                        _tuple_getter(jl.proj_pos)
                        if jl.proj_pos is not None
                        else None
                    ),
                    has_proj=jl.has_proj,
                    mkey=jl.mkey,
                    ckey=jl.ckey,
                )
            )
        else:
            join_ops.append(
                _JoinOp(
                    jl.kind,
                    jl.mother,
                    jl.node,
                    jl.tag,
                    has_proj=jl.has_proj,
                    mkey=jl.mkey,
                    ckey=jl.ckey,
                    cnew=(
                        _tuple_getter(jl.cnew_pos)
                        if jl.cnew_pos is not None
                        else None
                    ),
                    extract=(
                        _tuple_getter(jl.extract_pos)
                        if jl.extract_pos is not None
                        else None
                    ),
                    kw=jl.kw,
                )
            )
    final_get = (
        None
        if layout.final_positions is None
        else _tuple_getter(layout.final_positions)
    )
    return semijoin_ops, tuple(join_ops), final_get


class CompiledPlan:
    """A fully positional, interned-value program for one prepared query.

    Built once per :class:`~repro.engine.prepared.PreparedQuery` (see its
    ``compiled`` property); owns the per-attribute interning dictionaries
    shared by every state the plan ever executes, the per-step position
    programs, and a bounded per-slot encoding cache used by
    :meth:`execute_batch`.
    """

    #: Cap on cached encodings per slot — bounds what long-running serving
    #: processes can accumulate while keeping whole batches of repeated
    #: relations resident.  Sized above typical batch fan-outs: an LRU whose
    #: cap sits just *below* the working set degrades to 100% misses under
    #: sequentially repeated batches.
    _ENCODE_CACHE_MAX = 1024

    #: Consecutive misses after which a slot's encode cache turns itself off.
    #: A slot whose relation never repeats (a per-request fact table) pays
    #: hashing and LRU bookkeeping for nothing; shared slots keep hitting and
    #: never trip this.  ``clear_encode_cache`` re-arms a tripped slot.
    _CACHE_MISS_STREAK_MAX = 512

    __slots__ = (
        "schema",
        "target",
        "root",
        "slot_columns",
        "_modes",
        "_intern",
        "_values",
        "_encode_lock",
        "_semijoin_ops",
        "_join_ops",
        "_final_get",
        "_final_columns",
        "_final_schema",
        "_slot_cache",
        "_cache_meta",
        "max_interned_values",
        "interner_epoch",
    )

    def __init__(
        self, prepared, *, max_interned_values: Optional[int] = _USE_DEFAULT_CAP
    ) -> None:
        schema = prepared.schema
        self.schema = schema
        self.target = prepared.target
        self.root = prepared.root
        columns: Tuple[Tuple[Attribute, ...], ...] = tuple(
            relation.sorted_attributes() for relation in schema.relations
        )
        self.slot_columns = columns

        self._modes: Dict[Attribute, Optional[int]] = {
            attribute: None for attribute in schema.attributes
        }
        self._intern: Dict[Attribute, Dict[Any, Any]] = {
            attribute: {} for attribute in schema.attributes
        }
        self._values: Dict[Attribute, List[Any]] = {
            attribute: [] for attribute in schema.attributes
        }
        self._encode_lock = threading.Lock()
        self._slot_cache: Tuple["OrderedDict[Relation, _Encoding]", ...] = tuple(
            OrderedDict() for _ in columns
        )
        # Per slot: [consecutive miss count, cache disabled flag].
        self._cache_meta: List[List[int]] = [[0, 0] for _ in columns]
        #: Interned-value cap; ``None`` disables epoch rollover entirely.
        #: Plain-assignable: serving processes may tune it on a live plan
        #: (the cap is only read at state-encode boundaries).
        self.max_interned_values: Optional[int] = (
            DEFAULT_MAX_INTERNED_VALUES
            if max_interned_values is _USE_DEFAULT_CAP
            else max_interned_values
        )
        #: Number of interner epochs opened so far (0 = the original epoch).
        self.interner_epoch = 0

        # -- step programs: turn the shared positional layout into getters ---
        # ``plan_layout`` replays the column algebra symbolically (see its
        # notes); ``build_row_ops`` compiles each layout entry's positions
        # into ``itemgetter`` programs over code-tuple rows.
        self._semijoin_ops, self._join_ops, self._final_get = build_row_ops(
            plan_layout(prepared)
        )

        # -- final projection ---------------------------------------------------
        final = prepared.final_projection
        self._final_schema = final
        self._final_columns = final.sorted_attributes()

    # -- encoding --------------------------------------------------------------

    def _stray_code(self, attribute: Attribute, value: Any) -> Any:
        """Code for a non-int value in an identity-mode column.

        Values equal to an int (``2.0``, ``True``, ``Decimal(3)``) must join
        with that int, so they canonicalize onto the int itself; everything
        else is interned to a :class:`_Stray` wrapper, one per distinct value.
        """
        intern_map = self._intern[attribute]
        code = intern_map.get(value)
        if code is None:
            try:
                as_int = int(value)
            except (TypeError, ValueError, OverflowError):
                as_int = None
            if as_int is not None and as_int == value:
                code = as_int
            else:
                code = _Stray(value)
            intern_map[value] = code
        return code

    def _encode_relation(self, slot: int, relation: Relation) -> _Encoding:
        """Encode one relation column-major into code tuples (no cache)."""
        rows = relation.rows
        attrs = self.slot_columns[slot]
        if not attrs or not rows:
            return _Encoding(tuple(rows))
        modes = self._modes
        # Identity fast path: when every column is (or can become)
        # identity-mode and every cell is a native int, the value rows are
        # their own encoding — no per-cell work at all.
        if all(modes[a] != _MODE_DICT for a in attrs) and pure_int_rows(rows):
            for a in attrs:
                if modes[a] is None:
                    modes[a] = _MODE_IDENTITY
            return _Encoding(tuple(rows))
        coded_columns: List[Sequence[Any]] = []
        for attribute, column in zip(attrs, zip(*rows)):
            mode = modes[attribute]
            if mode is None:
                mode = _MODE_IDENTITY if pure_int_column(column) else _MODE_DICT
                modes[attribute] = mode
            if mode == _MODE_IDENTITY:
                if pure_int_column(column):
                    coded_columns.append(column)
                else:
                    stray = self._stray_code
                    coded_columns.append(
                        [
                            v if type(v) is int else stray(attribute, v)
                            for v in column
                        ]
                    )
                continue
            # Hot path of string-heavy encoding.  On the serving steady
            # state the interner has already seen every value the column
            # carries (fresh states drawing from a stable domain), so the
            # whole column encodes as one C-level ``map`` over the interning
            # dictionary — measured ~1.8× over the per-cell loop (see
            # docs/performance.md).  A novel value raises ``KeyError`` and
            # falls back to the interning loop with the dictionary locally
            # bound; the map attempt is gated on a non-empty interner so the
            # cold first column never pays a guaranteed-failing scan.
            intern_map = self._intern[attribute]
            values = self._values[attribute]
            if intern_map:
                try:
                    coded_columns.append(list(map(intern_map.__getitem__, column)))
                    continue
                except KeyError:
                    pass
            get = intern_map.get
            codes: List[int] = []
            append = codes.append
            for value in column:
                code = get(value)
                if code is None:
                    code = len(values)
                    intern_map[value] = code
                    values.append(value)
                append(code)
            coded_columns.append(codes)
        return _Encoding(tuple(zip(*coded_columns)))

    def _decoders(self) -> Tuple[Optional[Any], ...]:
        """Per-final-column decoders for the *current* interner epoch.

        ``None`` means the column's codes are the values themselves (pure
        identity columns); identity columns that interned strays unwrap them;
        dictionary columns index their value list.  Captured onto each
        :class:`CompiledState` at encode time (under the encode lock), so a
        state always decodes against the epoch that minted its codes — even
        if the plan has rolled its interner over since.
        """
        decoders: List[Optional[Any]] = []
        for attribute in self._final_columns:
            mode = self._modes[attribute]
            if mode == _MODE_DICT:
                decoders.append(self._values[attribute].__getitem__)
            elif self._intern[attribute]:
                decoders.append(_unwrap)
            else:
                decoders.append(None)
        return tuple(decoders)

    def encode_state(
        self,
        state: DatabaseState,
        *,
        use_cache: bool = True,
        stats: Optional[ExecutionStats] = None,
    ) -> "CompiledState":
        """Encode a database state against this plan's interner.

        With ``use_cache`` (the default for batches), encodings are looked up
        in the per-slot bounded cache keyed by the relation value, so states
        that repeat a slot's rows share one encoding — and therefore one set
        of key indexes.  Encoding mutates the shared interning dictionaries
        and is serialized by a per-plan lock.  Execution never mutates rows,
        but it does lazily *fill* the per-encoding index caches outside that
        lock: concurrent threads may race to insert the same immutable index
        (a benign duplicate build under the GIL; on free-threaded builds
        those dict writes are unsynchronized and would need the lock).
        """
        schema = state.schema
        if schema is not self.schema and schema != self.schema:
            raise SchemaError("the state is for a different schema than the query")
        encodings: List[_Encoding] = []
        with self._encode_lock:
            cap = self.max_interned_values
            if cap is not None and self.interned_value_count() > cap:
                self._open_interner_epoch_locked()
                if stats is not None:
                    stats.interner_resets += 1
            for slot, relation in enumerate(state.relations):
                meta = self._cache_meta[slot]
                caching = use_cache and not meta[1]
                if caching:
                    cache = self._slot_cache[slot]
                    encoding = cache.get(relation)
                    if encoding is not None:
                        cache.move_to_end(relation)
                        meta[0] = 0
                        if stats is not None:
                            stats.cached_slots += 1
                        encodings.append(encoding)
                        continue
                encoding = self._encode_relation(slot, relation)
                if stats is not None:
                    stats.encoded_slots += 1
                if caching:
                    cache = self._slot_cache[slot]
                    cache[relation] = encoding
                    if len(cache) > self._ENCODE_CACHE_MAX:
                        cache.popitem(last=False)
                    meta[0] += 1
                    if meta[0] > self._CACHE_MISS_STREAK_MAX:
                        meta[1] = 1
                        cache.clear()
                encodings.append(encoding)
            decoders = self._decoders()
        if stats is not None:
            stats.states += 1
        return CompiledState(self, state, tuple(encodings), decoders)

    # -- execution -------------------------------------------------------------

    def execute(
        self,
        compiled_state: "CompiledState",
        stats: Optional[ExecutionStats] = None,
    ) -> YannakakisRun:
        """Run the compiled program against one encoded state.

        Semantics — result, semijoin/join counts and the intermediate-size
        accounting — match the classic executor exactly; the equivalence
        suite checks this on random schemas and states.
        """
        if compiled_state.plan is not self:
            raise SchemaError("the compiled state belongs to a different plan")
        if not self.slot_columns:
            # The empty schema: ⋈ ∅ is the nullary-true relation (the same
            # constant PreparedQuery.execute returns before routing here).
            return YannakakisRun(
                result=Relation.nullary_true(),
                semijoin_count=0,
                join_count=0,
                max_intermediate_size=1,
                backend="compiled",
                stats=stats,
            )
        final_rows, join_count, max_intermediate = execute_row_program(
            self._semijoin_ops,
            self._join_ops,
            self.root,
            self._final_get,
            list(compiled_state.encodings),
            stats,
        )

        # Final projection + decode: the only value-level materialization
        # (and a no-op for pure identity-mode columns).
        result = Relation.from_interned(
            self._final_schema,
            self._final_columns,
            final_rows,
            compiled_state.decoders,
        )
        if len(result) > max_intermediate:
            max_intermediate = len(result)
        return YannakakisRun(
            result=result,
            semijoin_count=len(self._semijoin_ops),
            join_count=join_count,
            max_intermediate_size=max_intermediate,
            backend="compiled",
            stats=stats,
        )

    def execute_state(
        self, state: DatabaseState, stats: Optional[ExecutionStats] = None
    ) -> YannakakisRun:
        """Encode (cache-assisted) and execute one state."""
        return self.execute(
            self.encode_state(state, stats=stats), stats=stats
        )

    def execute_batch(
        self,
        states: Iterable[DatabaseState],
        stats: Optional[ExecutionStats] = None,
    ) -> List[YannakakisRun]:
        """Execute many states as one batch with shared instrumentation.

        All states share the plan's interner and per-slot encoding cache, so
        slots whose rows repeat across states are encoded — and their key
        indexes built — once for the whole batch; states repeated verbatim
        (duplicate requests) are executed once and their immutable run is
        shared.  Every returned run carries the same :class:`ExecutionStats`
        object describing the batch; a wrapping plan (the cyclic prologue
        adapter of :mod:`repro.engine.cyclic`) may pass its own ``stats`` to
        fold pre-batch accounting into the same object.
        """
        if stats is None:
            stats = ExecutionStats()
        runs: List[YannakakisRun] = []
        memo: Dict[DatabaseState, YannakakisRun] = {}
        for state in states:
            run = memo.get(state)
            if run is None:
                run = self.execute_state(state, stats=stats)
                memo[state] = run
            else:
                stats.deduped_states += 1
            runs.append(run)
        return runs


    # -- maintenance -----------------------------------------------------------

    def _open_interner_epoch_locked(self) -> None:
        """Rebuild the interner and retire every encoding of the old epoch.

        Called at a state-encode boundary with the encode lock held, *before*
        the incoming state is encoded: the dictionary-mode interning maps and
        value lists (and the identity-mode stray tables living in the same
        maps) are **replaced with fresh objects** — never cleared in place —
        and the slot encoding caches are dropped wholesale, because every
        cached encoding holds code tuples minted by the retired epoch and
        must never mix with codes of the new one.  Attribute *modes* stay
        pinned (they describe column shape, not code assignment).

        Replacement rather than clearing is what makes rollover safe for
        everything in flight: each :class:`CompiledState` captures its
        epoch's decoders — bound to that epoch's value-list objects — at
        encode time, so states encoded before a rollover (including ones a
        concurrent thread is executing right now, and ones a caller pinned
        long-term) keep decoding against the retired epoch's intact lists.
        The retired objects die with the last such state.
        """
        self._intern = {attribute: {} for attribute in self._intern}
        self._values = {attribute: [] for attribute in self._values}
        for cache in self._slot_cache:
            cache.clear()
        for meta in self._cache_meta:
            meta[0] = 0
            meta[1] = 0
        self.interner_epoch += 1

    def cache_sizes(self) -> Tuple[int, ...]:
        """Cached encodings per slot (diagnostic)."""
        return tuple(len(cache) for cache in self._slot_cache)

    def clear_encode_cache(self) -> None:
        """Drop cached slot encodings and re-arm tripped slot caches (the
        interner is left intact)."""
        with self._encode_lock:
            for cache in self._slot_cache:
                cache.clear()
            for meta in self._cache_meta:
                meta[0] = 0
                meta[1] = 0

    def interned_value_count(self) -> int:
        """Total distinct values interned across all attributes (diagnostic).

        Identity-mode int values are never interned, so this counts only
        dictionary-mode values and identity-mode strays.
        """
        return sum(len(intern_map) for intern_map in self._intern.values())

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"CompiledPlan(schema={self.schema.to_notation()!r}, "
            f"target={self.target.to_notation()!r}, "
            f"semijoins={len(self._semijoin_ops)}, joins={len(self._join_ops)})"
        )


def execute_row_program(
    semijoin_ops: Tuple[_SemijoinOp, ...],
    join_ops: Tuple[_JoinOp, ...],
    root: int,
    final_get,
    views: List[_Encoding],
    stats: Optional[ExecutionStats] = None,
) -> Tuple[Iterable, int, int]:
    """Run the row-tuple reducer + bottom-up join program over ``views``.

    The execution core of the compiled backend, shared with the vectorized
    backend's no-numpy fallback: ``views`` holds one encoding-like object
    per slot (anything exposing ``rows``/``keysets``/``buckets``, filled
    lazily) and is mutated in place as steps replace slot views.  Returns
    ``(final_rows, join_count, max_intermediate)`` with ``final_rows`` still
    interned — the caller decodes against its own epoch decoders.

    Semantics — result, semijoin/join counts and the intermediate-size
    accounting — match the classic executor exactly; the equivalence suites
    check this on random schemas and states for both consuming backends.
    """
    # Phase 1: the full-reducer semijoin program.  Key-set lookups are
    # inlined (this loop runs per state on the serving path).
    for op in semijoin_ops:
        source_view = views[op.source]
        source_keys = source_view.keysets.get(op.skey)
        if source_keys is None:
            source_keys = set(map(op.sget, source_view.rows))
            source_view.keysets[op.skey] = source_keys
            if stats is not None:
                lineage = (op.source, op.skey)
                builds = stats.keyset_builds
                builds[lineage] = builds.get(lineage, 0) + 1
        target_view = views[op.target]
        target_keys = target_view.keysets.get(op.tkey)
        if target_keys is None:
            target_keys = set(map(op.tget, target_view.rows))
            target_view.keysets[op.tkey] = target_keys
            if stats is not None:
                lineage = (op.target, op.tkey)
                builds = stats.keyset_builds
                builds[lineage] = builds.get(lineage, 0) + 1
        if target_keys <= source_keys:
            if stats is not None:
                stats.identity_semijoins += 1
            continue
        getter = op.tget
        kept = tuple(
            row for row in target_view.rows if getter(row) in source_keys
        )
        filtered = _Encoding(kept)
        filtered.keysets[op.tkey] = target_keys & source_keys
        views[op.target] = filtered
        if stats is not None:
            stats.filtering_semijoins += 1
    max_intermediate = max((len(view.rows) for view in views), default=0)

    # Phase 2: the bottom-up join with early projection.
    join_count = 0
    for op in join_ops:
        child_view = views[op.node]
        mother_view = views[op.mother]
        join_count += 1
        if op.kind == _JOIN_SEMI_MOTHER:
            cached = child_view.buckets.get(op.tag)
            if cached is None:
                # The (projected) child's columns are exactly the key, so
                # its key set is its row set — read in one composed pass.
                keys = set(map(op.cget, child_view.rows))
                proj_len: Optional[int] = len(keys) if op.has_proj else None
                child_view.buckets[op.tag] = (keys, proj_len)  # type: ignore[assignment]
                if stats is not None:
                    lineage = (op.node, op.ckey)
                    builds = stats.bucket_builds
                    builds[lineage] = builds.get(lineage, 0) + 1
            else:
                keys, proj_len = cached  # type: ignore[assignment]
            if proj_len is not None and proj_len > max_intermediate:
                max_intermediate = proj_len
            # Identity detection keeps the mother's view object — and
            # with it every cached index a later step (where this slot is
            # the child) would otherwise rebuild.  On consistent states
            # the mother's key set is usually already cached from the
            # reducer phase, making the check allocation-free.
            mother_keys = mother_view.keysets.get(op.mkey)
            if mother_keys is not None and mother_keys <= keys:
                joined = mother_view
            else:
                getter = op.mget
                kept = tuple(
                    row for row in mother_view.rows if getter(row) in keys
                )
                if len(kept) == len(mother_view.rows):
                    joined = mother_view
                else:
                    joined = _Encoding(kept)
        elif op.kind == _JOIN_SEMI_CHILD:
            if op.proj_get is not None:
                # The projected child is a function of the (possibly
                # shared) child view alone — cache it there, like the
                # other join shapes cache their buckets.
                cached = child_view.buckets.get(op.tag)
                if cached is None:
                    child_rows: Iterable = tuple(
                        set(map(op.proj_get, child_view.rows))
                    )
                    child_view.buckets[op.tag] = (child_rows, len(child_rows))  # type: ignore[assignment]
                    if stats is not None:
                        lineage = (op.node, op.ckey)
                        builds = stats.bucket_builds
                        builds[lineage] = builds.get(lineage, 0) + 1
                else:
                    child_rows = cached[0]
                if len(child_rows) > max_intermediate:  # type: ignore[arg-type]
                    max_intermediate = len(child_rows)  # type: ignore[arg-type]
            else:
                child_rows = child_view.rows
            mother_keys = mother_view.keysets.get(op.mkey)
            if mother_keys is None:
                mother_keys = set(map(op.mget, mother_view.rows))
                mother_view.keysets[op.mkey] = mother_keys
                if stats is not None:
                    lineage = (op.mother, op.mkey)
                    builds = stats.keyset_builds
                    builds[lineage] = builds.get(lineage, 0) + 1
            getter = op.cget
            kept = tuple(row for row in child_rows if getter(row) in mother_keys)
            if op.proj_get is None and len(kept) == len(child_view.rows):
                joined = child_view
            else:
                joined = _Encoding(kept)
        else:
            cached = child_view.buckets.get(op.tag)
            if cached is None:
                # Buckets store the pre-extracted *new* child columns, so
                # the probe loop below is a bare tuple concatenation.
                grouped: Dict[Any, list] = {}
                setdefault = grouped.setdefault
                if op.extract is not None:
                    # Composed projection: dedup the (key, new) extraction
                    # (≡ the projected child), then split by fixed width.
                    extracted = set(map(op.extract, child_view.rows))
                    proj_len = len(extracted)
                    kw = op.kw
                    if kw == 1:
                        for row in extracted:
                            setdefault(row[0], []).append(row[1:])
                    else:
                        for row in extracted:
                            setdefault(row[:kw], []).append(row[kw:])
                else:
                    proj_len = None
                    cget = op.cget
                    cnew = op.cnew
                    for row in child_view.rows:
                        setdefault(cget(row), []).append(cnew(row))
                buckets = {key: tuple(parts) for key, parts in grouped.items()}
                child_view.buckets[op.tag] = (buckets, proj_len)
                if stats is not None:
                    lineage = (op.node, op.ckey)
                    builds = stats.bucket_builds
                    builds[lineage] = builds.get(lineage, 0) + 1
            else:
                buckets, proj_len = cached
            if proj_len is not None and proj_len > max_intermediate:
                max_intermediate = proj_len
            # Distinct (mother row, part) pairs concatenate injectively —
            # key + new part cover every child column — so the output
            # rows are distinct by construction and need no dedup set.
            combined: List[Tuple[int, ...]] = []
            append = combined.append
            mget = op.mget
            get_bucket = buckets.get
            for mrow in mother_view.rows:
                bucket = get_bucket(mget(mrow))
                if bucket:
                    for part in bucket:
                        append(mrow + part)
            joined = _Encoding(tuple(combined))
        if len(joined.rows) > max_intermediate:
            max_intermediate = len(joined.rows)
        views[op.mother] = joined

    # Final projection: still interned — the caller decodes.
    root_rows = views[root].rows
    if final_get is None:
        final_rows: Iterable = root_rows
    else:
        final_rows = set(map(final_get, root_rows))
    return final_rows, join_count, max_intermediate


class CompiledState:
    """One database state encoded against a plan's interner.

    Holds one (possibly cache-shared) :class:`_Encoding` per relation slot,
    plus the decoders of the interner epoch that minted its codes (so the
    state stays executable across epoch rollovers).  Immutable from the
    executor's point of view: execution replaces slot views instead of
    mutating their rows, so a ``CompiledState`` can be executed any number
    of times.  Under the GIL concurrent executions are safe (they may
    redundantly fill an encoding's index caches); on free-threaded builds
    those lazy cache fills are unsynchronized.
    """

    __slots__ = ("plan", "state", "encodings", "decoders")

    def __init__(
        self,
        plan: CompiledPlan,
        state: DatabaseState,
        encodings: Tuple[_Encoding, ...],
        decoders: Optional[Tuple[Optional[Any], ...]] = None,
    ) -> None:
        self.plan = plan
        self.state = state
        self.encodings = encodings
        # Direct constructions (tests, tooling) default to the plan's
        # current-epoch decoders; encode_state always passes the captured
        # ones explicitly.
        self.decoders = plan._decoders() if decoders is None else decoders

    @classmethod
    def from_state(
        cls,
        plan: CompiledPlan,
        state: DatabaseState,
        *,
        use_cache: bool = True,
        stats: Optional[ExecutionStats] = None,
    ) -> "CompiledState":
        """Encode ``state`` for ``plan`` (the public entry point)."""
        return plan.encode_state(state, use_cache=use_cache, stats=stats)

    def execute(self, stats: Optional[ExecutionStats] = None) -> YannakakisRun:
        """Run the owning plan against this encoded state."""
        return self.plan.execute(self, stats=stats)

    def total_rows(self) -> int:
        """Total encoded tuples across all slots."""
        return sum(len(encoding.rows) for encoding in self.encodings)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        sizes = ", ".join(str(len(encoding.rows)) for encoding in self.encodings)
        return f"CompiledState({self.plan.schema.to_notation()!r}, sizes=[{sizes}])"


def compile_plan(
    prepared, *, max_interned_values: Optional[int] = _USE_DEFAULT_CAP
) -> CompiledPlan:
    """Compile a :class:`~repro.engine.prepared.PreparedQuery` (see the
    module notes; normally reached through ``prepared.compiled``).

    ``max_interned_values`` caps the plan's interner before an epoch rollover
    (:data:`DEFAULT_MAX_INTERNED_VALUES` when omitted, ``None`` = unbounded).
    """
    return CompiledPlan(prepared, max_interned_values=max_interned_values)


# -- shared-memory transport codec ---------------------------------------------
#
# The parallel layer's shm transport (`transport="shm"` in
# :mod:`repro.engine.parallel`) ships states through one
# ``multiprocessing.shared_memory`` segment per shard instead of the pickle
# pipe.  The wire format is *value-level*, not code-level: interner codes are
# process-private (each worker owns an independent interner and epoch), so
# shipping codes would be unsound.  What makes this columnar transfer rather
# than a renamed pickle is the identity fast path above: for pure-int
# relations the value rows ARE the compiled encoding (value == code in
# identity mode), so packing them as a flat int64 buffer ships exactly the
# columnar code tuples, and the receiving worker's ``_encode_relation``
# re-adopts them at near-zero cost through the same fast path.  Relations
# with any non-int cell (or an int outside int64) fall back to a pickled
# block *embedded in the same segment* — still one segment per shard, never
# a second channel.
#
# The format is a same-host handoff between one parent and its live workers
# (native int64 byte order, no versioning); it is not a storage format.

#: Per-relation block tags of the shm wire format.
_SHM_KIND_INT64 = 0  # flat native int64 rows (pure-int relation)
_SHM_KIND_PICKLED = 1  # pickled row tuple (anything else)

_SHM_STATE_HEADER = struct.Struct("<I")  # relation count
_SHM_INT64_HEADER = struct.Struct("<BII")  # kind, n_rows, width
_SHM_PICKLED_HEADER = struct.Struct("<BQ")  # kind, payload length


def shm_encode_state(state: DatabaseState) -> bytes:
    """Encode a database state into the flat shm wire format.

    Pure-int relations (every cell a native ``int`` fitting int64) pack as
    flat int64 buffers — the identity-mode columnar encoding itself; all
    other relations embed as pickled row tuples.  The schema is *not*
    shipped: the receiver already holds it (via ``PlanSpec``) and passes it
    to :func:`shm_decode_state`.
    """
    parts: List[bytes] = [_SHM_STATE_HEADER.pack(len(state.relations))]
    for relation in state.relations:
        rows = relation.rows
        width = len(relation.schema)
        packed: Optional[array] = None
        if pure_int_rows(rows):
            flat = array("q")
            try:
                for row in rows:
                    flat.extend(row)
            except OverflowError:
                packed = None  # an int outside int64: fall back to pickle
            else:
                packed = flat
        if packed is not None:
            parts.append(_SHM_INT64_HEADER.pack(_SHM_KIND_INT64, len(rows), width))
            parts.append(packed.tobytes())
        else:
            payload = pickle.dumps(tuple(rows), protocol=pickle.HIGHEST_PROTOCOL)
            parts.append(_SHM_PICKLED_HEADER.pack(_SHM_KIND_PICKLED, len(payload)))
            parts.append(payload)
    return b"".join(parts)


def shm_decode_state(schema: DatabaseSchema, buffer) -> DatabaseState:
    """Decode one :func:`shm_encode_state` payload back into a state.

    ``buffer`` is any bytes-like view of the payload (typically a slice of a
    shared-memory segment).  Rows round-trip exactly —
    ``shm_decode_state(schema, shm_encode_state(state)) == state`` — and
    relations are rebuilt through the trusted constructor, so decode does no
    row re-validation.
    """
    view = memoryview(buffer)
    (count,) = _SHM_STATE_HEADER.unpack_from(view, 0)
    if count != len(schema):
        raise ValueError(
            f"shm payload carries {count} relation(s) but the schema "
            f"expects {len(schema)}"
        )
    offset = _SHM_STATE_HEADER.size
    relations: List[Relation] = []
    for relation_schema in schema.relations:
        kind = view[offset]
        if kind == _SHM_KIND_INT64:
            _, n_rows, width = _SHM_INT64_HEADER.unpack_from(view, offset)
            offset += _SHM_INT64_HEADER.size
            if width:
                flat = array("q")
                size = n_rows * width * flat.itemsize
                flat.frombytes(view[offset : offset + size])
                offset += size
                values = flat.tolist()
                rows = frozenset(
                    tuple(values[start : start + width])
                    for start in range(0, len(values), width)
                )
            else:
                # Nullary relation: n_rows is 0 or 1 and carries no payload.
                rows = frozenset([()]) if n_rows else frozenset()
        elif kind == _SHM_KIND_PICKLED:
            _, length = _SHM_PICKLED_HEADER.unpack_from(view, offset)
            offset += _SHM_PICKLED_HEADER.size
            rows = frozenset(pickle.loads(view[offset : offset + length]))
            offset += length
        else:
            raise ValueError(f"unknown shm block kind {kind}")
        relations.append(
            Relation._from_trusted(
                relation_schema, relation_schema.sorted_attributes(), rows
            )
        )
    return DatabaseState(schema, relations)
