"""Join dependencies and lossless joins (Section 5, semantic side).

A join dependency ``⋈D`` holds in a universal relation ``I`` (``I ⊨ ⋈D``)
when ``π_{U(D)}(I) = ⋈_{R ∈ D} π_R(I)`` — if ``U(D)`` is a proper subset of
``I``'s attributes this is an *embedded* join dependency.  ``⋈D ⊨ ⋈D'``
(``⋈D`` implies ``D'`` has a lossless join) when every universal relation
satisfying ``⋈D`` also satisfies ``⋈D'``.

This module provides the semantic operations:

* :func:`satisfies_join_dependency` — check ``I ⊨ ⋈D`` on a concrete relation;
* :func:`decompose_and_rejoin` — the classical lossless-join experiment
  (project then re-join, reporting the spurious tuples);
* :func:`search_implication_counterexample` — randomized search for a
  universal relation witnessing ``⋈D ⊭ ⋈D'``; the syntactic (and exact)
  criterion via canonical connections is Theorem 5.1, implemented in
  :mod:`repro.core.lossless`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple, Union

from ..exceptions import SchemaError
from ..hypergraph.generators import ResolvableRandom, resolve_rng
from ..hypergraph.schema import Attribute, DatabaseSchema, RelationSchema
from .algebra import join_all
from .database import universal_database
from .relation import Relation
from .universal import random_universal_relation

__all__ = [
    "satisfies_join_dependency",
    "DecompositionReport",
    "decompose_and_rejoin",
    "search_implication_counterexample",
]


def satisfies_join_dependency(universal: Relation, schema: DatabaseSchema) -> bool:
    """``I ⊨ ⋈D``: the projection of ``I`` onto ``U(D)`` equals the join of the
    projections ``π_R(I)``."""
    if not schema.attributes <= universal.schema:
        raise SchemaError(
            "the join dependency mentions attributes absent from the relation"
        )
    projected = universal.project(schema.attributes)
    rejoined = join_all([universal.project(relation) for relation in schema.relations])
    if not schema.relations:
        # The empty join dependency is satisfied exactly by the relation whose
        # projection on no attributes equals the empty join (nullary TRUE).
        return projected == rejoined
    return projected == rejoined


@dataclass(frozen=True)
class DecompositionReport:
    """Result of the project-then-rejoin experiment for a decomposition ``D``.

    ``spurious`` holds the tuples present in the re-join but absent from the
    original projection — the decomposition is lossless on this instance iff
    ``spurious`` is empty.
    """

    original: Relation
    rejoined: Relation
    spurious: Relation

    @property
    def lossless(self) -> bool:
        """True when the decomposition lost no information on this instance."""
        return len(self.spurious) == 0


def decompose_and_rejoin(universal: Relation, schema: DatabaseSchema) -> DecompositionReport:
    """Project ``I`` onto each relation schema of ``D`` and join the pieces back."""
    if not schema.attributes <= universal.schema:
        raise SchemaError(
            "the decomposition mentions attributes absent from the relation"
        )
    original = universal.project(schema.attributes)
    rejoined = join_all([universal.project(relation) for relation in schema.relations])
    spurious = rejoined.difference(original) if schema.relations else rejoined
    return DecompositionReport(original=original, rejoined=rejoined, spurious=spurious)


def search_implication_counterexample(
    schema: DatabaseSchema,
    sub_schema: DatabaseSchema,
    *,
    trials: int = 50,
    tuple_count: int = 12,
    domain_size: int = 3,
    rng: ResolvableRandom = None,
) -> Optional[Relation]:
    """Randomized search for a counterexample to ``⋈D ⊨ ⋈D'``.

    Candidate universal relations are built as ``⋈_{R ∈ D} π_R(J)`` for random
    ``J`` — such relations always satisfy ``⋈D`` (the construction used in the
    proof of Theorem 5.1) — and are then tested against ``⋈D'``.  Returns a
    witnessing universal relation, or ``None`` if none was found within
    ``trials`` samples.  A ``None`` answer is *not* a proof of implication;
    the exact test is Theorem 5.1 via canonical connections.
    """
    generator = resolve_rng(rng)
    universe = schema.attributes.union(sub_schema.attributes)
    for _ in range(trials):
        seed_relation = random_universal_relation(
            universe,
            tuple_count=tuple_count,
            domain_size=domain_size,
            rng=generator,
        )
        candidate = join_all(
            [seed_relation.project(relation) for relation in schema.relations]
        )
        if not satisfies_join_dependency(candidate, schema):
            # By construction this should not happen; guard regardless.
            continue
        if not satisfies_join_dependency(candidate, sub_schema):
            return candidate
    return None
