"""Relational substrate: relation states, algebra, UR databases, join
dependencies, semijoin programs, Yannakakis' algorithm and Section 6 query
programs.

Performance notes
-----------------
The kernel keeps rows as **canonical tuples in sorted-column order** and the
operators build their outputs through the internal trusted constructor
``Relation._from_trusted(schema, columns, frozenset_rows)``, which skips
per-row validation.  Any new operator must either emit rows in that canonical
order or go through the validating public constructor ``Relation(attributes,
rows)``.  Column→position maps and the ``Relation.key_index(attrs)`` hash
indexes are cached per (immutable) instance, so repeated semijoins/joins on
the same key — e.g. the two passes of a full reducer — share one index.
See ``docs/performance.md`` for the full invariant list and the PR-1
benchmark baseline recorded in ``BENCH_PR1.json``.

Since PR 4 the serving hot path no longer runs on these object-tuple
operators at all: :mod:`repro.relational.compiled` compiles each prepared
query into a columnar, interned-value program (``CompiledPlan`` /
``CompiledState``) that executes on tuples of dense integer codes and only
decodes the final answer back into a :class:`Relation`.  The operators here
remain the semantics reference — the equivalence suite checks the compiled
kernel against them on random schemas and states.

Since PR 8 :mod:`repro.relational.vectorized` layers an array-backed kernel
over the same interned encoding: contiguous int64 code columns, semijoins as
membership masks over sorted key arrays, joins as ``searchsorted`` bucket
matches plus index gathers (numpy when importable, a stdlib ``array``
row-program fallback otherwise).  ``backend="auto"`` prefers it when numpy
is present; classic and compiled stay as the property-test oracles.
"""

from .relation import Relation, Row
from .compiled import CompiledPlan, CompiledState, ExecutionStats, compile_plan
from .vectorized import (
    VectorizedPlan,
    VectorizedState,
    numpy_available,
    vectorize_plan,
)
from .algebra import (
    intermediate_join_sizes,
    join_all,
    join_all_in_order,
    natural_join,
    project,
    semijoin,
)
from .database import DatabaseState, is_universal_database, universal_database
from .universal import (
    chain_correlated_universal_relation,
    random_database_state,
    random_universal_relation,
    random_ur_database,
)
from .query import (
    NaturalJoinQuery,
    weakly_contained_empirically,
    weakly_equivalent_empirically,
)
from .dependencies import (
    DecompositionReport,
    decompose_and_rejoin,
    satisfies_join_dependency,
    search_implication_counterexample,
)
from .yannakakis import (
    SemijoinStep,
    YannakakisRun,
    full_reduce,
    full_reducer_semijoins,
    naive_join_project,
    rooted_orientation,
    yannakakis,
)
from .program import (
    JoinStatement,
    Program,
    ProjectStatement,
    SemijoinStatement,
    Statement,
    default_base_names,
)

__all__ = [
    "Relation",
    "Row",
    "CompiledPlan",
    "CompiledState",
    "ExecutionStats",
    "compile_plan",
    "VectorizedPlan",
    "VectorizedState",
    "numpy_available",
    "vectorize_plan",
    "project",
    "natural_join",
    "semijoin",
    "join_all",
    "join_all_in_order",
    "intermediate_join_sizes",
    "DatabaseState",
    "universal_database",
    "is_universal_database",
    "random_universal_relation",
    "random_ur_database",
    "random_database_state",
    "chain_correlated_universal_relation",
    "NaturalJoinQuery",
    "weakly_contained_empirically",
    "weakly_equivalent_empirically",
    "satisfies_join_dependency",
    "DecompositionReport",
    "decompose_and_rejoin",
    "search_implication_counterexample",
    "SemijoinStep",
    "rooted_orientation",
    "full_reducer_semijoins",
    "full_reduce",
    "YannakakisRun",
    "yannakakis",
    "naive_join_project",
    "JoinStatement",
    "ProjectStatement",
    "SemijoinStatement",
    "Statement",
    "Program",
    "default_base_names",
]
