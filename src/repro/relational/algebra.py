"""Free-standing relational-algebra helpers.

These functions wrap the :class:`~repro.relational.relation.Relation` methods
in a functional style and add the multi-way operations the paper uses
implicitly: joining a whole database state (``⋈_{R ∈ D} R``) and projecting
the result onto a target.

The multi-way join orders its inputs greedily by shared attributes ("join
connected relations first") so that, on the acyclic workloads used in the
benchmarks, intermediate results stay close to the sizes a sensible query
planner would produce — the *naive* baseline in the benchmarks bypasses this
and joins in schema order.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from ..exceptions import RelationError
from ..hypergraph.schema import Attribute, RelationSchema
from .relation import Relation

__all__ = [
    "project",
    "natural_join",
    "semijoin",
    "join_all",
    "join_all_in_order",
    "intermediate_join_sizes",
]


def project(relation: Relation, attributes: Union[RelationSchema, Iterable[Attribute]]) -> Relation:
    """``π_X(R)`` as a function."""
    return relation.project(attributes)


def natural_join(left: Relation, right: Relation) -> Relation:
    """``R ⋈ S`` as a function."""
    return left.natural_join(right)


def semijoin(left: Relation, right: Relation) -> Relation:
    """``R ⋉ S`` as a function."""
    return left.semijoin(right)


def join_all_in_order(relations: Sequence[Relation]) -> Relation:
    """Join relations left-to-right in the given order (the naive baseline)."""
    if not relations:
        return Relation.nullary_true()
    result = relations[0]
    for relation in relations[1:]:
        result = result.natural_join(relation)
    return result


def join_all(relations: Sequence[Relation]) -> Relation:
    """Join all relations, greedily preferring joins that share attributes.

    Starting from the first relation, the next operand is always one sharing
    at least one attribute with the accumulated result when such a relation
    exists (avoiding accidental cartesian products on connected schemas).
    """
    if not relations:
        return Relation.nullary_true()
    remaining: List[Relation] = list(relations)
    result = remaining.pop(0)
    while remaining:
        pick: Optional[int] = None
        best_overlap = -1
        for index, candidate in enumerate(remaining):
            overlap = len(result.attributes & candidate.attributes)
            if overlap > best_overlap:
                best_overlap = overlap
                pick = index
        assert pick is not None
        result = result.natural_join(remaining.pop(pick))
    return result


def intermediate_join_sizes(relations: Sequence[Relation]) -> List[int]:
    """Sizes of every intermediate result of the left-to-right join.

    Used by the benchmarks to report the intermediate-blowup shape that makes
    cyclic queries expensive and acyclic ones cheap.
    """
    sizes: List[int] = []
    if not relations:
        return sizes
    result = relations[0]
    sizes.append(len(result))
    for relation in relations[1:]:
        result = result.natural_join(relation)
        sizes.append(len(result))
    return sizes
