"""In-memory relations (relation states) and the core relational operators.

A :class:`Relation` is a set of tuples over a fixed relation schema
(attribute set).  The operators the paper uses — natural join ``⋈``,
projection ``π_X`` and natural semijoin ``⋉`` (``R ⋉ S = π_R(R ⋈ S)``) — are
methods; a handful of extra operators (selection, rename, union,
intersection, difference) round out the substrate so examples can build
realistic database states.

Tuples are stored internally in a canonical column order (sorted attribute
names), so two relations over the same attributes with the same rows are
equal regardless of how they were constructed.  Values may be any hashable
Python objects.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..exceptions import RelationError
from ..hypergraph.schema import Attribute, RelationSchema

__all__ = ["Row", "Relation"]

#: A row is exposed to callers as an attribute -> value mapping.
Row = Mapping[Attribute, Any]

_AttributesLike = Union[RelationSchema, Iterable[Attribute]]


def _coerce_schema(attributes: _AttributesLike) -> RelationSchema:
    if isinstance(attributes, RelationSchema):
        return attributes
    return RelationSchema(attributes)


class Relation:
    """An immutable relation state over a relation schema.

    Examples
    --------
    >>> r = Relation.from_dicts("ab", [{"a": 1, "b": 2}, {"a": 1, "b": 3}])
    >>> len(r)
    2
    >>> s = Relation.from_dicts("bc", [{"b": 2, "c": 9}])
    >>> sorted((r.natural_join(s)).to_dicts(), key=lambda row: row["b"])
    [{'a': 1, 'b': 2, 'c': 9}]
    """

    __slots__ = ("_schema", "_columns", "_rows")

    def __init__(
        self,
        attributes: _AttributesLike,
        rows: Iterable[Sequence[Any]] = (),
    ) -> None:
        schema = _coerce_schema(attributes)
        columns = schema.sorted_attributes()
        normalized = set()
        for row in rows:
            row_tuple = tuple(row)
            if len(row_tuple) != len(columns):
                raise RelationError(
                    f"row {row_tuple!r} has {len(row_tuple)} values but the relation "
                    f"has {len(columns)} attributes {columns}"
                )
            normalized.add(row_tuple)
        object.__setattr__(self, "_schema", schema)
        object.__setattr__(self, "_columns", columns)
        object.__setattr__(self, "_rows", frozenset(normalized))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Relation is immutable")

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_dicts(
        cls, attributes: _AttributesLike, rows: Iterable[Row]
    ) -> "Relation":
        """Build a relation from attribute -> value mappings."""
        schema = _coerce_schema(attributes)
        columns = schema.sorted_attributes()
        materialized = []
        for row in rows:
            missing = set(columns) - set(row)
            if missing:
                raise RelationError(f"row {dict(row)!r} is missing attributes {sorted(missing)}")
            materialized.append(tuple(row[column] for column in columns))
        return cls(schema, materialized)

    @classmethod
    def empty(cls, attributes: _AttributesLike) -> "Relation":
        """The empty relation over the given attributes."""
        return cls(attributes, ())

    @classmethod
    def nullary_true(cls) -> "Relation":
        """The relation over no attributes containing the empty tuple.

        This is the neutral element of natural join.
        """
        return cls((), [()])

    # -- basic accessors -----------------------------------------------------------

    @property
    def schema(self) -> RelationSchema:
        """The relation schema (attribute set)."""
        return self._schema

    @property
    def attributes(self) -> FrozenSet[Attribute]:
        """The attributes as a frozen set."""
        return self._schema.attributes

    @property
    def columns(self) -> Tuple[Attribute, ...]:
        """The canonical (sorted) column order used for stored tuples."""
        return self._columns

    @property
    def rows(self) -> FrozenSet[Tuple[Any, ...]]:
        """The stored tuples, aligned with :attr:`columns`."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __iter__(self) -> Iterator[Dict[Attribute, Any]]:
        return iter(self.to_dicts())

    def __contains__(self, row: object) -> bool:
        if isinstance(row, Mapping):
            try:
                candidate = tuple(row[column] for column in self._columns)
            except KeyError:
                return False
            return candidate in self._rows
        if isinstance(row, tuple):
            return row in self._rows
        return False

    def to_dicts(self) -> List[Dict[Attribute, Any]]:
        """The rows as dictionaries (deterministically ordered)."""
        return [dict(zip(self._columns, row)) for row in sorted(self._rows, key=repr)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._schema == other._schema and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._schema, self._rows))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Relation({self._schema.to_notation()!r}, {len(self._rows)} rows)"

    # -- relational operators ---------------------------------------------------------

    def project(self, attributes: _AttributesLike) -> "Relation":
        """``π_X(R)`` — projection onto ``X ⊆ R``."""
        target = _coerce_schema(attributes)
        if not target <= self._schema:
            raise RelationError(
                f"cannot project {self._schema.to_notation()} onto "
                f"{target.to_notation()}: not a subset"
            )
        positions = [self._columns.index(column) for column in target.sorted_attributes()]
        projected = {tuple(row[position] for position in positions) for row in self._rows}
        return Relation(target, projected)

    def natural_join(self, other: "Relation") -> "Relation":
        """``R ⋈ S`` — natural join on the shared attributes (hash join)."""
        shared = sorted(self.attributes & other.attributes)
        result_schema = self._schema.union(other._schema)
        result_columns = result_schema.sorted_attributes()

        left_positions = [self._columns.index(column) for column in shared]
        right_positions = [other._columns.index(column) for column in shared]

        buckets: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
        for row in other._rows:
            key = tuple(row[position] for position in right_positions)
            buckets.setdefault(key, []).append(row)

        left_map = {column: position for position, column in enumerate(self._columns)}
        right_map = {column: position for position, column in enumerate(other._columns)}

        combined_rows = set()
        for left_row in self._rows:
            key = tuple(left_row[position] for position in left_positions)
            for right_row in buckets.get(key, ()):
                combined = tuple(
                    left_row[left_map[column]]
                    if column in left_map
                    else right_row[right_map[column]]
                    for column in result_columns
                )
                combined_rows.add(combined)
        return Relation(result_schema, combined_rows)

    def semijoin(self, other: "Relation") -> "Relation":
        """``R ⋉ S = π_R(R ⋈ S)`` — keep rows of ``R`` that join with ``S``."""
        shared = sorted(self.attributes & other.attributes)
        if not shared:
            # With no shared attributes the semijoin keeps everything iff the
            # other relation is non-empty.
            return self if other._rows else Relation(self._schema, ())
        left_positions = [self._columns.index(column) for column in shared]
        right_positions = [other._columns.index(column) for column in shared]
        keys = {tuple(row[position] for position in right_positions) for row in other._rows}
        kept = {
            row
            for row in self._rows
            if tuple(row[position] for position in left_positions) in keys
        }
        return Relation(self._schema, kept)

    def select(self, predicate: Callable[[Dict[Attribute, Any]], bool]) -> "Relation":
        """``σ_p(R)`` — keep rows satisfying ``predicate`` (given as dicts)."""
        kept = [
            row
            for row in self._rows
            if predicate(dict(zip(self._columns, row)))
        ]
        return Relation(self._schema, kept)

    def select_equal(self, **bindings: Any) -> "Relation":
        """Selection by attribute equality, e.g. ``relation.select_equal(a=1)``."""
        unknown = set(bindings) - set(self._columns)
        if unknown:
            raise RelationError(f"unknown attributes in selection: {sorted(unknown)}")
        return self.select(
            lambda row: all(row[attribute] == value for attribute, value in bindings.items())
        )

    def rename(self, mapping: Mapping[Attribute, Attribute]) -> "Relation":
        """``ρ`` — rename attributes according to ``mapping``."""
        unknown = set(mapping) - set(self._columns)
        if unknown:
            raise RelationError(f"cannot rename unknown attributes {sorted(unknown)}")
        new_names = [mapping.get(column, column) for column in self._columns]
        if len(set(new_names)) != len(new_names):
            raise RelationError("renaming would merge two attributes")
        new_schema = RelationSchema(new_names)
        new_columns = new_schema.sorted_attributes()
        reorder = [new_names.index(column) for column in new_columns]
        rows = {tuple(row[position] for position in reorder) for row in self._rows}
        return Relation(new_schema, rows)

    # -- set operations (same schema required) ---------------------------------------

    def _require_same_schema(self, other: "Relation", operation: str) -> None:
        if self._schema != other._schema:
            raise RelationError(
                f"{operation} requires identical schemas "
                f"({self._schema.to_notation()} vs {other._schema.to_notation()})"
            )

    def union(self, other: "Relation") -> "Relation":
        """Set union of two relations over the same schema."""
        self._require_same_schema(other, "union")
        return Relation(self._schema, self._rows | other._rows)

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection of two relations over the same schema."""
        self._require_same_schema(other, "intersection")
        return Relation(self._schema, self._rows & other._rows)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference of two relations over the same schema."""
        self._require_same_schema(other, "difference")
        return Relation(self._schema, self._rows - other._rows)

    def issubset(self, other: "Relation") -> bool:
        """True when every row of this relation appears in ``other``."""
        self._require_same_schema(other, "issubset")
        return self._rows <= other._rows

    # -- convenience -------------------------------------------------------------------

    def render(self, max_rows: int = 20) -> str:
        """A fixed-width textual rendering (for examples and debugging)."""
        header = list(self._columns) or ["(no attributes)"]
        body = [
            [str(value) for value in row]
            for row in sorted(self._rows, key=repr)[:max_rows]
        ]
        if not self._columns:
            body = [["()"] for _ in range(min(len(self._rows), max_rows))]
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = ["  ".join(header[i].ljust(widths[i]) for i in range(len(header)))]
        for line in body:
            lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
        omitted = len(self._rows) - len(body)
        if omitted > 0:
            lines.append(f"... ({omitted} more rows)")
        return "\n".join(lines)
