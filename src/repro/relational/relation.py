"""In-memory relations (relation states) and the core relational operators.

A :class:`Relation` is a set of tuples over a fixed relation schema
(attribute set).  The operators the paper uses — natural join ``⋈``,
projection ``π_X`` and natural semijoin ``⋉`` (``R ⋉ S = π_R(R ⋈ S)``) — are
methods; a handful of extra operators (selection, rename, union,
intersection, difference) round out the substrate so examples can build
realistic database states.

Tuples are stored internally in a canonical column order (sorted attribute
names), so two relations over the same attributes with the same rows are
equal regardless of how they were constructed.  Values may be any hashable
Python objects.

Performance notes
-----------------
The operators rely on two internal invariants (see ``docs/performance.md``):

* **Trusted constructor.**  ``Relation._from_trusted(schema, columns, rows)``
  builds a relation without re-validating or re-tupling rows.  Callers must
  pass ``columns == schema.sorted_attributes()`` and ``rows`` as a
  ``frozenset`` of tuples already aligned with that column order.  Every
  operator output satisfies this by construction; the public
  ``Relation(attributes, rows)`` constructor keeps validating.
* **Cached indexes.**  Column→position maps and the hash indexes returned by
  :meth:`Relation.key_index` are cached per instance.  They are safe to cache
  because relations are immutable; any new operator must preserve that
  immutability (never mutate ``_rows``).
"""

from __future__ import annotations

from operator import itemgetter
from typing import (
    AbstractSet,
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..exceptions import RelationError
from ..hypergraph.schema import Attribute, RelationSchema

__all__ = ["Row", "Relation", "pure_int_column", "pure_int_rows"]

#: A row is exposed to callers as an attribute -> value mapping.
Row = Mapping[Attribute, Any]

_AttributesLike = Union[RelationSchema, Iterable[Attribute]]


def _coerce_schema(attributes: _AttributesLike) -> RelationSchema:
    if isinstance(attributes, RelationSchema):
        return attributes
    return RelationSchema(attributes)


def pure_int_column(column: Iterable[Any]) -> bool:
    """True when every cell is a *native* ``int`` (``bool`` excluded).

    The per-column form of :func:`pure_int_rows`; such a column of interned
    codes is its own decoding (value == code in identity mode), so decode and
    wire paths can skip per-cell work entirely.
    """
    return all(type(value) is int for value in column)


def pure_int_rows(rows: Iterable[Tuple[Any, ...]]) -> bool:
    """True when every cell of every row is a native ``int``.

    This is the wire-format classifier shared by the shm transport
    (:func:`repro.relational.compiled.shm_encode_state` packs such relations
    as flat int64 buffers), the compiled backend's identity encode fast path,
    and the vectorized backend's array adoption: for pure-int rows the values
    *are* the identity-mode codes.  ``bool`` is deliberately excluded
    (``type(True) is int`` is false): booleans join with their int values but
    must round-trip through the interner, not the raw buffer.
    """
    return all(type(value) is int for row in rows for value in row)


def _tuple_getter(positions: Sequence[int]) -> Callable[[Sequence[Any]], Tuple[Any, ...]]:
    """A callable extracting ``positions`` from a row as a tuple.

    ``operator.itemgetter`` runs the extraction loop in C but returns a bare
    value (not a 1-tuple) for a single index, so the small arities get
    explicit wrappers.
    """
    if not positions:
        return lambda row: ()
    if len(positions) == 1:
        position = positions[0]
        return lambda row: (row[position],)
    return itemgetter(*positions)


def semijoin_key_layout(
    left: RelationSchema, right: RelationSchema
) -> Tuple[Tuple[Attribute, ...], Any, Any]:
    """Precompute the ``(shared_columns, left_getter, right_getter)`` triple
    :meth:`Relation.semijoin_many` needs for a fixed schema pair.

    A frozen plan semijoins the same node/guard schema pair on every state;
    hoisting the shared-column scan and getter construction out of the
    per-state path leaves only the data-dependent work (key-set build and
    row filter) at execution time.
    """
    left_columns = left.sorted_attributes()
    left_positions = {column: i for i, column in enumerate(left_columns)}
    right_columns = right.sorted_attributes()
    shared_columns = tuple(
        column for column in right_columns if column in left_positions
    )
    left_getter = _tuple_getter([left_positions[column] for column in shared_columns])
    right_getter = _tuple_getter(
        [right_columns.index(column) for column in shared_columns]
    )
    return shared_columns, left_getter, right_getter


def _stable_row_key(row: Tuple[Any, ...]) -> Tuple[Tuple[str, Any], ...]:
    """Deterministic sort key for mixed-type rows: ``(type name, value)`` per cell."""
    return tuple((type(value).__name__, value) for value in row)


def _repr_row_key(row: Tuple[Any, ...]) -> Tuple[Tuple[str, str], ...]:
    return tuple((type(value).__name__, repr(value)) for value in row)


def _sorted_rows(rows: Iterable[Tuple[Any, ...]]) -> List[Tuple[Any, ...]]:
    """Rows in a deterministic order, robust to mixed-type values.

    Cells are compared first by type name, then by value; when values of the
    same type name are unorderable (e.g. ``None``), their ``repr`` is used as
    a tie-breaker instead.
    """
    try:
        return sorted(rows, key=_stable_row_key)
    except TypeError:
        return sorted(rows, key=_repr_row_key)


class Relation:
    """An immutable relation state over a relation schema.

    Examples
    --------
    >>> r = Relation.from_dicts("ab", [{"a": 1, "b": 2}, {"a": 1, "b": 3}])
    >>> len(r)
    2
    >>> s = Relation.from_dicts("bc", [{"b": 2, "c": 9}])
    >>> sorted((r.natural_join(s)).to_dicts(), key=lambda row: row["b"])
    [{'a': 1, 'b': 2, 'c': 9}]
    """

    __slots__ = ("_schema", "_columns", "_rows", "_positions", "_indexes")

    def __init__(
        self,
        attributes: _AttributesLike,
        rows: Iterable[Sequence[Any]] = (),
    ) -> None:
        schema = _coerce_schema(attributes)
        columns = schema.sorted_attributes()
        width = len(columns)
        normalized = set()
        for row in rows:
            row_tuple = tuple(row)
            if len(row_tuple) != width:
                raise RelationError(
                    f"row {row_tuple!r} has {len(row_tuple)} values but the relation "
                    f"has {width} attributes {columns}"
                )
            normalized.add(row_tuple)
        object.__setattr__(self, "_schema", schema)
        object.__setattr__(self, "_columns", columns)
        object.__setattr__(self, "_rows", frozenset(normalized))
        object.__setattr__(
            self, "_positions", {column: index for index, column in enumerate(columns)}
        )
        object.__setattr__(self, "_indexes", {})

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Relation is immutable")

    def __reduce__(self):
        """Pickle via the trusted restore path.

        Rows are already canonical tuples, so unpickling skips validation;
        cached key indexes are deliberately *not* pickled — they are cheap to
        rebuild and would bloat cross-process shard payloads.
        """
        return (Relation._restore, (self._schema, tuple(self._rows)))

    @classmethod
    def _restore(cls, schema: RelationSchema, rows: Tuple[Tuple[Any, ...], ...]) -> "Relation":
        """Unpickling counterpart of :meth:`__reduce__`."""
        return cls._from_trusted(schema, schema.sorted_attributes(), frozenset(rows))

    # -- constructors -----------------------------------------------------------

    @classmethod
    def _from_trusted(
        cls,
        schema: RelationSchema,
        columns: Tuple[Attribute, ...],
        rows: FrozenSet[Tuple[Any, ...]],
    ) -> "Relation":
        """Internal constructor bypassing validation (see the module notes).

        ``columns`` must equal ``schema.sorted_attributes()`` and ``rows``
        must be a ``frozenset`` of tuples already aligned with ``columns``.
        Operators use this to avoid re-validating and re-tupling every row.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "_schema", schema)
        object.__setattr__(self, "_columns", columns)
        object.__setattr__(self, "_rows", rows)
        object.__setattr__(
            self, "_positions", {column: index for index, column in enumerate(columns)}
        )
        object.__setattr__(self, "_indexes", {})
        return self

    @classmethod
    def from_interned(
        cls,
        schema: RelationSchema,
        columns: Tuple[Attribute, ...],
        code_rows: Iterable[Tuple[Any, ...]],
        decoders: Sequence[Optional[Callable[[Any], Any]]],
    ) -> "Relation":
        """Decode rows of interned codes back into a relation.

        The column-major decode path of the compiled execution backend
        (:mod:`repro.relational.compiled`): ``decoders[i]`` maps the codes of
        column ``i`` back to values, with ``None`` meaning the codes *are*
        the values (identity-mode integer columns).  When every column is an
        identity column the rows pass through untouched.  Like
        :meth:`_from_trusted`, callers must pass ``columns ==
        schema.sorted_attributes()``; decode runs column-wise so the per-cell
        work is a C-level ``map`` over each column.

        Decoders marked ``identity_when_int`` (the compiled backend's
        identity-mode stray unwrapper) additionally skip the decode map
        whenever the column at hand is classified pure-int by the shm
        wire-format classifier (:func:`pure_int_column`): the attribute may
        have interned strays plan-wide, but *this* result column carries only
        native ints, which are their own values.
        """
        if not columns or all(decoder is None for decoder in decoders):
            rows: FrozenSet[Tuple[Any, ...]] = frozenset(code_rows)
        else:
            materialized = (
                code_rows
                if isinstance(code_rows, (tuple, list, set, frozenset))
                else tuple(code_rows)
            )
            if materialized:
                decoded_columns = [
                    column
                    if decoder is None
                    or (
                        getattr(decoder, "identity_when_int", False)
                        and pure_int_column(column)
                    )
                    else tuple(map(decoder, column))
                    for decoder, column in zip(decoders, zip(*materialized))
                ]
                rows = frozenset(zip(*decoded_columns))
            else:
                rows = frozenset()
        return cls._from_trusted(schema, columns, rows)

    @classmethod
    def from_dicts(
        cls, attributes: _AttributesLike, rows: Iterable[Row]
    ) -> "Relation":
        """Build a relation from attribute -> value mappings."""
        schema = _coerce_schema(attributes)
        columns = schema.sorted_attributes()
        materialized = []
        for row in rows:
            missing = set(columns) - set(row)
            if missing:
                raise RelationError(f"row {dict(row)!r} is missing attributes {sorted(missing)}")
            materialized.append(tuple(row[column] for column in columns))
        return cls(schema, materialized)

    @classmethod
    def empty(cls, attributes: _AttributesLike) -> "Relation":
        """The empty relation over the given attributes."""
        return cls(attributes, ())

    @classmethod
    def nullary_true(cls) -> "Relation":
        """The relation over no attributes containing the empty tuple.

        This is the neutral element of natural join.
        """
        return cls((), [()])

    # -- basic accessors -----------------------------------------------------------

    @property
    def schema(self) -> RelationSchema:
        """The relation schema (attribute set)."""
        return self._schema

    @property
    def attributes(self) -> FrozenSet[Attribute]:
        """The attributes as a frozen set."""
        return self._schema.attributes

    @property
    def columns(self) -> Tuple[Attribute, ...]:
        """The canonical (sorted) column order used for stored tuples."""
        return self._columns

    @property
    def rows(self) -> FrozenSet[Tuple[Any, ...]]:
        """The stored tuples, aligned with :attr:`columns`."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __iter__(self) -> Iterator[Dict[Attribute, Any]]:
        return iter(self.to_dicts())

    def __contains__(self, row: object) -> bool:
        if isinstance(row, Mapping):
            try:
                candidate = tuple(row[column] for column in self._columns)
            except KeyError:
                return False
            return candidate in self._rows
        if isinstance(row, tuple):
            return row in self._rows
        return False

    def to_dicts(self) -> List[Dict[Attribute, Any]]:
        """The rows as dictionaries (deterministically ordered)."""
        return [dict(zip(self._columns, row)) for row in _sorted_rows(self._rows)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._schema == other._schema and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._schema, self._rows))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Relation({self._schema.to_notation()!r}, {len(self._rows)} rows)"

    # -- indexes ----------------------------------------------------------------------

    def key_index(
        self, attributes: _AttributesLike
    ) -> Dict[Tuple[Any, ...], Tuple[Tuple[Any, ...], ...]]:
        """A hash index grouping the rows by their key on ``attributes``.

        Returns a mapping from key tuples (values of ``attributes`` in sorted
        attribute order) to the tuple of rows carrying that key.  The index is
        built once per distinct attribute set and cached on the instance —
        relations are immutable, so repeated semijoins/joins on the same key
        (as in the two passes of a full reducer) reuse it for free.
        """
        if isinstance(attributes, RelationSchema):
            key_columns = attributes.sorted_attributes()
        else:
            key_columns = tuple(sorted(attributes))
        cached = self._indexes.get(key_columns)
        if cached is not None:
            return cached
        try:
            positions = [self._positions[column] for column in key_columns]
        except KeyError as error:
            raise RelationError(
                f"cannot index {self._schema.to_notation()} on unknown attribute "
                f"{error.args[0]!r}"
            ) from None
        getter = _tuple_getter(positions)
        grouped: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
        setdefault = grouped.setdefault
        for row in self._rows:
            setdefault(getter(row), []).append(row)
        index = {key: tuple(rows) for key, rows in grouped.items()}
        self._indexes[key_columns] = index
        return index

    # -- relational operators ---------------------------------------------------------

    def project(self, attributes: _AttributesLike) -> "Relation":
        """``π_X(R)`` — projection onto ``X ⊆ R``."""
        target = _coerce_schema(attributes)
        if not target <= self._schema:
            raise RelationError(
                f"cannot project {self._schema.to_notation()} onto "
                f"{target.to_notation()}: not a subset"
            )
        if target == self._schema:
            return self
        columns = target.sorted_attributes()
        getter = _tuple_getter([self._positions[column] for column in columns])
        return Relation._from_trusted(target, columns, frozenset(map(getter, self._rows)))

    def natural_join(self, other: "Relation") -> "Relation":
        """``R ⋈ S`` — natural join on the shared attributes (hash join)."""
        shared = self._schema.attributes & other._schema.attributes
        # When one side's attributes contain the other's, the join degenerates
        # to a semijoin of the wider side — no tuples need to be combined.
        if len(shared) == len(other._columns):
            return self.semijoin(other)
        if len(shared) == len(self._columns):
            return other.semijoin(self)

        result_schema = self._schema.union(other._schema)
        result_columns = result_schema.sorted_attributes()
        shared_columns = tuple(sorted(shared))
        left_key = _tuple_getter([self._positions[column] for column in shared_columns])
        buckets = other.key_index(shared_columns)

        # Each output tuple is extracted from the concatenation of a matching
        # (left row, right row) pair in one C-level itemgetter call.
        width = len(self._columns)
        combine = _tuple_getter(
            [
                self._positions[column]
                if column in self._positions
                else width + other._positions[column]
                for column in result_columns
            ]
        )
        combined_rows: set = set()
        add = combined_rows.add
        get_bucket = buckets.get
        for left_row in self._rows:
            bucket = get_bucket(left_key(left_row))
            if bucket:
                for right_row in bucket:
                    add(combine(left_row + right_row))
        return Relation._from_trusted(result_schema, result_columns, frozenset(combined_rows))

    def semijoin(self, other: "Relation") -> "Relation":
        """``R ⋉ S = π_R(R ⋈ S)`` — keep rows of ``R`` that join with ``S``.

        The filtered result inherits this relation's hash indexes instead of
        rebuilding them on first use: the semijoin-key index is exactly the
        matched buckets, and every other cached index is filtered to the
        surviving rows.  A full-reducer program therefore builds each
        relation's index once per (relation, key) pair per database state —
        the root-to-leaf pass and the bottom-up join reuse the leaf-to-root
        pass's indexes even when rows were dropped in between.  One-shot
        conjunctive filters that would never reuse the indexes (the cyclic
        prologue's guard semijoins) go through :meth:`semijoin_many`
        instead, which skips them.
        """
        shared = self._schema.attributes & other._schema.attributes
        if not shared:
            # With no shared attributes the semijoin keeps everything iff the
            # other relation is non-empty.
            if other._rows:
                return self
            return Relation._from_trusted(self._schema, self._columns, frozenset())
        shared_columns = tuple(sorted(shared))
        left_index = self.key_index(shared_columns)
        right_index = other.key_index(shared_columns)
        # The buckets partition the rows, so the semijoin is the identity
        # exactly when every key has a join partner; on globally consistent
        # states (e.g. the root-to-leaf pass after a no-drop leaf-to-root
        # pass) this returns without materializing anything.
        if all(key in right_index for key in left_index):
            return self
        matched = {
            key: bucket for key, bucket in left_index.items() if key in right_index
        }
        kept = frozenset(row for bucket in matched.values() for row in bucket)
        result = Relation._from_trusted(self._schema, self._columns, kept)
        derived = result._indexes
        derived[shared_columns] = matched
        # Each inherited index is filtered in O(|self|); a relation carries at
        # most one cached index per distinct join key it participates in
        # (bounded by its arity), so a full-reducer pass stays linear per
        # step.  Rebuilding lazily instead would be no cheaper and would
        # re-scan once per key after every filtering step.
        for key_columns, index in self._indexes.items():
            if key_columns in derived:
                continue
            filtered = {}
            for key, bucket in index.items():
                survivors = tuple(row for row in bucket if row in kept)
                if survivors:
                    filtered[key] = survivors
            derived[key_columns] = filtered
        return result

    def semijoin_many(
        self,
        others: Sequence["Relation"],
        *,
        layouts: Optional[Sequence[Tuple[Tuple[Attribute, ...], Any, Any]]] = None,
    ) -> "Relation":
        """``R ⋉ S₁ ⋉ … ⋉ Sₖ`` — fold of :meth:`semijoin`, in one pass.

        Semijoins are filters, so a chain of them is a single conjunctive
        filter: each row survives iff its key joins every ``Sᵢ``.  Fusing
        the chain skips the k−1 intermediate relations (row sets, index
        inheritance) the fold would materialize — the cyclic prologue's
        guard semijoins run through here, where a wide node value may be
        guarded by many base relations per state.

        ``layouts`` (from :func:`semijoin_key_layout`, aligned with
        ``others``) supplies precomputed shared columns and key getters for
        callers that repeat the same schema pair on every state — a frozen
        plan's guards — so per-call setup reduces to building the key sets.
        """
        positions = self._positions
        filters = []
        for index, other in enumerate(others):
            if layouts is not None:
                shared_columns, left_getter, right_getter = layouts[index]
            else:
                # Column tuples are canonically sorted, so filtering one by
                # membership in the other yields the sorted shared columns
                # without a set intersection + sort round-trip.
                shared_columns = tuple(
                    column for column in other._columns if column in positions
                )
                left_getter = right_getter = None
            if not shared_columns:
                if not other._rows:
                    return Relation._from_trusted(
                        self._schema, self._columns, frozenset()
                    )
                continue
            cached = other._indexes.get(shared_columns)
            if cached is None:
                if right_getter is None:
                    right_getter = _tuple_getter(
                        [other._positions[column] for column in shared_columns]
                    )
                keys = {right_getter(row) for row in other._rows}
            else:
                keys = cached
            if left_getter is None:
                left_getter = _tuple_getter(
                    [positions[column] for column in shared_columns]
                )
            filters.append((left_getter, keys))
        if not filters:
            return self
        # Cascade of list comprehensions: each pass shrinks the row set, and
        # the C-level comprehension beats a per-row ``all(...)`` generator.
        rows: Any = self._rows
        for getter, keys in filters:
            rows = [row for row in rows if getter(row) in keys]
        kept = frozenset(rows)
        if len(kept) == len(self._rows):
            return self
        return Relation._from_trusted(self._schema, self._columns, kept)

    def select(self, predicate: Callable[[Dict[Attribute, Any]], bool]) -> "Relation":
        """``σ_p(R)`` — keep rows satisfying ``predicate`` (given as dicts)."""
        columns = self._columns
        kept = frozenset(
            row for row in self._rows if predicate(dict(zip(columns, row)))
        )
        return Relation._from_trusted(self._schema, self._columns, kept)

    def select_equal(self, **bindings: Any) -> "Relation":
        """Selection by attribute equality, e.g. ``relation.select_equal(a=1)``."""
        unknown = set(bindings) - set(self._columns)
        if unknown:
            raise RelationError(f"unknown attributes in selection: {sorted(unknown)}")
        tests = [(self._positions[attribute], value) for attribute, value in bindings.items()]
        if len(tests) == 1:
            position, value = tests[0]
            kept = frozenset(row for row in self._rows if row[position] == value)
        else:
            kept = frozenset(
                row
                for row in self._rows
                if all(row[position] == value for position, value in tests)
            )
        return Relation._from_trusted(self._schema, self._columns, kept)

    def rename(self, mapping: Mapping[Attribute, Attribute]) -> "Relation":
        """``ρ`` — rename attributes according to ``mapping``."""
        unknown = set(mapping) - set(self._columns)
        if unknown:
            raise RelationError(f"cannot rename unknown attributes {sorted(unknown)}")
        new_names = [mapping.get(column, column) for column in self._columns]
        if len(set(new_names)) != len(new_names):
            raise RelationError("renaming would merge two attributes")
        new_schema = RelationSchema(new_names)
        new_columns = new_schema.sorted_attributes()
        reorder = _tuple_getter([new_names.index(column) for column in new_columns])
        rows = frozenset(map(reorder, self._rows))
        return Relation._from_trusted(new_schema, new_columns, rows)

    # -- set operations (same schema required) ---------------------------------------

    def _require_same_schema(self, other: "Relation", operation: str) -> None:
        if self._schema != other._schema:
            raise RelationError(
                f"{operation} requires identical schemas "
                f"({self._schema.to_notation()} vs {other._schema.to_notation()})"
            )

    def union(self, other: "Relation") -> "Relation":
        """Set union of two relations over the same schema."""
        self._require_same_schema(other, "union")
        return Relation._from_trusted(
            self._schema, self._columns, self._rows | other._rows
        )

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection of two relations over the same schema."""
        self._require_same_schema(other, "intersection")
        return Relation._from_trusted(
            self._schema, self._columns, self._rows & other._rows
        )

    def difference(self, other: "Relation") -> "Relation":
        """Set difference of two relations over the same schema."""
        self._require_same_schema(other, "difference")
        return Relation._from_trusted(
            self._schema, self._columns, self._rows - other._rows
        )

    def issubset(self, other: "Relation") -> bool:
        """True when every row of this relation appears in ``other``."""
        self._require_same_schema(other, "issubset")
        return self._rows <= other._rows

    # -- convenience -------------------------------------------------------------------

    def render(self, max_rows: int = 20) -> str:
        """A fixed-width textual rendering (for examples and debugging)."""
        header = list(self._columns) or ["(no attributes)"]
        body = [
            [str(value) for value in row]
            for row in _sorted_rows(self._rows)[:max_rows]
        ]
        if not self._columns:
            body = [["()"] for _ in range(min(len(self._rows), max_rows))]
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = ["  ".join(header[i].ljust(widths[i]) for i in range(len(header)))]
        for line in body:
            lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
        omitted = len(self._rows) - len(body)
        if omitted > 0:
            lines.append(f"... ({omitted} more rows)")
        return "\n".join(lines)
