"""Command-line interface: schema analysis from the shell.

Usage (after ``pip install -e .``, as ``repro`` or ``python -m repro``):

.. code-block:: console

   $ repro analyze "ab,bc,ac"
   $ repro analyze --json "ab,bc,ac"
   $ repro cc "abg,bcg,acf,ad,de,ea" abc
   $ repro lossless "abc,ab,bc" "ab,bc"
   $ repro treefy "ab,bc,cd,da"
   $ repro tableau "abg,bcg,acf,ad,de,ea" abc
   $ repro query "ab,bc,cd" ad --random 30
   $ repro query "ab,bc,cd" ad --data state.json --backend classic --json
   $ repro query "ab,bc,cd" ad --random 30 --states 64 --backend parallel --workers 4
   $ repro query "ab,bc,cd" ad --random 30 --states 64 --backend parallel \
         --shard-timeout 5 --retries 3 --failure-policy degrade --json

Schemas are written in the paper's notation (relations separated by commas,
single-character attributes concatenated); multi-character attribute names
can be used by passing ``--attribute-separator``.  Every subcommand accepts
``--json`` for machine-readable output.  All commands are built on the
engine façade (:func:`repro.engine.analyze`), so each invocation performs
one schema analysis shared by every fact it prints.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

from .core import jd_implies
from .engine import AnalyzedSchema, analyze
from .hypergraph import parse_schema

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Create the argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Analyze database schemas with the tools of Goodman, Shmueli & Tay: "
            "GYO reductions, canonical connections, tree/cyclic classification, "
            "lossless joins and treefication."
        ),
    )
    parser.add_argument(
        "--attribute-separator",
        default=None,
        help="separator between attribute names inside a relation "
        "(default: none, every character is one attribute)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_json_flag(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--json",
            action="store_true",
            help="emit machine-readable JSON instead of text",
        )

    analyze_cmd = commands.add_parser(
        "analyze", help="classify a schema and print its structure"
    )
    analyze_cmd.add_argument("schema", help='database schema, e.g. "ab,bc,ac"')
    add_json_flag(analyze_cmd)

    connection = commands.add_parser(
        "cc", help="compute the canonical connection CC(D, X)"
    )
    connection.add_argument("schema", help="database schema D")
    connection.add_argument("target", help="query target X, e.g. abc")
    add_json_flag(connection)

    lossless = commands.add_parser("lossless", help="check whether ⋈D implies ⋈D'")
    lossless.add_argument("schema", help="database schema D")
    lossless.add_argument(
        "subschema",
        help="sub-schema D' (each relation contained in some relation of D)",
    )
    add_json_flag(lossless)

    treefy = commands.add_parser(
        "treefy", help="single-relation treefication (Corollary 3.2)"
    )
    treefy.add_argument("schema", help="database schema D")
    add_json_flag(treefy)

    tableau = commands.add_parser(
        "tableau",
        help="build and minimize the standard tableau Tab(D, X)",
    )
    tableau.add_argument("schema", help="database schema D")
    tableau.add_argument("target", help="query target X, e.g. abc")
    add_json_flag(tableau)

    query = commands.add_parser(
        "query",
        help="evaluate π_X(⋈ D) over a database state (Yannakakis plan)",
    )
    query.add_argument("schema", help="tree schema D")
    query.add_argument("target", help="projection target X, e.g. ad")
    query.add_argument(
        "--data",
        default=None,
        help="JSON file with one rows-list per relation (rows are "
        "attribute -> value objects); '-' reads stdin",
    )
    query.add_argument(
        "--random",
        type=int,
        default=None,
        metavar="N",
        help="evaluate against random UR state(s) with N tuples per universal relation",
    )
    query.add_argument(
        "--states",
        type=int,
        default=1,
        metavar="M",
        help="with --random: number of states to batch through execute_many",
    )
    query.add_argument(
        "--domain", type=int, default=8, help="random value domain size (default 8)"
    )
    query.add_argument("--seed", type=int, default=0, help="random seed (default 0)")
    query.add_argument(
        "--backend",
        choices=("auto", "classic", "compiled", "parallel", "vectorized"),
        default="auto",
        help="execution backend: the array-backed vectorized kernel "
        "(vectorized; auto prefers it when numpy imports), the compiled "
        "interned-value kernel (compiled; the auto fallback), the classic "
        "object-tuple operators, or the sharded multi-process pool "
        "(parallel)",
    )
    query.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="with --backend parallel: process-pool width "
        "(default: one per CPU, clamped by REPRO_PARALLEL_MAX_WORKERS)",
    )
    query.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --backend parallel: per-shard attempt timeout; a hung "
        "worker is killed and the shard retried "
        "(default: REPRO_PARALLEL_SHARD_TIMEOUT, else none)",
    )
    query.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="with --backend parallel: shard resubmissions before bisection "
        "(default: REPRO_PARALLEL_MAX_RETRIES, else 2)",
    )
    query.add_argument(
        "--failure-policy",
        choices=("raise", "degrade"),
        default=None,
        help="with --backend parallel: raise on unrecoverable states "
        "(default) or degrade to partial results with quarantined "
        "positions reported in the stats",
    )
    query.add_argument(
        "--stream",
        action="store_true",
        help="serve the batch through the streaming QueryService: results "
        "arrive as shards complete, backend 'auto' is routed adaptively by "
        "the per-plan cost model, and the routing decision is reported",
    )
    query.add_argument(
        "--transport",
        choices=("pickle", "shm"),
        default=None,
        help="with --backend parallel or --stream: how states cross the "
        "process boundary — pickled task arguments or shared-memory "
        "segments (default: REPRO_PARALLEL_TRANSPORT, else pickle)",
    )
    query.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help="with --stream: admission-control cap on in-flight states "
        "(default: unbounded)",
    )
    query.add_argument(
        "--catalog",
        default=None,
        metavar="DIR",
        help="persistent plan-catalog directory: analysis artifacts are "
        "loaded from (and stored back to) DIR, so repeated invocations "
        "skip re-planning (default: REPRO_CATALOG_DIR when set)",
    )
    query.add_argument(
        "--max-rows", type=int, default=20, help="answer rows to print (text mode)"
    )
    add_json_flag(query)

    catalog_cmd = commands.add_parser(
        "catalog",
        help="inspect and maintain a persistent plan catalog",
    )
    catalog_actions = catalog_cmd.add_subparsers(dest="action", required=True)

    catalog_ls = catalog_actions.add_parser(
        "ls", help="list catalog records (schema, artifacts, size)"
    )
    catalog_ls.add_argument("directory", help="catalog directory")
    add_json_flag(catalog_ls)

    catalog_verify = catalog_actions.add_parser(
        "verify",
        help="verify every record end to end, quarantining corrupt ones",
    )
    catalog_verify.add_argument("directory", help="catalog directory")
    add_json_flag(catalog_verify)

    catalog_gc = catalog_actions.add_parser(
        "gc",
        help="remove quarantined records and orphaned temp files",
    )
    catalog_gc.add_argument("directory", help="catalog directory")
    catalog_gc.add_argument(
        "--keep",
        type=int,
        default=None,
        metavar="N",
        help="also prune records beyond the newest N (by mtime)",
    )
    add_json_flag(catalog_gc)

    return parser


def _emit_json(payload: Dict[str, Any]) -> None:
    print(json.dumps(payload, indent=2, sort_keys=False))


def _analysis_payload(analysis: AnalyzedSchema) -> Dict[str, Any]:
    schema = analysis.schema
    tree = analysis.qual_tree
    payload: Dict[str, Any] = {
        "schema": schema.to_notation(),
        "relations": len(schema),
        "attributes": len(schema.attributes),
        "alpha_acyclic": analysis.is_tree_schema,
        "gamma_acyclic": analysis.is_gamma_acyclic,
        "beta_acyclic": analysis.is_beta_acyclic,
        "berge_acyclic": analysis.is_berge_acyclic,
        "gyo_residue": analysis.gyo_residue().to_notation(),
        "qual_tree": tree.to_edge_notation() if tree is not None else None,
    }
    if tree is None:
        payload["treefying_relation"] = analysis.treefication.added_relation.to_notation()
    return payload


def _analyze(schema_text: str, attribute_separator: Optional[str], as_json: bool) -> int:
    analysis = analyze(schema_text, attribute_separator=attribute_separator)
    if as_json:
        _emit_json(_analysis_payload(analysis))
        return 0
    schema = analysis.schema
    tree = analysis.qual_tree
    print(f"schema: {schema}")
    print(f"relations: {len(schema)}, attributes: {len(schema.attributes)}")
    print(f"tree schema (alpha-acyclic): {analysis.is_tree_schema}")
    print(f"gamma-acyclic: {analysis.is_gamma_acyclic}")
    print(f"beta-acyclic: {analysis.is_beta_acyclic}")
    print(f"Berge-acyclic: {analysis.is_berge_acyclic}")
    print(f"GYO residue GR(D): {analysis.gyo_residue().to_notation() or '(empty)'}")
    if tree is not None:
        print(f"qual tree: {tree.to_edge_notation()}")
    else:
        treefied = analysis.treefication
        print(
            "cyclic; smallest treefying relation (Corollary 3.2): "
            f"{treefied.added_relation.to_notation()}"
        )
    return 0


def _canonical_connection(
    schema_text: str,
    target_text: str,
    attribute_separator: Optional[str],
    as_json: bool,
) -> int:
    analysis = analyze(schema_text, attribute_separator=attribute_separator)
    schema = analysis.schema
    target = parse_schema(target_text, attribute_separator=attribute_separator)
    target_relation = target.attributes
    connection = analysis.canonical_connection(target_relation)
    plan = analysis.join_plan(target_relation)
    irrelevant = [schema[index].to_notation() for index in plan.irrelevant_relations]
    if as_json:
        _emit_json(
            {
                "schema": schema.to_notation(),
                "target": target_relation.to_notation(),
                "canonical_connection": connection.to_notation(),
                "irrelevant_relations": irrelevant,
                "relevant_relations": [
                    schema[index].to_notation() for index in plan.relevant_relations
                ],
            }
        )
        return 0
    print(f"D  = {schema}")
    print(f"X  = {target_relation.to_notation()}")
    print(f"CC(D, X) = {connection}")
    print(f"irrelevant relations: {irrelevant or 'none'}")
    return 0


def _lossless(
    schema_text: str,
    subschema_text: str,
    attribute_separator: Optional[str],
    as_json: bool,
) -> int:
    # No structural artifact is needed here, so skip the analysis cache.
    schema = parse_schema(schema_text, attribute_separator=attribute_separator)
    subschema = parse_schema(subschema_text, attribute_separator=attribute_separator)
    implied = jd_implies(schema, subschema)
    if as_json:
        _emit_json(
            {
                "schema": schema.to_notation(),
                "subschema": subschema.to_notation(),
                "lossless": implied,
            }
        )
        return 0 if implied else 1
    print(f"D  = {schema}")
    print(f"D' = {subschema}")
    print(f"⋈D implies that D' has a lossless join: {implied}")
    return 0 if implied else 1


def _tableau(
    schema_text: str,
    target_text: str,
    attribute_separator: Optional[str],
    as_json: bool,
) -> int:
    analysis = analyze(schema_text, attribute_separator=attribute_separator)
    target = parse_schema(target_text, attribute_separator=attribute_separator)
    target_relation = target.attributes
    result = analysis.canonical_connection_result(target_relation)
    minimization = result.minimization
    standard = result.standard
    minimal = minimization.minimal
    if as_json:
        _emit_json(
            {
                "schema": analysis.schema.to_notation(),
                "target": target_relation.to_notation(),
                "columns": list(standard.columns),
                "rows": len(standard),
                "minimal_rows": len(minimal),
                "kept_rows": list(minimization.kept_rows),
                "removed_rows": list(minimization.removed_rows),
                "canonical_connection": result.connection.to_notation(),
            }
        )
        return 0
    print(f"D  = {analysis.schema}")
    print(f"X  = {target_relation.to_notation()}")
    print()
    print(f"standard tableau Tab(D, X) ({len(standard)} rows):")
    print(standard.render())
    print()
    if minimization.removed_count == 0:
        print("already minimal; no rows removed")
    else:
        removed = ", ".join(f"r{index}" for index in minimization.removed_rows)
        print(f"minimization removed {minimization.removed_count} rows ({removed}):")
        print(minimal.render())
    print()
    print(f"CC(D, X) = {result.connection}")
    return 0


def _load_state(data_path: str, schema) -> "DatabaseState":
    """Read a database state from a JSON file (or stdin with ``-``).

    The payload is a list with one entry per relation schema, each entry a
    list of rows given as attribute -> value objects (a ``{"relations":
    [...]}`` wrapper is also accepted).
    """
    from .relational import DatabaseState, Relation

    if data_path == "-":
        payload = json.load(sys.stdin)
    else:
        with open(data_path) as handle:
            payload = json.load(handle)
    if isinstance(payload, dict):
        payload = payload.get("relations", payload)
    if not isinstance(payload, list) or len(payload) != len(schema):
        raise SystemExit(
            f"--data must hold one rows-list per relation "
            f"({len(schema)} expected)"
        )
    relations = [
        Relation.from_dicts(relation_schema, rows)
        for relation_schema, rows in zip(schema.relations, payload)
    ]
    return DatabaseState(schema, relations)


def _query(arguments: "argparse.Namespace", attribute_separator: Optional[str]) -> int:
    """``repro query``: evaluate ``π_X(⋈ D)`` through the engine façade."""
    import time

    from .relational.universal import random_ur_database

    as_json = arguments.json
    catalog = None
    if arguments.catalog is not None or os.environ.get("REPRO_CATALOG_DIR"):
        from .engine.catalog import resolve_catalog

        catalog = resolve_catalog(arguments.catalog)
    analysis = analyze(
        arguments.schema,
        attribute_separator=attribute_separator,
        catalog=catalog,
    )
    schema = analysis.schema
    target = parse_schema(
        arguments.target, attribute_separator=attribute_separator
    ).attributes
    # Cyclic schemas plan through their treefication (engine.cyclic) and
    # serve on the same backends; tree schemas keep the direct Yannakakis
    # plan, which has no prologue to pay.
    cyclic = len(schema) > 0 and analysis.is_cyclic
    if cyclic:
        prepared = analysis.prepare_cyclic(target)
    else:
        prepared = analysis.prepare(target)
    if catalog is not None:
        # Store after preparing, so the record carries the qual tree / tree
        # projection this invocation just planned.
        catalog.store(analysis)

    if arguments.data is not None and arguments.random is not None:
        raise SystemExit("--data and --random are mutually exclusive")
    if arguments.data is None and arguments.random is None:
        raise SystemExit("query needs a database state: pass --data FILE or --random N")
    if arguments.data is not None:
        if arguments.states != 1:
            raise SystemExit("--states requires --random (a --data file is one state)")
        states = [_load_state(arguments.data, schema)]
    else:
        states = [
            random_ur_database(
                schema,
                tuple_count=arguments.random,
                domain_size=arguments.domain,
                rng=arguments.seed + index,
            )
            for index in range(max(arguments.states, 1))
        ]

    if arguments.max_inflight is not None and not arguments.stream:
        raise SystemExit("--max-inflight requires --stream")
    if not arguments.stream:
        # The service routes 'auto' adaptively, so every parallel knob is
        # meaningful under --stream; without it they bind to the pool and
        # therefore require an explicit parallel backend.
        if arguments.workers is not None and arguments.backend != "parallel":
            raise SystemExit("--workers requires --backend parallel (or --stream)")
        if arguments.backend != "parallel" and (
            arguments.shard_timeout is not None
            or arguments.retries is not None
            or arguments.failure_policy is not None
            or arguments.transport is not None
        ):
            raise SystemExit(
                "--shard-timeout/--retries/--failure-policy/--transport "
                "require --backend parallel (or --stream)"
            )

    stream_info: Optional[Dict[str, Any]] = None
    stream_errors: Dict[int, BaseException] = {}
    if arguments.stream:
        from .engine import QueryService

        start = time.perf_counter()
        first_item_s: Optional[float] = None
        runs: List[Any] = [None] * len(states)
        with QueryService(
            workers=arguments.workers,
            transport=arguments.transport,
            max_inflight_states=arguments.max_inflight,
            shard_timeout=arguments.shard_timeout,
            max_retries=arguments.retries,
            failure_policy=arguments.failure_policy or "raise",
            catalog=catalog,
        ) as service:
            streamed = service.stream(prepared, states, backend=arguments.backend)
            for item in streamed:
                if first_item_s is None:
                    first_item_s = time.perf_counter() - start
                if item.ok:
                    runs[item.index] = item.run
                else:
                    stream_errors[item.index] = item.error
        elapsed = time.perf_counter() - start
        stream_info = {
            "routing": streamed.decision.as_dict(),
            "transport": streamed.transport,
            "shard_count": streamed.shard_count,
            "first_item_s": first_item_s,
        }
    else:
        start = time.perf_counter()
        runs = prepared.execute_many(
            states,
            backend=arguments.backend,
            workers=arguments.workers,
            shard_timeout=arguments.shard_timeout,
            max_retries=arguments.retries,
            failure_policy=arguments.failure_policy,
            transport=arguments.transport,
        )
        elapsed = time.perf_counter() - start
    # Under --failure-policy degrade, quarantined input positions come back
    # as None; any surviving run carries the batch's shared stats.
    run = next((r for r in runs if r is not None), None)
    if run is None:
        raise SystemExit("no state could be executed (all quarantined)")
    stats = run.stats
    parallel_stats = None
    if run.backend == "parallel":
        # Gated on the backend so classic/compiled queries never pay the
        # multiprocessing import the engine package defers on purpose.
        from .engine import ParallelStats

        if isinstance(stats, ParallelStats):
            parallel_stats = stats

    if as_json:
        payload: Dict[str, Any] = {
            "schema": schema.to_notation(),
            "target": target.to_notation(),
            "backend": run.backend,
            "states": len(states),
            "elapsed_s": elapsed,
            "semijoin_count": run.semijoin_count,
            "join_count": run.join_count,
            "answer_rows": [
                None if r is None else len(r.result) for r in runs
            ],
            "max_intermediate_size": max(
                r.max_intermediate_size for r in runs if r is not None
            ),
            "result": run.result.to_dicts() if len(states) == 1 else None,
            "cyclic": cyclic,
        }
        if cyclic:
            choice = prepared.projection_choice
            payload["tree_projection"] = prepared.tree_projection.to_notation()
            payload["treefication_width"] = prepared.treefication_width
            payload["projection_method"] = choice.method
            payload["projection_minimal"] = choice.minimal
            payload["guard_semijoins"] = prepared.guard_semijoins
        if catalog is not None:
            payload["catalog_stats"] = catalog.stats.as_dict()
        if stream_info is not None:
            payload["stream"] = dict(stream_info)
            if stream_errors:
                payload["stream"]["errors"] = {
                    str(index): f"{type(error).__name__}: {error}"
                    for index, error in sorted(stream_errors.items())
                }
        if stats is not None:
            payload["compiled_stats"] = {
                "states_executed": stats.states,
                "states_deduped": stats.deduped_states,
                "slots_encoded": stats.encoded_slots,
                "slots_from_cache": stats.cached_slots,
                "keyset_builds": stats.total_keyset_builds(),
                "bucket_builds": stats.total_bucket_builds(),
                "interner_resets": stats.interner_resets,
            }
        if parallel_stats is not None:
            payload["parallel_stats"] = {
                "workers": parallel_stats.workers,
                "shard_count": parallel_stats.shard_count,
                "shard_sizes": parallel_stats.shard_sizes,
                "plan_compiles": parallel_stats.plan_compiles,
                "transport": parallel_stats.transport,
                "shm_segments": parallel_stats.shm_segments,
                "shm_bytes": parallel_stats.shm_bytes,
                "routed_in_process": parallel_stats.routed_in_process,
                "per_worker": {
                    str(pid): dict(info)
                    for pid, info in parallel_stats.per_worker.items()
                },
                "failure_stats": {
                    "failure_policy": parallel_stats.failure_policy,
                    "retries": parallel_stats.retries,
                    "respawns": parallel_stats.respawns,
                    "timeouts": parallel_stats.timeouts,
                    "bisections": parallel_stats.bisections,
                    "fallback_runs": parallel_stats.fallback_runs,
                    "quarantined": parallel_stats.quarantined,
                    "worker_crashes": {
                        str(pid): count
                        for pid, count in parallel_stats.worker_crashes.items()
                    },
                },
            }
        _emit_json(payload)
        return 0

    print(f"D  = {schema}")
    print(f"X  = {target.to_notation()}")
    if cyclic:
        choice = prepared.projection_choice
        minimal = ", minimal" if choice.minimal else ""
        print(
            f"plan: cyclic via tree projection "
            f"{prepared.tree_projection.to_notation()} "
            f"(width {prepared.treefication_width}, {choice.method}{minimal}); "
            f"{prepared.prologue_joins} node joins + "
            f"{prepared.guard_semijoins} guard semijoins, then "
            f"{len(prepared.inner.semijoin_steps)} semijoins, "
            f"{len(prepared.inner.join_steps)} joins (root N{prepared.root})"
        )
    else:
        print(f"plan: {len(prepared.semijoin_steps)} semijoins, "
              f"{len(prepared.join_steps)} joins (root R{prepared.root})")
    print(f"backend: {run.backend}; {len(states)} state(s) in {elapsed * 1e3:.2f} ms")
    if catalog is not None:
        cstats = catalog.stats
        mode = " (degraded: in-memory only)" if cstats.disabled else ""
        print(
            f"catalog: {cstats.hits} hit(s), {cstats.misses} miss(es), "
            f"{cstats.stores} store(s), {cstats.quarantined} quarantined, "
            f"{cstats.degraded} degraded op(s){mode}"
        )
    if stream_info is not None:
        routing = stream_info["routing"]
        first = stream_info["first_item_s"]
        first_text = "no items" if first is None else (
            f"first result after {first * 1e3:.2f} ms"
        )
        print(
            f"stream: routed {routing['backend']} ({routing['rule']}), "
            f"transport {stream_info['transport']}, "
            f"{stream_info['shard_count']} shard(s), {first_text}"
        )
        if stream_errors:
            positions = ", ".join(str(index) for index in sorted(stream_errors))
            print(f"stream errors at positions: {positions}")
    if stats is not None and len(states) > 1:
        print(
            f"batch: {stats.states} executed, {stats.deduped_states} deduped, "
            f"{stats.cached_slots} slot encodings reused"
        )
    if parallel_stats is not None:
        sizes = ", ".join(str(size) for size in parallel_stats.shard_sizes)
        print(
            f"parallel: {parallel_stats.workers} workers, "
            f"{parallel_stats.shard_count} shards [{sizes}], "
            f"{parallel_stats.plan_compiles} plan compile(s) across "
            f"{len(parallel_stats.per_worker)} worker(s)"
        )
        recovered = (
            parallel_stats.retries
            + parallel_stats.respawns
            + parallel_stats.fallback_runs
            + len(parallel_stats.quarantined)
        )
        if recovered:
            print(
                f"recovery: {parallel_stats.retries} retries, "
                f"{parallel_stats.respawns} pool respawns, "
                f"{parallel_stats.timeouts} timeouts, "
                f"{parallel_stats.bisections} bisections, "
                f"{parallel_stats.fallback_runs} in-process fallbacks, "
                f"quarantined positions: {parallel_stats.quarantined or 'none'}"
            )
    if len(states) == 1:
        print(f"answer ({len(run.result)} rows):")
        print(run.result.render(max_rows=arguments.max_rows))
    else:
        sizes = ", ".join(
            "-" if r is None else str(len(r.result)) for r in runs[:10]
        )
        more = "..." if len(runs) > 10 else ""
        print(f"answer sizes: [{sizes}{more}]")
    return 0


def _catalog(arguments: "argparse.Namespace") -> int:
    """``repro catalog {ls,verify,gc}``: catalog inspection and maintenance."""
    from .engine.catalog import PlanCatalog

    as_json = arguments.json
    try:
        catalog = PlanCatalog(arguments.directory, create=False)
    except Exception as error:
        raise SystemExit(str(error))

    if arguments.action == "ls":
        infos = catalog.records()
        if as_json:
            _emit_json(
                {
                    "directory": catalog.directory,
                    "records": [
                        {
                            "name": info.name,
                            "ok": info.ok,
                            "schema": info.schema,
                            "artifacts": info.artifacts,
                            "size": info.size,
                            "error": info.error,
                        }
                        for info in infos
                    ],
                }
            )
            return 0
        if not infos:
            print(f"{catalog.directory}: no records")
            return 0
        for info in infos:
            if info.ok:
                print(
                    f"{info.name}  {info.schema}  "
                    f"{info.artifacts} artifact(s), {info.size} bytes"
                )
            else:
                print(f"{info.name}  CORRUPT: {info.error}")
        return 0

    if arguments.action == "verify":
        report = catalog.verify()
        if as_json:
            _emit_json({"directory": catalog.directory, **report})
        else:
            print(
                f"{catalog.directory}: {report['checked']} record(s) checked, "
                f"{report['ok']} ok, {len(report['quarantined'])} quarantined"
            )
            for name in report["quarantined"]:
                print(f"  quarantined: {name} -> {name}.corrupt")
        return 0 if not report["quarantined"] else 1

    if arguments.action == "gc":
        report = catalog.gc(keep=arguments.keep)
        if as_json:
            _emit_json({"directory": catalog.directory, **report})
        else:
            print(
                f"{catalog.directory}: removed "
                f"{report['removed_corrupt']} quarantined, "
                f"{report['removed_temp']} temp file(s), "
                f"{report['removed_records']} pruned record(s)"
            )
        return 0

    raise SystemExit(f"unknown catalog action {arguments.action!r}")


def _treefy(schema_text: str, attribute_separator: Optional[str], as_json: bool) -> int:
    analysis = analyze(schema_text, attribute_separator=attribute_separator)
    result = analysis.treefication
    if as_json:
        _emit_json(
            {
                "schema": analysis.schema.to_notation(),
                "already_tree": result.was_already_tree,
                "added_relation": (
                    None
                    if result.was_already_tree
                    else result.added_relation.to_notation()
                ),
                "treefied": result.treefied.to_notation(),
            }
        )
        return 0
    print(f"D = {analysis.schema}")
    if result.was_already_tree:
        print("already a tree schema; nothing to add")
    else:
        print(f"add U(GR(D)) = {result.added_relation.to_notation()}")
        print(f"treefied schema: {result.treefied}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the ``repro`` console script."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    separator = arguments.attribute_separator
    as_json = getattr(arguments, "json", False)
    if arguments.command == "analyze":
        return _analyze(arguments.schema, separator, as_json)
    if arguments.command == "cc":
        return _canonical_connection(
            arguments.schema, arguments.target, separator, as_json
        )
    if arguments.command == "lossless":
        return _lossless(arguments.schema, arguments.subschema, separator, as_json)
    if arguments.command == "treefy":
        return _treefy(arguments.schema, separator, as_json)
    if arguments.command == "tableau":
        return _tableau(arguments.schema, arguments.target, separator, as_json)
    if arguments.command == "query":
        return _query(arguments, separator)
    if arguments.command == "catalog":
        return _catalog(arguments)
    parser.error(f"unknown command {arguments.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
