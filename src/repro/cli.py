"""Command-line interface: schema analysis from the shell.

Usage (after ``pip install -e .`` or with ``python -m repro``):

.. code-block:: console

   $ python -m repro analyze "ab,bc,ac"
   $ python -m repro cc "abg,bcg,acf,ad,de,ea" abc
   $ python -m repro lossless "abc,ab,bc" "ab,bc"
   $ python -m repro treefy "ab,bc,cd,da"

Schemas are written in the paper's notation (relations separated by commas,
single-character attributes concatenated); multi-character attribute names
can be used by passing ``--attribute-separator``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import jd_implies, plan_join_query
from .hypergraph import (
    find_qual_tree,
    gyo_reduce,
    is_beta_acyclic,
    is_berge_acyclic,
    is_gamma_acyclic,
    is_tree_schema,
    parse_schema,
)
from .tableau import canonical_connection
from .treefication import single_relation_treefication

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Create the argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Analyze database schemas with the tools of Goodman, Shmueli & Tay: "
            "GYO reductions, canonical connections, tree/cyclic classification, "
            "lossless joins and treefication."
        ),
    )
    parser.add_argument(
        "--attribute-separator",
        default=None,
        help="separator between attribute names inside a relation "
        "(default: none, every character is one attribute)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser("analyze", help="classify a schema and print its structure")
    analyze.add_argument("schema", help='database schema, e.g. "ab,bc,ac"')

    connection = commands.add_parser("cc", help="compute the canonical connection CC(D, X)")
    connection.add_argument("schema", help="database schema D")
    connection.add_argument("target", help="query target X, e.g. abc")

    lossless = commands.add_parser("lossless", help="check whether ⋈D implies ⋈D'")
    lossless.add_argument("schema", help="database schema D")
    lossless.add_argument("subschema", help="sub-schema D' (each relation contained in some relation of D)")

    treefy = commands.add_parser("treefy", help="single-relation treefication (Corollary 3.2)")
    treefy.add_argument("schema", help="database schema D")

    return parser


def _analyze(schema_text: str, attribute_separator: Optional[str]) -> int:
    schema = parse_schema(schema_text, attribute_separator=attribute_separator)
    trace = gyo_reduce(schema)
    tree = find_qual_tree(schema)
    print(f"schema: {schema}")
    print(f"relations: {len(schema)}, attributes: {len(schema.attributes)}")
    print(f"tree schema (alpha-acyclic): {is_tree_schema(schema)}")
    print(f"gamma-acyclic: {is_gamma_acyclic(schema)}")
    print(f"beta-acyclic: {is_beta_acyclic(schema)}")
    print(f"Berge-acyclic: {is_berge_acyclic(schema)}")
    print(f"GYO residue GR(D): {trace.result.to_notation() or '(empty)'}")
    if tree is not None:
        print(f"qual tree: {tree.to_edge_notation()}")
    else:
        treefied = single_relation_treefication(schema)
        print(
            "cyclic; smallest treefying relation (Corollary 3.2): "
            f"{treefied.added_relation.to_notation()}"
        )
    return 0


def _canonical_connection(
    schema_text: str, target_text: str, attribute_separator: Optional[str]
) -> int:
    schema = parse_schema(schema_text, attribute_separator=attribute_separator)
    target = parse_schema(target_text, attribute_separator=attribute_separator)
    target_relation = target.attributes
    connection = canonical_connection(schema, target_relation)
    plan = plan_join_query(schema, target_relation)
    print(f"D  = {schema}")
    print(f"X  = {target_relation.to_notation()}")
    print(f"CC(D, X) = {connection}")
    irrelevant = [schema[index].to_notation() for index in plan.irrelevant_relations]
    print(f"irrelevant relations: {irrelevant or 'none'}")
    return 0


def _lossless(
    schema_text: str, subschema_text: str, attribute_separator: Optional[str]
) -> int:
    schema = parse_schema(schema_text, attribute_separator=attribute_separator)
    subschema = parse_schema(subschema_text, attribute_separator=attribute_separator)
    implied = jd_implies(schema, subschema)
    print(f"D  = {schema}")
    print(f"D' = {subschema}")
    print(f"⋈D implies that D' has a lossless join: {implied}")
    return 0 if implied else 1


def _treefy(schema_text: str, attribute_separator: Optional[str]) -> int:
    schema = parse_schema(schema_text, attribute_separator=attribute_separator)
    result = single_relation_treefication(schema)
    print(f"D = {schema}")
    if result.was_already_tree:
        print("already a tree schema; nothing to add")
    else:
        print(f"add U(GR(D)) = {result.added_relation.to_notation()}")
        print(f"treefied schema: {result.treefied}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the ``repro`` console script."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    separator = arguments.attribute_separator
    if arguments.command == "analyze":
        return _analyze(arguments.schema, separator)
    if arguments.command == "cc":
        return _canonical_connection(arguments.schema, arguments.target, separator)
    if arguments.command == "lossless":
        return _lossless(arguments.schema, arguments.subschema, separator)
    if arguments.command == "treefy":
        return _treefy(arguments.schema, separator)
    parser.error(f"unknown command {arguments.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
