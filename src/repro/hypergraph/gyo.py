"""GYO (Graham–Yu–Ozsoyoglu) reductions.

Section 3.3 of the paper defines two operations on a database schema ``D``
with respect to a set ``X`` of *sacred* attributes:

1. **Isolated attribute deletion** — delete an attribute ``A ∉ X`` that
   belongs to exactly one relation schema of ``D``.
2. **Subset elimination** — delete a relation schema contained in another
   relation schema of ``D``.

``D' ∈ pGR(D, X)`` (a *partial GYO reduction*) when ``D'`` is obtained from
``D`` by zero or more such operations, and ``D' = GR(D, X)`` (*the* GYO
reduction) when neither operation applies to ``D'`` any more.  Maier and
Ullman proved that ``GR(D, X)`` is unique and reduced, which is why the
fixpoint computed here does not depend on the order in which operations are
applied.

Corollary 3.1: ``D`` is a tree schema iff ``GR(D) = ∅`` — with the operations
above the reduction of a tree schema ends with (at most) a single relation
schema whose attribute set is empty, so the test implemented by
:func:`is_tree_schema` is ``U(GR(D)) = ∅``.

The module exposes three layers:

* :class:`GYOReduction` — an interactive, step-by-step reducer that validates
  each operation (used to realize *partial* reductions and the constructions
  in the proofs of Theorems 3.1 and 3.2);
* :func:`gyo_reduce` — run the reduction to completion and return a full
  :class:`GYOTrace` (operations, survivor map, result);
* :func:`gyo_reduction`, :func:`is_tree_schema`, :func:`is_cyclic_schema` —
  convenience wrappers returning only the final schema / classification.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..exceptions import GYOError, SearchBudgetExceeded
from .schema import Attribute, DatabaseSchema, RelationSchema

__all__ = [
    "AttributeDeletion",
    "SubsetElimination",
    "GYOStep",
    "GYOTrace",
    "GYOReduction",
    "gyo_reduce",
    "gyo_reduction",
    "is_tree_schema",
    "is_cyclic_schema",
    "is_partial_gyo_reduction",
]


@dataclass(frozen=True)
class AttributeDeletion:
    """Operation (1): delete isolated attribute ``attribute`` from relation
    ``relation_index`` (an index into the *original* schema)."""

    relation_index: int
    attribute: Attribute

    def describe(self) -> str:
        """Human readable description of the step."""
        return f"delete attribute {self.attribute!r} from relation #{self.relation_index}"


@dataclass(frozen=True)
class SubsetElimination:
    """Operation (2): eliminate relation ``removed_index`` because its current
    attribute set is contained in that of relation ``witness_index``."""

    removed_index: int
    witness_index: int

    def describe(self) -> str:
        """Human readable description of the step."""
        return (
            f"eliminate relation #{self.removed_index} "
            f"(subset of relation #{self.witness_index})"
        )


GYOStep = Union[AttributeDeletion, SubsetElimination]


@dataclass(frozen=True)
class GYOTrace:
    """The complete record of a GYO reduction.

    Attributes
    ----------
    original:
        The schema the reduction started from.
    sacred:
        The attribute set ``X`` that may never be deleted.
    steps:
        The operations applied, in order.
    result:
        ``GR(original, sacred)`` — the schema formed by the surviving
        relations with their remaining attributes.
    survivors:
        Original indices of the surviving relations, aligned with
        ``result.relations``.
    parents:
        ``parents[i] = j`` when relation ``i`` was subset-eliminated with
        witness ``j``; survivors are absent from the mapping.  For a tree
        schema this parent relation is a qual tree (see
        :mod:`repro.hypergraph.join_tree`).
    """

    original: DatabaseSchema
    sacred: RelationSchema
    steps: Tuple[GYOStep, ...]
    result: DatabaseSchema
    survivors: Tuple[int, ...]
    parents: Dict[int, int] = field(default_factory=dict)

    @property
    def is_fully_reduced_to_empty(self) -> bool:
        """True when no attribute survives, i.e. ``U(GR(D, X)) ⊆ X`` with X=∅
        meaning the schema is a tree schema (Corollary 3.1)."""
        return not self.result.attributes.difference(self.sacred)

    def eliminated_indices(self) -> Tuple[int, ...]:
        """Original indices of relations removed by subset elimination."""
        return tuple(sorted(self.parents))

    def elimination_order(self) -> Tuple[Tuple[int, int], ...]:
        """The subset eliminations as ``(removed, witness)`` pairs in order."""
        return tuple(
            (step.removed_index, step.witness_index)
            for step in self.steps
            if isinstance(step, SubsetElimination)
        )


class GYOReduction:
    """A mutable, validating GYO reducer supporting partial reductions.

    The reducer keeps the *original* index of every relation schema as its
    identity, so traces and join trees can always be related back to the input
    schema even though attribute deletions change the relation contents.

    Examples
    --------
    >>> from repro.hypergraph.parsing import parse_schema
    >>> reducer = GYOReduction(parse_schema("ab,bc,cd"))
    >>> reducer.run_to_completion().result().attributes
    RelationSchema('{}')
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        sacred: Union[RelationSchema, Iterable[Attribute]] = (),
    ) -> None:
        if not isinstance(schema, DatabaseSchema):
            schema = DatabaseSchema(schema)
        self._original = schema
        self._sacred = (
            sacred if isinstance(sacred, RelationSchema) else RelationSchema(sacred)
        )
        self._current: Dict[int, Set[Attribute]] = {
            index: set(relation.attributes)
            for index, relation in enumerate(schema.relations)
        }
        self._steps: List[GYOStep] = []
        self._parents: Dict[int, int] = {}
        # Relations whose attribute set shrank (operation 1).  Survivors not
        # in this set still equal their original schema object, which
        # ``current_schema`` reuses instead of rebuilding — sacred-set
        # reductions (GR(D, X)) typically leave most relations untouched, so
        # packaging their result used to dominate the whole reduction.
        self._modified: Set[int] = set()

    # -- inspection -----------------------------------------------------------

    @property
    def original(self) -> DatabaseSchema:
        """The schema the reduction started from."""
        return self._original

    @property
    def sacred(self) -> RelationSchema:
        """The sacred attribute set ``X``."""
        return self._sacred

    @property
    def steps(self) -> Tuple[GYOStep, ...]:
        """The operations applied so far."""
        return tuple(self._steps)

    def alive_indices(self) -> Tuple[int, ...]:
        """Original indices of the relations not yet eliminated."""
        return tuple(sorted(self._current))

    def current_attributes(self, index: int) -> RelationSchema:
        """The current (possibly attribute-deleted) content of relation ``index``."""
        self._require_alive(index)
        if index not in self._modified:
            return self._original[index]
        return RelationSchema(self._current[index])

    def current_schema(self) -> DatabaseSchema:
        """The current partially reduced schema, in original index order.

        Survivors untouched by attribute deletions contribute their original
        :class:`RelationSchema` objects verbatim; when no operation applied
        at all the original schema itself is returned.  This keeps the trace
        packaging of no-op and sacred-set reductions near-free instead of
        rebuilding every relation schema.
        """
        if not self._steps:
            return self._original
        originals = self._original.relations
        modified = self._modified
        current = self._current
        return DatabaseSchema(
            RelationSchema(current[index]) if index in modified else originals[index]
            for index in sorted(current)
        )

    def result(self) -> DatabaseSchema:
        """Alias of :meth:`current_schema` (meaningful once complete)."""
        return self.current_schema()

    def _require_alive(self, index: int) -> None:
        if index not in self._current:
            raise GYOError(f"relation #{index} has already been eliminated")

    # -- operation validation ----------------------------------------------------

    def attribute_occurrence_count(self, attribute: Attribute) -> int:
        """Number of currently alive relations containing ``attribute``."""
        return sum(1 for attrs in self._current.values() if attribute in attrs)

    def can_delete_attribute(self, index: int, attribute: Attribute) -> bool:
        """True when operation (1) applies to ``attribute`` in relation ``index``."""
        if index not in self._current:
            return False
        if attribute in self._sacred:
            return False
        if attribute not in self._current[index]:
            return False
        return self.attribute_occurrence_count(attribute) == 1

    def can_eliminate_subset(self, removed: int, witness: int) -> bool:
        """True when operation (2) applies: current content of ``removed`` is a
        subset of the current content of ``witness``."""
        if removed == witness:
            return False
        if removed not in self._current or witness not in self._current:
            return False
        return self._current[removed] <= self._current[witness]

    # -- operations ----------------------------------------------------------------

    def delete_attribute(self, index: int, attribute: Attribute) -> AttributeDeletion:
        """Apply operation (1), recording and returning the step."""
        self._require_alive(index)
        if attribute in self._sacred:
            raise GYOError(f"attribute {attribute!r} is sacred and cannot be deleted")
        if attribute not in self._current[index]:
            raise GYOError(
                f"attribute {attribute!r} does not occur in relation #{index}"
            )
        if self.attribute_occurrence_count(attribute) != 1:
            raise GYOError(
                f"attribute {attribute!r} occurs in more than one relation; "
                "isolated attribute deletion does not apply"
            )
        self._current[index].discard(attribute)
        self._modified.add(index)
        step = AttributeDeletion(relation_index=index, attribute=attribute)
        self._steps.append(step)
        return step

    def eliminate_subset(self, removed: int, witness: int) -> SubsetElimination:
        """Apply operation (2), recording and returning the step."""
        self._require_alive(removed)
        self._require_alive(witness)
        if removed == witness:
            raise GYOError("a relation cannot be eliminated using itself as witness")
        if not self._current[removed] <= self._current[witness]:
            raise GYOError(
                f"relation #{removed} is not a subset of relation #{witness}"
            )
        del self._current[removed]
        self._parents[removed] = witness
        step = SubsetElimination(removed_index=removed, witness_index=witness)
        self._steps.append(step)
        return step

    def apply(self, step: GYOStep) -> GYOStep:
        """Apply a pre-built step (useful for replaying recorded traces)."""
        if isinstance(step, AttributeDeletion):
            return self.delete_attribute(step.relation_index, step.attribute)
        if isinstance(step, SubsetElimination):
            return self.eliminate_subset(step.removed_index, step.witness_index)
        raise GYOError(f"unknown GYO step type: {type(step).__name__}")

    # -- search for applicable operations ---------------------------------------------

    def applicable_attribute_deletions(self) -> List[AttributeDeletion]:
        """All currently applicable isolated-attribute deletions."""
        occurrence: Dict[Attribute, List[int]] = {}
        for index in sorted(self._current):
            for attribute in self._current[index]:
                occurrence.setdefault(attribute, []).append(index)
        deletions = []
        for attribute in sorted(occurrence):
            indices = occurrence[attribute]
            if len(indices) == 1 and attribute not in self._sacred:
                deletions.append(
                    AttributeDeletion(relation_index=indices[0], attribute=attribute)
                )
        return deletions

    def applicable_subset_eliminations(self) -> List[SubsetElimination]:
        """All currently applicable subset eliminations (quadratic scan)."""
        eliminations = []
        alive = sorted(self._current)
        for removed in alive:
            for witness in alive:
                if removed != witness and self.can_eliminate_subset(removed, witness):
                    eliminations.append(
                        SubsetElimination(removed_index=removed, witness_index=witness)
                    )
        return eliminations

    def applicable_operations(self) -> List[GYOStep]:
        """Every operation applicable right now (deletions first)."""
        ops: List[GYOStep] = []
        ops.extend(self.applicable_attribute_deletions())
        ops.extend(self.applicable_subset_eliminations())
        return ops

    def is_complete(self) -> bool:
        """True when no operation applies, i.e. the current schema is
        ``GR(original, sacred)``.

        Runs one occurrence-count pass for isolated attributes, then a
        subset scan restricted to relations sharing each candidate's rarest
        attribute, so completeness checks stay near-linear on the workload
        families instead of scanning every relation pair.
        """
        occurrence: Dict[Attribute, List[int]] = {}
        for index, attrs in self._current.items():
            for attribute in attrs:
                occurrence.setdefault(attribute, []).append(index)
        for attribute, holders in occurrence.items():
            if len(holders) == 1 and attribute not in self._sacred:
                return False
        alive_count = len(self._current)
        for index, attrs in self._current.items():
            if not attrs:
                # An attribute-free relation is a subset of any other relation.
                if alive_count > 1:
                    return False
                continue
            pivot = min(attrs, key=lambda a: len(occurrence[a]))
            for witness in occurrence[pivot]:
                if witness != index and attrs <= self._current[witness]:
                    return False
        return True

    # -- running to completion ------------------------------------------------------

    def run_to_completion(self) -> "GYOReduction":
        """Apply operations until the fixpoint ``GR(original, sacred)``.

        The implementation is worklist-driven and near-linear in the total
        schema size: attribute occurrence sets are maintained incrementally,
        a queue of isolated attributes drives operation (1), and a queue of
        "dirty" (shrunk) relations drives operation (2).  Relations can only
        *lose* attributes, so a relation needs a new subset check exactly when
        it shrinks, and an attribute needs an isolation check exactly when its
        occurrence count drops to one — no full rescans between rounds.  The
        resulting fixpoint is unique (Maier & Ullman), so the operation order
        chosen here does not affect the result.
        """
        current = self._current
        sacred = self._sacred
        occurrence: Dict[Attribute, Set[int]] = {}
        for index, attrs in current.items():
            for attribute in attrs:
                occurrence.setdefault(attribute, set()).add(index)

        isolated: deque = deque(
            sorted(
                attribute
                for attribute, holders in occurrence.items()
                if len(holders) == 1 and attribute not in sacred
            )
        )
        queued_attributes = set(isolated)
        dirty: deque = deque(sorted(current))
        queued_relations = set(dirty)

        def mark_dirty(index: int) -> None:
            if index not in queued_relations:
                queued_relations.add(index)
                dirty.append(index)

        def mark_isolated(attribute: Attribute) -> None:
            if attribute not in queued_attributes and attribute not in sacred:
                queued_attributes.add(attribute)
                isolated.append(attribute)

        while isolated or dirty:
            # Drain isolated-attribute deletions first: they are the cheap
            # operation and each one can unlock a subset elimination.
            while isolated:
                attribute = isolated.popleft()
                queued_attributes.discard(attribute)
                holders = occurrence.get(attribute)
                if holders is None or len(holders) != 1:
                    continue
                (index,) = holders
                current[index].discard(attribute)
                self._modified.add(index)
                del occurrence[attribute]
                self._steps.append(
                    AttributeDeletion(relation_index=index, attribute=attribute)
                )
                mark_dirty(index)
            if not dirty:
                break
            index = dirty.popleft()
            queued_relations.discard(index)
            if index not in current:
                continue
            attrs = current[index]
            if attrs:
                # Only relations sharing the rarest attribute can be
                # supersets.  Open-coded min: this runs once per dirty
                # relation even on no-op (sacred-set) reductions, and a
                # keyed ``min`` pays a lambda frame per attribute.
                candidates: Optional[Iterable[int]] = None
                best = -1
                for attribute in attrs:
                    holders = occurrence[attribute]
                    count = len(holders)
                    if candidates is None or count < best:
                        candidates = holders
                        best = count
            else:
                candidates = current
            # First match wins (any witness yields the same unique fixpoint);
            # iteration order over int indices is deterministic, and not
            # copying/sorting the candidate set keeps stars near-linear.
            witness: Optional[int] = None
            for candidate in candidates:
                if candidate != index and attrs <= current[candidate]:
                    witness = candidate
                    break
            if witness is None:
                continue
            for attribute in sorted(attrs):
                holders = occurrence[attribute]
                holders.discard(index)
                if len(holders) == 1:
                    mark_isolated(attribute)
            del current[index]
            self._parents[index] = witness
            self._steps.append(
                SubsetElimination(removed_index=index, witness_index=witness)
            )
        return self

    def trace(self) -> GYOTrace:
        """Package the reduction performed so far as an immutable trace."""
        survivors = self.alive_indices()
        return GYOTrace(
            original=self._original,
            sacred=self._sacred,
            steps=tuple(self._steps),
            result=self.current_schema(),
            survivors=survivors,
            parents=dict(self._parents),
        )


def gyo_reduce(
    schema: DatabaseSchema,
    sacred: Union[RelationSchema, Iterable[Attribute]] = (),
) -> GYOTrace:
    """Compute ``GR(schema, sacred)`` and return the full trace.

    Consults the engine façade's cache (:func:`repro.engine.analyze`): when
    the schema has an :class:`~repro.engine.AnalyzedSchema`, its memoized
    trace is reused.  On a miss the reduction runs directly *without*
    creating a cache entry — this function is the inner loop of brute-force
    searches over thousands of candidate schemas (treefication,
    tree projections), which must not flood the analysis LRU.
    """
    from ..engine.analysis import peek_analysis  # deferred: the engine sits above us

    analysis = peek_analysis(schema)
    if analysis is not None:
        return analysis.gyo_trace(sacred)
    reducer = GYOReduction(schema, sacred)
    reducer.run_to_completion()
    return reducer.trace()


def gyo_reduction(
    schema: DatabaseSchema,
    sacred: Union[RelationSchema, Iterable[Attribute]] = (),
) -> DatabaseSchema:
    """Compute ``GR(schema, sacred)`` and return only the resulting schema."""
    return gyo_reduce(schema, sacred).result


def is_tree_schema(schema: DatabaseSchema) -> bool:
    """Corollary 3.1: ``D`` is a tree schema iff its GYO reduction deletes
    every attribute (equivalently, in the literature, iff ``D`` is α-acyclic)."""
    return gyo_reduce(schema).is_fully_reduced_to_empty


def is_cyclic_schema(schema: DatabaseSchema) -> bool:
    """``D`` is cyclic iff it is not a tree schema."""
    return not is_tree_schema(schema)


def is_partial_gyo_reduction(
    schema: DatabaseSchema,
    sacred: Union[RelationSchema, Iterable[Attribute]],
    candidate: DatabaseSchema,
    *,
    budget: int = 200_000,
) -> bool:
    """Decide whether ``candidate ∈ pGR(schema, sacred)``.

    This performs a breadth-first search over the schemas reachable by GYO
    operations.  The state space can be exponential, so the search carries an
    explicit ``budget`` on the number of visited states and raises
    :class:`~repro.exceptions.SearchBudgetExceeded` when it is exhausted.
    Intended for verifying the paper's pGR-based statements on small schemas;
    the practical characterizations (Theorem 3.1) avoid pGR entirely.
    """
    sacred_schema = (
        sacred if isinstance(sacred, RelationSchema) else RelationSchema(sacred)
    )

    def canonical(state: Tuple[Tuple[int, FrozenSet[Attribute]], ...]):
        return state

    start = tuple(
        (index, relation.attributes)
        for index, relation in enumerate(schema.relations)
    )
    target = sorted(
        (relation.attributes for relation in candidate.relations),
        key=lambda attrs: (len(attrs), tuple(sorted(attrs))),
    )

    def matches(state) -> bool:
        contents = sorted(
            (attrs for _, attrs in state),
            key=lambda attrs: (len(attrs), tuple(sorted(attrs))),
        )
        return contents == target

    seen = {canonical(start)}
    frontier = [start]
    visited = 0
    while frontier:
        state = frontier.pop()
        visited += 1
        if visited > budget:
            raise SearchBudgetExceeded(
                f"pGR membership search exceeded budget of {budget} states"
            )
        if matches(state):
            return True
        alive = dict(state)
        occurrence: Dict[Attribute, List[int]] = {}
        for index, attrs in alive.items():
            for attribute in attrs:
                occurrence.setdefault(attribute, []).append(index)
        # Attribute deletions.
        for attribute, holders in occurrence.items():
            if len(holders) == 1 and attribute not in sacred_schema:
                index = holders[0]
                next_alive = dict(alive)
                next_alive[index] = frozenset(next_alive[index] - {attribute})
                next_state = tuple(sorted(next_alive.items()))
                if next_state not in seen:
                    seen.add(next_state)
                    frontier.append(next_state)
        # Subset eliminations.
        for removed, attrs in alive.items():
            for witness, other in alive.items():
                if removed != witness and attrs <= other:
                    next_alive = dict(alive)
                    del next_alive[removed]
                    next_state = tuple(sorted(next_alive.items()))
                    if next_state not in seen:
                        seen.add(next_state)
                        frontier.append(next_state)
    return False
