"""Berge acyclicity — the strictest rung of Fagin's acyclicity hierarchy.

The paper works with tree schemas (α-acyclicity) and Fagin's γ-acyclicity;
Fagin's hierarchy (cited as [7]) has two further degrees.  For completeness
the library also implements **Berge acyclicity**: a hypergraph is
Berge-acyclic iff its bipartite incidence graph (attributes on one side,
relation schemas on the other, an edge when the attribute occurs in the
relation) contains no cycle.  Equivalently, there is no *Berge cycle*
``(R_1, A_1, R_2, A_2, ..., R_m, A_m, R_1)`` with ``m >= 2``, distinct
relations, distinct attributes and ``A_i ∈ R_i ∩ R_{i+1}``.

The implication chain Berge ⇒ γ ⇒ β ⇒ α is exercised by the tests; note that
already two relations sharing two attributes (``ab``, ``ab``-like overlaps)
break Berge acyclicity while remaining γ-acyclic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .schema import Attribute, DatabaseSchema

__all__ = ["is_berge_acyclic", "find_berge_cycle"]


def _incidence_adjacency(schema: DatabaseSchema) -> Dict[object, Set[object]]:
    """Adjacency of the bipartite incidence graph.

    Relation nodes are ``("R", index)`` and attribute nodes ``("A", name)`` so
    the two sides can never collide.
    """
    adjacency: Dict[object, Set[object]] = {}
    for index, relation in enumerate(schema.relations):
        relation_node = ("R", index)
        adjacency.setdefault(relation_node, set())
        for attribute in relation.attributes:
            attribute_node = ("A", attribute)
            adjacency.setdefault(attribute_node, set())
            adjacency[relation_node].add(attribute_node)
            adjacency[attribute_node].add(relation_node)
    return adjacency


def is_berge_acyclic(schema: DatabaseSchema) -> bool:
    """True when the bipartite incidence graph of ``schema`` is a forest.

    Duplicate relation schemas with at least one attribute count as a Berge
    cycle of length two (the incidence graph has a multi-edge-like 4-cycle),
    matching the standard definition.
    """
    return find_berge_cycle(schema) is None


def find_berge_cycle(
    schema: DatabaseSchema,
) -> Optional[Tuple[Tuple[int, ...], Tuple[Attribute, ...]]]:
    """Find a Berge cycle, returned as ``(relation_indices, attributes)``.

    The search is a depth-first traversal of the incidence graph looking for
    any cycle; cycles alternate between relation and attribute nodes, so a
    graph cycle of length ``2m`` corresponds to a Berge cycle through ``m``
    relations and ``m`` attributes.  Returns ``None`` for Berge-acyclic
    schemas.
    """
    adjacency = _incidence_adjacency(schema)
    parent: Dict[object, Optional[object]] = {}
    seen: Set[object] = set()

    for start in adjacency:
        if start in seen:
            continue
        parent[start] = None
        stack: List[Tuple[object, Optional[object]]] = [(start, None)]
        while stack:
            node, from_node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            parent[node] = from_node
            for neighbour in adjacency[node]:
                if neighbour == from_node:
                    continue
                if neighbour in seen:
                    # Found a cycle: walk both branches up to the meeting point.
                    cycle_nodes = _reconstruct_cycle(parent, node, neighbour)
                    return _split_cycle(cycle_nodes)
                stack.append((neighbour, node))
    return None


def _reconstruct_cycle(
    parent: Dict[object, Optional[object]], first: object, second: object
) -> List[object]:
    """Nodes of the cycle closed by the non-tree edge ``first -- second``."""
    first_ancestry = []
    node: Optional[object] = first
    while node is not None:
        first_ancestry.append(node)
        node = parent.get(node)
    first_positions = {node: position for position, node in enumerate(first_ancestry)}
    path_from_second = []
    node = second
    while node is not None and node not in first_positions:
        path_from_second.append(node)
        node = parent.get(node)
    if node is None:  # pragma: no cover - both nodes share a DFS tree root
        return [first, second]
    meeting = node
    cycle = first_ancestry[: first_positions[meeting] + 1]
    cycle.reverse()
    cycle.extend(reversed(path_from_second))
    return cycle


def _split_cycle(
    cycle_nodes: List[object],
) -> Tuple[Tuple[int, ...], Tuple[Attribute, ...]]:
    relations = tuple(index for kind, index in cycle_nodes if kind == "R")
    attributes = tuple(name for kind, name in cycle_nodes if kind == "A")
    return relations, attributes
