"""Arings, Acliques and Lemma 3.1 (the building blocks of cyclic schemas).

Section 3.1 of the paper defines, for a universe ``U = {A_1, ..., A_n}`` with
``n > 2``:

* the **Aring** of size ``n``:  ``({A_1,A_2}, {A_2,A_3}, ..., {A_{n-1},A_n},
  {A_n,A_1})`` — a cycle of binary relation schemas;
* the **Aclique** of size ``n``:  ``(U - {A_1}, U - {A_2}, ..., U - {A_n})`` —
  all ``(n-1)``-element subsets of ``U``.

Any schema isomorphic to one of these (i.e. equal to one after renaming
attributes) is also called an Aring / Aclique.

**Lemma 3.1** — Schema ``D`` is cyclic iff there exists ``X ⊆ U(D)`` such that
eliminating subset and duplicate relation schemas from ``(R - X | R ∈ D)``
results in an Aring or an Aclique.  :func:`find_aring_or_aclique_witness`
searches for such an ``X`` (exponential in ``|U(D)|``, guarded by a budget);
:func:`verify_lemma_3_1` checks the equivalence on a given schema.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from string import ascii_lowercase
from typing import Iterable, List, Optional, Sequence, Tuple

from ..exceptions import SchemaError, SearchBudgetExceeded
from .gyo import is_cyclic_schema
from .schema import Attribute, DatabaseSchema, RelationSchema

__all__ = [
    "aring",
    "aclique",
    "default_attribute_names",
    "is_aring",
    "is_aclique",
    "CyclicCoreWitness",
    "find_aring_or_aclique_witness",
    "verify_lemma_3_1",
]


def default_attribute_names(count: int) -> Tuple[Attribute, ...]:
    """Generate ``count`` attribute names: ``a..z`` then ``a1, b1, ...``.

    Single letters are used while possible so the paper's compact notation
    stays readable in reprs and error messages.
    """
    if count < 0:
        raise SchemaError("attribute count must be non-negative")
    names: List[Attribute] = []
    round_number = 0
    while len(names) < count:
        suffix = "" if round_number == 0 else str(round_number)
        for letter in ascii_lowercase:
            names.append(letter + suffix)
            if len(names) == count:
                break
        round_number += 1
    return tuple(names)


def _resolve_universe(
    size: int, attributes: Optional[Sequence[Attribute]]
) -> Tuple[Attribute, ...]:
    if size < 3:
        raise SchemaError("Arings and Acliques require size n > 2")
    if attributes is None:
        return default_attribute_names(size)
    attrs = tuple(attributes)
    if len(attrs) != size:
        raise SchemaError(
            f"expected {size} attribute names, got {len(attrs)}"
        )
    if len(set(attrs)) != size:
        raise SchemaError("attribute names must be distinct")
    return attrs


def aring(size: int, attributes: Optional[Sequence[Attribute]] = None) -> DatabaseSchema:
    """The Aring of the given size (optionally over the given attribute names).

    >>> aring(4)
    DatabaseSchema('ab,bc,cd,ad')
    """
    attrs = _resolve_universe(size, attributes)
    relations = [
        RelationSchema({attrs[i], attrs[(i + 1) % size]}) for i in range(size)
    ]
    return DatabaseSchema(relations)


def aclique(size: int, attributes: Optional[Sequence[Attribute]] = None) -> DatabaseSchema:
    """The Aclique of the given size (optionally over the given attribute names).

    >>> aclique(3)
    DatabaseSchema('bc,ac,ab')
    """
    attrs = _resolve_universe(size, attributes)
    universe = set(attrs)
    relations = [RelationSchema(universe - {attr}) for attr in attrs]
    return DatabaseSchema(relations)


def is_aring(schema: DatabaseSchema) -> bool:
    """Recognize schemas isomorphic to an Aring.

    A schema is an Aring of size ``n`` iff it has ``n >= 3`` distinct binary
    relation schemas over ``n`` attributes, every attribute occurs in exactly
    two relation schemas, and the schema is connected — these conditions force
    the relation/attribute incidence structure to be a single cycle.
    """
    n = len(schema)
    if n < 3:
        return False
    relations = schema.relations
    if len(set(relations)) != n:
        return False
    if any(len(relation) != 2 for relation in relations):
        return False
    universe = schema.attributes
    if len(universe) != n:
        return False
    occurrences = schema.attribute_occurrences()
    if any(len(indices) != 2 for indices in occurrences.values()):
        return False
    return schema.is_connected()


def is_aclique(schema: DatabaseSchema) -> bool:
    """Recognize schemas isomorphic to an Aclique.

    A schema is an Aclique of size ``n`` iff it consists of ``n >= 3``
    distinct relation schemas of cardinality ``n - 1`` over a universe of
    ``n`` attributes (it then necessarily contains *every* such subset).
    """
    n = len(schema)
    if n < 3:
        return False
    relations = schema.relations
    if len(set(relations)) != n:
        return False
    universe = schema.attributes
    if len(universe) != n:
        return False
    return all(len(relation) == n - 1 for relation in relations)


@dataclass(frozen=True)
class CyclicCoreWitness:
    """A witness for Lemma 3.1: deleting ``deleted_attributes`` from the schema
    and eliminating subsets/duplicates yields ``core`` of the stated ``kind``."""

    deleted_attributes: RelationSchema
    core: DatabaseSchema
    kind: str  # "aring" or "aclique"

    def describe(self) -> str:
        """Human readable description of the witness."""
        return (
            f"delete X = {self.deleted_attributes.to_notation()} "
            f"and eliminate subsets -> {self.kind} {self.core}"
        )


def _core_after_deleting(
    schema: DatabaseSchema, deleted: Iterable[Attribute]
) -> DatabaseSchema:
    """``(R - X | R ∈ D)`` with subset and duplicate elimination applied."""
    return schema.delete_attributes(deleted).reduction().without_empty_relations()


def find_aring_or_aclique_witness(
    schema: DatabaseSchema, *, budget: int = 1_000_000
) -> Optional[CyclicCoreWitness]:
    """Search for the ``X`` of Lemma 3.1.

    Subsets of ``U(D)`` are tried in order of increasing size, so the returned
    witness deletes as few attributes as possible.  The search is exponential
    in ``|U(D)|``; ``budget`` bounds the number of candidate subsets examined
    and :class:`~repro.exceptions.SearchBudgetExceeded` is raised beyond it.

    Returns ``None`` when no witness exists — by Lemma 3.1 this happens
    exactly when the schema is a tree schema.
    """
    universe = schema.attributes.sorted_attributes()
    examined = 0
    for size in range(0, len(universe) + 1):
        for subset in combinations(universe, size):
            examined += 1
            if examined > budget:
                raise SearchBudgetExceeded(
                    f"Lemma 3.1 witness search exceeded budget of {budget} subsets"
                )
            core = _core_after_deleting(schema, subset)
            if is_aring(core):
                return CyclicCoreWitness(
                    deleted_attributes=RelationSchema(subset), core=core, kind="aring"
                )
            if is_aclique(core):
                return CyclicCoreWitness(
                    deleted_attributes=RelationSchema(subset),
                    core=core,
                    kind="aclique",
                )
    return None


def verify_lemma_3_1(schema: DatabaseSchema, *, budget: int = 1_000_000) -> bool:
    """Check Lemma 3.1 on one schema: cyclic ⟺ an Aring/Aclique witness exists."""
    witness = find_aring_or_aclique_witness(schema, budget=budget)
    return is_cyclic_schema(schema) == (witness is not None)
