"""Relation schemas and database schemas (hypergraphs).

Terminology follows Section 2 of Goodman, Shmueli & Tay (JCSS 1984):

* A *relation schema* is a finite set of attributes.
* A *database schema* is a finite **multiset** of relation schemas.
* ``U(D)`` denotes the set of all attributes appearing in ``D``.
* ``D' <= D`` holds when every relation schema of ``D'`` is contained in some
  relation schema of ``D``.
* ``D`` is *reduced* if no relation schema in ``D`` is a subset of another
  relation schema in ``D``; the *reduction* of ``D`` removes such subsets
  (including duplicates).

A database schema is exactly a hypergraph whose vertices are attributes and
whose hyperedges are the relation schemas, so this module doubles as the
hypergraph substrate used by every other part of the library.
"""

from __future__ import annotations

from collections import Counter, defaultdict, deque
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..exceptions import SchemaError

__all__ = [
    "Attribute",
    "RelationSchema",
    "DatabaseSchema",
    "attributes_of",
]

#: Attributes are plain strings.  Single-character attributes allow the
#: paper's compact ``ab, bc, cd`` notation but nothing depends on that.
Attribute = str

AttributesLike = Union["RelationSchema", Iterable[Attribute]]


def _coerce_attributes(attributes: AttributesLike) -> FrozenSet[Attribute]:
    """Normalize any iterable of attribute names into a ``frozenset``."""
    if isinstance(attributes, RelationSchema):
        return attributes.attributes
    if isinstance(attributes, str):
        # A bare string is treated as an iterable of single-character
        # attributes, matching the paper's notation ("abc" == {a, b, c}).
        return frozenset(attributes)
    attrs = frozenset(attributes)
    for attribute in attrs:
        if not isinstance(attribute, str):
            raise SchemaError(
                f"attributes must be strings, got {attribute!r} of type "
                f"{type(attribute).__name__}"
            )
        if not attribute:
            raise SchemaError("attributes must be non-empty strings")
    return attrs


class RelationSchema:
    """An immutable set of attributes.

    ``RelationSchema`` behaves like a ``frozenset`` of attribute names with a
    reading-friendly representation: when every attribute is a single
    character the schema prints in the paper's concatenated notation
    (``ab`` for ``{a, b}``); otherwise attributes are joined with commas.

    Examples
    --------
    >>> RelationSchema("abc")
    RelationSchema('abc')
    >>> RelationSchema(["emp_id", "dept"]).attributes == frozenset({"emp_id", "dept"})
    True
    >>> RelationSchema("ab") <= RelationSchema("abc")
    True
    """

    __slots__ = ("_attributes", "_hash")

    def __init__(self, attributes: AttributesLike = ()) -> None:
        object.__setattr__(self, "_attributes", _coerce_attributes(attributes))
        object.__setattr__(self, "_hash", hash(self._attributes))

    # -- basic protocol -----------------------------------------------------

    @property
    def attributes(self) -> FrozenSet[Attribute]:
        """The underlying frozen set of attribute names."""
        return self._attributes

    def __contains__(self, attribute: object) -> bool:
        return attribute in self._attributes

    def __iter__(self) -> Iterator[Attribute]:
        return iter(sorted(self._attributes))

    def __len__(self) -> int:
        return len(self._attributes)

    def __bool__(self) -> bool:
        return bool(self._attributes)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RelationSchema):
            return self._attributes == other._attributes
        if isinstance(other, (frozenset, set)):
            return self._attributes == other
        return NotImplemented

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("RelationSchema is immutable")

    def __reduce__(self):
        # The raising __setattr__ breaks pickle's default slot-state restore,
        # so pickling round-trips through the constructor.  Needed by the
        # multi-process executor (PlanSpec / shard payloads cross processes).
        return (RelationSchema, (self.sorted_attributes(),))

    # -- ordering (subset relations) ----------------------------------------

    def issubset(self, other: AttributesLike) -> bool:
        """True when every attribute of ``self`` appears in ``other``."""
        return self._attributes <= _coerce_attributes(other)

    def issuperset(self, other: AttributesLike) -> bool:
        """True when every attribute of ``other`` appears in ``self``."""
        return self._attributes >= _coerce_attributes(other)

    def __le__(self, other: AttributesLike) -> bool:
        return self.issubset(other)

    def __lt__(self, other: AttributesLike) -> bool:
        other_attrs = _coerce_attributes(other)
        return self._attributes < other_attrs

    def __ge__(self, other: AttributesLike) -> bool:
        return self.issuperset(other)

    def __gt__(self, other: AttributesLike) -> bool:
        other_attrs = _coerce_attributes(other)
        return self._attributes > other_attrs

    # -- set algebra ----------------------------------------------------------

    def union(self, *others: AttributesLike) -> "RelationSchema":
        """Union of this schema with any number of attribute collections."""
        attrs = set(self._attributes)
        for other in others:
            attrs |= _coerce_attributes(other)
        return RelationSchema(attrs)

    def intersection(self, *others: AttributesLike) -> "RelationSchema":
        """Intersection of this schema with any number of attribute collections."""
        attrs = set(self._attributes)
        for other in others:
            attrs &= _coerce_attributes(other)
        return RelationSchema(attrs)

    def difference(self, *others: AttributesLike) -> "RelationSchema":
        """Attributes of this schema that appear in none of ``others``."""
        attrs = set(self._attributes)
        for other in others:
            attrs -= _coerce_attributes(other)
        return RelationSchema(attrs)

    def symmetric_difference(self, other: AttributesLike) -> "RelationSchema":
        """Attributes in exactly one of the two schemas."""
        return RelationSchema(self._attributes ^ _coerce_attributes(other))

    def isdisjoint(self, other: AttributesLike) -> bool:
        """True when the two schemas share no attribute."""
        return self._attributes.isdisjoint(_coerce_attributes(other))

    __or__ = union
    __and__ = intersection
    __sub__ = difference
    __xor__ = symmetric_difference

    def restrict(self, attributes: AttributesLike) -> "RelationSchema":
        """Alias of :meth:`intersection` used when projecting onto ``attributes``."""
        return self.intersection(attributes)

    def without(self, attributes: AttributesLike) -> "RelationSchema":
        """Alias of :meth:`difference` used for attribute deletion ``R - X``."""
        return self.difference(attributes)

    # -- rendering ------------------------------------------------------------

    def sorted_attributes(self) -> Tuple[Attribute, ...]:
        """The attributes in deterministic (sorted) order."""
        return tuple(sorted(self._attributes))

    def to_notation(self, attribute_separator: Optional[str] = None) -> str:
        """Render in the paper's notation.

        When every attribute is a single character and no separator is given,
        attributes are concatenated (``"abc"``); otherwise they are joined by
        ``attribute_separator`` (default ``","``).
        """
        attrs = self.sorted_attributes()
        if not attrs:
            return "{}"
        if attribute_separator is None:
            if all(len(a) == 1 for a in attrs):
                return "".join(attrs)
            attribute_separator = ","
        return attribute_separator.join(attrs)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RelationSchema({self.to_notation()!r})"

    def __str__(self) -> str:
        return self.to_notation()


RelationLike = Union[RelationSchema, Iterable[Attribute]]


def attributes_of(relations: Iterable[RelationLike]) -> RelationSchema:
    """Return ``U(D)``: the union of the attributes of all given relation schemas."""
    result: Set[Attribute] = set()
    for relation in relations:
        result |= _coerce_attributes(relation)
    return RelationSchema(result)


class DatabaseSchema:
    """An immutable **multiset** of relation schemas (equivalently a hypergraph).

    The order of relation schemas is preserved (it is meaningful for traces
    and tableau row numbering) but equality is multiset equality:
    two database schemas are equal when they contain the same relation schemas
    with the same multiplicities, regardless of order.

    Examples
    --------
    >>> d = DatabaseSchema(["ab", "bc", "cd"])
    >>> d.attributes
    RelationSchema('abcd')
    >>> d.is_reduced()
    True
    >>> DatabaseSchema(["ab", "abc"]).reduction()
    DatabaseSchema('abc')
    """

    __slots__ = ("_relations", "_hash")

    def __init__(self, relations: Iterable[RelationLike] = ()) -> None:
        rels = tuple(
            rel if isinstance(rel, RelationSchema) else RelationSchema(rel)
            for rel in relations
        )
        object.__setattr__(self, "_relations", rels)
        object.__setattr__(
            self, "_hash", hash(frozenset(Counter(rels).items()))
        )

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("DatabaseSchema is immutable")

    def __reduce__(self):
        # Reconstructs through the constructor (see RelationSchema.__reduce__);
        # the relation *order* is part of the pickled value — plans and traces
        # are positional.
        return (DatabaseSchema, (self._relations,))

    # -- basic protocol -------------------------------------------------------

    @property
    def relations(self) -> Tuple[RelationSchema, ...]:
        """The relation schemas in their original order (with duplicates)."""
        return self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def __bool__(self) -> bool:
        return bool(self._relations)

    def __getitem__(self, index: int) -> RelationSchema:
        return self._relations[index]

    def __contains__(self, relation: object) -> bool:
        if isinstance(relation, (RelationSchema, frozenset, set, str)):
            target = RelationSchema(relation)  # type: ignore[arg-type]
            return target in self._relations
        return False

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DatabaseSchema):
            return Counter(self._relations) == Counter(other._relations)
        return NotImplemented

    def multiset(self) -> Counter:
        """The multiset of relation schemas as a :class:`collections.Counter`."""
        return Counter(self._relations)

    # -- attributes -----------------------------------------------------------

    @property
    def attributes(self) -> RelationSchema:
        """``U(D)``: every attribute appearing in some relation schema."""
        return attributes_of(self._relations)

    def attribute_occurrences(self) -> Dict[Attribute, Tuple[int, ...]]:
        """Map each attribute to the (sorted) indices of relations containing it."""
        occurrences: Dict[Attribute, List[int]] = defaultdict(list)
        for index, relation in enumerate(self._relations):
            for attribute in relation.attributes:
                occurrences[attribute].append(index)
        return {attr: tuple(indices) for attr, indices in occurrences.items()}

    def attribute_multiplicity(self, attribute: Attribute) -> int:
        """Number of relation schemas containing ``attribute``."""
        return sum(1 for relation in self._relations if attribute in relation)

    def relations_containing(self, attributes: AttributesLike) -> Tuple[int, ...]:
        """Indices of relation schemas containing every attribute in ``attributes``."""
        target = _coerce_attributes(attributes)
        return tuple(
            index
            for index, relation in enumerate(self._relations)
            if target <= relation.attributes
        )

    # -- the <= ordering on database schemas ----------------------------------

    def covers(self, other: "DatabaseSchema") -> bool:
        """True when ``other <= self``: each relation of ``other`` is contained
        in some relation of ``self``."""
        return all(
            any(small <= big for big in self._relations)
            for small in other.relations
        )

    def is_covered_by(self, other: "DatabaseSchema") -> bool:
        """True when ``self <= other`` in the paper's ordering."""
        return other.covers(self)

    def __le__(self, other: "DatabaseSchema") -> bool:
        if not isinstance(other, DatabaseSchema):
            return NotImplemented
        return self.is_covered_by(other)

    def __ge__(self, other: "DatabaseSchema") -> bool:
        if not isinstance(other, DatabaseSchema):
            return NotImplemented
        return self.covers(other)

    def is_sub_multiset_of(self, other: "DatabaseSchema") -> bool:
        """True when ``self`` is contained in ``other`` *as a multiset*
        (written ``D' ⊆ D`` in the paper)."""
        return not Counter(self._relations) - Counter(other._relations)

    def contains_all_relations_of(self, other: "DatabaseSchema") -> bool:
        """True when ``other`` is a sub-multiset of ``self``."""
        return other.is_sub_multiset_of(self)

    # -- reduction -------------------------------------------------------------

    def is_reduced(self) -> bool:
        """True when no relation schema is a subset of another one.

        Duplicates make a schema non-reduced because each copy is a subset of
        the other copy.
        """
        rels = self._relations
        for i, small in enumerate(rels):
            for j, big in enumerate(rels):
                if i != j and small <= big:
                    return False
        return True

    def reduction(self) -> "DatabaseSchema":
        """The reduction of ``D``: drop relation schemas contained in others.

        One representative of each maximal relation schema is kept; the
        relative order of the survivors is preserved.
        """
        survivors: List[RelationSchema] = []
        kept: List[bool] = [True] * len(self._relations)
        rels = self._relations
        for i, small in enumerate(rels):
            for j, big in enumerate(rels):
                if i == j or not kept[j]:
                    continue
                if small < big or (small == big and j < i):
                    kept[i] = False
                    break
        for index, relation in enumerate(rels):
            if kept[index]:
                survivors.append(relation)
        return DatabaseSchema(survivors)

    # -- schema surgery ----------------------------------------------------------

    def delete_attributes(self, attributes: AttributesLike) -> "DatabaseSchema":
        """``D - X``: remove the given attributes from every relation schema.

        The result is *not* reduced automatically; call :meth:`reduction` when
        the paper asks for subset/duplicate elimination as well (Lemma 3.1).
        """
        doomed = _coerce_attributes(attributes)
        return DatabaseSchema(rel.difference(doomed) for rel in self._relations)

    def restrict_attributes(self, attributes: AttributesLike) -> "DatabaseSchema":
        """Keep only the given attributes in every relation schema."""
        keep = _coerce_attributes(attributes)
        return DatabaseSchema(rel.intersection(keep) for rel in self._relations)

    def add_relation(self, relation: RelationLike) -> "DatabaseSchema":
        """``D ∪ (R)``: append one relation schema (multiset union)."""
        return DatabaseSchema(self._relations + (RelationSchema(relation),))

    def add_relations(self, relations: Iterable[RelationLike]) -> "DatabaseSchema":
        """Append several relation schemas (multiset union)."""
        extra = tuple(RelationSchema(rel) for rel in relations)
        return DatabaseSchema(self._relations + extra)

    def remove_relation_at(self, index: int) -> "DatabaseSchema":
        """Drop the relation schema at position ``index``."""
        if not 0 <= index < len(self._relations):
            raise SchemaError(f"relation index {index} out of range")
        rels = self._relations[:index] + self._relations[index + 1 :]
        return DatabaseSchema(rels)

    def remove_relation(self, relation: RelationLike) -> "DatabaseSchema":
        """Drop one occurrence of the given relation schema."""
        target = RelationSchema(relation)
        for index, rel in enumerate(self._relations):
            if rel == target:
                return self.remove_relation_at(index)
        raise SchemaError(f"relation schema {target} not present in schema")

    def replace_relation_at(
        self, index: int, relation: RelationLike
    ) -> "DatabaseSchema":
        """Replace the relation schema at position ``index``."""
        if not 0 <= index < len(self._relations):
            raise SchemaError(f"relation index {index} out of range")
        rels = list(self._relations)
        rels[index] = RelationSchema(relation)
        return DatabaseSchema(rels)

    def without_empty_relations(self) -> "DatabaseSchema":
        """Drop every relation schema that has no attributes."""
        return DatabaseSchema(rel for rel in self._relations if rel)

    def deduplicate(self) -> "DatabaseSchema":
        """Keep a single copy of each distinct relation schema (order preserved)."""
        seen: Set[RelationSchema] = set()
        unique: List[RelationSchema] = []
        for relation in self._relations:
            if relation not in seen:
                seen.add(relation)
                unique.append(relation)
        return DatabaseSchema(unique)

    # -- connectivity -----------------------------------------------------------

    def adjacency(self) -> Dict[int, Set[int]]:
        """Adjacency between relation indices: ``i ~ j`` iff they share an attribute."""
        adjacency: Dict[int, Set[int]] = {i: set() for i in range(len(self))}
        occurrences = self.attribute_occurrences()
        for indices in occurrences.values():
            for a in indices:
                for b in indices:
                    if a != b:
                        adjacency[a].add(b)
        return adjacency

    def connected_components(self) -> List[Tuple[int, ...]]:
        """Connected components of the intersection graph, as index tuples.

        Two relation schemas are adjacent when they share at least one
        attribute.  Relation schemas with no attributes are isolated nodes.
        """
        adjacency = self.adjacency()
        seen: Set[int] = set()
        components: List[Tuple[int, ...]] = []
        for start in range(len(self)):
            if start in seen:
                continue
            queue = deque([start])
            component: List[int] = []
            seen.add(start)
            while queue:
                node = queue.popleft()
                component.append(node)
                for neighbour in adjacency[node]:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        queue.append(neighbour)
            components.append(tuple(sorted(component)))
        return components

    def is_connected(self) -> bool:
        """True when every pair of relation schemas is linked by a path of
        relation schemas sharing at least one attribute (Section 5.2)."""
        if len(self) <= 1:
            return True
        return len(self.connected_components()) == 1

    def sub_schema(self, indices: Iterable[int]) -> "DatabaseSchema":
        """The database schema induced by the given relation indices."""
        index_list = list(indices)
        for index in index_list:
            if not 0 <= index < len(self._relations):
                raise SchemaError(f"relation index {index} out of range")
        return DatabaseSchema(self._relations[index] for index in index_list)

    def iter_sub_schemas(
        self, *, min_size: int = 1, connected_only: bool = False
    ) -> Iterator["DatabaseSchema"]:
        """Yield every sub-multiset ``D' ⊆ D`` with at least ``min_size`` relations.

        This is exponential in ``len(D)`` and intended for verification of the
        paper's "for all connected ``D' ⊆ D``" statements on small instances.
        """
        n = len(self._relations)
        for mask in range(1, 1 << n):
            indices = [i for i in range(n) if mask >> i & 1]
            if len(indices) < min_size:
                continue
            candidate = self.sub_schema(indices)
            if connected_only and not candidate.is_connected():
                continue
            yield candidate

    # -- rendering ------------------------------------------------------------

    def to_notation(
        self,
        relation_separator: str = ",",
        attribute_separator: Optional[str] = None,
    ) -> str:
        """Render in the paper's ``(ab,bc,cd)`` notation."""
        return relation_separator.join(
            rel.to_notation(attribute_separator) for rel in self._relations
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"DatabaseSchema({self.to_notation()!r})"

    def __str__(self) -> str:
        return "(" + self.to_notation(relation_separator=", ") + ")"

    # -- convenience constructors ----------------------------------------------

    @classmethod
    def from_relations(cls, *relations: RelationLike) -> "DatabaseSchema":
        """Build a schema from relation schemas given as positional arguments."""
        return cls(relations)

    def sorted(self) -> "DatabaseSchema":
        """A copy with relations sorted deterministically (by size then name).

        Useful to obtain canonical orderings in tests and benchmarks; the
        multiset (and hence equality) is unchanged.
        """
        ordered = sorted(
            self._relations, key=lambda rel: (len(rel), rel.sorted_attributes())
        )
        return DatabaseSchema(ordered)
