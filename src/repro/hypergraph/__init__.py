"""Hypergraph substrate: schemas, qual graphs, GYO reductions, acyclicity.

This package implements Sections 2, 3.1 and 3.3 of the paper (plus the
γ-acyclicity machinery of Section 5.2): relation/database schemas as
hypergraphs, qual graphs and qual trees, the GYO reduction, Arings and
Acliques, acyclicity tests and schema generators.
"""

from .schema import Attribute, DatabaseSchema, RelationSchema, attributes_of
from .parsing import format_relation, format_schema, parse_relation, parse_schema
from .gyo import (
    AttributeDeletion,
    GYOReduction,
    GYOStep,
    GYOTrace,
    SubsetElimination,
    gyo_reduce,
    gyo_reduction,
    is_cyclic_schema,
    is_partial_gyo_reduction,
    is_tree_schema,
)
from .qual_graph import QualGraph, enumerate_qual_trees, is_qual_graph
from .join_tree import (
    find_qual_tree,
    is_subtree,
    is_subtree_semantic,
    join_tree_from_gyo,
    join_tree_from_spanning_tree,
    subtree_witness,
)
from .cycles import (
    CyclicCoreWitness,
    aclique,
    aring,
    default_attribute_names,
    find_aring_or_aclique_witness,
    is_aclique,
    is_aring,
    verify_lemma_3_1,
)
from .acyclicity import (
    WeakGammaCycle,
    find_weak_gamma_cycle,
    is_alpha_acyclic,
    is_beta_acyclic,
    is_beta_acyclic_bruteforce,
    is_gamma_acyclic,
    is_gamma_acyclic_via_subtrees,
    violating_pair,
)
from .berge import find_berge_cycle, is_berge_acyclic
from .isomorphism import are_isomorphic, attribute_profile, find_isomorphism
from .generators import (
    chain_schema,
    clique_of_rings,
    fan_schema,
    grid_schema,
    random_cyclic_schema,
    random_schema,
    random_tree_schema,
    star_schema,
)

__all__ = [
    # schema
    "Attribute",
    "RelationSchema",
    "DatabaseSchema",
    "attributes_of",
    # parsing
    "parse_relation",
    "parse_schema",
    "format_relation",
    "format_schema",
    # gyo
    "AttributeDeletion",
    "SubsetElimination",
    "GYOStep",
    "GYOTrace",
    "GYOReduction",
    "gyo_reduce",
    "gyo_reduction",
    "is_tree_schema",
    "is_cyclic_schema",
    "is_partial_gyo_reduction",
    # qual graphs / join trees
    "QualGraph",
    "is_qual_graph",
    "enumerate_qual_trees",
    "join_tree_from_gyo",
    "join_tree_from_spanning_tree",
    "find_qual_tree",
    "is_subtree",
    "is_subtree_semantic",
    "subtree_witness",
    # cycles
    "aring",
    "aclique",
    "default_attribute_names",
    "is_aring",
    "is_aclique",
    "CyclicCoreWitness",
    "find_aring_or_aclique_witness",
    "verify_lemma_3_1",
    # acyclicity
    "is_alpha_acyclic",
    "WeakGammaCycle",
    "find_weak_gamma_cycle",
    "violating_pair",
    "is_gamma_acyclic",
    "is_gamma_acyclic_via_subtrees",
    "is_beta_acyclic",
    "is_beta_acyclic_bruteforce",
    "is_berge_acyclic",
    "find_berge_cycle",
    # isomorphism
    "are_isomorphic",
    "find_isomorphism",
    "attribute_profile",
    # generators
    "chain_schema",
    "star_schema",
    "fan_schema",
    "grid_schema",
    "clique_of_rings",
    "random_tree_schema",
    "random_cyclic_schema",
    "random_schema",
]
