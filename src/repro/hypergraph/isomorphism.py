"""Schema isomorphism under attribute renaming.

Two database schemas are *isomorphic* when some bijection between their
attribute sets maps one multiset of relation schemas onto the other.  The
paper uses this notion implicitly ("any schema isomorphic to an Aring or an
Aclique is an Aring or Aclique"); the library uses it in tests and in the
random-schema generators to check structural equality independent of attribute
names.

The search is a straightforward backtracking over attribute bijections with
invariant-based pruning (attribute occurrence profiles and relation size
multisets), which is more than fast enough for the schema sizes the paper
works with.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, FrozenSet, List, Optional, Tuple

from .schema import Attribute, DatabaseSchema, RelationSchema

__all__ = [
    "attribute_profile",
    "find_isomorphism",
    "are_isomorphic",
]


def attribute_profile(schema: DatabaseSchema, attribute: Attribute) -> Tuple:
    """An isomorphism-invariant fingerprint of an attribute.

    The profile records, for every relation containing the attribute, the
    relation's size — two attributes can only correspond under an isomorphism
    if their profiles match.
    """
    sizes = sorted(
        len(schema[index]) for index in schema.attribute_occurrences().get(attribute, ())
    )
    return (len(sizes), tuple(sizes))


def _schema_signature(schema: DatabaseSchema) -> Tuple:
    sizes = sorted(len(relation) for relation in schema.relations)
    profiles = sorted(
        attribute_profile(schema, attribute)
        for attribute in schema.attributes.attributes
    )
    return (len(schema), tuple(sizes), tuple(profiles))


def find_isomorphism(
    first: DatabaseSchema, second: DatabaseSchema
) -> Optional[Dict[Attribute, Attribute]]:
    """Find an attribute bijection mapping ``first`` onto ``second``.

    Returns the mapping, or ``None`` when the schemas are not isomorphic.
    """
    if _schema_signature(first) != _schema_signature(second):
        return None

    first_attrs = sorted(first.attributes.attributes)
    second_attrs = sorted(second.attributes.attributes)
    if len(first_attrs) != len(second_attrs):
        return None

    second_multiset = Counter(relation.attributes for relation in second.relations)

    # Group target attributes by profile for candidate generation.
    second_by_profile: Dict[Tuple, List[Attribute]] = defaultdict(list)
    for attribute in second_attrs:
        second_by_profile[attribute_profile(second, attribute)].append(attribute)

    # Order source attributes by ascending candidate-set size (most constrained first).
    ordered = sorted(
        first_attrs,
        key=lambda attribute: len(
            second_by_profile.get(attribute_profile(first, attribute), ())
        ),
    )

    mapping: Dict[Attribute, Attribute] = {}
    used: set = set()

    first_edges = [relation.attributes for relation in first.relations]

    def consistent() -> bool:
        """Partial consistency: fully mapped edges must exist in the target."""
        remaining = Counter(second_multiset)
        for edge in first_edges:
            if all(attribute in mapping for attribute in edge):
                image = frozenset(mapping[attribute] for attribute in edge)
                if remaining[image] <= 0:
                    return False
                remaining[image] -= 1
        return True

    def backtrack(position: int) -> bool:
        if position == len(ordered):
            # Full mapping found; verify the multisets of edges coincide.
            image = Counter(
                frozenset(mapping[attribute] for attribute in edge)
                for edge in first_edges
            )
            return image == second_multiset
        attribute = ordered[position]
        profile = attribute_profile(first, attribute)
        for candidate in second_by_profile.get(profile, ()):
            if candidate in used:
                continue
            mapping[attribute] = candidate
            used.add(candidate)
            if consistent() and backtrack(position + 1):
                return True
            del mapping[attribute]
            used.discard(candidate)
        return False

    if backtrack(0):
        return dict(mapping)
    return None


def are_isomorphic(first: DatabaseSchema, second: DatabaseSchema) -> bool:
    """True when the two schemas are equal up to renaming of attributes."""
    return find_isomorphism(first, second) is not None
