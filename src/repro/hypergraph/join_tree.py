"""Qual-tree (join-tree) construction and subtree characterizations.

Two constructions are provided for tree schemas:

* :func:`join_tree_from_gyo` — reverse the subset eliminations recorded by the
  GYO reduction: whenever relation ``i`` was eliminated because its (current)
  content was contained in relation ``j``, add the tree edge ``{i, j}``.  The
  paper's Theorem 3.1 argument ("the basic idea is to eliminate leaves of T")
  run backwards.
* :func:`join_tree_from_spanning_tree` — Kruskal maximum-weight spanning tree
  of the intersection graph (weights ``|R_i ∩ R_j|``); any maximum-weight
  spanning tree is a qual tree iff the schema is a tree schema
  (Bernstein–Goodman / Maier).

Both constructions return ``None`` for cyclic schemas, which makes either one
an α-acyclicity test independent of :func:`repro.hypergraph.gyo.is_tree_schema`.

The module also implements the subtree characterization extracted from
Theorem 3.1(ii): for a tree schema ``D`` and ``D' ⊆ D``, ``D'`` is a subtree
of ``D`` (its nodes induce a connected subgraph of some qual tree for ``D``)
iff ``GR(D, U(D')) ⊆ D'``, with equality iff ``D'`` is reduced.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..exceptions import NotASubSchemaError, NotATreeSchemaError
from .gyo import gyo_reduce
from .qual_graph import QualGraph, enumerate_qual_trees
from .schema import DatabaseSchema, RelationSchema

__all__ = [
    "join_tree_from_gyo",
    "join_tree_from_spanning_tree",
    "find_qual_tree",
    "is_subtree",
    "is_subtree_semantic",
    "subtree_witness",
]


def join_tree_from_gyo(schema: DatabaseSchema) -> Optional[QualGraph]:
    """Build a qual tree for ``schema`` from its GYO reduction trace.

    Returns ``None`` when ``schema`` is cyclic.  For a tree schema the trace's
    parent map (``eliminated relation -> witness``) contains exactly
    ``len(schema) - 1`` edges and forms a qual tree over all relation indices.
    """
    if len(schema) == 0:
        return QualGraph(schema, [])
    trace = gyo_reduce(schema)
    if not trace.is_fully_reduced_to_empty:
        return None
    graph = QualGraph(schema, [])
    for child, parent in trace.parents.items():
        graph.add_edge(child, parent)
    return graph


def join_tree_from_spanning_tree(schema: DatabaseSchema) -> Optional[QualGraph]:
    """Build a qual tree as a maximum-weight spanning tree of the intersection graph.

    Kruskal's algorithm over edge weights ``|R_i ∩ R_j|`` (including weight-0
    edges so disconnected schemas still yield a spanning *tree*).  The result
    is returned only if it passes the qual-graph validity check; otherwise the
    schema is cyclic and ``None`` is returned.
    """
    n = len(schema)
    if n == 0:
        return QualGraph(schema, [])
    weighted_edges: List[Tuple[int, int, int]] = []
    for i in range(n):
        for j in range(i + 1, n):
            weight = len(schema[i].intersection(schema[j]))
            weighted_edges.append((weight, i, j))
    weighted_edges.sort(key=lambda item: (-item[0], item[1], item[2]))

    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> bool:
        ra, rb = find(a), find(b)
        if ra == rb:
            return False
        parent[ra] = rb
        return True

    graph = QualGraph(schema, [])
    for weight, i, j in weighted_edges:
        if union(i, j):
            graph.add_edge(i, j)
    if graph.is_qual_tree():
        return graph
    return None


def find_qual_tree(
    schema: DatabaseSchema, method: str = "gyo"
) -> Optional[QualGraph]:
    """Find a qual tree for ``schema`` using the requested construction.

    ``method`` is ``"gyo"`` (default), ``"spanning-tree"`` or ``"exhaustive"``
    (Prüfer enumeration; exponential, small schemas only).  Returns ``None``
    when the schema is cyclic.
    """
    if method == "gyo":
        return join_tree_from_gyo(schema)
    if method == "spanning-tree":
        return join_tree_from_spanning_tree(schema)
    if method == "exhaustive":
        for tree in enumerate_qual_trees(schema):
            return tree
        return None
    raise ValueError(f"unknown qual-tree construction method: {method!r}")


def _require_sub_multiset(schema: DatabaseSchema, sub: DatabaseSchema) -> None:
    if not sub.is_sub_multiset_of(schema):
        raise NotASubSchemaError(
            "the candidate subtree must be a sub-multiset of the schema "
            f"(got {sub} which is not contained in {schema})"
        )


def is_subtree(schema: DatabaseSchema, sub: DatabaseSchema) -> bool:
    """Theorem 3.1(ii) characterization of subtrees of a tree schema.

    ``sub ⊆ schema`` is a subtree of the tree schema ``schema`` iff
    ``GR(schema, U(sub)) ⊆ sub``.  Raises
    :class:`~repro.exceptions.NotATreeSchemaError` when ``schema`` is cyclic
    and :class:`~repro.exceptions.NotASubSchemaError` when ``sub`` is not a
    sub-multiset of ``schema``.
    """
    _require_sub_multiset(schema, sub)
    trace = gyo_reduce(schema)
    if not trace.is_fully_reduced_to_empty:
        raise NotATreeSchemaError(
            "subtrees are defined for tree schemas only; the schema is cyclic"
        )
    reduced = gyo_reduce(schema, sub.attributes).result
    members = set(sub.relations)
    return all(relation in members for relation in reduced.relations)


def subtree_witness(
    schema: DatabaseSchema, sub: DatabaseSchema, *, budget: int = 200_000
) -> Optional[QualGraph]:
    """Search for a qual tree of ``schema`` in which ``sub`` induces a
    connected subgraph (the semantic definition of a subtree).

    Exhaustive over labelled trees; intended for validating :func:`is_subtree`
    on small instances.  Returns a witnessing qual tree or ``None``.
    """
    _require_sub_multiset(schema, sub)
    remaining = list(sub.relations)
    indices: List[int] = []
    used: set = set()
    for target in remaining:
        for index, relation in enumerate(schema.relations):
            if index not in used and relation == target:
                indices.append(index)
                used.add(index)
                break
    for tree in enumerate_qual_trees(schema, budget=budget):
        if tree.induces_connected_subgraph(indices):
            return tree
    return None


def is_subtree_semantic(
    schema: DatabaseSchema, sub: DatabaseSchema, *, budget: int = 200_000
) -> bool:
    """Semantic subtree test by exhaustive qual-tree enumeration (small schemas)."""
    return subtree_witness(schema, sub, budget=budget) is not None
