"""Degrees of acyclicity: α (tree schemas), γ (Fagin / Section 5.2), and β.

* **α-acyclicity** is the paper's *tree schema* property, decided by the GYO
  reduction (Corollary 3.1).
* **γ-acyclicity** is characterized three ways by Theorem 5.3:

  (i)   ``D`` contains no *weak γ-cycle*;
  (ii)  for all ``R1, R2 ∈ D`` with ``R1 ∩ R2 ≠ ∅``, deleting the attributes
        ``R1 ∩ R2`` from ``D`` leaves ``R1 - (R1 ∩ R2)`` and
        ``R2 - (R1 ∩ R2)`` disconnected;
  (iii) ``D`` is a tree schema and every connected ``D' ⊆ D`` is a subtree of
        ``D``.

  Characterization (ii) is polynomial and is the default test; (i) and (iii)
  are implemented as witness searches / exhaustive checks for validation.
* **β-acyclicity** (every sub-multiset of edges is α-acyclic) is included as a
  natural extension sitting strictly between γ and α; it is decided by
  iterated *nest-point* elimination, with a brute-force cross-check for small
  schemas.

The implication chain γ-acyclic ⇒ β-acyclic ⇒ α-acyclic is exercised by the
property tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..exceptions import SearchBudgetExceeded
from .gyo import is_tree_schema
from .schema import Attribute, DatabaseSchema, RelationSchema

__all__ = [
    "is_alpha_acyclic",
    "WeakGammaCycle",
    "find_weak_gamma_cycle",
    "violating_pair",
    "is_gamma_acyclic",
    "is_gamma_acyclic_via_subtrees",
    "is_beta_acyclic",
    "is_beta_acyclic_bruteforce",
]


def is_alpha_acyclic(schema: DatabaseSchema) -> bool:
    """α-acyclicity = the paper's tree-schema property (Corollary 3.1)."""
    return is_tree_schema(schema)


# ---------------------------------------------------------------------------
# Weak gamma-cycles (Theorem 5.3(i))
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WeakGammaCycle:
    """A weak γ-cycle ``(R_1, A_1, R_2, ..., R_m, A_m, R_1)``.

    ``relation_indices`` holds the indices of ``R_1 ... R_m`` in the schema and
    ``attributes`` the connecting attributes ``A_1 ... A_m`` (``A_i ∈ R_i ∩
    R_{i+1}`` cyclically).  ``m >= 3``, the relations are distinct, the
    attributes are distinct, ``A_1`` occurs in no relation of the cycle other
    than ``R_1`` and ``R_2``, and ``A_2`` in none other than ``R_2`` and
    ``R_3`` (the exclusivity is with respect to the cycle, as in Fagin's
    definition; this is the reading under which Theorem 5.3's three
    characterizations coincide).
    """

    relation_indices: Tuple[int, ...]
    attributes: Tuple[Attribute, ...]

    def __len__(self) -> int:
        return len(self.relation_indices)

    def describe(self, schema: DatabaseSchema) -> str:
        """Render the cycle with the schema's relation notation."""
        parts = []
        m = len(self.relation_indices)
        for position in range(m):
            index = self.relation_indices[position]
            parts.append(schema[index].to_notation())
            parts.append(self.attributes[position])
        parts.append(schema[self.relation_indices[0]].to_notation())
        return " - ".join(parts)


def find_weak_gamma_cycle(
    schema: DatabaseSchema, *, budget: int = 2_000_000
) -> Optional[WeakGammaCycle]:
    """Search for a weak γ-cycle in ``schema``.

    The search enumerates candidate starts ``(R_1, A_1, R_2, A_2, R_3)`` and
    then extends the path by depth-first search over relations, keeping
    relations and attributes distinct and never revisiting ``A_1`` or ``A_2``
    in a later relation (which enforces the within-cycle exclusivity of the
    definition), until it can close back to ``R_1``.  Worst-case exponential;
    the ``budget`` bounds the number of extension steps.
    """
    n = len(schema)
    steps = 0

    def extend(
        path_relations: List[int],
        path_attributes: List[Attribute],
        used_relations: Set[int],
        used_attributes: Set[Attribute],
        start: int,
        forbidden: Tuple[Attribute, Attribute],
    ) -> Optional[WeakGammaCycle]:
        nonlocal steps
        steps += 1
        if steps > budget:
            raise SearchBudgetExceeded(
                f"weak gamma-cycle search exceeded budget of {budget} steps"
            )
        current = path_relations[-1]
        # Try to close the cycle (m >= 3 is guaranteed by construction).
        if len(path_relations) >= 3:
            closing = schema[current].intersection(schema[start])
            for attribute in sorted(closing.attributes):
                if attribute not in used_attributes:
                    return WeakGammaCycle(
                        relation_indices=tuple(path_relations),
                        attributes=tuple(path_attributes + [attribute]),
                    )
        # Extend the path with a relation that avoids A_1 and A_2 entirely.
        for nxt in range(n):
            if nxt in used_relations or nxt == start:
                continue
            if forbidden[0] in schema[nxt] or forbidden[1] in schema[nxt]:
                continue
            shared = schema[current].intersection(schema[nxt])
            for attribute in sorted(shared.attributes):
                if attribute in used_attributes:
                    continue
                found = extend(
                    path_relations + [nxt],
                    path_attributes + [attribute],
                    used_relations | {nxt},
                    used_attributes | {attribute},
                    start,
                    forbidden,
                )
                if found is not None:
                    return found
        return None

    for r1 in range(n):
        for r2 in range(n):
            if r1 == r2:
                continue
            shared12 = schema[r1].intersection(schema[r2])
            for a1 in sorted(shared12.attributes):
                for r3 in range(n):
                    if r3 in (r1, r2):
                        continue
                    if a1 in schema[r3]:
                        # A_1 may occur only in R_1 and R_2 within the cycle.
                        continue
                    shared23 = schema[r2].intersection(schema[r3])
                    for a2 in sorted(shared23.attributes):
                        if a2 == a1 or a2 in schema[r1]:
                            # A_2 may occur only in R_2 and R_3 within the cycle.
                            continue
                        found = extend(
                            [r1, r2, r3],
                            [a1, a2],
                            {r1, r2, r3},
                            {a1, a2},
                            r1,
                            (a1, a2),
                        )
                        if found is not None:
                            return found
    return None


# ---------------------------------------------------------------------------
# Pair-disconnection characterization (Theorem 5.3(ii)) — the polynomial test
# ---------------------------------------------------------------------------


def _connected_between(
    schema: DatabaseSchema, source: int, target: int
) -> bool:
    """Whether relations ``source`` and ``target`` are connected in ``schema``
    via a path of relations sharing at least one attribute."""
    if source == target:
        return True
    adjacency = schema.adjacency()
    seen = {source}
    stack = [source]
    while stack:
        node = stack.pop()
        for neighbour in adjacency[node]:
            if neighbour == target:
                return True
            if neighbour not in seen:
                seen.add(neighbour)
                stack.append(neighbour)
    return False


def violating_pair(schema: DatabaseSchema) -> Optional[Tuple[int, int]]:
    """Find relation indices ``(i, j)`` violating Theorem 5.3(ii), if any.

    A pair violates the condition when ``R_i ∩ R_j ≠ ∅`` and, after deleting
    the attributes ``R_i ∩ R_j`` from the whole schema, ``R_i`` and ``R_j``
    remain connected.  ``None`` means the schema is γ-acyclic.
    """
    n = len(schema)
    for i in range(n):
        for j in range(i + 1, n):
            shared = schema[i].intersection(schema[j])
            if not shared:
                continue
            restricted = schema.delete_attributes(shared)
            if not restricted[i] or not restricted[j]:
                # An empty relation schema shares no attribute with anything,
                # hence cannot be connected to the other one.
                continue
            if _connected_between(restricted, i, j):
                return (i, j)
    return None


def is_gamma_acyclic(schema: DatabaseSchema, method: str = "pair-disconnection") -> bool:
    """Decide γ-acyclicity.

    ``method`` selects the characterization of Theorem 5.3 used:

    * ``"pair-disconnection"`` (default) — polynomial, characterization (ii);
    * ``"gamma-cycle"`` — search for a weak γ-cycle, characterization (i);
    * ``"subtrees"`` — exhaustive characterization (iii), small schemas only.
    """
    if method == "pair-disconnection":
        return violating_pair(schema) is None
    if method == "gamma-cycle":
        return find_weak_gamma_cycle(schema) is None
    if method == "subtrees":
        return is_gamma_acyclic_via_subtrees(schema)
    raise ValueError(f"unknown gamma-acyclicity method: {method!r}")


def is_gamma_acyclic_via_subtrees(
    schema: DatabaseSchema, *, budget: int = 1_000_000
) -> bool:
    """Theorem 5.3(iii): tree schema + every connected sub-multiset is a subtree.

    Exponential in the number of relations; guarded by ``budget`` on the
    number of sub-multisets examined.
    """
    from .join_tree import is_subtree  # local import to avoid a cycle

    if not is_tree_schema(schema):
        return False
    examined = 0
    for sub in schema.iter_sub_schemas(connected_only=True):
        examined += 1
        if examined > budget:
            raise SearchBudgetExceeded(
                f"subtree-based gamma test exceeded budget of {budget} subsets"
            )
        if not is_subtree(schema, sub):
            return False
    return True


# ---------------------------------------------------------------------------
# Beta-acyclicity (extension)
# ---------------------------------------------------------------------------


def is_beta_acyclic(schema: DatabaseSchema) -> bool:
    """β-acyclicity via iterated nest-point elimination (polynomial).

    An attribute is a *nest point* when the relation schemas containing it are
    totally ordered by inclusion.  A hypergraph is β-acyclic iff repeatedly
    deleting nest points (and dropping emptied/duplicate edges) removes every
    attribute.
    """
    edges: List[FrozenSet[Attribute]] = [
        relation.attributes for relation in schema.relations if relation
    ]
    attributes: Set[Attribute] = set()
    for edge in edges:
        attributes |= edge

    def containing(attribute: Attribute) -> List[FrozenSet[Attribute]]:
        return [edge for edge in edges if attribute in edge]

    def is_nest_point(attribute: Attribute) -> bool:
        holders = sorted(containing(attribute), key=len)
        for first, second in zip(holders, holders[1:]):
            if not first <= second:
                return False
        return True

    while attributes:
        nest_points = [attribute for attribute in sorted(attributes) if is_nest_point(attribute)]
        if not nest_points:
            return False
        doomed = set(nest_points)
        attributes -= doomed
        new_edges: List[FrozenSet[Attribute]] = []
        seen: Set[FrozenSet[Attribute]] = set()
        for edge in edges:
            trimmed = frozenset(edge - doomed)
            if trimmed and trimmed not in seen:
                seen.add(trimmed)
                new_edges.append(trimmed)
        edges = new_edges
    return True


def is_beta_acyclic_bruteforce(
    schema: DatabaseSchema, *, budget: int = 1_000_000
) -> bool:
    """β-acyclicity by definition: every sub-multiset of relations is α-acyclic.

    Exponential; used to cross-validate :func:`is_beta_acyclic` on small
    schemas.
    """
    examined = 0
    for sub in schema.iter_sub_schemas():
        examined += 1
        if examined > budget:
            raise SearchBudgetExceeded(
                f"brute-force beta test exceeded budget of {budget} subsets"
            )
        if not is_alpha_acyclic(sub):
            return False
    return True
