"""Parsing and formatting of the paper's compact schema notation.

The paper writes database schemas as ``(ab, bc, cd)`` where attributes are
single letters and relation schemas are concatenations of letters.  This
module converts between that notation and :class:`~repro.hypergraph.schema`
objects, and also supports multi-character attribute names via explicit
separators.

Examples
--------
>>> parse_schema("ab,bc,cd")
DatabaseSchema('ab,bc,cd')
>>> parse_schema("emp_id dept | dept mgr", relation_separator="|", attribute_separator=" ")
DatabaseSchema('dept,emp_id;dept,mgr')  # doctest: +SKIP
>>> format_schema(parse_schema("abc,cde,ace,afe"))
'(abc, ace, aef, cde)'
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..exceptions import ParseError
from .schema import DatabaseSchema, RelationSchema

__all__ = [
    "parse_relation",
    "parse_schema",
    "format_relation",
    "format_schema",
]


def parse_relation(
    text: str, attribute_separator: Optional[str] = None
) -> RelationSchema:
    """Parse a single relation schema.

    Without a separator each character is one attribute (paper notation).
    With a separator the text is split on it and whitespace is stripped.

    >>> parse_relation("abc")
    RelationSchema('abc')
    >>> parse_relation("emp_id;dept", attribute_separator=";").sorted_attributes()
    ('dept', 'emp_id')
    """
    text = text.strip()
    if text in ("", "{}", "()"):
        return RelationSchema()
    if attribute_separator is None:
        return RelationSchema(text)
    attributes = [part.strip() for part in text.split(attribute_separator)]
    attributes = [part for part in attributes if part]
    if not attributes:
        return RelationSchema()
    return RelationSchema(attributes)


def parse_schema(
    text: str,
    relation_separator: str = ",",
    attribute_separator: Optional[str] = None,
) -> DatabaseSchema:
    """Parse a database schema written in the paper's notation.

    >>> parse_schema("ab, bc, cd").relations
    (RelationSchema('ab'), RelationSchema('bc'), RelationSchema('cd'))

    Surrounding parentheses or braces are tolerated:

    >>> parse_schema("(ab, bc, ac)") == parse_schema("ab,bc,ac")
    True
    """
    if not isinstance(text, str):
        raise ParseError(f"expected a string, got {type(text).__name__}")
    stripped = text.strip()
    for opener, closer in (("(", ")"), ("{", "}"), ("[", "]")):
        if stripped.startswith(opener) and stripped.endswith(closer):
            stripped = stripped[1:-1].strip()
            break
    if not stripped:
        return DatabaseSchema()
    if relation_separator == attribute_separator:
        raise ParseError(
            "relation_separator and attribute_separator must be different"
        )
    pieces = stripped.split(relation_separator)
    relations = [
        parse_relation(piece, attribute_separator=attribute_separator)
        for piece in pieces
        if piece.strip() != ""
    ]
    return DatabaseSchema(relations)


def format_relation(
    relation: RelationSchema, attribute_separator: Optional[str] = None
) -> str:
    """Format a relation schema; inverse of :func:`parse_relation`."""
    return relation.to_notation(attribute_separator)


def format_schema(
    schema: DatabaseSchema,
    relation_separator: str = ", ",
    attribute_separator: Optional[str] = None,
    parenthesize: bool = True,
) -> str:
    """Format a database schema; inverse of :func:`parse_schema`.

    Relations are emitted in a deterministic (sorted) order so formatted
    output is stable across runs regardless of construction order.
    """
    body = schema.sorted().to_notation(
        relation_separator=relation_separator,
        attribute_separator=attribute_separator,
    )
    return f"({body})" if parenthesize else body


def schemas_from_notations(notations: Iterable[str]) -> list:
    """Parse several schemas at once (convenience for tests and benchmarks)."""
    return [parse_schema(notation) for notation in notations]
