"""Deterministic and random schema generators.

These are the workload generators used by the test suite and by every
benchmark.  Deterministic families (chains, stars, Arings, Acliques, grids)
provide predictable scaling shapes; the random families produce tree schemas
(guaranteed α-acyclic by construction) and cyclic schemas (guaranteed cyclic
by embedding an Aring) for property-based testing of the paper's theorems.

All random generators take an explicit :class:`random.Random` instance or an
integer seed, never the global RNG, so every experiment is reproducible.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set, Tuple, Union

from ..exceptions import SchemaError
from .cycles import aclique, aring, default_attribute_names
from .schema import Attribute, DatabaseSchema, RelationSchema

__all__ = [
    "aring",
    "aclique",
    "chain_schema",
    "star_schema",
    "fan_schema",
    "grid_schema",
    "clique_of_rings",
    "random_tree_schema",
    "random_cyclic_schema",
    "random_schema",
    "ResolvableRandom",
    "resolve_rng",
]

ResolvableRandom = Union[None, int, random.Random]


def resolve_rng(rng: ResolvableRandom) -> random.Random:
    """Turn ``None`` / an int seed / a Random instance into a Random instance."""
    if rng is None:
        return random.Random(0)
    if isinstance(rng, int):
        return random.Random(rng)
    return rng


def _numbered_attributes(prefix: str, count: int) -> List[Attribute]:
    return [f"{prefix}{index}" for index in range(count)]


def chain_schema(length: int, attribute_prefix: str = "x") -> DatabaseSchema:
    """A chain (path) schema ``{x0 x1}, {x1 x2}, ..., {x_{n-1} x_n}``.

    Chains are tree schemas and also γ-acyclic; they are the canonical
    "easy" workload for the scaling benchmarks.
    """
    if length < 1:
        raise SchemaError("chain length must be at least 1")
    attrs = _numbered_attributes(attribute_prefix, length + 1)
    return DatabaseSchema(
        RelationSchema({attrs[i], attrs[i + 1]}) for i in range(length)
    )


def star_schema(points: int, attribute_prefix: str = "x") -> DatabaseSchema:
    """A star schema: a hub attribute shared by ``points`` binary relations.

    ``{hub, x0}, {hub, x1}, ...`` — a tree schema whose qual tree is a star.
    """
    if points < 1:
        raise SchemaError("a star needs at least one point")
    hub = f"{attribute_prefix}_hub"
    return DatabaseSchema(
        RelationSchema({hub, f"{attribute_prefix}{index}"}) for index in range(points)
    )


def fan_schema(width: int, attribute_prefix: str = "x") -> DatabaseSchema:
    """A "fan": one big relation covering everything plus ``width`` binary spokes.

    ``{x0..x_width}, {x0 x1}, {x1 x2}, ...`` — a tree schema in which the big
    relation witnesses every subset elimination; used to exercise GYO traces
    with large witnesses.
    """
    if width < 2:
        raise SchemaError("a fan needs width at least 2")
    attrs = _numbered_attributes(attribute_prefix, width + 1)
    relations: List[RelationSchema] = [RelationSchema(attrs)]
    relations.extend(
        RelationSchema({attrs[i], attrs[i + 1]}) for i in range(width)
    )
    return DatabaseSchema(relations)


def grid_schema(rows: int, columns: int, attribute_prefix: str = "g") -> DatabaseSchema:
    """A grid of binary relations over a ``rows × columns`` lattice of attributes.

    Attributes are lattice points; relations connect horizontal and vertical
    neighbours.  Any grid with ``rows >= 2`` and ``columns >= 2`` is cyclic
    (it contains squares, i.e. Arings of size 4 after attribute deletion).
    """
    if rows < 1 or columns < 1:
        raise SchemaError("grid dimensions must be positive")
    relations: List[RelationSchema] = []

    def name(row: int, column: int) -> Attribute:
        return f"{attribute_prefix}_{row}_{column}"

    for row in range(rows):
        for column in range(columns):
            if column + 1 < columns:
                relations.append(RelationSchema({name(row, column), name(row, column + 1)}))
            if row + 1 < rows:
                relations.append(RelationSchema({name(row, column), name(row + 1, column)}))
    return DatabaseSchema(relations)


def clique_of_rings(ring_count: int, ring_size: int = 4) -> DatabaseSchema:
    """Several attribute-disjoint Arings side by side (a disconnected cyclic schema).

    This is the shape of the schemas built by the Theorem 4.2 reduction from
    Bin Packing, where each item becomes an Aclique over fresh attributes.
    """
    if ring_count < 1:
        raise SchemaError("need at least one ring")
    relations: List[RelationSchema] = []
    for ring_index in range(ring_count):
        attrs = [f"r{ring_index}_{k}" for k in range(ring_size)]
        relations.extend(aring(ring_size, attrs).relations)
    return DatabaseSchema(relations)


def random_tree_schema(
    relation_count: int,
    *,
    max_shared: int = 3,
    max_private: int = 3,
    rng: ResolvableRandom = None,
    attribute_prefix: str = "t",
) -> DatabaseSchema:
    """A random tree schema with ``relation_count`` relations.

    The construction picks a random tree over the relations, gives each tree
    edge a fresh set of 1..``max_shared`` shared attributes and each relation
    0..``max_private`` private attributes, and sets each relation schema to
    the union of the attribute sets of its incident edges plus its private
    attributes.  The qual graph of the construction is the chosen tree, so the
    result is always a tree schema.
    """
    if relation_count < 1:
        raise SchemaError("need at least one relation")
    generator = resolve_rng(rng)
    counter = 0

    def fresh(count: int) -> List[Attribute]:
        nonlocal counter
        names = [f"{attribute_prefix}{counter + offset}" for offset in range(count)]
        counter += count
        return names

    contents: List[Set[Attribute]] = [set() for _ in range(relation_count)]
    for node in range(relation_count):
        contents[node].update(fresh(generator.randint(0, max_private)))
    for node in range(1, relation_count):
        parent = generator.randrange(node)
        shared = fresh(generator.randint(1, max_shared))
        contents[node].update(shared)
        contents[parent].update(shared)
    # Guarantee non-empty relation schemas.
    for node in range(relation_count):
        if not contents[node]:
            contents[node].update(fresh(1))
    return DatabaseSchema(RelationSchema(attrs) for attrs in contents)


def random_cyclic_schema(
    relation_count: int,
    *,
    ring_size: int = 3,
    rng: ResolvableRandom = None,
    attribute_prefix: str = "c",
) -> DatabaseSchema:
    """A random cyclic schema: a random tree schema with an embedded Aring.

    The embedded ring attributes are kept disjoint from the tree part except
    for one shared attachment attribute, so the schema is connected yet
    guaranteed cyclic (deleting everything but the ring attributes leaves an
    Aring, per Lemma 3.1).
    """
    if relation_count < ring_size:
        raise SchemaError("relation_count must be at least ring_size")
    generator = resolve_rng(rng)
    tree_part = random_tree_schema(
        relation_count - ring_size,
        rng=generator,
        attribute_prefix=attribute_prefix + "t",
    ) if relation_count > ring_size else DatabaseSchema()
    ring_attrs = [f"{attribute_prefix}r{k}" for k in range(ring_size)]
    ring_part = aring(ring_size, ring_attrs)
    relations = list(tree_part.relations)
    ring_relations = list(ring_part.relations)
    if relations:
        # Attach the ring to a random tree relation through a shared attribute.
        anchor_index = generator.randrange(len(relations))
        anchor_attr = f"{attribute_prefix}_anchor"
        relations[anchor_index] = relations[anchor_index].union({anchor_attr})
        ring_relations[0] = ring_relations[0].union({anchor_attr})
    return DatabaseSchema(relations + ring_relations)


def random_schema(
    relation_count: int,
    attribute_count: int,
    *,
    min_arity: int = 1,
    max_arity: int = 4,
    rng: ResolvableRandom = None,
    attribute_prefix: str = "a",
) -> DatabaseSchema:
    """A uniformly random schema (may be a tree or cyclic).

    Each relation schema is a random subset of the attribute universe with an
    arity drawn uniformly from ``[min_arity, max_arity]``.  Useful for
    unbiased property tests where the tree/cyclic split itself is under test.
    """
    if relation_count < 1 or attribute_count < 1:
        raise SchemaError("counts must be positive")
    if not 1 <= min_arity <= max_arity:
        raise SchemaError("need 1 <= min_arity <= max_arity")
    generator = resolve_rng(rng)
    universe = _numbered_attributes(attribute_prefix, attribute_count)
    relations = []
    for _ in range(relation_count):
        arity = generator.randint(min_arity, min(max_arity, attribute_count))
        relations.append(RelationSchema(generator.sample(universe, arity)))
    return DatabaseSchema(relations)
