"""Qual graphs and qual trees (Section 3.1).

A *qual graph* for a database schema ``D`` is an undirected graph whose nodes
are in one-to-one correspondence with the relation schemas of ``D`` such that
for each attribute ``A ∈ U(D)`` the subgraph induced by the nodes whose
relation schemas contain ``A`` is connected.  ``D`` is a *tree schema* if some
qual graph for it is a tree, else ``D`` is a *cyclic schema*.

Qual trees are also known as *join trees*; the tree-schema property is
α-acyclicity in the hypergraph literature.

The useful fact stated in the paper ("attribute connectivity") — if ``T`` is a
qual tree, ``r`` and ``s`` nodes of ``T`` and ``p`` a node on the path from
``r`` to ``s``, then ``A ∈ R ∩ S`` implies ``A ∈ P`` — is exposed as
:meth:`QualGraph.check_attribute_connectivity`.
"""

from __future__ import annotations

from collections import deque
from itertools import combinations
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..exceptions import QualGraphError, SearchBudgetExceeded
from .schema import Attribute, DatabaseSchema, RelationSchema

__all__ = [
    "QualGraph",
    "is_qual_graph",
    "enumerate_qual_trees",
]

Edge = Tuple[int, int]


def _normalize_edge(a: int, b: int) -> Edge:
    return (a, b) if a <= b else (b, a)


class QualGraph:
    """An undirected graph over the relation indices of a database schema.

    The graph does not have to be a valid qual graph; use :meth:`is_valid`
    to check the qual-graph condition and :meth:`is_qual_tree` for the
    tree-schema condition.
    """

    def __init__(self, schema: DatabaseSchema, edges: Iterable[Edge] = ()) -> None:
        self._schema = schema
        self._nodes = tuple(range(len(schema)))
        self._edges: Set[Edge] = set()
        for a, b in edges:
            self.add_edge(a, b)

    # -- construction -----------------------------------------------------------

    def add_edge(self, a: int, b: int) -> None:
        """Add the undirected edge ``{a, b}``; self-loops are rejected."""
        if a == b:
            raise QualGraphError("qual graphs have no self-loops")
        for node in (a, b):
            if not 0 <= node < len(self._schema):
                raise QualGraphError(f"node {node} is not a relation index")
        self._edges.add(_normalize_edge(a, b))

    def remove_edge(self, a: int, b: int) -> None:
        """Remove the undirected edge ``{a, b}`` if present."""
        self._edges.discard(_normalize_edge(a, b))

    # -- inspection -------------------------------------------------------------

    @property
    def schema(self) -> DatabaseSchema:
        """The schema whose relations are the nodes of this graph."""
        return self._schema

    @property
    def nodes(self) -> Tuple[int, ...]:
        """All relation indices (every relation is a node, even if isolated)."""
        return self._nodes

    @property
    def edges(self) -> FrozenSet[Edge]:
        """The undirected edges as normalized ``(min, max)`` pairs."""
        return frozenset(self._edges)

    def relation(self, node: int) -> RelationSchema:
        """The relation schema corresponding to ``node``."""
        return self._schema[node]

    def neighbours(self, node: int) -> Tuple[int, ...]:
        """Nodes adjacent to ``node``."""
        result = []
        for a, b in self._edges:
            if a == node:
                result.append(b)
            elif b == node:
                result.append(a)
        return tuple(sorted(result))

    def degree(self, node: int) -> int:
        """Number of edges incident to ``node``."""
        return len(self.neighbours(node))

    def adjacency(self) -> Dict[int, Set[int]]:
        """Adjacency mapping for all nodes."""
        adjacency: Dict[int, Set[int]] = {node: set() for node in self._nodes}
        for a, b in self._edges:
            adjacency[a].add(b)
            adjacency[b].add(a)
        return adjacency

    # -- graph-theoretic predicates ------------------------------------------------

    def is_connected(self, restrict_to: Optional[Iterable[int]] = None) -> bool:
        """Connectivity of the whole graph, or of the induced subgraph on
        ``restrict_to`` when given."""
        nodes = set(self._nodes if restrict_to is None else restrict_to)
        if not nodes:
            return True
        adjacency = self.adjacency()
        start = next(iter(nodes))
        seen = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for neighbour in adjacency[node]:
                if neighbour in nodes and neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
        return seen == nodes

    def is_tree(self) -> bool:
        """True when the graph is connected and has exactly ``n - 1`` edges."""
        n = len(self._nodes)
        if n == 0:
            return True
        return len(self._edges) == n - 1 and self.is_connected()

    def induces_connected_subgraph(self, nodes: Iterable[int]) -> bool:
        """True when the given nodes induce a connected subgraph."""
        return self.is_connected(restrict_to=nodes)

    def path(self, source: int, target: int) -> Optional[Tuple[int, ...]]:
        """A shortest path between two nodes, or ``None`` when disconnected."""
        if source == target:
            return (source,)
        adjacency = self.adjacency()
        previous: Dict[int, int] = {}
        queue = deque([source])
        seen = {source}
        while queue:
            node = queue.popleft()
            for neighbour in sorted(adjacency[node]):
                if neighbour in seen:
                    continue
                previous[neighbour] = node
                if neighbour == target:
                    path = [target]
                    while path[-1] != source:
                        path.append(previous[path[-1]])
                    return tuple(reversed(path))
                seen.add(neighbour)
                queue.append(neighbour)
        return None

    # -- qual graph predicates -------------------------------------------------------

    def is_valid(self) -> bool:
        """The qual-graph condition: each attribute's nodes induce a connected
        subgraph."""
        occurrences = self._schema.attribute_occurrences()
        for indices in occurrences.values():
            if not self.induces_connected_subgraph(indices):
                return False
        return True

    def invalid_attributes(self) -> Tuple[Attribute, ...]:
        """Attributes violating the qual-graph condition (for diagnostics)."""
        occurrences = self._schema.attribute_occurrences()
        return tuple(
            sorted(
                attribute
                for attribute, indices in occurrences.items()
                if not self.induces_connected_subgraph(indices)
            )
        )

    def is_qual_tree(self) -> bool:
        """True when the graph is both a tree and a valid qual graph."""
        return self.is_tree() and self.is_valid()

    def check_attribute_connectivity(self) -> bool:
        """Verify the paper's *attribute connectivity* fact on this graph.

        Only meaningful for qual trees: for all nodes ``r, s`` and every node
        ``p`` on the (unique) path between them, ``R ∩ S ⊆ P``.
        Returns ``True`` when the property holds for every pair.
        """
        if not self.is_tree():
            raise QualGraphError("attribute connectivity is defined on qual trees")
        for r, s in combinations(self._nodes, 2):
            shared = self.relation(r).intersection(self.relation(s))
            if not shared:
                continue
            path = self.path(r, s)
            if path is None:
                return False
            for p in path:
                if not shared <= self.relation(p):
                    return False
        return True

    # -- rendering ---------------------------------------------------------------------

    def to_edge_notation(self) -> Tuple[Tuple[str, str], ...]:
        """Edges rendered with the relation schemas' paper notation."""
        return tuple(
            (self.relation(a).to_notation(), self.relation(b).to_notation())
            for a, b in sorted(self._edges)
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        edges = ", ".join(f"{a}-{b}" for a, b in sorted(self._edges))
        return f"QualGraph(nodes={len(self._nodes)}, edges=[{edges}])"


def is_qual_graph(schema: DatabaseSchema, edges: Iterable[Edge]) -> bool:
    """Check whether the given edge set is a valid qual graph for ``schema``."""
    return QualGraph(schema, edges).is_valid()


def _tree_from_pruefer(nodes: Sequence[int], sequence: Sequence[int]) -> List[Edge]:
    """Decode a Prüfer sequence over ``nodes`` into the edge list of a tree."""
    import heapq

    degree = {node: 1 for node in nodes}
    for node in sequence:
        degree[node] += 1
    edges: List[Edge] = []
    leaves = [node for node in nodes if degree[node] == 1]
    heapq.heapify(leaves)
    for node in sequence:
        leaf = heapq.heappop(leaves)
        edges.append(_normalize_edge(leaf, node))
        degree[leaf] -= 1
        degree[node] -= 1
        if degree[node] == 1:
            heapq.heappush(leaves, node)
    last = [node for node in nodes if degree[node] == 1]
    edges.append(_normalize_edge(last[0], last[1]))
    return edges


def enumerate_qual_trees(
    schema: DatabaseSchema, *, budget: int = 200_000
) -> Iterator[QualGraph]:
    """Enumerate every qual tree of ``schema`` (exhaustive, for small schemas).

    All labelled trees on ``n`` nodes are generated via Prüfer sequences
    (``n^(n-2)`` of them), each checked for the qual-graph condition.  The
    ``budget`` bounds the number of candidate trees examined; exceeding it
    raises :class:`~repro.exceptions.SearchBudgetExceeded`.

    A schema is a tree schema iff this iterator yields at least one graph.
    """
    n = len(schema)
    if n == 0:
        return
    if n == 1:
        yield QualGraph(schema, [])
        return
    if n == 2:
        candidate = QualGraph(schema, [(0, 1)])
        if candidate.is_valid():
            yield candidate
        return
    nodes = list(range(n))
    total = n ** (n - 2)
    if total > budget:
        raise SearchBudgetExceeded(
            f"enumerating {total} labelled trees exceeds budget {budget}"
        )

    def sequences(length: int) -> Iterator[Tuple[int, ...]]:
        if length == 0:
            yield ()
            return
        for rest in sequences(length - 1):
            for node in nodes:
                yield rest + (node,)

    for sequence in sequences(n - 2):
        edges = _tree_from_pruefer(nodes, sequence)
        candidate = QualGraph(schema, edges)
        if candidate.is_valid():
            yield candidate
