"""Named workload suites shared by the benchmarks and the scaling tests.

Each suite returns a list of :class:`WorkloadCase` objects — a label, a
schema, and optionally a query target and a database state — so that every
benchmark regenerating a paper artifact iterates over exactly the same
instances and prints comparable rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..hypergraph.cycles import aclique, aring
from ..hypergraph.generators import (
    chain_schema,
    grid_schema,
    random_cyclic_schema,
    random_tree_schema,
    star_schema,
)
from ..hypergraph.schema import DatabaseSchema, RelationSchema
from ..relational.database import DatabaseState
from ..relational.universal import random_ur_database

__all__ = [
    "WorkloadCase",
    "gyo_scaling_workload",
    "tableau_scaling_workload",
    "acyclicity_workload",
    "query_evaluation_workload",
]


@dataclass(frozen=True)
class WorkloadCase:
    """One benchmark instance: a labelled schema, optional target and state."""

    label: str
    schema: DatabaseSchema
    target: Optional[RelationSchema] = None
    state: Optional[DatabaseState] = None

    def __str__(self) -> str:
        return self.label


def gyo_scaling_workload(sizes: Sequence[int] = (10, 50, 100, 200, 400)) -> List[WorkloadCase]:
    """Schemas of growing size for the GYO-reduction scaling benchmark.

    Chains and stars are tree schemas (the reduction runs to empty); Arings
    are the canonical cyclic family (the reduction stops immediately); random
    tree schemas exercise non-trivial witness structure.
    """
    cases: List[WorkloadCase] = []
    for size in sizes:
        cases.append(WorkloadCase(label=f"chain-{size}", schema=chain_schema(size)))
        cases.append(WorkloadCase(label=f"star-{size}", schema=star_schema(size)))
        cases.append(WorkloadCase(label=f"aring-{size}", schema=aring(max(size, 3))))
        cases.append(
            WorkloadCase(
                label=f"random-tree-{size}",
                schema=random_tree_schema(size, rng=size),
            )
        )
    return cases


def tableau_scaling_workload(sizes: Sequence[int] = (4, 6, 8, 10, 12)) -> List[WorkloadCase]:
    """Schemas for the tableau-minimization / canonical-connection scaling benchmark."""
    cases: List[WorkloadCase] = []
    for size in sizes:
        chain = chain_schema(size)
        cases.append(
            WorkloadCase(
                label=f"chain-{size}",
                schema=chain,
                target=RelationSchema({"x0", f"x{size}"}),
            )
        )
        ring = aring(size)
        cases.append(
            WorkloadCase(
                label=f"aring-{size}",
                schema=ring,
                target=RelationSchema(ring[0]),
            )
        )
        tree = random_tree_schema(size, rng=size)
        cases.append(
            WorkloadCase(
                label=f"random-tree-{size}",
                schema=tree,
                target=RelationSchema(tree[0]),
            )
        )
    return cases


def acyclicity_workload(sizes: Sequence[int] = (4, 6, 8, 10)) -> List[WorkloadCase]:
    """Schemas spanning the acyclicity spectrum for the γ/β/α benchmarks."""
    cases: List[WorkloadCase] = []
    for size in sizes:
        cases.append(WorkloadCase(label=f"chain-{size}", schema=chain_schema(size)))
        cases.append(WorkloadCase(label=f"aring-{size}", schema=aring(size)))
        cases.append(WorkloadCase(label=f"aclique-{size}", schema=aclique(size)))
        cases.append(
            WorkloadCase(label=f"grid-2x{size}", schema=grid_schema(2, size))
        )
        cases.append(
            WorkloadCase(
                label=f"random-cyclic-{size}",
                schema=random_cyclic_schema(size, rng=size),
            )
        )
    return cases


def query_evaluation_workload(
    chain_lengths: Sequence[int] = (3, 4, 5),
    *,
    tuple_count: int = 90,
    domain_size: int = 24,
) -> List[WorkloadCase]:
    """Chain queries with UR states for the Yannakakis-vs-naive benchmark.

    The target is the pair of endpoint attributes, the worst case for the
    naive left-to-right join (every intermediate result carries attributes
    that the final projection throws away).  The default sizes keep the naive
    baseline's intermediate blow-up measurable (tens of thousands of tuples)
    but bounded, so the benchmark finishes in seconds in pure Python.
    """
    cases: List[WorkloadCase] = []
    for length in chain_lengths:
        schema = chain_schema(length)
        state = random_ur_database(
            schema,
            tuple_count=tuple_count,
            domain_size=domain_size,
            rng=length,
        )
        cases.append(
            WorkloadCase(
                label=f"chain-{length}-n{tuple_count}",
                schema=schema,
                target=RelationSchema({"x0", f"x{length}"}),
                state=state,
            )
        )
    return cases
