"""Benchmark workloads: named schema families and database-state factories."""

from .suites import (
    WorkloadCase,
    acyclicity_workload,
    gyo_scaling_workload,
    query_evaluation_workload,
    tableau_scaling_workload,
)

__all__ = [
    "WorkloadCase",
    "gyo_scaling_workload",
    "tableau_scaling_workload",
    "acyclicity_workload",
    "query_evaluation_workload",
]
