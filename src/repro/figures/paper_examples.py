"""Every concrete schema, query and example appearing in the paper.

The constants below are keyed by figure / section so tests, benchmarks and
``EXPERIMENTS.md`` can refer to the paper's artifacts by name.

Notes on fidelity
-----------------

* Figures 1, the Section 3.2 example, the Section 5.1 counterexample and the
  Section 6 example are transcribed verbatim from the paper.
* Figure 2(c) is only partially legible in the available scan (OCR damage);
  :data:`FIGURE_2C_SCHEMA` is a reconstruction that provably satisfies the
  figure's caption: deleting ``X = abgi`` and eliminating subsets yields an
  Aring of size 4, deleting ``X = efgi`` yields an Aclique of size 4, and the
  schema contains the supersets (``cda`` of ``cd``, ``ace`` of ``ce``,
  ``bcd``, ``cda``) that Figure 7 refers back to.  The reconstruction is
  flagged in ``EXPERIMENTS.md``.
* Figures 3–6 and 8 illustrate proof constructions rather than specific
  instances; the corresponding machinery is exercised by the theorem checkers
  listed in ``DESIGN.md``.
"""

from __future__ import annotations

from ..hypergraph.cycles import aclique, aring
from ..hypergraph.parsing import parse_schema
from ..hypergraph.schema import DatabaseSchema, RelationSchema

__all__ = [
    "FIGURE_1_TREE_CHAIN",
    "FIGURE_1_CYCLIC_TRIANGLE",
    "FIGURE_1_TREE_FOUR_RELATIONS",
    "FIGURE_1_CASES",
    "FIGURE_2_ARING_4",
    "FIGURE_2_ACLIQUE_4",
    "FIGURE_2C_SCHEMA",
    "FIGURE_2C_ARING_DELETION",
    "FIGURE_2C_ACLIQUE_DELETION",
    "SECTION_3_2_D",
    "SECTION_3_2_D_DOUBLE_PRIME",
    "SECTION_3_2_D_PRIME",
    "SECTION_5_1_SCHEMA",
    "SECTION_5_1_SUBSCHEMA",
    "SECTION_6_SCHEMA",
    "SECTION_6_TARGET",
    "SECTION_6_EXPECTED_CC",
    "FIGURE_7_ARING_PAIR",
    "FIGURE_7_ACLIQUE_PAIR",
]

# -- Figure 1: tree vs cyclic classification ----------------------------------------

#: ``(ab, bc, cd)`` — a tree schema whose (only) qual tree is the chain.
FIGURE_1_TREE_CHAIN = parse_schema("ab,bc,cd")

#: ``(ab, bc, ac)`` — cyclic: its only qual graph is the triangle.
FIGURE_1_CYCLIC_TRIANGLE = parse_schema("ab,bc,ac")

#: ``(abc, cde, ace, afe)`` — a tree schema (qual tree abc - ace - aef with cde
#: attached to ace).
FIGURE_1_TREE_FOUR_RELATIONS = parse_schema("abc,cde,ace,afe")

#: The three Figure 1 rows as ``(schema, expected_is_tree)`` pairs.
FIGURE_1_CASES = (
    (FIGURE_1_TREE_CHAIN, True),
    (FIGURE_1_CYCLIC_TRIANGLE, False),
    (FIGURE_1_TREE_FOUR_RELATIONS, True),
)

# -- Figure 2: Arings, Acliques, and cyclic schemas built on them ---------------------

#: Figure 2(a): the Aring of size 4, ``(ab, bc, cd, da)``.
FIGURE_2_ARING_4 = parse_schema("ab,bc,cd,da")

#: Figure 2(b): the Aclique of size 4, ``(bcd, acd, abd, abc)``.
FIGURE_2_ACLIQUE_4 = parse_schema("bcd,acd,abd,abc")

#: Figure 2(c) (reconstructed, see the module docstring): a cyclic schema that
#: reduces to an Aring of size 4 under ``X = abgi`` and to an Aclique of size 4
#: under ``X = efgi``.
FIGURE_2C_SCHEMA = parse_schema("fi,bef,ace,abdf,bcd,cg,acd,abcg")

#: The attribute deletion producing the Aring core in Figure 2(c).
FIGURE_2C_ARING_DELETION = RelationSchema("abgi")

#: The attribute deletion producing the Aclique core in Figure 2(c).
FIGURE_2C_ACLIQUE_DELETION = RelationSchema("efgi")

# -- Section 3.2: the tree projection example ------------------------------------------

#: ``D = (ab, bc, cd, de, ef, fg, gh, ha)`` — an Aring of size 8 (cyclic).
SECTION_3_2_D = parse_schema("ab,bc,cd,de,ef,fg,gh,ha")

#: ``D'' = (ab, abch, cdgh, defg, ef)`` — a tree schema with
#: ``D <= D'' <= D'``; the paper's witness tree projection.
SECTION_3_2_D_DOUBLE_PRIME = parse_schema("ab,abch,cdgh,defg,ef")

#: ``D' = (abef, abch, cdgh, defg, ef)`` — cyclic, the upper schema.
SECTION_3_2_D_PRIME = parse_schema("abef,abch,cdgh,defg,ef")

# -- Section 5.1: the lossless-join counterexample --------------------------------------

#: ``D = (abc, ab, bc)``: a tree schema.
SECTION_5_1_SCHEMA = parse_schema("abc,ab,bc")

#: ``D' = (ab, bc)``: not a subtree of ``D`` and ``⋈D ⊭ ⋈D'``.
SECTION_5_1_SUBSCHEMA = parse_schema("ab,bc")

# -- Section 6: irrelevant relations and the canonical connection ------------------------

#: ``D = (R1=abg, R2=bcg, R3=acf, R4=ad, R5=de, R6=ea)``.
SECTION_6_SCHEMA = parse_schema("abg,bcg,acf,ad,de,ea")

#: The query target ``X = abc``.
SECTION_6_TARGET = RelationSchema("abc")

#: The canonical connection the paper derives: ``(abg, bcg, ac)`` — relations
#: ``ad``, ``de``, ``ea`` are irrelevant and column ``f`` is projected away.
SECTION_6_EXPECTED_CC = parse_schema("abg,bcg,ac")

# -- Figure 7: deleting intersections inside Arings / Acliques ---------------------------

#: Figure 7(a): in the Aring of Figure 2, ``R = cd`` and ``S = ce`` have
#: supersets ``cda`` and ``ace``; deleting ``ac`` leaves ``d`` and ``e`` connected.
FIGURE_7_ARING_PAIR = (RelationSchema("cda"), RelationSchema("ace"))

#: Figure 7(b): in the Aclique of Figure 2, ``R = bcd`` and ``S = cda``;
#: deleting ``cd`` leaves ``b`` and ``a`` connected.
FIGURE_7_ACLIQUE_PAIR = (RelationSchema("bcd"), RelationSchema("cda"))
