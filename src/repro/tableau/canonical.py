"""Canonical schemas ``CS(D, X)`` and canonical connections ``CC(D, X)``.

Given any tableau equivalent to ``Tab(D, X)``, the *canonical schema* reads a
database schema off the tableau: for each row ``r_i`` construct the relation
schema

``R_i = { A | column A of r_i is the distinguished variable, or the symbol in
column A of r_i also occurs in column A of another row }``

and take the reduction of the resulting multiset (Section 3.4).

The *canonical connection* ``CC(D, X)`` (Maier & Ullman) is the canonical
schema of a **minimal** tableau for ``(D, X)``.  By Lemmas 3.3 and 3.4 it does
not depend on which minimal tableau is used, so ``CC(D, X)`` is a well-defined
function of the query.

The read-off runs on the interned-symbol compiled form
(:mod:`repro.tableau.kernel`) in one column-wise pass: a cell contributes its
attribute when its code is distinguished or its per-column occurrence bitmask
has more than one row set.  ``canonical_connection_result`` reads the
canonical schema directly off the *original* compiled tableau restricted to
the kept-row bitmask, so the derivation compiles exactly one tableau.

Key facts reproduced elsewhere in the library:

* Lemma 3.5 — ``(D, X) ≡ (D', X)`` iff ``CC(D, X) = CC(D', X)``;
* Theorem 3.3 — ``CC(D, X) <= GR(D, X)`` always, with equality when ``D`` is a
  tree schema or when ``U(GR(D, X)) ⊆ X``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Union

from ..hypergraph.schema import Attribute, DatabaseSchema, RelationSchema
from .kernel import CompiledTableau, iter_bits
from .minimize import MinimizationResult, minimize_tableau
from .tableau import Tableau, standard_tableau

__all__ = [
    "canonical_schema",
    "CanonicalConnectionResult",
    "canonical_connection_result",
    "canonical_connection",
]


def _canonical_schema_from_kernel(
    compiled: CompiledTableau, rows_mask: Optional[int] = None
) -> DatabaseSchema:
    """The canonical schema of the rows in ``rows_mask``, in one column pass."""
    if rows_mask is None:
        rows_mask = compiled.all_rows_mask
    row_attributes = {row_index: [] for row_index in iter_bits(rows_mask)}
    columns = compiled.tableau.columns
    n_distinguished = compiled.n_distinguished
    for position in range(compiled.n_columns):
        attribute = columns[position]
        for code, mask in compiled.occurrence_masks[position].items():
            present = mask & rows_mask
            if not present:
                continue
            if code < n_distinguished or present.bit_count() > 1:
                for row_index in iter_bits(present):
                    row_attributes[row_index].append(attribute)
    relations = [
        RelationSchema(row_attributes[row_index])
        for row_index in sorted(row_attributes)
    ]
    return DatabaseSchema(relations).reduction()


def canonical_schema(tableau: Tableau) -> DatabaseSchema:
    """The canonical schema ``CS`` of a tableau (reduction included)."""
    return _canonical_schema_from_kernel(tableau.compiled())


@dataclass(frozen=True)
class CanonicalConnectionResult:
    """The canonical connection together with the artifacts that produced it."""

    schema: DatabaseSchema
    target: RelationSchema
    standard: Tableau
    minimization: MinimizationResult
    connection: DatabaseSchema

    @property
    def minimal_tableau(self) -> Tableau:
        """The minimal tableau used to read off ``CC(D, X)``."""
        return self.minimization.minimal


def canonical_connection_result(
    schema: DatabaseSchema,
    target: Union[RelationSchema, Iterable[Attribute]],
    universe: Optional[Union[RelationSchema, Iterable[Attribute]]] = None,
    *,
    tableau: Optional[Tableau] = None,
) -> CanonicalConnectionResult:
    """Compute ``CC(D, X)`` returning the full derivation.

    The derivation is: build ``Tab(D, X)``, minimize it, read off the
    canonical schema of the minimal tableau.  All three steps share the one
    compiled form of ``Tab(D, X)``: minimization works on row bitmasks over
    it, and the canonical schema is read off it restricted to the kept rows.

    ``tableau`` lets a caller holding a memoized ``Tab(D, X)`` (the engine's
    :meth:`~repro.engine.analysis.AnalyzedSchema.standard_tableau`) supply it
    so its cached compiled form is reused; it must equal the standard tableau
    for ``(schema, target, universe)``.
    """
    target_schema = (
        target if isinstance(target, RelationSchema) else RelationSchema(target)
    )
    if tableau is None:
        tableau = standard_tableau(schema, target_schema, universe=universe)
    minimization = minimize_tableau(tableau)
    kept_mask = 0
    for row_index in minimization.kept_rows:
        kept_mask |= 1 << row_index
    connection = _canonical_schema_from_kernel(tableau.compiled(), kept_mask)
    return CanonicalConnectionResult(
        schema=schema,
        target=target_schema,
        standard=tableau,
        minimization=minimization,
        connection=connection,
    )


def canonical_connection(
    schema: DatabaseSchema,
    target: Union[RelationSchema, Iterable[Attribute]],
    universe: Optional[Union[RelationSchema, Iterable[Attribute]]] = None,
) -> DatabaseSchema:
    """``CC(D, X)`` — the canonical connection of the query ``(D, X)``.

    Consults the engine façade's cache (:func:`repro.engine.analyze`): an
    already-analyzed schema reuses its memoized tableau minimization.  On a
    miss the connection is computed directly without creating a cache entry,
    so sweeps over many schemas (γ-acyclicity checks walk every connected
    sub-schema) do not flood the analysis LRU.
    """
    from ..engine.analysis import peek_analysis  # deferred: the engine sits above us

    analysis = peek_analysis(schema)
    if analysis is not None:
        return analysis.canonical_connection(target, universe=universe)
    return canonical_connection_result(schema, target, universe=universe).connection
