"""Canonical schemas ``CS(D, X)`` and canonical connections ``CC(D, X)``.

Given any tableau equivalent to ``Tab(D, X)``, the *canonical schema* reads a
database schema off the tableau: for each row ``r_i`` construct the relation
schema

``R_i = { A | column A of r_i is the distinguished variable, or the symbol in
column A of r_i also occurs in column A of another row }``

and take the reduction of the resulting multiset (Section 3.4).

The *canonical connection* ``CC(D, X)`` (Maier & Ullman) is the canonical
schema of a **minimal** tableau for ``(D, X)``.  By Lemmas 3.3 and 3.4 it does
not depend on which minimal tableau is used, so ``CC(D, X)`` is a well-defined
function of the query.

Key facts reproduced elsewhere in the library:

* Lemma 3.5 — ``(D, X) ≡ (D', X)`` iff ``CC(D, X) = CC(D', X)``;
* Theorem 3.3 — ``CC(D, X) <= GR(D, X)`` always, with equality when ``D`` is a
  tree schema or when ``U(GR(D, X)) ⊆ X``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..hypergraph.schema import Attribute, DatabaseSchema, RelationSchema
from .minimize import MinimizationResult, minimize_tableau
from .tableau import Tableau, standard_tableau

__all__ = [
    "canonical_schema",
    "CanonicalConnectionResult",
    "canonical_connection_result",
    "canonical_connection",
]


def canonical_schema(tableau: Tableau) -> DatabaseSchema:
    """The canonical schema ``CS`` of a tableau (reduction included)."""
    relations: List[RelationSchema] = []
    rows = tableau.rows
    for row_index, row in enumerate(rows):
        attributes: List[Attribute] = []
        for column_index, attribute in enumerate(tableau.columns):
            symbol = row.cells[column_index]
            if symbol.is_distinguished:
                attributes.append(attribute)
                continue
            repeated = any(
                other_index != row_index
                and rows[other_index].cells[column_index] == symbol
                for other_index in range(len(rows))
            )
            if repeated:
                attributes.append(attribute)
        relations.append(RelationSchema(attributes))
    return DatabaseSchema(relations).reduction()


@dataclass(frozen=True)
class CanonicalConnectionResult:
    """The canonical connection together with the artifacts that produced it."""

    schema: DatabaseSchema
    target: RelationSchema
    standard: Tableau
    minimization: MinimizationResult
    connection: DatabaseSchema

    @property
    def minimal_tableau(self) -> Tableau:
        """The minimal tableau used to read off ``CC(D, X)``."""
        return self.minimization.minimal


def canonical_connection_result(
    schema: DatabaseSchema,
    target: Union[RelationSchema, Iterable[Attribute]],
    universe: Optional[Union[RelationSchema, Iterable[Attribute]]] = None,
) -> CanonicalConnectionResult:
    """Compute ``CC(D, X)`` returning the full derivation.

    The derivation is: build ``Tab(D, X)``, minimize it, read off the
    canonical schema of the minimal tableau.
    """
    target_schema = (
        target if isinstance(target, RelationSchema) else RelationSchema(target)
    )
    tableau = standard_tableau(schema, target_schema, universe=universe)
    minimization = minimize_tableau(tableau)
    connection = canonical_schema(minimization.minimal)
    return CanonicalConnectionResult(
        schema=schema,
        target=target_schema,
        standard=tableau,
        minimization=minimization,
        connection=connection,
    )


def canonical_connection(
    schema: DatabaseSchema,
    target: Union[RelationSchema, Iterable[Attribute]],
    universe: Optional[Union[RelationSchema, Iterable[Attribute]]] = None,
) -> DatabaseSchema:
    """``CC(D, X)`` — the canonical connection of the query ``(D, X)``.

    Consults the engine façade's cache (:func:`repro.engine.analyze`): an
    already-analyzed schema reuses its memoized tableau minimization.  On a
    miss the connection is computed directly without creating a cache entry,
    so sweeps over many schemas (γ-acyclicity checks walk every connected
    sub-schema) do not flood the analysis LRU.
    """
    from ..engine.analysis import peek_analysis  # deferred: the engine sits above us

    analysis = peek_analysis(schema)
    if analysis is not None:
        return analysis.canonical_connection(target, universe=universe)
    return canonical_connection_result(schema, target, universe=universe).connection
