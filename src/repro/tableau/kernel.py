"""The interned-symbol tableau kernel.

Containment-mapping search, minimization and canonical-schema read-off all
operate on the same compiled representation of a tableau
(:class:`CompiledTableau`):

* every symbol is interned to an integer **code**, with the distinguished
  variables occupying the reserved low range ``[0, n_distinguished)`` so that
  "is this symbol distinguished?" is a single integer comparison;
* the matrix is stored both row-major and column-major as tuples of codes;
* each column carries an **occurrence index** mapping every code to the
  bitmask of rows it occurs in (row ``r`` is bit ``1 << r``).

The bitmasks are what make the searches fast: the candidate target rows for a
source row are the intersection (bitwise AND) of the per-column occurrence
masks of the images its already-mapped symbols must land on, so constants and
distinguished codes prune the search space before any backtracking happens,
and the symbol-consistency propagation is an integer-array walk rather than a
dict-of-Variables dance.

The compiled form is built once per :class:`~repro.tableau.tableau.Tableau`
(via :meth:`~repro.tableau.tableau.Tableau.compiled`, which caches it on the
instance — tableaux are immutable) and is shared by
:mod:`repro.tableau.containment`, :mod:`repro.tableau.minimize` and
:mod:`repro.tableau.canonical`.  Row subsets are everywhere represented as
bitmasks over the *original* row indices, which is what lets minimization
re-use one compiled tableau (and its occurrence indexes) across every
row-removal attempt instead of recompiling per candidate subtableau.

This module is internal: the public API lives in the sibling modules.  The
pre-kernel implementations are retained verbatim in
:mod:`repro.tableau.reference` as the executable specification the property
tests compare against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .tableau import Tableau
    from .variables import Variable

__all__ = [
    "CompiledTableau",
    "iter_bits",
    "find_row_mapping",
    "find_isomorphism_mapping",
]

#: Sentinel in a symbol-mapping array: "this distinguished symbol has no
#: occurrence in the target, so any source row containing it is unmappable".
_IMPOSSIBLE = -2
#: Sentinel in a symbol-mapping array: "not mapped yet".
_UNMAPPED = -1


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class CompiledTableau:
    """The interned integer form of a tableau (see the module docstring).

    Instances are immutable once built; obtain them through
    :meth:`Tableau.compiled`, not by calling the constructor directly, so the
    per-tableau cache is shared.
    """

    __slots__ = (
        "tableau",
        "n_rows",
        "n_columns",
        "n_symbols",
        "n_distinguished",
        "symbols",
        "code_of",
        "row_codes",
        "column_codes",
        "occurrence_masks",
        "all_rows_mask",
        "_profiles",
        "_invariant_masks",
    )

    def __init__(self, tableau: "Tableau") -> None:
        rows = tableau.rows
        n_rows = len(rows)
        n_columns = len(tableau.columns)

        # Interning: distinguished symbols first (sorted, so the coding is a
        # function of the symbol set alone), then nondistinguished symbols in
        # row-major first-occurrence order.
        distinguished = sorted(
            {cell for row in rows for cell in row.cells if cell.is_distinguished}
        )
        code_of: Dict["Variable", int] = {
            symbol: code for code, symbol in enumerate(distinguished)
        }
        symbols: List["Variable"] = list(distinguished)
        row_codes: List[Tuple[int, ...]] = []
        for row in rows:
            codes = []
            for cell in row.cells:
                code = code_of.get(cell)
                if code is None:
                    code = len(symbols)
                    code_of[cell] = code
                    symbols.append(cell)
                codes.append(code)
            row_codes.append(tuple(codes))

        occurrence_masks: List[Dict[int, int]] = []
        column_codes: List[Tuple[int, ...]] = []
        for position in range(n_columns):
            column = tuple(codes[position] for codes in row_codes)
            column_codes.append(column)
            masks: Dict[int, int] = {}
            for row_index, code in enumerate(column):
                masks[code] = masks.get(code, 0) | (1 << row_index)
            occurrence_masks.append(masks)

        self.tableau = tableau
        self.n_rows = n_rows
        self.n_columns = n_columns
        self.n_symbols = len(symbols)
        self.n_distinguished = len(distinguished)
        self.symbols = tuple(symbols)
        self.code_of = code_of
        self.row_codes = tuple(row_codes)
        self.column_codes = tuple(column_codes)
        self.occurrence_masks = tuple(occurrence_masks)
        self.all_rows_mask = (1 << n_rows) - 1
        self._profiles: Optional[Tuple[Tuple[Tuple[bool, int], ...], ...]] = None
        self._invariant_masks: Optional[Tuple[Dict[Tuple[bool, int], int], ...]] = None

    # -- isomorphism invariants ------------------------------------------------

    def column_profiles(self) -> Tuple[Tuple[Tuple[bool, int], ...], ...]:
        """Per column, the sorted multiset of cell invariants.

        The invariant of a cell is ``(is distinguished, number of rows its
        symbol occurs in within this column)``.  A row-bijective containment
        mapping in both directions preserves both components cell-wise, so two
        isomorphic tableaux have equal profiles — a cheap necessary condition
        checked before any backtracking.
        """
        if self._profiles is None:
            n_distinguished = self.n_distinguished
            profiles = []
            for position in range(self.n_columns):
                masks = self.occurrence_masks[position]
                counts = {code: mask.bit_count() for code, mask in masks.items()}
                profiles.append(
                    tuple(
                        sorted(
                            (code < n_distinguished, counts[code])
                            for code in self.column_codes[position]
                        )
                    )
                )
            self._profiles = tuple(profiles)
        return self._profiles

    def invariant_masks(self) -> Tuple[Dict[Tuple[bool, int], int], ...]:
        """Per column, a map from cell invariant to the bitmask of rows
        whose cell in that column carries the invariant."""
        if self._invariant_masks is None:
            n_distinguished = self.n_distinguished
            tables: List[Dict[Tuple[bool, int], int]] = []
            for position in range(self.n_columns):
                masks = self.occurrence_masks[position]
                table: Dict[Tuple[bool, int], int] = {}
                for code, mask in masks.items():
                    invariant = (code < n_distinguished, mask.bit_count())
                    table[invariant] = table.get(invariant, 0) | mask
                tables.append(table)
            self._invariant_masks = tuple(tables)
        return self._invariant_masks


def _initial_symbol_mapping(source: CompiledTableau, target: CompiledTableau) -> List[int]:
    """The symbol-mapping array seeded with the distinguished constraints.

    ``mapping[code]`` is the target code a source code is mapped to,
    ``_UNMAPPED`` when free, ``_IMPOSSIBLE`` when the source code is a
    distinguished variable the target does not contain (any source row using
    it is then unmappable).
    """
    mapping = [_UNMAPPED] * source.n_symbols
    if source is target:
        for code in range(source.n_distinguished):
            mapping[code] = code
        return mapping
    target_codes = target.code_of
    for code in range(source.n_distinguished):
        image = target_codes.get(source.symbols[code])
        mapping[code] = _IMPOSSIBLE if image is None else image
    return mapping


def find_row_mapping(
    source: CompiledTableau,
    target: CompiledTableau,
    *,
    source_rows: Optional[int] = None,
    target_rows: Optional[int] = None,
) -> Optional[Tuple[Dict[int, int], List[int]]]:
    """Find a containment mapping between compiled tableaux, as integers.

    ``source_rows`` / ``target_rows`` are row bitmasks restricting the search
    to subtableaux (defaulting to all rows) — this is how minimization tests
    row removals without materializing candidate tableaux.  Returns
    ``(row_image, symbol_mapping)`` where ``row_image`` maps each active
    source row index to its target row index and ``symbol_mapping`` is the
    final code-to-code array, or ``None`` when no containment mapping exists.

    Both tableaux must be over the same columns (the callers check).
    """
    if source_rows is None:
        source_rows = source.all_rows_mask
    if target_rows is None:
        target_rows = target.all_rows_mask
    active = list(iter_bits(source_rows))
    mapping = _initial_symbol_mapping(source, target)
    if not active:
        return {}, mapping

    n_columns = source.n_columns
    occurrence = target.occurrence_masks
    row_codes = source.row_codes
    target_codes = target.row_codes

    # Candidate masks from the pre-seeded (distinguished/constant) constraints
    # alone: intersect, per column, the target occurrence masks of the images
    # the already-mapped symbols must land on.  A row with an empty mask — or
    # one using a distinguished symbol absent from the target — refutes the
    # whole search before any backtracking.
    base_masks: Dict[int, int] = {}
    for row_index in active:
        mask = target_rows
        for position, code in enumerate(row_codes[row_index]):
            image = mapping[code]
            if image == _IMPOSSIBLE:
                return None
            if image >= 0:
                mask &= occurrence[position].get(image, 0)
                if not mask:
                    return None
        base_masks[row_index] = mask

    order = sorted(active, key=lambda row_index: base_masks[row_index].bit_count())
    row_image: Dict[int, int] = {}

    def assign(position_in_order: int) -> bool:
        if position_in_order == len(order):
            return True
        row_index = order[position_in_order]
        codes = row_codes[row_index]
        # Refine the candidate mask with everything mapped so far.
        mask = base_masks[row_index]
        for position in range(n_columns):
            image = mapping[codes[position]]
            if image >= 0:
                mask &= occurrence[position].get(image, 0)
                if not mask:
                    return False
        while mask:
            low = mask & -mask
            target_index = low.bit_length() - 1
            mask ^= low
            images = target_codes[target_index]
            trail: List[int] = []
            consistent = True
            for position in range(n_columns):
                code = codes[position]
                image = images[position]
                current = mapping[code]
                if current < 0:
                    mapping[code] = image
                    trail.append(code)
                elif current != image:
                    consistent = False
                    break
            if consistent:
                row_image[row_index] = target_index
                if assign(position_in_order + 1):
                    return True
                del row_image[row_index]
            for code in trail:
                mapping[code] = _UNMAPPED
        return False

    if not assign(0):
        return None
    return row_image, mapping


def find_isomorphism_mapping(
    first: CompiledTableau, second: CompiledTableau
) -> Optional[Tuple[Dict[int, int], List[int]]]:
    """Find a row-bijective containment mapping whose inverse is also one.

    Returns ``(row_image, forward)`` over integer codes or ``None``.  The
    caller is expected to have short-circuited on mismatched row counts and
    column profiles (:meth:`CompiledTableau.column_profiles`) already; this
    function additionally prunes candidates with the per-column invariant
    masks, so each source row only ever tries target rows whose cells carry
    the same (distinguishedness, occurrence-count) fingerprint.
    """
    n_rows = first.n_rows
    if n_rows != second.n_rows:
        return None
    if n_rows == 0:
        return {}, []

    forward = [_UNMAPPED] * first.n_symbols
    backward = [_UNMAPPED] * second.n_symbols
    # Distinguished variables must map to themselves, bijectively.
    if first.n_distinguished != second.n_distinguished:
        return None
    for code in range(first.n_distinguished):
        image = second.code_of.get(first.symbols[code])
        if image is None:
            return None
        forward[code] = image
        backward[image] = code

    n_columns = first.n_columns
    occurrence_first = first.occurrence_masks
    occurrence_second = second.occurrence_masks
    invariant_masks = second.invariant_masks()
    n_distinguished = first.n_distinguished

    base_masks: List[int] = []
    for row_index in range(n_rows):
        mask = second.all_rows_mask
        codes = first.row_codes[row_index]
        for position in range(n_columns):
            code = codes[position]
            if code < n_distinguished:
                mask &= occurrence_second[position].get(forward[code], 0)
            else:
                invariant = (
                    False,
                    occurrence_first[position][code].bit_count(),
                )
                mask &= invariant_masks[position].get(invariant, 0)
            if not mask:
                return None
        base_masks.append(mask)

    order = sorted(range(n_rows), key=lambda row_index: base_masks[row_index].bit_count())
    row_image: Dict[int, int] = {}
    used_targets = 0
    second_rows = second.row_codes
    first_rows = first.row_codes

    def assign(position_in_order: int) -> bool:
        nonlocal used_targets
        if position_in_order == n_rows:
            return True
        row_index = order[position_in_order]
        codes = first_rows[row_index]
        mask = base_masks[row_index] & ~used_targets
        for position in range(n_columns):
            image = forward[codes[position]]
            if image >= 0:
                mask &= occurrence_second[position].get(image, 0)
                if not mask:
                    return False
        while mask:
            low = mask & -mask
            target_index = low.bit_length() - 1
            mask ^= low
            images = second_rows[target_index]
            trail: List[Tuple[int, int]] = []
            consistent = True
            for position in range(n_columns):
                code = codes[position]
                image = images[position]
                mapped = forward[code]
                inverse = backward[image]
                if mapped == _UNMAPPED and inverse == _UNMAPPED:
                    forward[code] = image
                    backward[image] = code
                    trail.append((code, image))
                elif mapped != image or inverse != code:
                    consistent = False
                    break
            if consistent:
                row_image[row_index] = target_index
                used_targets |= low
                if assign(position_in_order + 1):
                    return True
                used_targets &= ~low
                del row_image[row_index]
            for code, image in trail:
                forward[code] = _UNMAPPED
                backward[image] = _UNMAPPED
        return False

    if not assign(0):
        return None
    return row_image, forward
