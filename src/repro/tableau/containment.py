"""Containment mappings, tableau equivalence and isomorphism (Section 3.4).

A *containment mapping* from tableau ``T`` to tableau ``T'`` is a row-to-row
mapping induced by a symbol-to-symbol mapping that preserves distinguished
variables (Aho, Sagiv & Ullman): a function ``h`` on symbols with
``h(a) = a`` for every distinguished ``a`` such that applying ``h``
componentwise to any row of ``T`` yields a row of ``T'``.

* ``T ≡ T'`` (*equivalent*) — containment mappings exist in both directions.
* ``T ≃ T'`` (*isomorphic*) — a one-to-one row correspondence exists that is a
  containment mapping in both directions.

Finding a containment mapping is NP-complete in general; the implementation
is a backtracking search over row assignments with symbol-consistency
propagation, which handles the tableau sizes arising from the paper's schemas
comfortably.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..exceptions import TableauError
from .tableau import Tableau, TableauRow
from .variables import Variable

__all__ = [
    "ContainmentMapping",
    "find_containment_mapping",
    "has_containment_mapping",
    "tableaux_equivalent",
    "find_isomorphism",
    "tableaux_isomorphic",
]


@dataclass(frozen=True)
class ContainmentMapping:
    """A witnessing containment mapping.

    ``row_mapping[i] = j`` means row ``i`` of the source maps to row ``j`` of
    the target; ``symbol_mapping`` is the inducing symbol-to-symbol function
    restricted to the symbols of the source tableau.
    """

    row_mapping: Tuple[int, ...]
    symbol_mapping: Dict[Variable, Variable]

    def image_of_row(self, row_index: int) -> int:
        """The target row index a source row is mapped to."""
        return self.row_mapping[row_index]


def _check_compatible(source: Tableau, target: Tableau) -> None:
    if source.columns != target.columns:
        raise TableauError(
            "containment mappings are defined between tableaux over the same columns"
        )


def find_containment_mapping(
    source: Tableau, target: Tableau
) -> Optional[ContainmentMapping]:
    """Find a containment mapping from ``source`` to ``target`` or return ``None``.

    The search assigns source rows to target rows one at a time (most
    constrained source rows first), maintaining a partial symbol mapping and
    failing fast on conflicts.
    """
    _check_compatible(source, target)
    if len(source) == 0:
        return ContainmentMapping(row_mapping=(), symbol_mapping={})
    if len(target) == 0:
        return None

    columns = source.columns
    n_columns = len(columns)
    source_rows = [row.cells for row in source.rows]
    target_rows = [row.cells for row in target.rows]

    # Precompute, for each source row, the target rows that are locally
    # feasible: distinguished symbols must map to themselves and a symbol may
    # never map to two different images within the same row.
    def locally_feasible(src: Tuple[Variable, ...], dst: Tuple[Variable, ...]) -> bool:
        local: Dict[Variable, Variable] = {}
        for position in range(n_columns):
            symbol = src[position]
            image = dst[position]
            if symbol.is_distinguished and symbol != image:
                return False
            seen = local.get(symbol)
            if seen is None:
                local[symbol] = image
            elif seen != image:
                return False
        return True

    candidates: List[List[int]] = []
    for src in source_rows:
        feasible = [
            target_index
            for target_index, dst in enumerate(target_rows)
            if locally_feasible(src, dst)
        ]
        if not feasible:
            return None
        candidates.append(feasible)

    order = sorted(range(len(source_rows)), key=lambda index: len(candidates[index]))
    assignment: Dict[int, int] = {}
    symbol_mapping: Dict[Variable, Variable] = {}

    def assign(position: int) -> bool:
        if position == len(order):
            return True
        source_index = order[position]
        src = source_rows[source_index]
        for target_index in candidates[source_index]:
            dst = target_rows[target_index]
            added: List[Variable] = []
            conflict = False
            for column in range(n_columns):
                symbol = src[column]
                image = dst[column]
                existing = symbol_mapping.get(symbol)
                if existing is None:
                    symbol_mapping[symbol] = image
                    added.append(symbol)
                elif existing != image:
                    conflict = True
                    break
            if not conflict:
                assignment[source_index] = target_index
                if assign(position + 1):
                    return True
                del assignment[source_index]
            for symbol in added:
                del symbol_mapping[symbol]
        return False

    if not assign(0):
        return None
    row_mapping = tuple(assignment[index] for index in range(len(source_rows)))
    return ContainmentMapping(row_mapping=row_mapping, symbol_mapping=dict(symbol_mapping))


def has_containment_mapping(source: Tableau, target: Tableau) -> bool:
    """True when a containment mapping from ``source`` to ``target`` exists."""
    return find_containment_mapping(source, target) is not None


def tableaux_equivalent(first: Tableau, second: Tableau) -> bool:
    """``T ≡ T'``: containment mappings exist in both directions.

    By the theory of Aho, Sagiv & Ullman this coincides with the two
    associated queries being weakly equivalent (Lemma 3.2 of the paper).
    """
    return has_containment_mapping(first, second) and has_containment_mapping(
        second, first
    )


def find_isomorphism(
    first: Tableau, second: Tableau
) -> Optional[ContainmentMapping]:
    """Find a row-bijective containment mapping whose inverse is also one.

    Returns the forward mapping, or ``None`` when the tableaux are not
    isomorphic.  Per Lemma 3.4, two equivalent tableaux that are both minimal
    are always isomorphic.
    """
    _check_compatible(first, second)
    if len(first) != len(second):
        return None

    columns = first.columns
    n_columns = len(columns)
    first_rows = [row.cells for row in first.rows]
    second_rows = [row.cells for row in second.rows]

    symbol_forward: Dict[Variable, Variable] = {}
    symbol_backward: Dict[Variable, Variable] = {}
    assignment: Dict[int, int] = {}
    used_targets: set = set()

    def try_pair(src: Tuple[Variable, ...], dst: Tuple[Variable, ...]) -> Optional[List[Tuple[Variable, Variable]]]:
        added: List[Tuple[Variable, Variable]] = []
        for column in range(n_columns):
            symbol = src[column]
            image = dst[column]
            if symbol.is_distinguished != image.is_distinguished:
                self_rollback(added)
                return None
            if symbol.is_distinguished and symbol != image:
                self_rollback(added)
                return None
            fwd = symbol_forward.get(symbol)
            bwd = symbol_backward.get(image)
            if fwd is None and bwd is None:
                symbol_forward[symbol] = image
                symbol_backward[image] = symbol
                added.append((symbol, image))
            elif fwd != image or bwd != symbol:
                self_rollback(added)
                return None
        return added

    def self_rollback(added: List[Tuple[Variable, Variable]]) -> None:
        for symbol, image in added:
            del symbol_forward[symbol]
            del symbol_backward[image]

    def assign(source_index: int) -> bool:
        if source_index == len(first_rows):
            return True
        src = first_rows[source_index]
        for target_index, dst in enumerate(second_rows):
            if target_index in used_targets:
                continue
            added = try_pair(src, dst)
            if added is None:
                continue
            assignment[source_index] = target_index
            used_targets.add(target_index)
            if assign(source_index + 1):
                return True
            used_targets.discard(target_index)
            del assignment[source_index]
            self_rollback(added)
        return False

    if not assign(0):
        return None
    row_mapping = tuple(assignment[index] for index in range(len(first_rows)))
    return ContainmentMapping(row_mapping=row_mapping, symbol_mapping=dict(symbol_forward))


def tableaux_isomorphic(first: Tableau, second: Tableau) -> bool:
    """``T ≃ T'``: a bidirectional row-bijective containment mapping exists."""
    return find_isomorphism(first, second) is not None
