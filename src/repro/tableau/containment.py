"""Containment mappings, tableau equivalence and isomorphism (Section 3.4).

A *containment mapping* from tableau ``T`` to tableau ``T'`` is a row-to-row
mapping induced by a symbol-to-symbol mapping that preserves distinguished
variables (Aho, Sagiv & Ullman): a function ``h`` on symbols with
``h(a) = a`` for every distinguished ``a`` such that applying ``h``
componentwise to any row of ``T`` yields a row of ``T'``.

* ``T ≡ T'`` (*equivalent*) — containment mappings exist in both directions.
* ``T ≃ T'`` (*isomorphic*) — a one-to-one row correspondence exists that is a
  containment mapping in both directions.

Finding a containment mapping is NP-complete in general; the implementation
is a backtracking search over the interned-symbol compiled form of the
tableaux (:mod:`repro.tableau.kernel`): candidate target rows come from
intersecting per-column occurrence bitmasks, distinguished codes prune before
any backtracking, and symbol consistency is propagated through integer
arrays.  The pre-kernel dictionary-based search is retained in
:mod:`repro.tableau.reference` as the oracle the property tests compare
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..exceptions import TableauError
from .kernel import find_isomorphism_mapping, find_row_mapping
from .tableau import Tableau
from .variables import Variable

__all__ = [
    "ContainmentMapping",
    "find_containment_mapping",
    "has_containment_mapping",
    "tableaux_equivalent",
    "find_isomorphism",
    "tableaux_isomorphic",
]


@dataclass(frozen=True)
class ContainmentMapping:
    """A witnessing containment mapping.

    ``row_mapping[i] = j`` means row ``i`` of the source maps to row ``j`` of
    the target; ``symbol_mapping`` is the inducing symbol-to-symbol function
    restricted to the symbols of the source tableau.
    """

    row_mapping: Tuple[int, ...]
    symbol_mapping: Dict[Variable, Variable]

    def image_of_row(self, row_index: int) -> int:
        """The target row index a source row is mapped to."""
        return self.row_mapping[row_index]


def _check_compatible(source: Tableau, target: Tableau) -> None:
    if source.columns != target.columns:
        raise TableauError(
            "containment mappings are defined between tableaux over the same columns"
        )


def find_containment_mapping(
    source: Tableau, target: Tableau
) -> Optional[ContainmentMapping]:
    """Find a containment mapping from ``source`` to ``target`` or return ``None``.

    The search runs on the compiled forms (built once per tableau and
    cached): source rows are assigned to target rows most-constrained first,
    candidates are the bitwise intersection of per-column occurrence masks,
    and conflicts fail fast on the integer symbol-mapping array.
    """
    _check_compatible(source, target)
    if len(source) == 0:
        return ContainmentMapping(row_mapping=(), symbol_mapping={})
    if len(target) == 0:
        return None

    compiled_source = source.compiled()
    compiled_target = target.compiled()
    found = find_row_mapping(compiled_source, compiled_target)
    if found is None:
        return None
    row_image, symbol_codes = found
    row_mapping = tuple(row_image[index] for index in range(len(source)))
    target_symbols = compiled_target.symbols
    symbol_mapping = {
        compiled_source.symbols[code]: target_symbols[image]
        for code, image in enumerate(symbol_codes)
        if image >= 0
    }
    return ContainmentMapping(row_mapping=row_mapping, symbol_mapping=symbol_mapping)


def has_containment_mapping(source: Tableau, target: Tableau) -> bool:
    """True when a containment mapping from ``source`` to ``target`` exists."""
    return find_containment_mapping(source, target) is not None


def tableaux_equivalent(first: Tableau, second: Tableau) -> bool:
    """``T ≡ T'``: containment mappings exist in both directions.

    By the theory of Aho, Sagiv & Ullman this coincides with the two
    associated queries being weakly equivalent (Lemma 3.2 of the paper).
    """
    return has_containment_mapping(first, second) and has_containment_mapping(
        second, first
    )


def find_isomorphism(
    first: Tableau, second: Tableau
) -> Optional[ContainmentMapping]:
    """Find a row-bijective containment mapping whose inverse is also one.

    Returns the forward mapping, or ``None`` when the tableaux are not
    isomorphic.  Per Lemma 3.4, two equivalent tableaux that are both minimal
    are always isomorphic.

    Two short-circuits run before any backtracking: mismatched row counts,
    and mismatched per-column symbol-arity multisets
    (:meth:`~repro.tableau.kernel.CompiledTableau.column_profiles` — the
    multiset, per column, of each cell's ``(distinguishedness,
    occurrences-in-column)`` fingerprint, which any isomorphism preserves).
    """
    _check_compatible(first, second)
    if len(first) != len(second):
        return None
    if len(first) == 0:
        return ContainmentMapping(row_mapping=(), symbol_mapping={})

    compiled_first = first.compiled()
    compiled_second = second.compiled()
    if compiled_first.column_profiles() != compiled_second.column_profiles():
        return None
    found = find_isomorphism_mapping(compiled_first, compiled_second)
    if found is None:
        return None
    row_image, forward = found
    row_mapping = tuple(row_image[index] for index in range(len(first)))
    second_symbols = compiled_second.symbols
    symbol_mapping = {
        compiled_first.symbols[code]: second_symbols[image]
        for code, image in enumerate(forward)
        if image >= 0
    }
    return ContainmentMapping(row_mapping=row_mapping, symbol_mapping=symbol_mapping)


def tableaux_isomorphic(first: Tableau, second: Tableau) -> bool:
    """``T ≃ T'``: a bidirectional row-bijective containment mapping exists."""
    return find_isomorphism(first, second) is not None
