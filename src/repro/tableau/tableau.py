"""Tableaux and the standard tableau ``Tab(D, X)`` (Section 3.4).

A tableau is a matrix of symbols over a fixed set of attribute columns plus a
summary row.  ``Tab(D, X)`` — the standard tableau for the natural-join query
``(D, X)`` — has one row per relation schema ``R_i ∈ D``:

(i)   column ``A`` of row ``r_i`` holds the distinguished variable ``a`` iff
      ``A ∈ R_i ∩ X``;
(ii)  column ``A`` of row ``r_i`` holds the (per-attribute) nondistinguished
      variable ``a'`` iff ``A ∈ R_i - X``;
(iii) every other entry is a unique nondistinguished variable;
(iv)  the summary holds ``a`` for ``A ∈ X`` and is blank otherwise.

The row order mirrors the schema's relation order, and each row records the
index of the relation schema it came from so canonical-connection
construction and Theorem 5.2-style arguments can relate rows back to relation
schemas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from ..exceptions import TableauError
from ..hypergraph.schema import Attribute, DatabaseSchema, RelationSchema
from .variables import Variable, distinguished, shared, unique

__all__ = ["TableauRow", "Tableau", "standard_tableau"]


@dataclass(frozen=True)
class TableauRow:
    """A single tableau row: a symbol per column plus its origin.

    ``origin`` is the index of the relation schema this row was generated
    from (``None`` for rows built by hand or produced by transformations that
    lose provenance).
    """

    cells: Tuple[Variable, ...]
    origin: Optional[int] = None

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    def __getitem__(self, position: int) -> Variable:
        return self.cells[position]


class Tableau:
    """An immutable tableau over a fixed tuple of attribute columns."""

    def __init__(
        self,
        columns: Sequence[Attribute],
        rows: Iterable[Union[TableauRow, Sequence[Variable]]],
        summary: Iterable[Attribute] = (),
    ) -> None:
        self._columns: Tuple[Attribute, ...] = tuple(columns)
        if len(set(self._columns)) != len(self._columns):
            raise TableauError("tableau columns must be distinct")
        normalized_rows: List[TableauRow] = []
        for row in rows:
            if isinstance(row, TableauRow):
                cells = row.cells
                origin = row.origin
            else:
                cells = tuple(row)
                origin = None
            if len(cells) != len(self._columns):
                raise TableauError(
                    f"row has {len(cells)} cells but the tableau has "
                    f"{len(self._columns)} columns"
                )
            normalized_rows.append(TableauRow(cells=cells, origin=origin))
        self._rows: Tuple[TableauRow, ...] = tuple(normalized_rows)
        summary_set = frozenset(summary)
        unknown = summary_set - set(self._columns)
        if unknown:
            raise TableauError(
                f"summary attributes {sorted(unknown)} are not tableau columns"
            )
        self._summary: FrozenSet[Attribute] = summary_set
        self._column_index: Dict[Attribute, int] = {
            attribute: position for position, attribute in enumerate(self._columns)
        }
        # Lazily-built interned-symbol form (see repro.tableau.kernel); safe
        # to cache because tableaux are immutable.
        self._compiled = None

    def __getstate__(self):
        # The compiled form is a per-process cache (occurrence bitmasks,
        # interning tables) that every consumer can rebuild lazily; shipping
        # it with the tableau would bloat persisted catalog records and
        # cross-process pickles for no benefit.
        state = self.__dict__.copy()
        state["_compiled"] = None
        return state

    # -- basic accessors -----------------------------------------------------------

    @property
    def columns(self) -> Tuple[Attribute, ...]:
        """The attribute columns, in order."""
        return self._columns

    @property
    def rows(self) -> Tuple[TableauRow, ...]:
        """The rows, in order."""
        return self._rows

    @property
    def summary(self) -> FrozenSet[Attribute]:
        """The attributes whose summary entry is the distinguished variable."""
        return self._summary

    def __len__(self) -> int:
        return len(self._rows)

    def column_position(self, attribute: Attribute) -> int:
        """The position of a column, raising :class:`TableauError` if absent."""
        try:
            return self._column_index[attribute]
        except KeyError:
            raise TableauError(f"unknown tableau column {attribute!r}") from None

    def cell(self, row_index: int, attribute: Attribute) -> Variable:
        """The symbol in the given row and column."""
        return self._rows[row_index].cells[self.column_position(attribute)]

    def compiled(self):
        """The interned-symbol compiled form of this tableau, built once.

        Returns a :class:`repro.tableau.kernel.CompiledTableau`: every symbol
        interned to an integer code (distinguished variables in the reserved
        low range), column-major code tuples, and per-column occurrence
        bitmask indexes.  Containment search, minimization and canonical
        schema read-off all run on this form; it is cached on the instance,
        so the cost is paid once per tableau however many operations consume
        it.
        """
        compiled = self._compiled
        if compiled is None:
            from .kernel import CompiledTableau  # deferred: kernel imports us for typing

            compiled = CompiledTableau(self)
            self._compiled = compiled
        return compiled

    def symbols(self) -> FrozenSet[Variable]:
        """Every symbol occurring in the tableau."""
        result = set()
        for row in self._rows:
            result.update(row.cells)
        return frozenset(result)

    def distinguished_symbols(self) -> FrozenSet[Variable]:
        """The distinguished variables occurring in the tableau."""
        return frozenset(symbol for symbol in self.symbols() if symbol.is_distinguished)

    def symbol_occurrences(self) -> Dict[Variable, Tuple[Tuple[int, int], ...]]:
        """Map each symbol to the ``(row, column)`` positions where it occurs."""
        occurrences: Dict[Variable, List[Tuple[int, int]]] = {}
        for row_index, row in enumerate(self._rows):
            for column_index, symbol in enumerate(row.cells):
                occurrences.setdefault(symbol, []).append((row_index, column_index))
        return {symbol: tuple(positions) for symbol, positions in occurrences.items()}

    def repeated_symbols(self) -> FrozenSet[Variable]:
        """Symbols occurring in more than one row."""
        repeated = set()
        for symbol, positions in self.symbol_occurrences().items():
            rows_seen = {row_index for row_index, _ in positions}
            if len(rows_seen) > 1:
                repeated.add(symbol)
        return frozenset(repeated)

    # -- subtableaux -----------------------------------------------------------------

    def subtableau(self, row_indices: Iterable[int]) -> "Tableau":
        """The subtableau consisting of the given rows (summary unchanged)."""
        indices = list(row_indices)
        for index in indices:
            if not 0 <= index < len(self._rows):
                raise TableauError(f"row index {index} out of range")
        return Tableau(
            columns=self._columns,
            rows=[self._rows[index] for index in indices],
            summary=self._summary,
        )

    def without_row(self, row_index: int) -> "Tableau":
        """The subtableau obtained by dropping one row."""
        if not 0 <= row_index < len(self._rows):
            raise TableauError(f"row index {row_index} out of range")
        return self.subtableau(
            index for index in range(len(self._rows)) if index != row_index
        )

    def is_subtableau_of(self, other: "Tableau") -> bool:
        """True when this tableau's rows all appear (as symbol tuples) in ``other``
        and both tableaux have the same columns and summary."""
        if self._columns != other._columns or self._summary != other._summary:
            return False
        other_rows = {row.cells for row in other._rows}
        return all(row.cells in other_rows for row in self._rows)

    # -- rendering --------------------------------------------------------------------

    def render(self) -> str:
        """A fixed-width textual rendering (columns, rows, then the summary)."""
        header = ["row"] + list(self._columns)
        body: List[List[str]] = []
        for index, row in enumerate(self._rows):
            label = f"r{index}" if row.origin is None else f"r{index}(R{row.origin})"
            body.append([label] + [symbol.render() for symbol in row.cells])
        summary_row = ["summary"] + [
            column if column in self._summary else "" for column in self._columns
        ]
        body.append(summary_row)
        widths = [
            max(len(header[position]), *(len(line[position]) for line in body))
            for position in range(len(header))
        ]
        lines = ["  ".join(value.ljust(widths[i]) for i, value in enumerate(header))]
        for line in body:
            lines.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(line)))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Tableau(columns={len(self._columns)}, rows={len(self._rows)}, "
            f"summary={sorted(self._summary)})"
        )

    def __eq__(self, other: object) -> bool:
        """Syntactic equality: same columns, same summary, same rows in order."""
        if not isinstance(other, Tableau):
            return NotImplemented
        return (
            self._columns == other._columns
            and self._summary == other._summary
            and tuple(row.cells for row in self._rows)
            == tuple(row.cells for row in other._rows)
        )

    def __hash__(self) -> int:
        return hash(
            (
                self._columns,
                self._summary,
                tuple(row.cells for row in self._rows),
            )
        )


def standard_tableau(
    schema: DatabaseSchema,
    target: Union[RelationSchema, Iterable[Attribute]],
    universe: Optional[Union[RelationSchema, Iterable[Attribute]]] = None,
) -> Tableau:
    """Construct the standard tableau ``Tab(D, X)`` for the query ``(D, X)``.

    ``universe`` defaults to ``U(D) ∪ X`` and determines the tableau columns.
    Supplying a larger universe (for example ``U(D)`` of a bigger schema) pads
    every row with unique nondistinguished variables in the extra columns,
    which is how tableaux over different sub-schemas of the same database are
    compared.
    """
    target_schema = (
        target if isinstance(target, RelationSchema) else RelationSchema(target)
    )
    if universe is None:
        universe_schema = schema.attributes.union(target_schema)
    else:
        universe_schema = (
            universe
            if isinstance(universe, RelationSchema)
            else RelationSchema(universe)
        )
        if not schema.attributes.union(target_schema) <= universe_schema:
            raise TableauError(
                "the tableau universe must contain every attribute of the schema "
                "and of the target"
            )
    columns = universe_schema.sorted_attributes()

    rows: List[TableauRow] = []
    unique_counter = 0
    for index, relation in enumerate(schema.relations):
        cells: List[Variable] = []
        for attribute in columns:
            if attribute in relation and attribute in target_schema:
                cells.append(distinguished(attribute))
            elif attribute in relation:
                cells.append(shared(attribute))
            else:
                unique_counter += 1
                cells.append(unique(attribute, unique_counter))
        rows.append(TableauRow(cells=tuple(cells), origin=index))
    return Tableau(columns=columns, rows=rows, summary=target_schema.attributes)
